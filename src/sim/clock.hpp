/**
 * @file
 * The simulated clock.
 *
 * Every component of the platform model (CPU cost charges, cache-line
 * flush drains, persist barriers, block-device programs) advances one
 * shared SimClock. Reported throughputs and latencies are ratios of
 * simulated time, which makes every benchmark deterministic and
 * independent of the host machine.
 */

#ifndef NVWAL_SIM_CLOCK_HPP
#define NVWAL_SIM_CLOCK_HPP

#include <atomic>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace nvwal
{

/**
 * Monotonic simulated nanosecond clock.
 *
 * The counter is atomic so snapshot-reader threads can read (and,
 * on a cache miss that enters the engine, advance) the clock without
 * a data race; it is the only lock-free piece of shared engine
 * state. Relaxed ordering suffices: the clock carries no
 * happens-before obligations, every structure it timestamps is
 * protected by the engine lock.
 */
class SimClock
{
  public:
    SimClock() = default;

    /** Current simulated time in nanoseconds. */
    SimTime now() const { return _now.load(std::memory_order_relaxed); }

    /** Advance the clock by @p ns nanoseconds. */
    void
    advance(SimTime ns)
    {
        _now.fetch_add(ns, std::memory_order_relaxed);
    }

    /**
     * Advance the clock to @p t if @p t is in the future; used to
     * model waiting for an asynchronous completion (e.g. a memory
     * barrier draining outstanding cache-line flushes).
     */
    void
    advanceTo(SimTime t)
    {
        SimTime cur = _now.load(std::memory_order_relaxed);
        while (t > cur &&
               !_now.compare_exchange_weak(cur, t,
                                           std::memory_order_relaxed)) {
        }
    }

    /** Reset to time zero (benchmark reuse). */
    void reset() { _now.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<SimTime> _now{0};
};

/**
 * RAII helper measuring the simulated duration of a scope.
 */
class ScopedSimTimer
{
  public:
    ScopedSimTimer(const SimClock &clock, SimTime &accum)
        : _clock(clock), _accum(accum), _start(clock.now())
    {}

    ~ScopedSimTimer() { _accum += _clock.now() - _start; }

    ScopedSimTimer(const ScopedSimTimer &) = delete;
    ScopedSimTimer &operator=(const ScopedSimTimer &) = delete;

  private:
    const SimClock &_clock;
    SimTime &_accum;
    SimTime _start;
};

} // namespace nvwal

#endif // NVWAL_SIM_CLOCK_HPP
