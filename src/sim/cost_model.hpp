/**
 * @file
 * Calibrated latency/cost parameters of the two evaluation platforms
 * used in the paper: the Tuna NVRAM-emulation board (ARM Cortex-A9,
 * 32-byte cache lines, tunable NVRAM write latency) and the Nexus 5
 * smartphone (Snapdragon 800, 64-byte cache lines, eMMC flash).
 *
 * Calibration anchors from the paper (section 5):
 *  - Tuna, single-insert transaction: query execution time ~424 us,
 *    ordering-constraint overhead (dccmvac + dmb + kernel switch)
 *    ~19.3 us (4.6%); 32-insert transaction: ~5828 us, ~46.5 us.
 *  - Persist barrier emulated as a 1 us delay.
 *  - Nexus 5: optimized WAL on eMMC ~541 tx/s; NVWAL LS ~5393 tx/s
 *    and NVWAL UH+LS+Diff ~5812 tx/s at 2 us NVRAM write latency.
 *
 * The constants below reproduce those anchors; everything else in the
 * evaluation (orderings, crossovers, percentage deltas) emerges from
 * the modeled mechanisms, not from further tuning.
 */

#ifndef NVWAL_SIM_COST_MODEL_HPP
#define NVWAL_SIM_COST_MODEL_HPP

#include <cstdint>

#include "common/types.hpp"

namespace nvwal
{

/**
 * Which memory-persistency model the platform provides (section 4.4
 * of the paper, after Pelley et al.). The paper's evaluation
 * hardware has none, so NVWAL uses explicit flushes; strict and
 * epoch persistency are the paper's future work, implemented here so
 * the conjecture of section 4.4 can be measured (see
 * bench_persistency_models).
 */
enum class PersistencyModel
{
    /**
     * No hardware support: software must issue cache-line flushes,
     * memory barriers and persist barriers (the paper's platform).
     */
    Explicit,
    /**
     * Persist order == program (volatile memory) order: every NVRAM
     * store drains to the media before the next proceeds. No
     * flushes or persist barriers needed -- but no persist
     * concurrency either.
     */
    Strict,
    /**
     * Relaxed/epoch persistency (BPFS-style): stores buffer freely;
     * a memory barrier ends the epoch, draining all buffered NVRAM
     * lines with full bank parallelism. No software flushes needed.
     */
    EpochHW,
};

const char *persistencyModelName(PersistencyModel model);

/** All tunable latency/cost parameters of the platform model. */
struct CostModel
{
    /** Hardware persistency support (section 4.4). */
    PersistencyModel persistency = PersistencyModel::Explicit;

    // ---- CPU / query engine -------------------------------------
    /** Per-transaction begin/commit bookkeeping (parse, locks). */
    SimTime cpuTxnNs = 0;
    /** Per-statement CPU cost (SQL parse, B-tree traversal). */
    SimTime cpuOpNs = 0;
    /** Marginal CPU cost per payload byte moved by the engine. */
    double cpuPerByteNs = 0.0;

    // ---- memory copies ------------------------------------------
    /** Store cost per byte for DRAM-to-DRAM copies. */
    double memcpyDramNsPerByte = 0.0;
    /**
     * Store cost per byte when the destination is NVRAM-mapped
     * memory. Stores land in the (volatile) CPU cache, so this is a
     * cache-store cost, not the NVRAM media latency; the media
     * latency is paid when lines are flushed.
     */
    double memcpyNvramNsPerByte = 0.0;

    // ---- cache / NVRAM persistence --------------------------------
    /** Cache line size in bytes (32 on Tuna, 64 on Nexus 5). */
    std::uint32_t cacheLineSize = 64;
    /** NVRAM media write latency per cache line (the swept knob). */
    SimTime nvramWriteLatencyNs = 500;
    /**
     * NVRAM media read cost per byte, charged on the log-read paths
     * (recovery scan, page reconstruction). PCM-class reads are
     * several times slower than DRAM (section 5.3 cites 2-5x).
     */
    double nvramReadNsPerByte = 1.0;
    /** CPU cost to issue one non-blocking dccmvac/clflush. */
    SimTime flushIssueNs = 40;
    /**
     * Memory-bank parallelism available to *batched* (lazy) flushes.
     * Eagerly fenced flushes serialize on the full media latency;
     * a batch of non-blocking flushes drains at latency/banks per
     * line (section 5.1: eager dccmvac+dmb is up to ~23% slower).
     */
    unsigned nvramBanks = 4;
    /** dmb instruction cost, excluding time spent waiting on drains. */
    SimTime memoryBarrierNs = 30;
    /** Persist barrier (emulated as 1 us of nops in the paper). */
    SimTime persistBarrierNs = 1000;
    /** Kernel-mode switch per cache_line_flush() system call. */
    SimTime syscallNs = 1500;
    /** Cost of one NVRAM heap-manager call (nvmalloc/nvfree/...). */
    SimTime heapCallNs = 4000;

    // ---- block device (eMMC flash) -------------------------------
    /** Block (page) size of the device and file system. */
    std::uint32_t blockSize = 4096;
    /** Program latency per 4 KB block write. */
    SimTime blockProgramNs = 180'000;
    /** Read latency per 4 KB block. */
    SimTime blockReadNs = 60'000;
    /** Base cost of a device cache flush (fsync barrier). */
    SimTime fsyncBaseNs = 800'000;

    /** Tuna NVRAM emulation board preset. */
    static CostModel tuna(SimTime nvram_write_latency_ns = 500);

    /** Nexus 5 smartphone preset. */
    static CostModel nexus5(SimTime nvram_write_latency_ns = 2000);
};

} // namespace nvwal

#endif // NVWAL_SIM_COST_MODEL_HPP
