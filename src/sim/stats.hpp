/**
 * @file
 * Named counter registry shared by the platform model.
 *
 * Components increment counters (cache lines flushed, NVRAM bytes
 * logged, journal blocks written, heap-manager calls, ...) and the
 * benchmark harness snapshots/deltas them to regenerate the paper's
 * tables.
 */

#ifndef NVWAL_SIM_STATS_HPP
#define NVWAL_SIM_STATS_HPP

#include <cstdint>
#include <map>
#include <string>

namespace nvwal
{

/** Snapshot of all counters at a point in time. */
using StatsSnapshot = std::map<std::string, std::uint64_t>;

/** Registry of monotonically increasing named counters. */
class StatsRegistry
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        _counters[name] += delta;
    }

    /** Current value of @p name (zero if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second;
    }

    /** Copy of every counter. */
    StatsSnapshot snapshot() const { return _counters; }

    /** Per-counter difference @p now - @p before. */
    static StatsSnapshot
    delta(const StatsSnapshot &before, const StatsSnapshot &now)
    {
        StatsSnapshot d = now;
        for (const auto &[name, value] : before)
            d[name] -= value;
        return d;
    }

    void clear() { _counters.clear(); }

  private:
    StatsSnapshot _counters;
};

namespace stats
{

// Canonical counter names, so producers and consumers agree.
inline constexpr const char *kNvramBytesLogged = "nvram.bytes_logged";
inline constexpr const char *kNvramBytesRead = "nvram.bytes_read";
inline constexpr const char *kNvramLinesFlushed = "nvram.lines_flushed";
inline constexpr const char *kNvramFramesWritten = "nvram.frames_written";
inline constexpr const char *kMemoryBarriers = "pmem.memory_barriers";
inline constexpr const char *kPersistBarriers = "pmem.persist_barriers";
inline constexpr const char *kFlushSyscalls = "pmem.flush_syscalls";
inline constexpr const char *kHeapCalls = "heap.manager_calls";
inline constexpr const char *kHeapBlocksAllocated = "heap.blocks_allocated";
inline constexpr const char *kBlocksWritten = "blockdev.blocks_written";
inline constexpr const char *kBlocksRead = "blockdev.blocks_read";
inline constexpr const char *kJournalBlocksWritten = "fs.journal_blocks";
inline constexpr const char *kFsyncs = "fs.fsyncs";
inline constexpr const char *kCheckpoints = "db.checkpoints";
inline constexpr const char *kTxnsCommitted = "db.txns_committed";
inline constexpr const char *kWalFullPageFrames = "wal.full_page_frames";

// Simulated-time accumulators (nanoseconds), updated by the pmem
// layer to break a transaction's ordering-constraint cost into the
// paper's Figure 5 categories.
inline constexpr const char *kTimeMemcpyNs = "time.memcpy_ns";
inline constexpr const char *kTimeFlushNs = "time.cacheline_flush_ns";
inline constexpr const char *kTimeBarrierNs = "time.memory_barrier_ns";
inline constexpr const char *kTimePersistNs = "time.persist_barrier_ns";
inline constexpr const char *kTimeSyscallNs = "time.syscall_ns";
inline constexpr const char *kTimeHeapNs = "time.heap_manager_ns";

} // namespace stats

} // namespace nvwal

#endif // NVWAL_SIM_STATS_HPP
