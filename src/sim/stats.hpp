/**
 * @file
 * Named counter registry shared by the platform model.
 *
 * Components increment counters (cache lines flushed, NVRAM bytes
 * logged, journal blocks written, heap-manager calls, ...) and the
 * benchmark harness snapshots/deltas them to regenerate the paper's
 * tables.
 *
 * Since the observability subsystem landed, the registry is the
 * richer obs::MetricsRegistry (counters + latency histograms +
 * gauges + the per-transaction event tracer). The canonical
 * counter/histogram names below are documented in docs/MODEL.md and
 * docs/OBSERVABILITY.md.
 */

#ifndef NVWAL_SIM_STATS_HPP
#define NVWAL_SIM_STATS_HPP

#include <cstdio>
#include <string>

#include "obs/metrics.hpp"

namespace nvwal
{

namespace stats
{

// Canonical counter names, so producers and consumers agree.
inline constexpr const char *kNvramBytesLogged = "nvram.bytes_logged";
inline constexpr const char *kNvramBytesRead = "nvram.bytes_read";
inline constexpr const char *kNvramLinesFlushed = "nvram.lines_flushed";
inline constexpr const char *kNvramFramesWritten = "nvram.frames_written";
inline constexpr const char *kMemoryBarriers = "pmem.memory_barriers";
inline constexpr const char *kPersistBarriers = "pmem.persist_barriers";
inline constexpr const char *kFlushSyscalls = "pmem.flush_syscalls";
inline constexpr const char *kHeapCalls = "heap.manager_calls";
inline constexpr const char *kHeapBlocksAllocated = "heap.blocks_allocated";
inline constexpr const char *kBlocksWritten = "blockdev.blocks_written";
inline constexpr const char *kBlocksRead = "blockdev.blocks_read";
inline constexpr const char *kJournalBlocksWritten = "fs.journal_blocks";
inline constexpr const char *kFsyncs = "fs.fsyncs";
inline constexpr const char *kCheckpoints = "db.checkpoints";
inline constexpr const char *kTxnsCommitted = "db.txns_committed";
inline constexpr const char *kWalFullPageFrames = "wal.full_page_frames";

// Concurrency layer: snapshot readers, group commit, the background
// checkpointer (docs/OBSERVABILITY.md §concurrency).
inline constexpr const char *kSnapshotsOpened = "db.snapshots_opened";
inline constexpr const char *kSnapshotReads = "db.snapshot_reads";
inline constexpr const char *kSnapshotCacheHits = "db.snapshot_cache_hits";
inline constexpr const char *kGroupCommits = "db.group_commits";
inline constexpr const char *kGroupCommitTxns = "db.group_commit_txns";
inline constexpr const char *kCheckpointerSteps = "db.checkpointer_steps";
inline constexpr const char *kCheckpointsPinBlocked =
    "wal.checkpoints_pin_blocked";

// Sharded engine and cross-shard two-phase commit (DESIGN.md §10,
// docs/OBSERVABILITY.md §shard).
inline constexpr const char *kShardTxnsSingle = "shard.txns_single";
inline constexpr const char *kShardTxnsCross = "shard.txns_cross";
inline constexpr const char *kShardCrossAborts = "shard.cross_aborts";
inline constexpr const char *kShardIndoubtCommitted =
    "shard.indoubt_committed";
inline constexpr const char *kShardIndoubtAborted =
    "shard.indoubt_aborted";
/** PREPARE / DECISION control records persisted by the NVRAM log. */
inline constexpr const char *kWalPrepareRecords = "wal.prepare_records";
inline constexpr const char *kWalDecisionRecords = "wal.decision_records";
/** Checkpoint rounds whose truncation a staged 2PC txn deferred. */
inline constexpr const char *kWalCkptTwoPhaseBlocked =
    "wal.checkpoints_2pc_blocked";

// Asynchronous durability pipeline (DESIGN.md §11). Epoch batching of
// persist barriers plus recovery-side checksum-commit classification:
// torn frames are units whose content failed the chain verification,
// discarded frames are intact units beyond the recoverable prefix, and
// lost marks meter the loss window in commit events.
inline constexpr const char *kDbAsyncCommits = "db.async_commits";
inline constexpr const char *kWalEpochsHardened = "wal.epochs_hardened";
inline constexpr const char *kWalHardenBatches = "wal.harden_batches";
inline constexpr const char *kWalTornFramesDetected =
    "wal.torn_frames_detected";
inline constexpr const char *kWalRecoveryFramesDiscarded =
    "wal.recovery_frames_discarded";
inline constexpr const char *kWalRecoveryLostMarks =
    "wal.recovery_lost_marks";

// Multi-writer per-connection logs (DESIGN.md §13). Optimistic
// commit-time validation failures, the recovery-time epoch merge
// (transactions applied from per-connection logs vs. dropped because
// an earlier epoch's log prefix was torn away), group hardens across
// the per-connection logs, and transact() retries after a conflict.
inline constexpr const char *kWalLogConflicts = "wal.log_conflicts";
inline constexpr const char *kWalEpochMergeTxns = "wal.epoch_merge_txns";
inline constexpr const char *kWalEpochMergeGapDiscarded =
    "wal.epoch_merge_gap_discarded";
inline constexpr const char *kWalMwHardens = "wal.mw_hardens";
inline constexpr const char *kDbTxnConflictRetries =
    "db.txn_conflict_retries";

// NVRAM flight recorder (DESIGN.md §12, docs/OBSERVABILITY.md §7).
// Records appended to the persistent telemetry ring, slots whose
// checksum failed at the recovery-time parse (torn plain-store tails,
// discarded like §3.2 commit marks), and full laps of the ring.
inline constexpr const char *kFrRecordsWritten = "fr.records_written";
inline constexpr const char *kFrRecordsTornDiscarded =
    "fr.records_torn_discarded";
inline constexpr const char *kFrRingWraps = "fr.ring_wraps";

// Trace events overwritten because the Tracer ring wrapped. The name
// literal is owned by obs/metrics.hpp (the registry merges the value
// into snapshot() and cannot include this header); keep both in sync.
inline constexpr const char *kTraceEventsDropped = "trace.events_dropped";

// Gauges (sampled values, not monotonic).
inline constexpr const char *kGaugeOpenConnections = "db.open_connections";
inline constexpr const char *kGaugeAsyncAcksPending =
    "db.async_acks_pending";
inline constexpr const char *kGaugeOpenSnapshots = "db.open_snapshots";
inline constexpr const char *kGaugeCommitQueueDepth =
    "db.commit_queue_depth";
inline constexpr const char *kGaugeShardCount = "shard.count";

// WAL allocation-path split: frames placed by the user-level bump
// allocator in the tail node vs. frames that forced a heap-manager
// node allocation (the Heapo syscall path, Paper §3.3).
inline constexpr const char *kWalBumpAllocs = "wal.bump_allocs";
inline constexpr const char *kWalNodeAllocs = "wal.node_allocs";

// Hot-path pass (DESIGN.md §9). Coalesced lazy sync: flush ranges
// merged away per batch (one cacheLineFlush call per contiguous run
// instead of one per frame) and cache lines the merge stopped from
// being flushed twice.
inline constexpr const char *kWalFlushRangesCoalesced =
    "wal.flush_ranges_coalesced";
inline constexpr const char *kPmemFlushLinesDeduped =
    "pmem.flush_lines_deduped";
// Materialized-page read path: LRU image cache hits/misses and reads
// that started from a logged full-page frame instead of the .db base
// image.
inline constexpr const char *kWalMaterializeCacheHits =
    "wal.materialize_cache_hits";
inline constexpr const char *kWalMaterializeCacheMisses =
    "wal.materialize_cache_misses";
inline constexpr const char *kWalFullFrameShortcuts =
    "wal.full_frame_shortcuts";
// Radix frame index + adaptive granularity (DESIGN.md §14): live
// radix nodes across every per-page frame index (gauge), frames
// shipped as one full page vs. as byte-diffs by the adaptive
// dirty-ratio decision, and the total index work (descent nodes +
// leaves visited + frames applied) the read path paid materializing
// pages -- the deterministic observable behind the long-log
// flatness gate.
inline constexpr const char *kWalFrameIndexNodes =
    "wal.frame_index_nodes";
inline constexpr const char *kWalFullFramesAdaptive =
    "wal.full_frames_adaptive";
inline constexpr const char *kWalDiffFrames = "wal.diff_frames";
inline constexpr const char *kWalFrameScanSteps =
    "wal.frame_scan_steps";
// Ordered checkpoint write-back: pages written per round and pairs of
// consecutive writes whose page numbers ascended (sequentiality for
// the Fig. 8 block-trace story).
inline constexpr const char *kWalCkptPagesWritten =
    "wal.ckpt_pages_written";
inline constexpr const char *kWalCkptSequentialWrites =
    "wal.ckpt_sequential_writes";

// Pager traffic (page-cache effectiveness behind each scheme).
inline constexpr const char *kPagerCacheHits = "pager.cache_hits";
inline constexpr const char *kPagerReads = "pager.page_reads";
inline constexpr const char *kPagerWalReads = "pager.wal_reads";
inline constexpr const char *kPagerWrites = "pager.page_writes";

// Simulated-time accumulators (nanoseconds), updated by the pmem
// layer to break a transaction's ordering-constraint cost into the
// paper's Figure 5 categories.
inline constexpr const char *kTimeMemcpyNs = "time.memcpy_ns";
inline constexpr const char *kTimeFlushNs = "time.cacheline_flush_ns";
inline constexpr const char *kTimeBarrierNs = "time.memory_barrier_ns";
inline constexpr const char *kTimePersistNs = "time.persist_barrier_ns";
inline constexpr const char *kTimeSyscallNs = "time.syscall_ns";
inline constexpr const char *kTimeHeapNs = "time.heap_manager_ns";

// Latency histogram names (sim-time nanoseconds per operation).
inline constexpr const char *kHistCommitNs = "db.commit_ns";
/** Transactions per group-commit batch (a size, not a latency). */
inline constexpr const char *kHistGroupCommitSize =
    "db.group_commit_size";
inline constexpr const char *kHistLogWriteNs = "wal.log_write_ns";
inline constexpr const char *kHistCommitMarkNs = "wal.commit_mark_ns";
inline constexpr const char *kHistCheckpointNs = "wal.checkpoint_ns";
inline constexpr const char *kHistRecoverNs = "wal.recover_ns";
inline constexpr const char *kHistHeapAllocNs = "heap.alloc_ns";
inline constexpr const char *kHistPersistBarrierNs = "pmem.persist_barrier_ns";
/** Sim ns from first PREPARE submit to last DECISION durable. */
inline constexpr const char *kHistShardCrossCommitNs =
    "shard.cross_commit_ns";

/**
 * Per-shard commit-latency histogram label, e.g. "shard.commit_ns.s03".
 * Zero-padded so the registry's lexicographic print order equals
 * shard order in every aggregated stats/metrics dump.
 */
inline std::string
shardCommitHistName(std::uint32_t shard)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "shard.commit_ns.s%02u", shard);
    return std::string(buf);
}

} // namespace stats

} // namespace nvwal

#endif // NVWAL_SIM_STATS_HPP
