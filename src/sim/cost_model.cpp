#include "cost_model.hpp"

namespace nvwal
{

const char *
persistencyModelName(PersistencyModel model)
{
    switch (model) {
      case PersistencyModel::Explicit: return "explicit-flush";
      case PersistencyModel::Strict: return "strict";
      case PersistencyModel::EpochHW: return "epoch-hw";
    }
    return "?";
}

CostModel
CostModel::tuna(SimTime nvram_write_latency_ns)
{
    CostModel m;
    // ARM Cortex-A9 @ 667 MHz-class: the query engine dominates.
    // Anchors: 424 us per 1-insert txn, 5828 us per 32-insert txn
    // (section 5.1), i.e. ~170 us marginal CPU per insert statement
    // and ~230 us fixed per transaction.
    m.cpuTxnNs = 230'000;
    m.cpuOpNs = 170'000;
    m.cpuPerByteNs = 0.5;
    m.memcpyDramNsPerByte = 0.5;
    m.memcpyNvramNsPerByte = 0.6;
    m.cacheLineSize = 32;          // Tuna's L2 line size (section 5)
    m.nvramWriteLatencyNs = nvram_write_latency_ns;
    m.flushIssueNs = 40;
    m.nvramReadNsPerByte = 1.0;
    m.nvramBanks = 5;
    m.memoryBarrierNs = 30;
    m.persistBarrierNs = 1000;     // 1 us of nops (section 5.3)
    m.syscallNs = 1500;            // kernel-mode switch
    m.heapCallNs = 4000;           // Heapo nvmalloc/nvfree
    m.blockSize = 4096;
    // SD-class storage behind the Tuna board for checkpoint targets.
    m.blockProgramNs = 220'000;
    m.blockReadNs = 80'000;
    m.fsyncBaseNs = 1'000'000;
    return m;
}

CostModel
CostModel::nexus5(SimTime nvram_write_latency_ns)
{
    CostModel m;
    // Snapdragon 800 @ 2.26 GHz. Anchor: NVWAL UH+LS+Diff reaches
    // ~5812 tx/s for single-insert transactions at 2 us latency,
    // i.e. ~155 us of latency-independent work per transaction.
    m.cpuTxnNs = 50'000;
    m.cpuOpNs = 75'000;
    m.cpuPerByteNs = 0.2;
    m.memcpyDramNsPerByte = 0.25;
    m.memcpyNvramNsPerByte = 0.3;
    m.cacheLineSize = 64;          // Snapdragon 800 (section 5.4)
    m.nvramWriteLatencyNs = nvram_write_latency_ns;
    m.flushIssueNs = 20;
    m.nvramReadNsPerByte = 1.0;
    // The paper emulates NVRAM latency by inserting nop delays after
    // each clflush, which limits drain overlap; use low parallelism.
    m.nvramBanks = 2;
    m.memoryBarrierNs = 15;
    m.persistBarrierNs = 1000;
    m.syscallNs = 800;
    m.heapCallNs = 2500;
    m.blockSize = 4096;
    // SanDisk iNAND eMMC 4.51 + EXT4 (ordered journal). Anchors:
    // optimized WAL ~541 tx/s, stock WAL below it (section 5.4).
    m.blockProgramNs = 180'000;
    m.blockReadNs = 60'000;
    m.fsyncBaseNs = 960'000;
    return m;
}

} // namespace nvwal
