/**
 * @file
 * Plain-text table rendering for the benchmark harness. Every bench
 * binary prints the rows/series of the paper table or figure it
 * regenerates; TablePrinter keeps that output aligned and consistent.
 */

#ifndef NVWAL_COMMON_TABLE_PRINTER_HPP
#define NVWAL_COMMON_TABLE_PRINTER_HPP

#include <cstdio>
#include <string>
#include <vector>

namespace nvwal
{

/** Column-aligned text table accumulated row by row. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string title) : _title(std::move(title)) {}

    /** Set the header row. */
    void
    setHeader(std::vector<std::string> cells)
    {
        _header = std::move(cells);
    }

    /** Append one data row. */
    void
    addRow(std::vector<std::string> cells)
    {
        _rows.push_back(std::move(cells));
    }

    /** Format a double with the given precision (row-cell helper). */
    static std::string
    num(double v, int precision = 1)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        return buf;
    }

    /** Format an integer (row-cell helper). */
    static std::string
    num(std::uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        return buf;
    }

    /** Render the table to @p out (stdout by default). */
    void print(std::FILE *out = stdout) const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace nvwal

#endif // NVWAL_COMMON_TABLE_PRINTER_HPP
