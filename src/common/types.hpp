/**
 * @file
 * Fundamental type aliases shared by every NVWAL module.
 */

#ifndef NVWAL_COMMON_TYPES_HPP
#define NVWAL_COMMON_TYPES_HPP

#include <cstddef>
#include <cstdint>

namespace nvwal
{

/** Simulated time, in nanoseconds since simulation start. */
using SimTime = std::uint64_t;

/** Byte offset into the NVRAM physical address space. */
using NvOffset = std::uint64_t;

/** Sentinel for "no NVRAM offset" (offset 0 is the heap superblock). */
inline constexpr NvOffset kNullNvOffset = ~static_cast<NvOffset>(0);

/** Database page number. Page numbers start at 1, like SQLite. */
using PageNo = std::uint32_t;

/** Sentinel for "no page". */
inline constexpr PageNo kNoPage = 0;

/** Block number on a block device. */
using BlockNo = std::uint64_t;

/** Record key type used by the B-tree (SQLite rowid analogue). */
using RowId = std::int64_t;

} // namespace nvwal

#endif // NVWAL_COMMON_TYPES_HPP
