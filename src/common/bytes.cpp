#include "bytes.hpp"

#include <cstdio>

namespace nvwal
{

std::string
hexDump(ConstByteSpan bytes, std::size_t max_bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    const std::size_t n = std::min(bytes.size(), max_bytes);
    out.reserve(n * 3 + 8);
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0)
            out += ' ';
        out += digits[bytes[i] >> 4];
        out += digits[bytes[i] & 0xf];
    }
    if (bytes.size() > max_bytes)
        out += " ...";
    return out;
}

} // namespace nvwal
