/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256** with a
 * SplitMix64 seeder). Every stochastic element of the simulator --
 * workload key choice, adversarial cache-survival draws, torn-write
 * injection -- draws from an explicitly seeded Rng so that runs are
 * reproducible.
 */

#ifndef NVWAL_COMMON_RNG_HPP
#define NVWAL_COMMON_RNG_HPP

#include <cstdint>

#include "logging.hpp"

namespace nvwal
{

/** SplitMix64 step, used for seeding and cheap hashing. */
inline std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** xoshiro256** generator. */
class Rng
{
  public:
    explicit
    Rng(std::uint64_t seed = 0x5eed)
    {
        std::uint64_t sm = seed;
        for (auto &word : _state)
            word = splitMix64(sm);
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be positive. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        NVWAL_ASSERT(bound > 0);
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit = ~std::uint64_t(0) - ~std::uint64_t(0) % bound;
        std::uint64_t v;
        do {
            v = next();
        } while (v >= limit);
        return v % bound;
    }

    /** Uniform value in [lo, hi]. */
    std::uint64_t
    nextInRange(std::uint64_t lo, std::uint64_t hi)
    {
        NVWAL_ASSERT(lo <= hi);
        return lo + nextBelow(hi - lo + 1);
    }

    /** Bernoulli draw with probability @p p in [0, 1]. */
    bool
    nextBool(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0) < p;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace nvwal

#endif // NVWAL_COMMON_RNG_HPP
