/**
 * @file
 * Lightweight Status/Result types for recoverable errors.
 *
 * Following the convention of the C++ Core Guidelines, programming
 * errors are handled with NVWAL_ASSERT/NVWAL_PANIC; conditions a
 * caller can reasonably react to (corruption detected during
 * recovery, out of NVRAM space, missing file, ...) are reported
 * through Status.
 */

#ifndef NVWAL_COMMON_STATUS_HPP
#define NVWAL_COMMON_STATUS_HPP

#include <string>
#include <utility>

#include "logging.hpp"

namespace nvwal
{

/** Error categories surfaced through the public API. */
enum class StatusCode
{
    Ok,
    NotFound,      //!< key / file / namespace does not exist
    Corruption,    //!< checksum mismatch or malformed on-media data
    NoSpace,       //!< NVRAM heap or block device exhausted
    Busy,          //!< conflicting transaction in progress
    InvalidArgument,
    IoError,       //!< simulated device failure
    Unsupported,
    Conflict,      //!< optimistic validation failed; retry the txn
};

/** Human-readable name for a status code. */
const char *statusCodeName(StatusCode code);

/**
 * Outcome of a fallible operation: a code plus an optional message.
 * The default-constructed Status is OK.
 */
class Status
{
  public:
    Status() : _code(StatusCode::Ok) {}

    static Status ok() { return Status(); }

    static Status
    error(StatusCode code, std::string msg)
    {
        Status s;
        s._code = code;
        s._message = std::move(msg);
        return s;
    }

    static Status notFound(std::string msg = "not found")
    { return error(StatusCode::NotFound, std::move(msg)); }

    static Status corruption(std::string msg = "corruption")
    { return error(StatusCode::Corruption, std::move(msg)); }

    static Status noSpace(std::string msg = "no space")
    { return error(StatusCode::NoSpace, std::move(msg)); }

    static Status busy(std::string msg = "busy")
    { return error(StatusCode::Busy, std::move(msg)); }

    static Status invalidArgument(std::string msg = "invalid argument")
    { return error(StatusCode::InvalidArgument, std::move(msg)); }

    static Status ioError(std::string msg = "I/O error")
    { return error(StatusCode::IoError, std::move(msg)); }

    static Status unsupported(std::string msg = "unsupported")
    { return error(StatusCode::Unsupported, std::move(msg)); }

    static Status conflict(std::string msg = "write conflict")
    { return error(StatusCode::Conflict, std::move(msg)); }

    bool isOk() const { return _code == StatusCode::Ok; }
    bool isNotFound() const { return _code == StatusCode::NotFound; }
    bool isCorruption() const { return _code == StatusCode::Corruption; }
    bool isBusy() const { return _code == StatusCode::Busy; }
    bool isUnsupported() const { return _code == StatusCode::Unsupported; }
    bool isConflict() const { return _code == StatusCode::Conflict; }

    StatusCode code() const { return _code; }
    const std::string &message() const { return _message; }

    /** Render "code: message" for diagnostics. */
    std::string
    toString() const
    {
        if (isOk())
            return "ok";
        std::string out = statusCodeName(_code);
        if (!_message.empty()) {
            out += ": ";
            out += _message;
        }
        return out;
    }

  private:
    StatusCode _code;
    std::string _message;
};

/** Propagate a non-OK status to the caller. */
#define NVWAL_RETURN_IF_ERROR(expr) \
    do { \
        ::nvwal::Status _nvwal_status = (expr); \
        if (!_nvwal_status.isOk()) \
            return _nvwal_status; \
    } while (0)

/** Abort if a status that must succeed did not (test/bench helper). */
#define NVWAL_CHECK_OK(expr) \
    do { \
        ::nvwal::Status _nvwal_status = (expr); \
        NVWAL_ASSERT(_nvwal_status.isOk(), "status: %s", \
                     _nvwal_status.toString().c_str()); \
    } while (0)

} // namespace nvwal

#endif // NVWAL_COMMON_STATUS_HPP
