#include "status.hpp"

namespace nvwal
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::NotFound: return "not-found";
      case StatusCode::Corruption: return "corruption";
      case StatusCode::NoSpace: return "no-space";
      case StatusCode::Busy: return "busy";
      case StatusCode::InvalidArgument: return "invalid-argument";
      case StatusCode::IoError: return "io-error";
      case StatusCode::Unsupported: return "unsupported";
      case StatusCode::Conflict: return "conflict";
    }
    return "unknown";
}

} // namespace nvwal
