/**
 * @file
 * Little-endian load/store helpers and small byte-buffer utilities.
 *
 * All on-media structures (B-tree pages, WAL frame headers, NVRAM
 * heap metadata) are serialized explicitly through these helpers so
 * the media format is independent of host struct layout.
 */

#ifndef NVWAL_COMMON_BYTES_HPP
#define NVWAL_COMMON_BYTES_HPP

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nvwal
{

/** Mutable view of raw bytes. */
using ByteSpan = std::span<std::uint8_t>;

/** Read-only view of raw bytes. */
using ConstByteSpan = std::span<const std::uint8_t>;

/** Owned byte buffer. */
using ByteBuffer = std::vector<std::uint8_t>;

/**
 * Borrowed value argument for statement APIs: one parameter type that
 * accepts raw byte spans, string_views, std::string and C-string
 * literals without the call sites choosing between duplicate
 * overloads. Non-owning — the referenced bytes must outlive the call,
 * same as a span parameter.
 */
struct ValueView
{
    ValueView(ConstByteSpan bytes) : _bytes(bytes) {}
    ValueView(std::string_view s)
        : _bytes(reinterpret_cast<const std::uint8_t *>(s.data()), s.size())
    {}
    ValueView(const std::string &s) : ValueView(std::string_view(s)) {}
    ValueView(const char *s) : ValueView(std::string_view(s)) {}
    ValueView(const ByteBuffer &b) : _bytes(b.data(), b.size()) {}

    ConstByteSpan span() const { return _bytes; }
    operator ConstByteSpan() const { return _bytes; }
    const std::uint8_t *data() const { return _bytes.data(); }
    std::size_t size() const { return _bytes.size(); }

  private:
    ConstByteSpan _bytes;
};

inline void
storeU16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline std::uint16_t
loadU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0]) |
           static_cast<std::uint16_t>(p[1]) << 8;
}

inline void
storeU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

inline void
storeU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

inline void
storeI64(std::uint8_t *p, std::int64_t v)
{
    storeU64(p, static_cast<std::uint64_t>(v));
}

inline std::int64_t
loadI64(const std::uint8_t *p)
{
    return static_cast<std::int64_t>(loadU64(p));
}

/** Round @p v up to the next multiple of @p align (a power of two). */
inline std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (a power of two). */
inline std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Build an owned buffer from a string literal (test helper). */
inline ByteBuffer
toBytes(const std::string &s)
{
    return ByteBuffer(s.begin(), s.end());
}

/** Render bytes as a short hex string for diagnostics. */
std::string hexDump(ConstByteSpan bytes, std::size_t max_bytes = 64);

/**
 * A half-open dirty byte range [lo, hi) within a page. The empty
 * range is represented by lo >= hi.
 */
struct ByteRange
{
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;

    bool empty() const { return lo >= hi; }
    std::uint32_t size() const { return empty() ? 0 : hi - lo; }

    /** Grow this range to cover [lo, hi) as well. */
    void
    extend(std::uint32_t new_lo, std::uint32_t new_hi)
    {
        if (new_lo >= new_hi)
            return;
        if (empty()) {
            lo = new_lo;
            hi = new_hi;
        } else {
            if (new_lo < lo)
                lo = new_lo;
            if (new_hi > hi)
                hi = new_hi;
        }
    }

    void reset() { lo = 0; hi = 0; }

    bool
    operator==(const ByteRange &other) const
    {
        return (empty() && other.empty()) ||
               (lo == other.lo && hi == other.hi);
    }
};

} // namespace nvwal

#endif // NVWAL_COMMON_BYTES_HPP
