/**
 * @file
 * Checksums used on persistent media.
 *
 * Two flavors are provided:
 *  - fnv1a64(): a simple one-shot hash for heap metadata and tests.
 *  - CumulativeChecksum: the SQLite-WAL style rolling (s1, s2) pair.
 *    Each WAL frame's checksum covers the frame payload *and* all
 *    preceding frames, so recovery can detect any torn or missing
 *    prefix (paper sections 3.2 and 4.2).
 */

#ifndef NVWAL_COMMON_CHECKSUM_HPP
#define NVWAL_COMMON_CHECKSUM_HPP

#include <cstdint>

#include "bytes.hpp"

namespace nvwal
{

/** One-shot FNV-1a 64-bit hash. */
std::uint64_t fnv1a64(ConstByteSpan bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/**
 * Rolling checksum over a sequence of byte chunks, in the style of
 * SQLite's WAL checksum: two 32-bit accumulators mixed per 32-bit
 * word. The pair is serialized as a single 64-bit value (s1 in the
 * low word, s2 in the high word).
 */
class CumulativeChecksum
{
  public:
    CumulativeChecksum() = default;

    /** Resume from a previously serialized value. */
    explicit
    CumulativeChecksum(std::uint64_t serialized)
        : _s1(static_cast<std::uint32_t>(serialized)),
          _s2(static_cast<std::uint32_t>(serialized >> 32))
    {}

    /** Fold a chunk of bytes into the running checksum. */
    void update(ConstByteSpan bytes);

    /** Serialize the running (s1, s2) pair. */
    std::uint64_t
    value() const
    {
        return static_cast<std::uint64_t>(_s1) |
               (static_cast<std::uint64_t>(_s2) << 32);
    }

    void
    reset()
    {
        _s1 = 0;
        _s2 = 0;
    }

  private:
    std::uint32_t _s1 = 0;
    std::uint32_t _s2 = 0;
};

} // namespace nvwal

#endif // NVWAL_COMMON_CHECKSUM_HPP
