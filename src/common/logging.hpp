/**
 * @file
 * Fatal/panic/warn/inform message helpers, in the spirit of gem5's
 * base/logging.hh. panic() marks an internal invariant violation (a
 * bug in this library) and aborts; fatal() marks an unrecoverable
 * user/configuration error and exits cleanly with an error code.
 */

#ifndef NVWAL_COMMON_LOGGING_HPP
#define NVWAL_COMMON_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

namespace nvwal
{

namespace detail
{

[[noreturn]] void assertFail(const char *file, int line, const char *cond,
                             const std::string &msg = std::string());
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort on an internal invariant violation (library bug). */
#define NVWAL_PANIC(...) \
    ::nvwal::detail::panicImpl(__FILE__, __LINE__, \
                               ::nvwal::detail::formatMessage(__VA_ARGS__))

/** Exit on an unrecoverable user error (bad configuration, etc.). */
#define NVWAL_FATAL(...) \
    ::nvwal::detail::fatalImpl(__FILE__, __LINE__, \
                               ::nvwal::detail::formatMessage(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define NVWAL_WARN(...) \
    ::nvwal::detail::warnImpl(__FILE__, __LINE__, \
                              ::nvwal::detail::formatMessage(__VA_ARGS__))

/** Report normal operational status. */
#define NVWAL_INFORM(...) \
    ::nvwal::detail::informImpl(::nvwal::detail::formatMessage(__VA_ARGS__))

/** Assert an invariant that must hold regardless of user input. */
#define NVWAL_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::nvwal::detail::assertFail( \
                __FILE__, __LINE__, #cond \
                __VA_OPT__(, ::nvwal::detail::formatMessage(__VA_ARGS__))); \
        } \
    } while (0)

} // namespace nvwal

#endif // NVWAL_COMMON_LOGGING_HPP
