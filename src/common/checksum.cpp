#include "checksum.hpp"

namespace nvwal
{

std::uint64_t
fnv1a64(ConstByteSpan bytes, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
CumulativeChecksum::update(ConstByteSpan bytes)
{
    // Whole 32-bit words first, SQLite style: s1 += word + s2;
    // s2 += word + s1. A trailing partial word is zero-padded.
    std::size_t i = 0;
    const std::size_t n = bytes.size();
    while (i + 4 <= n) {
        const std::uint32_t word = loadU32(bytes.data() + i);
        _s1 += word + _s2;
        _s2 += word + _s1;
        i += 4;
    }
    if (i < n) {
        std::uint8_t tail[4] = {0, 0, 0, 0};
        for (std::size_t j = 0; i + j < n; ++j)
            tail[j] = bytes[i + j];
        const std::uint32_t word = loadU32(tail);
        _s1 += word + _s2;
        _s2 += word + _s1;
    }
}

} // namespace nvwal
