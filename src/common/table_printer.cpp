#include "table_printer.hpp"

#include <algorithm>

namespace nvwal
{

void
TablePrinter::print(std::FILE *out) const
{
    // Compute column widths across header and all rows.
    std::size_t ncols = _header.size();
    for (const auto &row : _rows)
        ncols = std::max(ncols, row.size());
    std::vector<std::size_t> widths(ncols, 0);
    auto account = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    account(_header);
    for (const auto &row : _rows)
        account(row);

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;

    std::fprintf(out, "\n== %s ==\n", _title.c_str());
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            std::fprintf(out, "%-*s", static_cast<int>(widths[i] + 2),
                         row[i].c_str());
        }
        std::fprintf(out, "\n");
    };
    if (!_header.empty()) {
        emit(_header);
        for (std::size_t i = 0; i < total; ++i)
            std::fputc('-', out);
        std::fputc('\n', out);
    }
    for (const auto &row : _rows)
        emit(row);
}

} // namespace nvwal
