#include "logging.hpp"

#include <cstdarg>
#include <cstdio>

namespace nvwal
{
namespace detail
{

std::string
formatMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

void
assertFail(const char *file, int line, const char *cond,
           const std::string &msg)
{
    std::fprintf(stderr, "panic: assertion '%s' failed. %s (%s:%d)\n",
                 cond, msg.c_str(), file, line);
    std::abort();
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace nvwal
