/**
 * @file
 * Persistence primitives over the NVRAM device model, with cost
 * accounting (section 4 of the paper).
 *
 * The primitives mirror the paper's ARM implementation:
 *  - memcpyToNvram()  -- plain stores into NVRAM-mapped memory.
 *  - cacheLineFlush() -- the cache_line_flush() *system call* of
 *    Algorithm 2: one kernel-mode switch per call, then a loop of
 *    non-blocking dccmvac instructions over [start, end).
 *  - memoryBarrier()  -- dmb; completes only when all previously
 *    issued flushes have drained.
 *  - persistBarrier() -- pcommit-like; makes queued lines durable
 *    (emulated as a 1 us delay in the paper, section 5.3).
 *
 * Timing model for flush drains: each dccmvac completes at
 *   max(issue_time + latency, previous_completion + latency / banks)
 * so a *batch* of flushes (lazy synchronization) pipelines across
 * NVRAM banks, while flush-then-fence sequences (eager
 * synchronization) pay the full media latency serially. This is the
 * mechanism behind Figure 5's lazy-vs-eager gap.
 */

#ifndef NVWAL_PMEM_PMEM_HPP
#define NVWAL_PMEM_PMEM_HPP

#include <mutex>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "nvram/nvram_device.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "sim/stats.hpp"

namespace nvwal
{

/** Cost-accounted persistence primitives bound to one NVRAM device. */
class Pmem
{
  public:
    Pmem(NvramDevice &device, SimClock &clock, const CostModel &cost,
         MetricsRegistry &stats)
        : _device(device), _clock(clock), _cost(cost), _stats(stats),
          _persistHist(stats.histogram(stats::kHistPersistBarrierNs))
    {}

    NvramDevice &device() { return _device; }
    const CostModel &cost() const { return _cost; }
    SimClock &clock() { return _clock; }
    MetricsRegistry &stats() { return _stats; }

    /** Store @p src at NVRAM offset @p dst (cached, not persistent). */
    void memcpyToNvram(NvOffset dst, ConstByteSpan src);

    /** Store a single 8-byte value (the atomic-write unit, §4.1). */
    void storeU64(NvOffset dst, std::uint64_t value);

    /**
     * Read @p out.size() bytes at @p src, charging the NVRAM media
     * read cost. Bulk log-read paths (recovery, reconstruction) use
     * this; metadata peeks at cached lines go through the device
     * directly.
     */
    void readFromNvram(NvOffset src, ByteSpan out);

    /**
     * cache_line_flush() system call: flush every cache line
     * overlapping [start, end). Non-blocking; pair with
     * memoryBarrier() to wait for the drain.
     */
    void cacheLineFlush(NvOffset start, NvOffset end);

    /** dmb: wait until all issued flushes have drained. */
    void memoryBarrier();

    /** Persist barrier: make drained lines durable. */
    void persistBarrier();

    /**
     * Eager-synchronization helper (Figure 4(b)): flush [start, end),
     * fence, persist. Used per log entry by the 'E' configuration.
     */
    void persistRangeEager(NvOffset start, NvOffset end);

    /** The active persistency model (section 4.4). */
    PersistencyModel persistencyModel() const { return _cost.persistency; }

  private:
    /** Strict persistency: drain the just-stored range in order. */
    void strictDrain(NvOffset start, NvOffset end);

    /** EpochHW: close the current persist epoch. */
    void epochBoundary();
    NvramDevice &_device;
    SimClock &_clock;
    const CostModel &_cost;
    MetricsRegistry &_stats;
    /** Per-call persist-barrier latency (sim ns); registry-owned. */
    Histogram &_persistHist;

    /**
     * Guards _lastFlushCompletion (the only mutable Pmem state):
     * sharded engines share one Pmem, so concurrent flush batches
     * must schedule their drains against a consistent bank timeline.
     */
    std::mutex _mu;

    /** Completion time of the most recently scheduled flush. */
    SimTime _lastFlushCompletion = 0;
};

} // namespace nvwal

#endif // NVWAL_PMEM_PMEM_HPP
