#include "pmem.hpp"

namespace nvwal
{

void
Pmem::memcpyToNvram(NvOffset dst, ConstByteSpan src)
{
    const SimTime ns = static_cast<SimTime>(
        _cost.memcpyNvramNsPerByte * static_cast<double>(src.size()));
    _clock.advance(ns);
    _stats.add(stats::kTimeMemcpyNs, ns);
    _device.write(dst, src);
    if (_cost.persistency == PersistencyModel::Strict)
        strictDrain(dst, dst + src.size());
}

void
Pmem::storeU64(NvOffset dst, std::uint64_t value)
{
    NVWAL_ASSERT(dst % 8 == 0, "atomic u64 store must be 8-byte aligned");
    const SimTime ns =
        static_cast<SimTime>(_cost.memcpyNvramNsPerByte * 8.0);
    _clock.advance(ns);
    _stats.add(stats::kTimeMemcpyNs, ns);
    _device.writeU64(dst, value);
    if (_cost.persistency == PersistencyModel::Strict)
        strictDrain(dst, dst + 8);
}

void
Pmem::readFromNvram(NvOffset src, ByteSpan out)
{
    const SimTime ns = static_cast<SimTime>(
        _cost.nvramReadNsPerByte * static_cast<double>(out.size()));
    _clock.advance(ns);
    _stats.add(stats::kNvramBytesRead, out.size());
    _device.read(src, out);
}

void
Pmem::strictDrain(NvOffset start, NvOffset end)
{
    // Strict persistency: the store may not retire until it is
    // durable, so every touched line pays the full media latency,
    // serialized (section 4.4's conjectured cost).
    const std::uint64_t line = _cost.cacheLineSize;
    std::uint64_t lines = 0;
    for (NvOffset mva = alignDown(start, line); mva < end; mva += line) {
        _device.flushLine(mva);
        ++lines;
    }
    _device.drainPersistQueue();
    const SimTime ns = lines * _cost.nvramWriteLatencyNs;
    _clock.advance(ns);
    _stats.add(stats::kTimeFlushNs, ns);
}

void
Pmem::epochBoundary()
{
    // Hardware epoch barrier: the memory system flushes its own
    // write-set -- no software flush loop, no kernel crossing --
    // and drains it with full bank parallelism.
    const std::size_t lines = _device.flushAllDirtyLines();
    _device.drainPersistQueue();
    if (lines > 0) {
        const unsigned banks = _cost.nvramBanks == 0 ? 1
                                                     : _cost.nvramBanks;
        const SimTime ns = _cost.nvramWriteLatencyNs +
                           lines * _cost.nvramWriteLatencyNs / banks;
        _clock.advance(ns);
        _stats.add(stats::kTimeBarrierNs, ns);
    }
}

void
Pmem::cacheLineFlush(NvOffset start, NvOffset end)
{
    std::lock_guard<std::mutex> g(_mu);
    NVWAL_ASSERT(start <= end, "bad flush range");
    if (_cost.persistency != PersistencyModel::Explicit) {
        // With hardware persistency support, software cache flushes
        // "can be safely removed" (section 4.4): compile to nothing.
        return;
    }
    TraceSpan span(_stats.tracer(), "pmem.cacheline_flush", "pmem",
                   "bytes", end - start);
    // Kernel-mode switch: the flush loop runs in a system call
    // because dccmvac needs privileged register access (section 4).
    _clock.advance(_cost.syscallNs);
    _stats.add(stats::kTimeSyscallNs, _cost.syscallNs);
    _stats.add(stats::kFlushSyscalls);

    const std::uint64_t line = _cost.cacheLineSize;
    NvOffset mva = alignDown(start, line);
    const unsigned banks = _cost.nvramBanks == 0 ? 1 : _cost.nvramBanks;
    while (mva < end) {
        _clock.advance(_cost.flushIssueNs);
        _stats.add(stats::kTimeFlushNs, _cost.flushIssueNs);
        _device.flushLine(mva);
        // Schedule the asynchronous drain of this line.
        const SimTime earliest = _clock.now() + _cost.nvramWriteLatencyNs;
        const SimTime bank_slot =
            _lastFlushCompletion + _cost.nvramWriteLatencyNs / banks;
        _lastFlushCompletion = std::max(earliest, bank_slot);
        mva += line;
    }
}

void
Pmem::memoryBarrier()
{
    std::lock_guard<std::mutex> g(_mu);
    TraceSpan span(_stats.tracer(), "pmem.memory_barrier", "pmem");
    _clock.advance(_cost.memoryBarrierNs);
    _stats.add(stats::kTimeBarrierNs, _cost.memoryBarrierNs);
    _stats.add(stats::kMemoryBarriers);
    switch (_cost.persistency) {
      case PersistencyModel::Explicit:
        if (_lastFlushCompletion > _clock.now()) {
            const SimTime wait = _lastFlushCompletion - _clock.now();
            _clock.advanceTo(_lastFlushCompletion);
            _stats.add(stats::kTimeBarrierNs, wait);
        }
        break;
      case PersistencyModel::Strict:
        // Stores already drained in order; nothing outstanding.
        break;
      case PersistencyModel::EpochHW:
        // The barrier delimits a persist epoch (section 4.4).
        epochBoundary();
        break;
    }
}

void
Pmem::persistBarrier()
{
    std::lock_guard<std::mutex> g(_mu);
    TraceSpan span(_stats.tracer(), "pmem.persist_barrier", "pmem");
    const SimTime begin = _clock.now();
    if (_cost.persistency != PersistencyModel::Explicit) {
        // Hardware persistency needs no pcommit-style instruction;
        // ordering and durability are the memory system's job. For
        // EpochHW the preceding memoryBarrier() already closed the
        // epoch; drain anything a barrier-less caller left behind.
        if (_cost.persistency == PersistencyModel::EpochHW)
            epochBoundary();
        _device.drainPersistQueue();
        _persistHist.record(_clock.now() - begin);
        return;
    }
    // A persist barrier only has defined semantics once preceding
    // flushes are complete (Algorithm 1 always fences first); be
    // conservative and absorb any remaining drain time here.
    if (_lastFlushCompletion > _clock.now()) {
        const SimTime wait = _lastFlushCompletion - _clock.now();
        _clock.advanceTo(_lastFlushCompletion);
        _stats.add(stats::kTimePersistNs, wait);
    }
    _clock.advance(_cost.persistBarrierNs);
    _stats.add(stats::kTimePersistNs, _cost.persistBarrierNs);
    _stats.add(stats::kPersistBarriers);
    _device.drainPersistQueue();
    _persistHist.record(_clock.now() - begin);
}

void
Pmem::persistRangeEager(NvOffset start, NvOffset end)
{
    memoryBarrier();
    cacheLineFlush(start, end);
    memoryBarrier();
    persistBarrier();
}

} // namespace nvwal
