#include "inspect.hpp"

#include "btree/page_view.hpp"
#include "common/checksum.hpp"
#include "common/table_printer.hpp"
#include "core/nvwal_log.hpp"

namespace nvwal
{

Status
collectNvwalMediaReport(Env &env, std::uint32_t page_size,
                        NvwalMediaReport *out,
                        const std::string &heap_namespace)
{
    *out = NvwalMediaReport{};
    out->heapBlocksFree = env.heap.countBlocks(BlockState::Free);
    out->heapBlocksPending = env.heap.countBlocks(BlockState::Pending);
    out->heapBlocksInUse = env.heap.countBlocks(BlockState::InUse);

    NvOffset header_off;
    const Status root = env.heap.getRoot(heap_namespace, &header_off);
    if (root.isNotFound())
        return Status::ok();  // no log on this media
    NVWAL_RETURN_IF_ERROR(root);

    NvramDevice &dev = env.nvramDevice;
    if (dev.readU64(header_off) != NvwalLog::kMagic)
        return Status::corruption("NVWAL header magic mismatch");
    out->logPresent = true;
    out->checkpointId = dev.readU64(header_off + 16);

    // Walk the node chain, mirroring the frame format of
    // core/nvwal_log.hpp (independent implementation, see header).
    CumulativeChecksum chain;
    ByteBuffer payload(page_size);
    NvOffset node = dev.readU64(header_off + 24);
    bool chain_broken = false;
    // Frames without a commit word are committed *by coverage* when
    // a later frame in the chain carries one (a multi-frame
    // transaction marks only its last frame).
    std::uint64_t pending_run = 0;
    while (node != kNullNvOffset) {
        NodeInfo info;
        info.offset = node;
        info.state = env.heap.blockStateAt(node);
        if (info.state != BlockState::InUse) {
            // Dangling reference (pre-recovery media); stop here.
            out->nodes.push_back(std::move(info));
            break;
        }
        info.capacity =
            env.heap.extentBlocksAt(node) * env.heap.blockSize();

        std::uint32_t pos = NvwalLog::kNodeHeaderSize;
        while (pos + NvwalLog::kFrameHeaderSize <= info.capacity) {
            std::uint8_t h[NvwalLog::kFrameHeaderSize];
            dev.read(node + pos, ByteSpan(h, sizeof(h)));
            const PageNo page_no = loadU32(h);
            const std::uint16_t page_off = loadU16(h + 4);
            const std::uint16_t size = loadU16(h + 6);
            const std::uint64_t commit_word = loadU64(h + 8);
            const std::uint64_t ckpt_id = loadU64(h + 16);
            if (size == 0 || page_no == kNoPage ||
                static_cast<std::uint32_t>(page_off) + size > page_size ||
                pos + NvwalLog::kFrameHeaderSize + size > info.capacity ||
                ckpt_id != out->checkpointId) {
                break;  // end of this node's frames
            }
            dev.read(node + pos + NvwalLog::kFrameHeaderSize,
                     ByteSpan(payload.data(), size));

            FrameInfo frame;
            frame.offset = node + pos;
            frame.pageNo = page_no;
            frame.pageOffset = page_off;
            frame.size = size;
            frame.committed = commit_word != 0;
            frame.dbSizePages = static_cast<std::uint32_t>(
                commit_word & ~NvwalLog::kCommitFlag);
            frame.isControl = page_no == NvwalLog::kControlPage;
            if (frame.isControl &&
                size == NvwalLog::kControlPayloadSize &&
                loadU32(payload.data()) == NvwalLog::kControlMagic) {
                frame.ctrlType = loadU32(payload.data() + 4);
                frame.gtid = loadU64(payload.data() + 8);
            }

            CumulativeChecksum attempt = chain;
            attempt.update(ConstByteSpan(h, 8));
            attempt.update(ConstByteSpan(h + 16, 8));
            attempt.update(ConstByteSpan(payload.data(), size));
            frame.checksumValid =
                !chain_broken && attempt.value() == loadU64(h + 24);
            if (frame.checksumValid) {
                chain = attempt;
                if (frame.isControl) {
                    // 2PC record: a marked PREPARE stages the data
                    // frames it covers (durable, invisible until a
                    // decision); decisions carry no data run.
                    if (frame.committed &&
                        frame.ctrlType == NvwalLog::kCtrlPrepare) {
                        out->prepareRecords++;
                        out->stagedFrames += pending_run;
                        pending_run = 0;
                    } else if (frame.committed) {
                        out->decisionRecords++;
                    }
                } else if (frame.committed) {
                    out->committedFrames += pending_run + 1;
                    pending_run = 0;
                } else {
                    ++pending_run;
                }
                out->bytesUsed += NvwalLog::kFrameHeaderSize + size;
            } else {
                out->tornFrames++;
                chain_broken = true;
            }
            info.frames.push_back(frame);
            if (chain_broken)
                break;
            pos = static_cast<std::uint32_t>(
                alignUp(pos + NvwalLog::kFrameHeaderSize + size, 8));
        }
        out->nodes.push_back(std::move(info));
        if (chain_broken)
            break;
        node = dev.readU64(node);
    }
    out->uncommittedFrames = pending_run;
    return Status::ok();
}

Status
collectDatabaseReport(Database &db, DatabaseReport *out)
{
    *out = DatabaseReport{};
    out->pageSize = db.pager().pageSize();
    out->reservedBytes = db.pager().reservedBytes();
    out->pageCount = db.pager().pageCount();
    out->freePages = db.pager().freePageCount();
    out->walFramesSinceCheckpoint = db.wal().framesSinceCheckpoint();

    std::vector<std::string> names;
    NVWAL_RETURN_IF_ERROR(db.listTables(&names));
    for (const std::string &name : names) {
        Table *table;
        NVWAL_RETURN_IF_ERROR(db.openTable(name, &table));
        TableInfo info;
        info.name = name;
        info.root = table->btree().rootPage();
        NVWAL_RETURN_IF_ERROR(table->count(&info.rows));
        NVWAL_RETURN_IF_ERROR(table->btree().depth(&info.depth));
        out->tables.push_back(std::move(info));
    }
    return Status::ok();
}

void
printNvwalMediaReport(const NvwalMediaReport &report, std::FILE *out)
{
    std::fprintf(out,
                 "NVWAL media: %s, checkpoint epoch %llu\n"
                 "heap blocks: %llu in-use, %llu pending, %llu free\n"
                 "frames: %llu committed, %llu uncommitted, %llu torn; "
                 "%llu bytes in %zu nodes\n",
                 report.logPresent ? "log present" : "no log",
                 static_cast<unsigned long long>(report.checkpointId),
                 static_cast<unsigned long long>(report.heapBlocksInUse),
                 static_cast<unsigned long long>(report.heapBlocksPending),
                 static_cast<unsigned long long>(report.heapBlocksFree),
                 static_cast<unsigned long long>(report.committedFrames),
                 static_cast<unsigned long long>(report.uncommittedFrames),
                 static_cast<unsigned long long>(report.tornFrames),
                 static_cast<unsigned long long>(report.bytesUsed),
                 report.nodes.size());
    if (report.prepareRecords + report.decisionRecords +
            report.stagedFrames !=
        0) {
        std::fprintf(out,
                     "2PC: %llu prepare record(s), %llu decision "
                     "record(s), %llu staged frame(s)\n",
                     static_cast<unsigned long long>(report.prepareRecords),
                     static_cast<unsigned long long>(
                         report.decisionRecords),
                     static_cast<unsigned long long>(report.stagedFrames));
    }

    TablePrinter frames("log frames");
    frames.setHeader({"node", "offset", "page", "in-page", "bytes",
                      "state"});
    for (std::size_t n = 0; n < report.nodes.size(); ++n) {
        for (const FrameInfo &f : report.nodes[n].frames) {
            std::string state = !f.checksumValid ? "TORN"
                                : f.committed    ? "commit"
                                                 : "pending";
            if (f.isControl && f.checksumValid) {
                const char *kind =
                    f.ctrlType == NvwalLog::kCtrlPrepare  ? "PREPARE"
                    : f.ctrlType == NvwalLog::kCtrlCommit ? "COMMIT"
                    : f.ctrlType == NvwalLog::kCtrlAbort  ? "ABORT"
                                                          : "ctrl?";
                state = std::string(kind) + " gtid=" +
                        std::to_string(f.gtid) +
                        (f.committed ? "" : " (unmarked)");
            }
            frames.addRow({TablePrinter::num(std::uint64_t(n)),
                           TablePrinter::num(std::uint64_t(f.offset)),
                           f.isControl
                               ? "ctrl"
                               : TablePrinter::num(std::uint64_t(f.pageNo)),
                           TablePrinter::num(std::uint64_t(f.pageOffset)),
                           TablePrinter::num(std::uint64_t(f.size)),
                           state});
        }
    }
    frames.print(out);
}

void
printDatabaseReport(const DatabaseReport &report, std::FILE *out)
{
    std::fprintf(out,
                 "database: %u pages x %u bytes (%u reserved), "
                 "%u on free list, %llu WAL frames since checkpoint\n",
                 report.pageCount, report.pageSize, report.reservedBytes,
                 report.freePages,
                 static_cast<unsigned long long>(
                     report.walFramesSinceCheckpoint));
    TablePrinter tables("tables");
    tables.setHeader({"name", "root", "rows", "depth"});
    for (const TableInfo &t : report.tables) {
        tables.addRow({t.name, TablePrinter::num(std::uint64_t(t.root)),
                       TablePrinter::num(t.rows),
                       TablePrinter::num(std::uint64_t(t.depth))});
    }
    tables.print(out);
}

Status
printPage(Pager &pager, PageNo page_no, std::FILE *out)
{
    CachedPage *page;
    NVWAL_RETURN_IF_ERROR(pager.getPage(page_no, &page));
    PageView view(page->span(), pager.usableSize(), nullptr);
    NVWAL_RETURN_IF_ERROR(view.validate());

    const char *type = view.type() == PageView::kTypeLeaf ? "leaf"
                       : view.type() == PageView::kTypeInterior
                           ? "interior"
                           : "uninitialized";
    std::fprintf(out,
                 "page %u: %s, %d cells, content start %u, free %u "
                 "(gap %u + freeblocks %u + frag %u)\n",
                 page_no, type, view.nCells(), view.cellContentStart(),
                 view.freeBytes(), view.gapBytes(), view.freeblockBytes(),
                 view.fragmentedBytes());
    if (view.type() == PageView::kTypeNone)
        return Status::ok();

    TablePrinter cells("cells");
    if (view.isLeaf()) {
        cells.setHeader({"idx", "key", "len", "overflow"});
        for (int i = 0; i < view.nCells(); ++i) {
            cells.addRow(
                {TablePrinter::num(std::uint64_t(i)),
                 std::to_string(view.keyAt(i)),
                 TablePrinter::num(std::uint64_t(view.leafTotalLen(i))),
                 view.leafHasOverflow(i)
                     ? "page " + std::to_string(view.leafOverflowPage(i))
                     : "-"});
        }
    } else {
        cells.setHeader({"idx", "key", "child"});
        for (int i = 0; i < view.nCells(); ++i) {
            cells.addRow({TablePrinter::num(std::uint64_t(i)),
                          std::to_string(view.keyAt(i)),
                          TablePrinter::num(
                              std::uint64_t(view.childAt(i)))});
        }
        cells.addRow({"-", "(rightmost)",
                      TablePrinter::num(std::uint64_t(view.rightChild()))});
    }
    cells.print(out);
    return Status::ok();
}

void
printCounters(const MetricsRegistry &stats, std::FILE *out)
{
    // StatsSnapshot is a std::map, so iteration is already the
    // documented ascending lexicographic key order.
    for (const auto &[name, value] : stats.snapshot()) {
        std::fprintf(out, "%-28s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
    }
}

void
printHistograms(const MetricsRegistry &stats, std::FILE *out)
{
    for (const auto &[name, hist] : stats.histogramsSnapshot()) {
        if (hist.count() == 0)
            continue;
        std::fprintf(out,
                     "%-28s n=%llu mean=%.0fns p50=%lluns p95=%lluns "
                     "p99=%lluns max=%lluns\n",
                     name.c_str(),
                     static_cast<unsigned long long>(hist.count()),
                     hist.mean(),
                     static_cast<unsigned long long>(hist.p50()),
                     static_cast<unsigned long long>(hist.p95()),
                     static_cast<unsigned long long>(hist.p99()),
                     static_cast<unsigned long long>(hist.max()));
    }
}

} // namespace nvwal
