/**
 * @file
 * NVRAM flight recorder: a persistent telemetry ring that survives
 * power failure (DESIGN.md §12, docs/FORMAT.md §7).
 *
 * The engine appends compact 40-byte binary records — transaction
 * begin/ack, hardens with epoch + commit-mark counts, checkpoint
 * round start/end, truncations, group-commit batch sizes, 2PC
 * PREPARE/DECISION, periodic counter snapshots — into a fixed-size
 * ring carved out of the NVRAM heap under its own namespace, next to
 * the WAL. Records are written with plain stores and a per-record
 * checksum and are NEVER flushed or fenced on any commit path: the
 * paper's §3.2 argument (unbarriered stores are free, only ordering
 * points cost) applied to telemetry. Durability is therefore
 * best-effort — whatever the cache hierarchy happened to retire
 * survives a crash, torn tail records are detected and discarded by
 * checksum exactly like §3.2 commit marks — but every record's claim
 * is evaluated at write time, so any surviving checksum-valid record
 * states a fact that was true when it was stored. Surviving records
 * are re-persisted eagerly when the ring is re-attached after a
 * crash (recovery path, off every measured path).
 *
 * On recovery the surviving ring is parsed into a RecoveryReport — a
 * structured post-mortem exposing the last durable epoch, the
 * transactions possibly in flight at the crash, checkpoint lag, and
 * cross-checks of every durable-claim record against the recovered
 * WAL (`nvwal_inspect --forensics`, `nvwal_shell forensics`, and the
 * crash-sweep harness all consume it).
 */

#ifndef NVWAL_DB_FLIGHT_RECORDER_HPP
#define NVWAL_DB_FLIGHT_RECORDER_HPP

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "heap/nv_heap.hpp"
#include "pmem/pmem.hpp"
#include "sim/stats.hpp"

namespace nvwal
{

/** Record types in the flight-recorder ring (docs/FORMAT.md §7). */
enum class FrRecordType : std::uint8_t
{
    /** Recovery completed and the recorder re-attached; delimits the
     *  current incarnation's records. a32=checkpoint round,
     *  a64=recovered commit marks, b64=frames since checkpoint. */
    RecorderOpen = 1,
    /** A transaction began. a64=txn sequence number. */
    TxnBegin = 2,
    /** A commit was acked. a16=Durability (0 sync / 1 group /
     *  2 async), a32=checkpoint round, a64=txn sequence,
     *  b64=durable commit marks (durable claim) or async epoch. */
    CommitAck = 3,
    /** A harden (persist-barrier ordering point) completed.
     *  a16=reason, a32=checkpoint round, a64=hardened commit marks,
     *  b64=newest hardened epoch. Always a durable claim. */
    Harden = 4,
    /** Checkpoint round started. a16=1 full / 0 incremental step,
     *  a32=checkpoint round, a64=frames since checkpoint. */
    CheckpointStart = 5,
    /** Checkpoint round finished. a16=1 when the round completed
     *  (0 = incremental step with work left), a32=checkpoint round
     *  after, a64=frames since checkpoint after. */
    CheckpointEnd = 6,
    /** The WAL truncated. a32=new checkpoint round, a64=commit marks
     *  at truncation, b64=previous round. Durable claim. */
    Truncation = 7,
    /** A group-commit batch was appended. a32=batch size,
     *  a64=newest txn sequence in the batch. */
    GroupBatch = 8,
    /** 2PC PREPARE persisted. a32=checkpoint round, a64=global txn
     *  id. Durable claim (2PC control frames harden eagerly). */
    Prepare = 9,
    /** 2PC DECISION persisted. a16=1 commit / 0 abort,
     *  a32=checkpoint round, a64=global txn id. Durable claim. */
    Decision = 10,
    /** Periodic counter sample. a32=FNV-1a 32-bit hash of the
     *  canonical counter name, a64=value, b64=txn sequence. */
    CounterSnapshot = 11,
    /** A multi-writer group harden across all per-connection logs
     *  completed (DESIGN.md §13). a16=reason, a32=merge generation,
     *  a64=published epoch floor at the barrier, b64=hardened epoch
     *  floor after. Always a durable claim — commit epochs are
     *  absolute across reboots, so the recovered merge horizon must
     *  never fall below b64. */
    MwHarden = 12,
    /** One per-connection log's deferred ranges entered the group
     *  flush batch. a16=log slot, a64=that log's newest flushed
     *  (candidate) epoch, b64=its commit seq. Not durable — the
     *  shared barrier had not run when this was stored. */
    MwLogHarden = 13,
    /** A per-connection log truncated after its epochs were merged or
     *  checkpointed. a16=log slot, a32=merge generation, a64=epoch
     *  base covered by the truncation, b64=the log's new checkpoint
     *  round. Durable claim (the epoch base persisted first). */
    MwTruncation = 14,
};

/** Reason codes for FrRecordType::Harden (a16). */
enum class FrHardenReason : std::uint16_t
{
    StrictRun = 0,     //!< sync/group run hardened inline
    WindowEpochs = 1,  //!< asyncMaxEpochs window forced a harden
    WindowStaleness = 2, //!< asyncMaxStalenessNs forced a harden
    Explicit = 3,      //!< flushAsyncCommits()/waitForAsyncEpoch()
    Checkpoint = 4,    //!< checkpoint merged pending async ranges
    Background = 5,    //!< background durability thread
};

/** Bit in FrRecord::flags: the record's claim was already durable
 *  (written after the persist barrier that made it true). */
inline constexpr std::uint8_t kFrFlagDurableClaim = 0x1;

/** One decoded ring record. Field meaning depends on type. */
struct FrRecord
{
    std::uint64_t seq = 0;   //!< monotonic across incarnations
    std::uint8_t type = 0;   //!< FrRecordType
    std::uint8_t flags = 0;
    std::uint16_t a16 = 0;
    std::uint32_t a32 = 0;
    std::uint64_t a64 = 0;
    std::uint64_t b64 = 0;

    bool durableClaim() const { return (flags & kFrFlagDurableClaim) != 0; }
};

/** Parse result: every checksum-valid record surviving in the ring. */
struct FlightRecording
{
    static constexpr std::size_t kNoIndex = ~static_cast<std::size_t>(0);

    bool present = false;          //!< header found and valid
    std::uint32_t capacity = 0;    //!< slots in the ring
    std::uint32_t shard = 0;       //!< shard id stamped at creation
    std::uint64_t nextSeq = 0;     //!< max valid seq + 1 (0 = empty)
    std::uint64_t validRecords = 0;
    std::uint64_t tornSlots = 0;   //!< nonzero slots failing checksum
    std::uint64_t wraps = 0;       //!< completed laps (from max seq)
    std::vector<FrRecord> records; //!< ascending seq
    /** Index of the newest RecorderOpen record, kNoIndex if none
     *  survived (the incarnation boundary is then unknown). */
    std::size_t lastOpenIndex = kNoIndex;
};

/**
 * The persistent ring itself. All mutating calls happen under the
 * owning Database's engine lock (single-threaded per ring); the heap
 * and pmem layers carry their own locks for the shared-Env case.
 */
class FlightRecorder
{
  public:
    static constexpr std::uint64_t kMagic = 0x3152464c4157564eULL; // "NVWALFR1"
    static constexpr std::uint32_t kVersion = 1;
    static constexpr std::uint32_t kHeaderSize = 64;
    static constexpr std::uint32_t kRecordSize = 40;
    static constexpr std::uint32_t kMinCapacity = 16;

    FlightRecorder(NvHeap &heap, Pmem &pmem, MetricsRegistry &stats,
                   std::string heap_namespace, std::uint32_t capacity,
                   std::uint32_t shard = 0);

    /**
     * Attach to an existing ring under the namespace (parsing the
     * surviving records into @p parsed, scrubbing torn slots, and
     * re-persisting the region eagerly) or create a fresh one. A
     * missing namespace slot — e.g. all 64 heap namespace slots taken
     * — disables the recorder and returns the heap's error; the
     * engine treats that as "recorder off", never as a failed open.
     */
    Status openOrCreate(FlightRecording *parsed);

    bool ready() const { return _ready; }

    /** Append one record with plain stores only (no flush, no
     *  barrier, no heap call — exactly one NVRAM memcpy). */
    void append(FrRecordType type, std::uint8_t flags, std::uint16_t a16,
                std::uint32_t a32, std::uint64_t a64, std::uint64_t b64);

    /**
     * Flush + fence + persist the whole region. Never called from
     * commit, harden, group-commit or checkpoint paths — only from
     * tests and tools that want a durable cut of the telemetry.
     */
    void publish();

    std::uint32_t capacity() const { return _capacity; }
    std::uint64_t nextSeq() const { return _nextSeq; }
    const std::string &heapNamespace() const { return _namespace; }

    /** Ring heap namespace derived from the WAL's ("nvwal" ->
     *  "nvwal-fr", "nvwal-s03" -> "nvwal-s03-fr"). */
    static std::string namespaceFor(const std::string &wal_namespace);

    /**
     * Read and parse a ring under @p heap_namespace without a
     * recorder instance (offline media walker for nvwal_inspect;
     * same decoding as openOrCreate, no scrub, no re-persist).
     * NotFound when the namespace was never bound.
     */
    static Status collect(const NvHeap &heap, Pmem &pmem,
                          const std::string &heap_namespace,
                          FlightRecording *out);

  private:
    Status createRing();
    Status attachRing(FlightRecording *parsed);
    /** @p torn_slots, when non-null, collects the slot indexes whose
     *  contents failed the checksum (attach scrubs them). */
    static Status parseRing(Pmem &pmem, NvOffset root,
                            FlightRecording *out,
                            std::vector<std::uint32_t> *torn_slots);

    NvHeap &_heap;
    Pmem &_pmem;
    MetricsRegistry &_stats;
    std::string _namespace;
    std::uint32_t _capacity;
    std::uint32_t _shard;
    NvOffset _root = kNullNvOffset;
    std::uint64_t _nextSeq = 0;
    bool _ready = false;
};

/** FNV-1a 32-bit hash of a counter name (CounterSnapshot::a32). */
std::uint32_t frCounterNameHash(std::string_view name);

/** Canonical counter name for @p hash, nullptr when unknown (the
 *  resolver covers the names the default snapshot set samples). */
const char *frCounterNameForHash(std::uint32_t hash);

/** Printable name of a record type ("commit_ack", ...). */
const char *frRecordTypeName(std::uint8_t type);

/**
 * Ground truth about the recovered WAL that the forensics pass
 * cross-references the ring against.
 */
struct FrRecoveredWalState
{
    std::uint64_t recoveredMarks = 0;     //!< commit marks after recovery
    std::uint64_t recoveredCheckpointId = 0;
    std::uint64_t framesSinceCheckpoint = 0;
    /** This recovery's deltas of the wal.* recovery counters. */
    std::uint64_t tornFramesDetected = 0;
    std::uint64_t framesDiscarded = 0;
    std::uint64_t lostMarks = 0;
    /** 2PC transactions still in doubt right after recovery. */
    std::vector<std::uint64_t> inDoubt;
    /** Decision lookup in the recovered WAL (may be empty). */
    std::function<bool(std::uint64_t gtid, bool *commit)> lookupDecision;
    /** Multi-writer mode (DESIGN.md §13): merge-generation counter
     *  and the newest epoch the cross-log merge recovered. Epochs are
     *  absolute across reboots, so MwHarden/MwTruncation claims from
     *  ANY incarnation must sit at or below mwMergedEpoch. */
    bool mwEnabled = false;
    std::uint64_t mwGeneration = 0;
    std::uint64_t mwMergedEpoch = 0;
};

/**
 * Structured post-mortem built on every Database open from the
 * surviving ring + the recovered WAL (docs/OBSERVABILITY.md §7).
 */
struct RecoveryReport
{
    bool recorderEnabled = false;
    bool parsed = false;           //!< ring header found and decoded
    std::string heapNamespace;
    std::uint32_t shard = 0;
    FlightRecording recording;     //!< surviving records, pre-scrub

    // Recovered-WAL ground truth (copied from FrRecoveredWalState).
    std::uint64_t recoveredMarks = 0;
    std::uint64_t recoveredCheckpointId = 0;
    std::uint64_t checkpointLagFrames = 0;
    std::uint64_t tornFramesDetected = 0;
    std::uint64_t framesDiscarded = 0;
    std::uint64_t lostMarks = 0;
    std::vector<std::uint64_t> inDoubt;
    bool mwEnabled = false;
    std::uint64_t mwGeneration = 0;
    std::uint64_t mwMergedEpoch = 0;

    // Derived from the crashed incarnation's slice of the ring.
    /** True when a RecorderOpen record survived, so the slice
     *  boundary (and the epoch/in-flight fields) are meaningful. */
    bool incarnationKnown = false;
    std::uint64_t lastDurableEpoch = 0;
    std::uint64_t lastDurableMarks = 0;
    std::uint64_t lastAckedTxn = 0;
    /** Transactions with a surviving begin and no surviving ack — an
     *  upper estimate: a lost ack record also lands a txn here. */
    std::vector<std::uint64_t> possiblyInFlight;
    /** gtids with a surviving PREPARE and no surviving DECISION. */
    std::vector<std::uint64_t> stagedPrepares;

    /**
     * Durable-claim records contradicted by the recovered WAL. Every
     * entry is a genuine recovery bug: a claim is only stamped
     * durable after the barrier that made it true, so recovery must
     * never see less. The crash sweep asserts this list is empty at
     * every injection point.
     */
    std::vector<std::string> inconsistencies;
};

/** Build the post-mortem from a parsed ring + recovered WAL state. */
RecoveryReport buildRecoveryReport(const FlightRecording &recording,
                                   const FrRecoveredWalState &wal);

/** One global transaction's merged 2PC history across shard rings. */
struct GtidTimeline
{
    std::uint64_t gtid = 0;
    std::vector<std::uint32_t> preparedShards;  //!< surviving PREPAREs
    std::vector<std::uint32_t> committedShards; //!< commit decisions
    std::vector<std::uint32_t> abortedShards;   //!< abort decisions
};

/**
 * Merge the Prepare/Decision records of several shard rings into one
 * gtid-keyed cross-shard timeline (ascending gtid). Shard ids come
 * from each recording's stamped shard field. A gtid with PREPAREs on
 * some shards and a commit decision on any is the signature of a
 * crash between the 2PC phases that recovery must have resolved to
 * commit everywhere (presumed abort otherwise).
 */
std::vector<GtidTimeline>
buildCrossShardTimeline(const std::vector<const FlightRecording *> &rings);

/** Render the report as one JSON document ({"forensics": {...}}). */
std::string recoveryReportJson(const RecoveryReport &report);

/** Human-readable rendering (nvwal_shell `forensics`). */
void printRecoveryReport(const RecoveryReport &report, std::FILE *out);

} // namespace nvwal

#endif // NVWAL_DB_FLIGHT_RECORDER_HPP
