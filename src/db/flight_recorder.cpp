#include "flight_recorder.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "common/checksum.hpp"
#include "obs/json.hpp"

namespace nvwal
{

namespace
{

/** On-media slot layout; naturally aligned, no padding. */
struct RawRecord
{
    std::uint64_t seq;
    std::uint8_t type;
    std::uint8_t flags;
    std::uint16_t a16;
    std::uint32_t a32;
    std::uint64_t a64;
    std::uint64_t b64;
    std::uint64_t checksum; //!< fnv1a64 over the preceding 32 bytes
};

static_assert(sizeof(RawRecord) == FlightRecorder::kRecordSize,
              "ring slot layout must stay 40 bytes (docs/FORMAT.md)");
static_assert(std::is_trivially_copyable_v<RawRecord>);

/** On-media ring header; zero-padded to kHeaderSize. */
struct RawHeader
{
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t recordSize;
    std::uint32_t capacity;
    std::uint32_t shard;
    /** Plain-stored convenience hint only: the parser derives the
     *  true next sequence by scanning the slots, never from here. */
    std::uint64_t nextSeqHint;
    std::uint8_t reserved[32];
};

static_assert(sizeof(RawHeader) == FlightRecorder::kHeaderSize,
              "ring header layout must stay 64 bytes (docs/FORMAT.md)");
static_assert(std::is_trivially_copyable_v<RawHeader>);

std::uint64_t
recordChecksum(const RawRecord &raw)
{
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&raw);
    return fnv1a64(ConstByteSpan(bytes, 32));
}

bool
allZero(const RawRecord &raw)
{
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&raw);
    for (std::size_t i = 0; i < sizeof(RawRecord); ++i) {
        if (bytes[i] != 0)
            return false;
    }
    return true;
}

std::uint64_t
ringBytes(std::uint32_t capacity)
{
    return FlightRecorder::kHeaderSize +
           static_cast<std::uint64_t>(capacity) *
               FlightRecorder::kRecordSize;
}

NvOffset
slotOffset(NvOffset root, std::uint64_t slot)
{
    return root + FlightRecorder::kHeaderSize +
           slot * FlightRecorder::kRecordSize;
}

} // namespace

FlightRecorder::FlightRecorder(NvHeap &heap, Pmem &pmem,
                               MetricsRegistry &stats,
                               std::string heap_namespace,
                               std::uint32_t capacity, std::uint32_t shard)
    : _heap(heap), _pmem(pmem), _stats(stats),
      _namespace(std::move(heap_namespace)),
      _capacity(std::max(capacity, kMinCapacity)), _shard(shard)
{
}

std::string
FlightRecorder::namespaceFor(const std::string &wal_namespace)
{
    return wal_namespace + "-fr";
}

Status
FlightRecorder::openOrCreate(FlightRecording *parsed)
{
    if (parsed != nullptr)
        *parsed = FlightRecording{};

    NvOffset root = kNullNvOffset;
    const Status lookup = _heap.getRoot(_namespace, &root);
    if (lookup.isOk() && _heap.blockStateAt(root) == BlockState::InUse) {
        _root = root;
        const Status attached = attachRing(parsed);
        if (attached.isOk()) {
            _ready = true;
            return Status::ok();
        }
        // Unreadable header under a live root: release the extent
        // and fall through to a fresh ring (cannot happen through
        // the documented creation order, which persists the header
        // before publishing the root).
        NVWAL_CHECK_OK(_heap.nvFree(_root));
        _root = kNullNvOffset;
    }
    // NotFound (never bound) or a root whose block recovery freed
    // (creation crashed between setRoot and the used-flag): create.
    const Status created = createRing();
    if (!created.isOk())
        return created;
    _ready = true;
    return Status::ok();
}

Status
FlightRecorder::createRing()
{
    const std::uint64_t bytes = ringBytes(_capacity);
    NvOffset off = kNullNvOffset;
    Status s = _heap.nvPreMalloc(bytes, &off);
    if (!s.isOk())
        return s;

    RawHeader header{};
    header.magic = kMagic;
    header.version = kVersion;
    header.recordSize = kRecordSize;
    header.capacity = _capacity;
    header.shard = _shard;
    header.nextSeqHint = 0;
    _pmem.memcpyToNvram(
        off, ConstByteSpan(reinterpret_cast<const std::uint8_t *>(&header),
                           sizeof(header)));

    // Zero every slot so the parser can tell "never written" from a
    // torn plain-store tail (any nonzero slot failing its checksum).
    std::uint8_t zeros[kRecordSize * 16] = {};
    std::uint64_t remaining = bytes - kHeaderSize;
    NvOffset cursor = off + kHeaderSize;
    while (remaining > 0) {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(remaining, sizeof(zeros));
        _pmem.memcpyToNvram(cursor, ConstByteSpan(zeros, chunk));
        cursor += chunk;
        remaining -= chunk;
    }

    // One-time eager persist at creation (off every measured path):
    // the header must be durable before the root publishes it, so an
    // InUse root always implies a decodable header.
    _pmem.persistRangeEager(off, off + bytes);

    s = _heap.setRoot(_namespace, off);
    if (!s.isOk()) {
        // E.g. all namespace slots taken; release and report --
        // the engine downgrades this to "recorder disabled".
        NVWAL_CHECK_OK(_heap.nvFree(off));
        return s;
    }
    s = _heap.nvSetUsedFlag(off);
    if (!s.isOk())
        return s;

    _root = off;
    _nextSeq = 0;
    return Status::ok();
}

Status
FlightRecorder::attachRing(FlightRecording *parsed)
{
    FlightRecording local;
    FlightRecording *out = parsed != nullptr ? parsed : &local;
    std::vector<std::uint32_t> torn_slots;
    Status s = parseRing(_pmem, _root, out, &torn_slots);
    if (!s.isOk())
        return s;

    // The media geometry wins over the configured capacity: the ring
    // was sized at creation and never resizes in place.
    _capacity = out->capacity;
    _nextSeq = out->nextSeq;

    // Scrub torn slots so a later parse does not re-report them, and
    // re-persist the survivors eagerly -- this is the recovery path,
    // off every measured commit path, and it makes the surviving
    // forensic evidence itself durable against a second crash.
    const std::uint8_t zeros[kRecordSize] = {};
    for (const std::uint32_t slot : torn_slots)
        _pmem.memcpyToNvram(slotOffset(_root, slot),
                            ConstByteSpan(zeros, sizeof(zeros)));
    _pmem.storeU64(_root + offsetof(RawHeader, nextSeqHint), _nextSeq);
    _pmem.persistRangeEager(_root, _root + ringBytes(_capacity));

    if (!torn_slots.empty())
        _stats.add(stats::kFrRecordsTornDiscarded, torn_slots.size());
    return Status::ok();
}

Status
FlightRecorder::parseRing(Pmem &pmem, NvOffset root, FlightRecording *out,
                          std::vector<std::uint32_t> *torn_slots)
{
    RawHeader header{};
    pmem.readFromNvram(
        root, ByteSpan(reinterpret_cast<std::uint8_t *>(&header),
                       sizeof(header)));
    if (header.magic != kMagic)
        return Status::corruption("flight-recorder magic mismatch");
    if (header.version != kVersion)
        return Status::corruption("flight-recorder version mismatch");
    if (header.recordSize != kRecordSize || header.capacity == 0)
        return Status::corruption("flight-recorder geometry mismatch");

    out->present = true;
    out->capacity = header.capacity;
    out->shard = header.shard;

    for (std::uint32_t slot = 0; slot < header.capacity; ++slot) {
        RawRecord raw{};
        pmem.readFromNvram(
            slotOffset(root, slot),
            ByteSpan(reinterpret_cast<std::uint8_t *>(&raw), sizeof(raw)));
        if (allZero(raw))
            continue;
        const bool checksum_ok = recordChecksum(raw) == raw.checksum;
        const bool slot_ok = raw.seq % header.capacity == slot;
        const bool type_ok =
            raw.type >= static_cast<std::uint8_t>(
                            FrRecordType::RecorderOpen) &&
            raw.type <= static_cast<std::uint8_t>(
                            FrRecordType::MwTruncation);
        if (!checksum_ok || !slot_ok || !type_ok) {
            ++out->tornSlots;
            if (torn_slots != nullptr)
                torn_slots->push_back(slot);
            continue;
        }
        FrRecord rec;
        rec.seq = raw.seq;
        rec.type = raw.type;
        rec.flags = raw.flags;
        rec.a16 = raw.a16;
        rec.a32 = raw.a32;
        rec.a64 = raw.a64;
        rec.b64 = raw.b64;
        out->records.push_back(rec);
    }

    std::sort(out->records.begin(), out->records.end(),
              [](const FrRecord &a, const FrRecord &b)
              { return a.seq < b.seq; });
    out->validRecords = out->records.size();
    if (!out->records.empty())
        out->nextSeq = out->records.back().seq + 1;
    out->wraps = out->nextSeq == 0 ? 0
                 : (out->nextSeq - 1) / header.capacity;
    for (std::size_t i = out->records.size(); i-- > 0;) {
        if (out->records[i].type ==
            static_cast<std::uint8_t>(FrRecordType::RecorderOpen)) {
            out->lastOpenIndex = i;
            break;
        }
    }
    return Status::ok();
}

Status
FlightRecorder::collect(const NvHeap &heap, Pmem &pmem,
                        const std::string &heap_namespace,
                        FlightRecording *out)
{
    *out = FlightRecording{};
    NvOffset root = kNullNvOffset;
    const Status lookup = heap.getRoot(heap_namespace, &root);
    if (!lookup.isOk())
        return lookup;
    if (heap.blockStateAt(root) != BlockState::InUse)
        return Status::ok(); // root published, block reclaimed
    return parseRing(pmem, root, out, nullptr);
}

void
FlightRecorder::append(FrRecordType type, std::uint8_t flags,
                       std::uint16_t a16, std::uint32_t a32,
                       std::uint64_t a64, std::uint64_t b64)
{
    if (!_ready)
        return;
    RawRecord raw{};
    raw.seq = _nextSeq;
    raw.type = static_cast<std::uint8_t>(type);
    raw.flags = flags;
    raw.a16 = a16;
    raw.a32 = a32;
    raw.a64 = a64;
    raw.b64 = b64;
    raw.checksum = recordChecksum(raw);

    const std::uint64_t slot = _nextSeq % _capacity;
    // Plain stores only: no flush, no fence, no barrier. Whether the
    // record survives a crash is up to the cache hierarchy -- the
    // §3.2 trust model applied to telemetry.
    _pmem.memcpyToNvram(
        slotOffset(_root, slot),
        ConstByteSpan(reinterpret_cast<const std::uint8_t *>(&raw),
                      sizeof(raw)));
    if (_nextSeq > 0 && slot == 0)
        _stats.add(stats::kFrRingWraps);
    ++_nextSeq;
    _stats.add(stats::kFrRecordsWritten);
}

void
FlightRecorder::publish()
{
    if (!_ready)
        return;
    _pmem.storeU64(_root + offsetof(RawHeader, nextSeqHint), _nextSeq);
    _pmem.persistRangeEager(_root, _root + ringBytes(_capacity));
}

std::uint32_t
frCounterNameHash(std::string_view name)
{
    std::uint32_t hash = 2166136261u;
    for (const char c : name) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 16777619u;
    }
    return hash;
}

const char *
frCounterNameForHash(std::uint32_t hash)
{
    // Names the engine may sample into CounterSnapshot records. The
    // entries reference the canonical constants, so the counter-name
    // lint never sees an undeclared literal here.
    static constexpr const char *kKnown[] = {
        stats::kTxnsCommitted,     stats::kPersistBarriers,
        stats::kFlushSyscalls,     stats::kNvramBytesLogged,
        stats::kNvramFramesWritten, stats::kCheckpoints,
        stats::kDbAsyncCommits,    stats::kWalEpochsHardened,
        stats::kGroupCommits,      stats::kFrRecordsWritten,
        stats::kShardTxnsCross,    stats::kWalPrepareRecords,
    };
    for (const char *name : kKnown) {
        if (frCounterNameHash(name) == hash)
            return name;
    }
    return nullptr;
}

const char *
frRecordTypeName(std::uint8_t type)
{
    switch (static_cast<FrRecordType>(type)) {
    case FrRecordType::RecorderOpen: return "recorder_open";
    case FrRecordType::TxnBegin: return "txn_begin";
    case FrRecordType::CommitAck: return "commit_ack";
    case FrRecordType::Harden: return "harden";
    case FrRecordType::CheckpointStart: return "checkpoint_start";
    case FrRecordType::CheckpointEnd: return "checkpoint_end";
    case FrRecordType::Truncation: return "truncation";
    case FrRecordType::GroupBatch: return "group_batch";
    case FrRecordType::Prepare: return "prepare";
    case FrRecordType::Decision: return "decision";
    case FrRecordType::CounterSnapshot: return "counter_snapshot";
    case FrRecordType::MwHarden: return "mw_harden";
    case FrRecordType::MwLogHarden: return "mw_log_harden";
    case FrRecordType::MwTruncation: return "mw_truncation";
    }
    return "unknown";
}

RecoveryReport
buildRecoveryReport(const FlightRecording &recording,
                    const FrRecoveredWalState &wal)
{
    RecoveryReport report;
    report.recorderEnabled = true;
    report.parsed = recording.present;
    report.recording = recording;
    report.recoveredMarks = wal.recoveredMarks;
    report.recoveredCheckpointId = wal.recoveredCheckpointId;
    report.checkpointLagFrames = wal.framesSinceCheckpoint;
    report.tornFramesDetected = wal.tornFramesDetected;
    report.framesDiscarded = wal.framesDiscarded;
    report.lostMarks = wal.lostMarks;
    report.inDoubt = wal.inDoubt;
    report.mwEnabled = wal.mwEnabled;
    report.mwGeneration = wal.mwGeneration;
    report.mwMergedEpoch = wal.mwMergedEpoch;

    if (!recording.present)
        return report;

    const auto ckpt32 =
        static_cast<std::uint32_t>(wal.recoveredCheckpointId);
    const auto in_doubt = [&wal](std::uint64_t gtid) {
        return std::find(wal.inDoubt.begin(), wal.inDoubt.end(), gtid) !=
               wal.inDoubt.end();
    };
    const auto complain = [&report](std::string msg)
    { report.inconsistencies.push_back(std::move(msg)); };

    // ---- durable-claim cross-checks (any incarnation) --------------
    // A durable-claim record was written after the persist barrier
    // that made its claim true, so the recovered WAL must agree --
    // regardless of which incarnation wrote it. Claims about commit
    // marks are only comparable while the truncation horizon is the
    // one they were stamped with, hence the checkpoint-round gate.
    for (const FrRecord &rec : recording.records) {
        char buf[160];
        switch (static_cast<FrRecordType>(rec.type)) {
        case FrRecordType::CommitAck:
            if (rec.durableClaim() && rec.a32 == ckpt32 &&
                rec.b64 > wal.recoveredMarks) {
                std::snprintf(buf, sizeof(buf),
                              "commit ack #%llu claims %llu durable marks "
                              "in round %u but recovery found %llu",
                              (unsigned long long)rec.seq,
                              (unsigned long long)rec.b64, rec.a32,
                              (unsigned long long)wal.recoveredMarks);
                complain(buf);
            }
            break;
        case FrRecordType::Harden:
            if (rec.a32 == ckpt32 && rec.a64 > wal.recoveredMarks) {
                std::snprintf(buf, sizeof(buf),
                              "harden #%llu claims %llu durable marks "
                              "in round %u but recovery found %llu",
                              (unsigned long long)rec.seq,
                              (unsigned long long)rec.a64, rec.a32,
                              (unsigned long long)wal.recoveredMarks);
                complain(buf);
            }
            break;
        case FrRecordType::Truncation:
            if (rec.a32 > ckpt32) {
                std::snprintf(buf, sizeof(buf),
                              "truncation #%llu reached round %u but "
                              "media recovered round %u",
                              (unsigned long long)rec.seq, rec.a32,
                              ckpt32);
                complain(buf);
            }
            break;
        case FrRecordType::Decision:
            if (rec.durableClaim() && rec.a32 == ckpt32 &&
                in_doubt(rec.a64)) {
                std::snprintf(buf, sizeof(buf),
                              "decision #%llu for gtid %llu is durable "
                              "but recovery left it in doubt",
                              (unsigned long long)rec.seq,
                              (unsigned long long)rec.a64);
                complain(buf);
            }
            break;
        case FrRecordType::Prepare:
            if (rec.durableClaim() && rec.a32 == ckpt32 &&
                !in_doubt(rec.a64) && wal.lookupDecision) {
                bool commit = false;
                if (!wal.lookupDecision(rec.a64, &commit)) {
                    std::snprintf(buf, sizeof(buf),
                                  "prepare #%llu for gtid %llu is durable "
                                  "but recovery knows neither the txn "
                                  "nor a decision",
                                  (unsigned long long)rec.seq,
                                  (unsigned long long)rec.a64);
                    complain(buf);
                }
            }
            break;
        case FrRecordType::MwHarden:
            // Commit epochs are absolute across reboots, so the
            // hardened floor a durable MwHarden claims binds every
            // later recovery — no checkpoint-round gate needed.
            if (rec.durableClaim() && wal.mwEnabled &&
                rec.b64 > wal.mwMergedEpoch) {
                std::snprintf(buf, sizeof(buf),
                              "mw harden #%llu claims epoch floor %llu "
                              "durable but the merge recovered %llu",
                              (unsigned long long)rec.seq,
                              (unsigned long long)rec.b64,
                              (unsigned long long)wal.mwMergedEpoch);
                complain(buf);
            }
            break;
        case FrRecordType::MwTruncation:
            if (rec.durableClaim() && wal.mwEnabled &&
                rec.a64 > wal.mwMergedEpoch) {
                std::snprintf(buf, sizeof(buf),
                              "mw truncation #%llu covered epoch base "
                              "%llu but the merge recovered %llu",
                              (unsigned long long)rec.seq,
                              (unsigned long long)rec.a64,
                              (unsigned long long)wal.mwMergedEpoch);
                complain(buf);
            }
            break;
        default:
            break;
        }
    }

    // ---- crashed-incarnation slice ---------------------------------
    // Epochs and transaction sequences restart per incarnation, so
    // these fields are only derivable when the RecorderOpen boundary
    // survived.
    if (recording.lastOpenIndex == FlightRecording::kNoIndex)
        return report;
    report.incarnationKnown = true;

    std::vector<std::uint64_t> begins;
    std::vector<std::uint64_t> acked;
    std::vector<std::uint64_t> prepares;
    std::vector<std::uint64_t> decisions;
    for (std::size_t i = recording.lastOpenIndex + 1;
         i < recording.records.size(); ++i) {
        const FrRecord &rec = recording.records[i];
        switch (static_cast<FrRecordType>(rec.type)) {
        case FrRecordType::TxnBegin:
            begins.push_back(rec.a64);
            break;
        case FrRecordType::CommitAck:
            acked.push_back(rec.a64);
            report.lastAckedTxn = std::max(report.lastAckedTxn, rec.a64);
            if (rec.durableClaim() && rec.a32 == ckpt32)
                report.lastDurableMarks =
                    std::max(report.lastDurableMarks, rec.b64);
            break;
        case FrRecordType::Harden:
            report.lastDurableEpoch =
                std::max(report.lastDurableEpoch, rec.b64);
            if (rec.a32 == ckpt32)
                report.lastDurableMarks =
                    std::max(report.lastDurableMarks, rec.a64);
            break;
        case FrRecordType::MwHarden:
            report.lastDurableEpoch =
                std::max(report.lastDurableEpoch, rec.b64);
            break;
        case FrRecordType::Prepare:
            prepares.push_back(rec.a64);
            break;
        case FrRecordType::Decision:
            decisions.push_back(rec.a64);
            break;
        default:
            break;
        }
    }
    for (const std::uint64_t txn : begins) {
        if (std::find(acked.begin(), acked.end(), txn) == acked.end())
            report.possiblyInFlight.push_back(txn);
    }
    for (const std::uint64_t gtid : prepares) {
        if (std::find(decisions.begin(), decisions.end(), gtid) ==
            decisions.end())
            report.stagedPrepares.push_back(gtid);
    }
    std::sort(report.possiblyInFlight.begin(),
              report.possiblyInFlight.end());
    std::sort(report.stagedPrepares.begin(), report.stagedPrepares.end());

    return report;
}

std::vector<GtidTimeline>
buildCrossShardTimeline(const std::vector<const FlightRecording *> &rings)
{
    std::vector<GtidTimeline> timeline;
    const auto entryFor = [&](std::uint64_t gtid) -> GtidTimeline & {
        for (GtidTimeline &t : timeline)
            if (t.gtid == gtid)
                return t;
        timeline.emplace_back();
        timeline.back().gtid = gtid;
        return timeline.back();
    };
    for (const FlightRecording *ring : rings) {
        if (ring == nullptr || !ring->present)
            continue;
        for (const FrRecord &rec : ring->records) {
            switch (static_cast<FrRecordType>(rec.type)) {
              case FrRecordType::Prepare:
                entryFor(rec.a64).preparedShards.push_back(ring->shard);
                break;
              case FrRecordType::Decision: {
                GtidTimeline &t = entryFor(rec.a64);
                (rec.a16 != 0 ? t.committedShards : t.abortedShards)
                    .push_back(ring->shard);
                break;
              }
              default:
                break;
            }
        }
    }
    std::sort(timeline.begin(), timeline.end(),
              [](const GtidTimeline &a, const GtidTimeline &b) {
                  return a.gtid < b.gtid;
              });
    for (GtidTimeline &t : timeline) {
        const auto dedup = [](std::vector<std::uint32_t> *v) {
            std::sort(v->begin(), v->end());
            v->erase(std::unique(v->begin(), v->end()), v->end());
        };
        dedup(&t.preparedShards);
        dedup(&t.committedShards);
        dedup(&t.abortedShards);
    }
    return timeline;
}

namespace
{

void
writeIdArray(JsonWriter &w, const char *name,
             const std::vector<std::uint64_t> &ids)
{
    w.key(name);
    w.beginArray();
    for (const std::uint64_t id : ids)
        w.value(id);
    w.endArray();
}

} // namespace

std::string
recoveryReportJson(const RecoveryReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.key("forensics");
    w.beginObject();
    w.member("recorderEnabled", report.recorderEnabled);
    w.member("parsed", report.parsed);
    w.member("namespace", report.heapNamespace);
    w.member("shard", static_cast<std::uint64_t>(report.shard));

    w.key("ring");
    w.beginObject();
    w.member("capacity",
             static_cast<std::uint64_t>(report.recording.capacity));
    w.member("validRecords", report.recording.validRecords);
    w.member("tornSlots", report.recording.tornSlots);
    w.member("wraps", report.recording.wraps);
    w.member("nextSeq", report.recording.nextSeq);
    w.endObject();

    w.key("recovered");
    w.beginObject();
    w.member("marks", report.recoveredMarks);
    w.member("checkpointId", report.recoveredCheckpointId);
    w.member("checkpointLagFrames", report.checkpointLagFrames);
    w.member("tornFramesDetected", report.tornFramesDetected);
    w.member("framesDiscarded", report.framesDiscarded);
    w.member("lostMarks", report.lostMarks);
    writeIdArray(w, "inDoubt", report.inDoubt);
    w.member("mwEnabled", report.mwEnabled);
    w.member("mwGeneration", report.mwGeneration);
    w.member("mwMergedEpoch", report.mwMergedEpoch);
    w.endObject();

    w.member("incarnationKnown", report.incarnationKnown);
    w.member("lastDurableEpoch", report.lastDurableEpoch);
    w.member("lastDurableMarks", report.lastDurableMarks);
    w.member("lastAckedTxn", report.lastAckedTxn);
    writeIdArray(w, "possiblyInFlight", report.possiblyInFlight);
    writeIdArray(w, "stagedPrepares", report.stagedPrepares);

    w.key("inconsistencies");
    w.beginArray();
    for (const std::string &msg : report.inconsistencies)
        w.value(msg);
    w.endArray();

    w.key("events");
    w.beginArray();
    for (const FrRecord &rec : report.recording.records) {
        w.beginObject();
        w.member("seq", rec.seq);
        w.member("type", frRecordTypeName(rec.type));
        w.member("durable", rec.durableClaim());
        w.member("a16", static_cast<std::uint64_t>(rec.a16));
        w.member("a32", static_cast<std::uint64_t>(rec.a32));
        w.member("a64", rec.a64);
        w.member("b64", rec.b64);
        if (static_cast<FrRecordType>(rec.type) ==
            FrRecordType::CounterSnapshot) {
            const char *name = frCounterNameForHash(rec.a32);
            if (name != nullptr)
                w.member("counter", name);
        }
        w.endObject();
    }
    w.endArray();

    w.endObject();
    w.endObject();
    return w.take();
}

void
printRecoveryReport(const RecoveryReport &report, std::FILE *out)
{
    if (!report.recorderEnabled) {
        std::fprintf(out, "flight recorder: disabled\n");
        return;
    }
    if (!report.parsed) {
        std::fprintf(out, "flight recorder: ring not found (%s)\n",
                     report.heapNamespace.c_str());
        return;
    }
    std::fprintf(out,
                 "flight recorder %s: %llu records survived "
                 "(%llu torn slot%s discarded, %llu wrap%s, "
                 "capacity %u)\n",
                 report.heapNamespace.c_str(),
                 (unsigned long long)report.recording.validRecords,
                 (unsigned long long)report.recording.tornSlots,
                 report.recording.tornSlots == 1 ? "" : "s",
                 (unsigned long long)report.recording.wraps,
                 report.recording.wraps == 1 ? "" : "s",
                 report.recording.capacity);
    std::fprintf(out,
                 "recovered WAL: %llu commit marks, checkpoint round "
                 "%llu, %llu frames pending checkpoint\n",
                 (unsigned long long)report.recoveredMarks,
                 (unsigned long long)report.recoveredCheckpointId,
                 (unsigned long long)report.checkpointLagFrames);
    if (report.tornFramesDetected != 0 || report.framesDiscarded != 0 ||
        report.lostMarks != 0) {
        std::fprintf(out,
                     "loss window: %llu torn frames, %llu discarded, "
                     "%llu commit marks lost\n",
                     (unsigned long long)report.tornFramesDetected,
                     (unsigned long long)report.framesDiscarded,
                     (unsigned long long)report.lostMarks);
    }
    if (report.incarnationKnown) {
        std::fprintf(out,
                     "crashed incarnation: last durable epoch %llu, "
                     "last durable marks %llu, last acked txn %llu\n",
                     (unsigned long long)report.lastDurableEpoch,
                     (unsigned long long)report.lastDurableMarks,
                     (unsigned long long)report.lastAckedTxn);
    } else {
        std::fprintf(out,
                     "crashed incarnation: boundary record lost "
                     "(epoch/in-flight fields unavailable)\n");
    }
    const auto printIds = [out](const char *label,
                                const std::vector<std::uint64_t> &ids) {
        if (ids.empty())
            return;
        std::fprintf(out, "%s:", label);
        for (const std::uint64_t id : ids)
            std::fprintf(out, " %llu", (unsigned long long)id);
        std::fprintf(out, "\n");
    };
    printIds("possibly in flight", report.possiblyInFlight);
    printIds("staged prepares (no decision)", report.stagedPrepares);
    printIds("in doubt after recovery", report.inDoubt);
    if (report.inconsistencies.empty()) {
        std::fprintf(out, "cross-check vs recovered WAL: consistent\n");
    } else {
        for (const std::string &msg : report.inconsistencies)
            std::fprintf(out, "INCONSISTENT: %s\n", msg.c_str());
    }
    // Tail of the timeline, newest last.
    const std::size_t n = report.recording.records.size();
    const std::size_t first = n > 16 ? n - 16 : 0;
    for (std::size_t i = first; i < n; ++i) {
        const FrRecord &rec = report.recording.records[i];
        std::fprintf(out,
                     "  #%-6llu %-16s%s a16=%u a32=%u a64=%llu b64=%llu\n",
                     (unsigned long long)rec.seq,
                     frRecordTypeName(rec.type),
                     rec.durableClaim() ? " [durable]" : "",
                     rec.a16, rec.a32, (unsigned long long)rec.a64,
                     (unsigned long long)rec.b64);
    }
}

} // namespace nvwal
