/**
 * @file
 * Forensic inspection of a database and its NVWAL media -- the
 * sqlite3_analyzer analogue for this engine.
 *
 * The NVWAL media walker is implemented independently of NvwalLog's
 * own recovery code, reading the persistent structures through
 * public NvHeap/NvramDevice interfaces only. That makes it both a
 * debugging tool and a living cross-check of the on-media format:
 * if the two implementations ever disagree about what is on the
 * media, one of them is wrong.
 */

#ifndef NVWAL_DB_INSPECT_HPP
#define NVWAL_DB_INSPECT_HPP

#include <cstdio>
#include <vector>

#include "db/database.hpp"

namespace nvwal
{

/** One WAL frame found on the NVWAL media. */
struct FrameInfo
{
    NvOffset offset;
    PageNo pageNo;
    std::uint16_t pageOffset;
    std::uint16_t size;
    bool committed;
    std::uint32_t dbSizePages;  //!< only meaningful when committed
    bool checksumValid;
    /** 2PC control frame (pageNo == NvwalLog::kControlPage). */
    bool isControl = false;
    std::uint32_t ctrlType = 0;  //!< kCtrlPrepare/kCtrlCommit/kCtrlAbort
    std::uint64_t gtid = 0;      //!< control frames only
};

/** One log node (NVRAM heap allocation) in the chain. */
struct NodeInfo
{
    NvOffset offset = kNullNvOffset;
    std::uint32_t capacity = 0;
    BlockState state = BlockState::Free;
    std::vector<FrameInfo> frames;
};

/** Everything the media walker found. */
struct NvwalMediaReport
{
    bool logPresent = false;
    std::uint64_t checkpointId = 0;
    std::vector<NodeInfo> nodes;
    std::uint64_t committedFrames = 0;
    std::uint64_t uncommittedFrames = 0;
    std::uint64_t tornFrames = 0;  //!< checksum-invalid frames
    /** Data frames owned by a PREPARE record (durable but invisible
     *  until a decision lands; DESIGN.md section 10). */
    std::uint64_t stagedFrames = 0;
    std::uint64_t prepareRecords = 0;
    std::uint64_t decisionRecords = 0;
    std::uint64_t bytesUsed = 0;
    // Heap-level summary.
    std::uint64_t heapBlocksFree = 0;
    std::uint64_t heapBlocksPending = 0;
    std::uint64_t heapBlocksInUse = 0;
};

/** Per-table stats for the database report. */
struct TableInfo
{
    std::string name;
    PageNo root;
    std::uint64_t rows = 0;
    std::uint32_t depth = 0;
};

/** Database-level structural report. */
struct DatabaseReport
{
    std::uint32_t pageSize = 0;
    std::uint32_t reservedBytes = 0;
    std::uint32_t pageCount = 0;
    std::uint32_t freePages = 0;
    std::uint64_t walFramesSinceCheckpoint = 0;
    std::vector<TableInfo> tables;
};

/**
 * Walk the NVWAL persistent structures on @p env's NVRAM, using the
 * same header/frame format as NvwalLog but none of its code.
 * @p page_size must match the database's page size (frame geometry
 * validation needs it). @p heap_namespace selects which log to walk:
 * "nvwal" is the standalone default; shard k of a sharded store
 * publishes under ShardedDatabase::shardHeapNamespace(k).
 */
Status collectNvwalMediaReport(Env &env, std::uint32_t page_size,
                               NvwalMediaReport *out,
                               const std::string &heap_namespace = "nvwal");

/** Collect the structural report of an open database. */
Status collectDatabaseReport(Database &db, DatabaseReport *out);

/** Render a media report as a human-readable table. */
void printNvwalMediaReport(const NvwalMediaReport &report,
                           std::FILE *out = stdout);

/** Render a database report as a human-readable table. */
void printDatabaseReport(const DatabaseReport &report,
                         std::FILE *out = stdout);

/** Decode and print one B-tree page (header, cells, freeblocks). */
Status printPage(Pager &pager, PageNo page_no, std::FILE *out = stdout);

/**
 * Print every counter as "name = value" lines in ascending
 * lexicographic key order -- the stable order documented in
 * docs/MODEL.md, shared by nvwal_inspect and nvwal_shell so output
 * is diffable across runs and versions.
 */
void printCounters(const MetricsRegistry &stats, std::FILE *out = stdout);

/**
 * Print each non-empty latency histogram as one summary line
 * (count/mean/p50/p95/p99/max), keys in lexicographic order.
 */
void printHistograms(const MetricsRegistry &stats, std::FILE *out = stdout);

} // namespace nvwal

#endif // NVWAL_DB_INSPECT_HPP
