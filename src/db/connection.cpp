#include "connection.hpp"

#include "db/catalog_codec.hpp"

namespace nvwal
{

Connection::Connection(Database &db)
    : _db(db), _writerLock(db._writerMutex, std::defer_lock)
{}

Connection::~Connection()
{
    if (_inWrite)
        (void)rollback();
    if (_snapshot)
        (void)endRead();
    _db.releaseConnection(this);
}

// ---- read transactions ---------------------------------------------

Status
Connection::beginRead()
{
    if (_snapshot)
        return Status::busy("a read transaction is already open");
    std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
    WriteAheadLog &wal = *_db._wal;
    if (!wal.supportsSnapshots()) {
        return Status::unsupported(
            "WAL mode has no snapshot support: " +
            std::string(wal.name()));
    }

    // Pin the commit horizon; the WAL will neither supersede nor
    // truncate any frame this snapshot can reach until endRead().
    _horizon = wal.commitSeq();
    wal.pinSnapshot(_horizon);
    // The size as of the horizon: commitSeq() and committedDbSize()
    // are read under one engine-lock hold, so no commit interleaves.
    std::uint32_t pages = wal.committedDbSize();
    if (pages == 0)
        pages = _db._dbFile->pageCount();

    const CommitSeq horizon = _horizon;
    auto fetch = [this, horizon](PageNo page_no, ByteSpan out) -> Status {
        std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
        const Status s = _db._wal->readPageAt(page_no, out, horizon);
        if (!s.isNotFound())
            return s;
        // No committed frame at or below the horizon: the .db file
        // copy is current for this snapshot (checkpointing never
        // advances the file past the oldest pin).
        if (page_no <= _db._dbFile->pageCount())
            return _db._dbFile->readPage(page_no, out);
        return Status::corruption(
            "snapshot page missing from WAL and file");
    };
    _snapshot = std::make_unique<SnapshotCache>(
        _db._config.pageSize, _db._pager->reservedBytes(), pages,
        _db._pager->rootPage(), std::move(fetch));

    _db._env.stats.add(stats::kSnapshotsOpened);
    _db._env.stats.setGauge(stats::kGaugeOpenSnapshots, wal.pinCount());
    return Status::ok();
}

Status
Connection::endRead()
{
    if (!_snapshot)
        return Status::invalidArgument("no read transaction to end");
    {
        std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
        _db._wal->unpinSnapshot(_horizon);
        // Fold the thread-confined tallies into the shared registry.
        _db._env.stats.add(stats::kSnapshotReads,
                           _snapshot->cacheHits() + _snapshot->fetches());
        _db._env.stats.add(stats::kSnapshotCacheHits,
                           _snapshot->cacheHits());
        _db._env.stats.setGauge(stats::kGaugeOpenSnapshots,
                                _db._wal->pinCount());
    }
    _snapshot.reset();
    _snapshotRoots.clear();
    _horizon = 0;
    return Status::ok();
}

Status
Connection::snapshotRoot(const std::string &table, PageNo *root)
{
    NVWAL_ASSERT(_snapshot != nullptr);
    auto it = _snapshotRoots.find(table);
    if (it != _snapshotRoots.end()) {
        *root = it->second;
        return Status::ok();
    }
    BTree catalog(*_snapshot, _db._pager->rootPage());
    bool found = false;
    Status scan_error = Status::ok();
    NVWAL_RETURN_IF_ERROR(catalog.scan(
        INT64_MIN, INT64_MAX, [&](RowId, ConstByteSpan raw) {
            PageNo entry_root;
            std::string entry_name;
            if (!decodeCatalogEntry(raw, &entry_root, &entry_name)) {
                scan_error = Status::corruption("bad catalog entry");
                return false;
            }
            if (entry_name == table) {
                *root = entry_root;
                found = true;
                return false;
            }
            return true;
        }));
    NVWAL_RETURN_IF_ERROR(scan_error);
    if (!found)
        return Status::notFound("no such table in snapshot: " + table);
    _snapshotRoots[table] = *root;
    return Status::ok();
}

template <typename Op>
Status
Connection::withReadSnapshot(const Op &op)
{
    if (_snapshot)
        return op();
    NVWAL_RETURN_IF_ERROR(beginRead());
    const Status s = op();
    const Status end = endRead();
    return s.isOk() ? end : s;
}

Status
Connection::get(RowId key, ByteBuffer *value)
{
    return withReadSnapshot([&]() -> Status {
        PageNo root;
        NVWAL_RETURN_IF_ERROR(
            snapshotRoot(Database::kDefaultTable, &root));
        _db.chargeStatement(0);
        BTree tree(*_snapshot, root);
        return tree.get(key, value);
    });
}

Status
Connection::scan(RowId lo, RowId hi, const BTree::ScanCallback &visit)
{
    return withReadSnapshot([&]() -> Status {
        PageNo root;
        NVWAL_RETURN_IF_ERROR(
            snapshotRoot(Database::kDefaultTable, &root));
        _db.chargeStatement(0);
        BTree tree(*_snapshot, root);
        return tree.scan(lo, hi, visit);
    });
}

Status
Connection::count(std::uint64_t *out)
{
    return withReadSnapshot([&]() -> Status {
        PageNo root;
        NVWAL_RETURN_IF_ERROR(
            snapshotRoot(Database::kDefaultTable, &root));
        _db.chargeStatement(0);
        BTree tree(*_snapshot, root);
        return tree.count(out);
    });
}

// ---- write transactions --------------------------------------------

Status
Connection::begin()
{
    if (_inWrite)
        return Status::busy("a write transaction is already open");
    // Announce the intent before blocking on the writer slot so a
    // committing leader's combining window waits for this txn.
    _db.noteWriteIntent();
    _writerLock.lock();
    const Status s = _db.beginFromConnection();
    if (!s.isOk()) {
        _writerLock.unlock();
        _db.endWriteIntent();
        return s;
    }
    _inWrite = true;
    return Status::ok();
}

Status
Connection::commit(Durability durability)
{
    if (!_inWrite)
        return Status::invalidArgument("no write transaction to commit");
    // Clear the flag before entering the engine: a simulated power
    // failure unwinds through the WAL append after the engine has
    // already closed the transaction, and the destructor must not
    // try to roll back what no longer exists.
    _inWrite = false;
    std::uint64_t epoch = 0;
    const Status s =
        _db.commitFromConnection(&_writerLock, durability, &epoch);
    if (s.isUnsupported()) {
        // The engine never touched the transaction; it is still open
        // and retryable at a stricter durability level.
        _inWrite = true;
        return s;
    }
    if (s.isOk() && durability == Durability::Async)
        _lastCommitEpoch = epoch;
    return s;
}

Status
Connection::rollback()
{
    if (!_inWrite)
        return Status::invalidArgument(
            "no write transaction to roll back");
    _inWrite = false;
    return _db.rollbackFromConnection(&_writerLock);
}

Status
Connection::prepare(std::uint64_t gtid)
{
    if (!_inWrite)
        return Status::invalidArgument(
            "no write transaction to prepare");
    // The transaction stays open and this connection keeps the writer
    // slot until decide(): a prepared shard admits no other writer.
    return _db.prepareFromConnection(gtid);
}

Status
Connection::decide(std::uint64_t gtid, bool commit)
{
    if (!_inWrite)
        return Status::invalidArgument(
            "no prepared transaction to decide");
    _inWrite = false;
    return _db.decideFromConnection(gtid, commit, &_writerLock);
}

Status
Connection::insert(RowId key, ConstByteSpan value)
{
    bool started = false;
    if (!_inWrite) {
        NVWAL_RETURN_IF_ERROR(begin());
        started = true;
    }
    const Status s = _db.insert(key, value);
    if (!started)
        return s;
    if (!s.isOk()) {
        (void)rollback();
        return s;
    }
    return commit();
}

Status
Connection::insert(RowId key, const std::string &value)
{
    return insert(key,
                  ConstByteSpan(reinterpret_cast<const std::uint8_t *>(
                                    value.data()),
                                value.size()));
}

Status
Connection::update(RowId key, ConstByteSpan value)
{
    bool started = false;
    if (!_inWrite) {
        NVWAL_RETURN_IF_ERROR(begin());
        started = true;
    }
    const Status s = _db.update(key, value);
    if (!started)
        return s;
    if (!s.isOk()) {
        (void)rollback();
        return s;
    }
    return commit();
}

Status
Connection::remove(RowId key)
{
    bool started = false;
    if (!_inWrite) {
        NVWAL_RETURN_IF_ERROR(begin());
        started = true;
    }
    const Status s = _db.remove(key);
    if (!started)
        return s;
    if (!s.isOk()) {
        (void)rollback();
        return s;
    }
    return commit();
}

} // namespace nvwal
