#include "connection.hpp"

#include "db/catalog_codec.hpp"

namespace nvwal
{

Connection::Connection(Database &db, ConnectOptions options,
                       std::uint32_t slot)
    : _db(db), _options(options), _slot(slot),
      _writerLock(db._writerMutex, std::defer_lock)
{}

Connection::~Connection()
{
    if (_inWrite)
        (void)rollback();
    if (_snapshot)
        (void)endRead();
    _db.releaseConnection(this);
}

void
Connection::noteConflictRetry()
{
    _db._env.stats.add(stats::kDbTxnConflictRetries);
}

// ---- read transactions ---------------------------------------------

Status
Connection::beginRead()
{
    if (_snapshot)
        return Status::busy("a read transaction is already open");

    if (_db._mwActive) {
        // Pin the published epoch floor: the overlay keeps every
        // version this floor can reach, and checkpointing never
        // advances the base image past it, until endRead().
        std::uint32_t pages = 0;
        _horizon = _db.mwPinRead(&pages, _lastCommitEpoch);
        const std::uint64_t floor = _horizon;
        auto fetch = [this, floor](PageNo page_no,
                                   ByteSpan out) -> Status {
            return _db.mwFetchPage(page_no, floor, out, nullptr);
        };
        _snapshot = std::make_unique<SnapshotCache>(
            _db._config.pageSize, _db._pager->reservedBytes(), pages,
            _db._pager->rootPage(), std::move(fetch));
        _db._env.stats.add(stats::kSnapshotsOpened);
        return Status::ok();
    }

    std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
    WriteAheadLog &wal = *_db._wal;
    if (!wal.supportsSnapshots()) {
        return Status::unsupported(
            "WAL mode has no snapshot support: " +
            std::string(wal.name()));
    }

    // Pin the commit horizon; the WAL will neither supersede nor
    // truncate any frame this snapshot can reach until endRead().
    _horizon = wal.commitSeq();
    wal.pinSnapshot(_horizon);
    // The size as of the horizon: commitSeq() and committedDbSize()
    // are read under one engine-lock hold, so no commit interleaves.
    std::uint32_t pages = wal.committedDbSize();
    if (pages == 0)
        pages = _db._dbFile->pageCount();

    const CommitSeq horizon = _horizon;
    auto fetch = [this, horizon](PageNo page_no, ByteSpan out) -> Status {
        std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
        const Status s = _db._wal->readPageAt(page_no, out, horizon);
        if (!s.isNotFound())
            return s;
        // No committed frame at or below the horizon: the .db file
        // copy is current for this snapshot (checkpointing never
        // advances the file past the oldest pin).
        if (page_no <= _db._dbFile->pageCount())
            return _db._dbFile->readPage(page_no, out);
        return Status::corruption(
            "snapshot page missing from WAL and file");
    };
    _snapshot = std::make_unique<SnapshotCache>(
        _db._config.pageSize, _db._pager->reservedBytes(), pages,
        _db._pager->rootPage(), std::move(fetch));

    _db._env.stats.add(stats::kSnapshotsOpened);
    _db._env.stats.setGauge(stats::kGaugeOpenSnapshots, wal.pinCount());
    return Status::ok();
}

Status
Connection::endRead()
{
    if (!_snapshot)
        return Status::invalidArgument("no read transaction to end");

    if (_db._mwActive) {
        _db._env.stats.add(stats::kSnapshotReads,
                           _snapshot->cacheHits() + _snapshot->fetches());
        _db._env.stats.add(stats::kSnapshotCacheHits,
                           _snapshot->cacheHits());
        _db.mwUnpinRead(_horizon);
    } else {
        std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
        _db._wal->unpinSnapshot(_horizon);
        // Fold the thread-confined tallies into the shared registry.
        _db._env.stats.add(stats::kSnapshotReads,
                           _snapshot->cacheHits() + _snapshot->fetches());
        _db._env.stats.add(stats::kSnapshotCacheHits,
                           _snapshot->cacheHits());
        _db._env.stats.setGauge(stats::kGaugeOpenSnapshots,
                                _db._wal->pinCount());
    }
    _snapshot.reset();
    _snapshotRoots.clear();
    _horizon = 0;
    return Status::ok();
}

Status
Connection::snapshotRoot(const std::string &table, PageNo *root)
{
    NVWAL_ASSERT(_activeRead != nullptr);
    auto it = _activeRoots->find(table);
    if (it != _activeRoots->end()) {
        *root = it->second;
        return Status::ok();
    }
    BTree catalog(*_activeRead, _db._pager->rootPage());
    bool found = false;
    Status scan_error = Status::ok();
    NVWAL_RETURN_IF_ERROR(catalog.scan(
        INT64_MIN, INT64_MAX, [&](RowId, ConstByteSpan raw) {
            PageNo entry_root;
            std::string entry_name;
            if (!decodeCatalogEntry(raw, &entry_root, &entry_name)) {
                scan_error = Status::corruption("bad catalog entry");
                return false;
            }
            if (entry_name == table) {
                *root = entry_root;
                found = true;
                return false;
            }
            return true;
        }));
    NVWAL_RETURN_IF_ERROR(scan_error);
    if (!found)
        return Status::notFound("no such table in snapshot: " + table);
    (*_activeRoots)[table] = *root;
    return Status::ok();
}

void
Connection::resetCasualSnapshot(std::unique_ptr<SnapshotCache> snap,
                                std::uint64_t horizon)
{
    _casualSnap = std::move(snap);
    _casualRoots.clear();
    _casualHorizon = horizon;
    _casualGen = _db.engineGeneration();
    _casualHitsFolded = 0;
    _casualReadsFolded = 0;
    _db._env.stats.add(stats::kSnapshotsOpened);
}

void
Connection::foldCasualStats()
{
    const std::uint64_t hits = _casualSnap->cacheHits();
    const std::uint64_t reads = hits + _casualSnap->fetches();
    _db._env.stats.add(stats::kSnapshotCacheHits,
                       hits - _casualHitsFolded);
    _db._env.stats.add(stats::kSnapshotReads,
                       reads - _casualReadsFolded);
    _casualHitsFolded = hits;
    _casualReadsFolded = reads;
}

template <typename Op>
Status
Connection::casualReadMw(const Op &op)
{
    // Pin for the statement's duration so the overlay keeps every
    // version the cached snapshot can still reach.
    std::uint32_t pages = 0;
    const std::uint64_t floor = _db.mwPinRead(&pages, _lastCommitEpoch);
    if (!_casualSnap || _casualHorizon != floor ||
        _casualGen != _db.engineGeneration()) {
        auto fetch = [this, floor](PageNo page_no,
                                   ByteSpan out) -> Status {
            return _db.mwFetchPage(page_no, floor, out, nullptr);
        };
        resetCasualSnapshot(
            std::make_unique<SnapshotCache>(
                _db._config.pageSize, _db._pager->reservedBytes(),
                pages, _db._pager->rootPage(), std::move(fetch)),
            floor);
    }
    _activeRead = _casualSnap.get();
    _activeRoots = &_casualRoots;
    const Status s = op();
    _activeRead = nullptr;
    _activeRoots = nullptr;
    foldCasualStats();
    _db.mwUnpinRead(floor);
    return s;
}

template <typename Op>
Status
Connection::casualReadSw(const Op &op)
{
    // One engine-lock hold for the whole statement: the horizon
    // cannot move underneath it, so no snapshot pin is needed and
    // the cached pages stay exact. Reuse means a hot read loop takes
    // this lock once per statement instead of twice (the historical
    // begin/end pair) and builds no throwaway snapshot.
    std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
    WriteAheadLog &wal = *_db._wal;
    if (!wal.supportsSnapshots()) {
        return Status::unsupported(
            "WAL mode has no snapshot support: " +
            std::string(wal.name()));
    }
    const CommitSeq horizon = wal.commitSeq();
    if (!_casualSnap || _casualHorizon != horizon ||
        _casualGen != _db.engineGeneration()) {
        std::uint32_t pages = wal.committedDbSize();
        if (pages == 0)
            pages = _db._dbFile->pageCount();
        auto fetch = [this, horizon](PageNo page_no,
                                     ByteSpan out) -> Status {
            std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
            const Status s = _db._wal->readPageAt(page_no, out, horizon);
            if (!s.isNotFound())
                return s;
            if (page_no <= _db._dbFile->pageCount())
                return _db._dbFile->readPage(page_no, out);
            return Status::corruption(
                "snapshot page missing from WAL and file");
        };
        resetCasualSnapshot(
            std::make_unique<SnapshotCache>(
                _db._config.pageSize, _db._pager->reservedBytes(),
                pages, _db._pager->rootPage(), std::move(fetch)),
            horizon);
    }
    _activeRead = _casualSnap.get();
    _activeRoots = &_casualRoots;
    const Status s = op();
    _activeRead = nullptr;
    _activeRoots = nullptr;
    foldCasualStats();
    return s;
}

template <typename Op>
Status
Connection::withReadSnapshot(const Op &op)
{
    if (_snapshot) {
        _activeRead = _snapshot.get();
        _activeRoots = &_snapshotRoots;
        const Status s = op();
        _activeRead = nullptr;
        _activeRoots = nullptr;
        return s;
    }
    if (_db._mwActive)
        return casualReadMw(op);
    return casualReadSw(op);
}

Status
Connection::get(RowId key, ByteBuffer *value)
{
    if (_ws && _inWrite) {
        // Read through the workspace: sees this transaction's own
        // writes and records the pages read for commit validation.
        _db.chargeStatement(0);
        BTree tree(*_ws, _db._mwDefaultRoot);
        return tree.get(key, value);
    }
    return withReadSnapshot([&]() -> Status {
        PageNo root;
        NVWAL_RETURN_IF_ERROR(
            snapshotRoot(Database::kDefaultTable, &root));
        _db.chargeStatement(0);
        BTree tree(*_activeRead, root);
        return tree.get(key, value);
    });
}

Status
Connection::scan(RowId lo, RowId hi, const BTree::ScanCallback &visit)
{
    if (_ws && _inWrite) {
        _db.chargeStatement(0);
        BTree tree(*_ws, _db._mwDefaultRoot);
        return tree.scan(lo, hi, visit);
    }
    return withReadSnapshot([&]() -> Status {
        PageNo root;
        NVWAL_RETURN_IF_ERROR(
            snapshotRoot(Database::kDefaultTable, &root));
        _db.chargeStatement(0);
        BTree tree(*_activeRead, root);
        return tree.scan(lo, hi, visit);
    });
}

Status
Connection::count(std::uint64_t *out)
{
    if (_ws && _inWrite) {
        _db.chargeStatement(0);
        BTree tree(*_ws, _db._mwDefaultRoot);
        return tree.count(out);
    }
    return withReadSnapshot([&]() -> Status {
        PageNo root;
        NVWAL_RETURN_IF_ERROR(
            snapshotRoot(Database::kDefaultTable, &root));
        _db.chargeStatement(0);
        BTree tree(*_activeRead, root);
        return tree.count(out);
    });
}

// ---- write transactions --------------------------------------------

Status
Connection::begin()
{
    if (_inWrite)
        return Status::busy("a write transaction is already open");

    if (_db._mwActive) {
        // Optimistic: no lock taken. Pin the published floor and run
        // against a private workspace; validation happens at commit.
        std::uint32_t db_size = 0;
        const std::uint64_t floor =
            _db.mwBeginTxn(_lastCommitEpoch, &db_size, &_wsTxnSeq);
        _ws = std::make_unique<MwWorkspace>(
            _db._config.pageSize, _db._pager->reservedBytes(),
            _db._mwDefaultRoot, floor, db_size, &_db._mwPageCursor,
            [this, floor](PageNo page_no, ByteSpan out,
                          std::uint64_t *read_epoch) {
                return _db.mwFetchPage(page_no, floor, out, read_epoch);
            });
        _inWrite = true;
        return Status::ok();
    }

    // Announce the intent before blocking on the writer slot so a
    // committing leader's combining window waits for this txn.
    _db.noteWriteIntent();
    _writerLock.lock();
    const Status s = _db.beginFromConnection();
    if (!s.isOk()) {
        _writerLock.unlock();
        _db.endWriteIntent();
        return s;
    }
    _inWrite = true;
    return Status::ok();
}

Status
Connection::commit(const CommitOptions &options)
{
    if (!_inWrite)
        return Status::invalidArgument("no write transaction to commit");
    // Clear the flag before entering the engine: a simulated power
    // failure unwinds through the WAL append after the engine has
    // already closed the transaction, and the destructor must not
    // try to roll back what no longer exists.
    _inWrite = false;

    if (_ws) {
        std::unique_ptr<MwWorkspace> ws = std::move(_ws);
        std::uint64_t epoch = 0;
        const Status s = _db.mwCommitWorkspace(_slot, *ws, options,
                                               _wsTxnSeq, &epoch);
        // Remember the epoch for every durability level: the next
        // begin() waits for the published floor to cover it so the
        // connection always reads its own committed writes.
        if (s.isOk())
            _lastCommitEpoch = epoch;
        return s;
    }

    std::uint64_t epoch = 0;
    const Status s =
        _db.commitFromConnection(&_writerLock, options.durability,
                                 &epoch);
    if (s.isUnsupported()) {
        // The engine never touched the transaction; it is still open
        // and retryable at a stricter durability level.
        _inWrite = true;
        return s;
    }
    if (s.isOk() && options.durability == Durability::Async) {
        _lastCommitEpoch = epoch;
        if (options.waitForHarden && epoch != 0)
            return _db.waitForAsyncEpoch(epoch);
    }
    return s;
}

Status
Connection::commit(Durability durability)
{
    CommitOptions options;
    options.durability = durability;
    options.waitForHarden = durability != Durability::Async;
    return commit(options);
}

Status
Connection::rollback()
{
    if (!_inWrite)
        return Status::invalidArgument(
            "no write transaction to roll back");
    _inWrite = false;
    if (_ws) {
        const std::uint64_t floor = _ws->beginEpoch();
        _ws.reset();
        _db.mwEndTxn(floor);
        return Status::ok();
    }
    return _db.rollbackFromConnection(&_writerLock);
}

Status
Connection::prepare(std::uint64_t gtid)
{
    if (_db._mwActive)
        return Status::unsupported(
            "two-phase commit is not available in multi-writer mode");
    if (!_inWrite)
        return Status::invalidArgument(
            "no write transaction to prepare");
    // The transaction stays open and this connection keeps the writer
    // slot until decide(): a prepared shard admits no other writer.
    return _db.prepareFromConnection(gtid);
}

Status
Connection::decide(std::uint64_t gtid, bool commit)
{
    if (_db._mwActive)
        return Status::unsupported(
            "two-phase commit is not available in multi-writer mode");
    if (!_inWrite)
        return Status::invalidArgument(
            "no prepared transaction to decide");
    _inWrite = false;
    return _db.decideFromConnection(gtid, commit, &_writerLock);
}

// ---- statements ----------------------------------------------------

template <typename Op>
Status
Connection::withWriteTxn(const Op &op)
{
    if (_inWrite)
        return op();
    if (!_options.autoWriteTxn)
        return Status::invalidArgument(
            "no write transaction open: begin() first, or connect "
            "with ConnectOptions::autoWriteTxn");
    NVWAL_RETURN_IF_ERROR(begin());
    const Status s = op();
    if (!s.isOk()) {
        (void)rollback();
        return s;
    }
    return commit();
}

Status
Connection::insert(RowId key, ValueView value)
{
    return withWriteTxn([&]() -> Status {
        if (_db._mwActive) {
            _db.chargeStatement(value.size());
            BTree tree(*_ws, _db._mwDefaultRoot);
            return tree.insert(key, value.span());
        }
        return _db.insert(key, value);
    });
}

Status
Connection::update(RowId key, ValueView value)
{
    return withWriteTxn([&]() -> Status {
        if (_db._mwActive) {
            _db.chargeStatement(value.size());
            BTree tree(*_ws, _db._mwDefaultRoot);
            return tree.update(key, value.span());
        }
        return _db.update(key, value);
    });
}

Status
Connection::remove(RowId key)
{
    return withWriteTxn([&]() -> Status {
        if (_db._mwActive) {
            _db.chargeStatement(0);
            BTree tree(*_ws, _db._mwDefaultRoot);
            return tree.remove(key);
        }
        return _db.remove(key);
    });
}

} // namespace nvwal
