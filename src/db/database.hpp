/**
 * @file
 * The SQLite-like embedded database facade.
 *
 * One rowid-keyed table (B+-tree), a DRAM page cache, and a
 * selectable write-ahead-log mode:
 *
 *   - WalMode::FileStock     -- SQLite 3.8-style WAL file on flash
 *   - WalMode::FileOptimized -- + aligned frames & pre-allocation
 *   - WalMode::Nvwal         -- the paper's NVRAM write-ahead log,
 *                               in any NvwalConfig variant
 *
 * Transactions follow SQLite's WAL-mode concurrency model: a single
 * writer with an exclusive write lock (section 4.1), explicit
 * begin/commit/rollback and autocommit for standalone statements,
 * plus any number of concurrent snapshot readers obtained through
 * Database::connect(). CPU costs of query processing are charged to
 * the simulated clock per statement and per transaction, calibrated
 * in CostModel.
 *
 * Locking discipline (acquire strictly in this order):
 *   1. _writerMutex  -- serializes write transactions begin..commit;
 *   2. _engineMutex  -- the big engine lock guarding the pager, WAL,
 *      catalog, tables, and MetricsRegistry (recursive: public
 *      operations nest);
 *   3. _commitQueueMutex / _ckptMutex -- leaf locks, never held while
 *      acquiring the ones above.
 * The simulated clock is atomic and is the only lock-free piece of
 * shared engine state; snapshot readers otherwise run on private
 * SnapshotCaches and take the engine lock only to fetch a missing
 * page.
 */

#ifndef NVWAL_DB_DATABASE_HPP
#define NVWAL_DB_DATABASE_HPP

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.hpp"
#include "common/bytes.hpp"
#include "core/nvwal_log.hpp"
#include "db/env.hpp"
#include "db/flight_recorder.hpp"
#include "db/mw_state.hpp"
#include "pager/pager.hpp"
#include "wal/file_wal.hpp"
#include "wal/rollback_journal.hpp"

namespace nvwal
{

/** Which logging/journaling implementation backs the database. */
enum class WalMode
{
    /** SQLite's classic rollback journal (DELETE mode) on flash. */
    RollbackJournal,
    FileStock,
    FileOptimized,
    Nvwal,
};

/**
 * Per-transaction durability level (DESIGN.md §11). Selected at
 * commit time, so one connection can mix levels freely.
 */
enum class Durability
{
    /** Durable on return (today's behavior; the paper's baseline). */
    Sync,
    /**
     * Durable on return, batched with concurrent committers through
     * the group-commit queue (identical to Sync on the direct
     * single-threaded API).
     */
    Group,
    /**
     * Checksum commit (paper §3.2): the commit returns as soon as
     * the frames and commit mark are *written*, with no flush or
     * persist barrier. The transaction becomes guaranteed durable
     * when its epoch hardens -- within the configured
     * bounded-staleness window -- and recovery keeps the longest
     * valid committed prefix of un-hardened epochs.
     */
    Async,
};

/**
 * How a connection commit behaves (DESIGN.md §13). Replaces the
 * positional `commit(Durability)` overload: call sites name the knobs
 * they change and inherit defaults for the rest.
 */
struct CommitOptions
{
    Durability durability = Durability::Group;
    /**
     * For Durability::Async: block until the commit's epoch hardens
     * before returning (the ack itself is still issued without a
     * barrier, so group batching is preserved). Ignored -- always
     * effectively true -- for Sync/Group.
     */
    bool waitForHarden = true;
    /**
     * Multi-writer mode only: how many times Connection::transact()
     * re-runs its body after an optimistic-validation Conflict before
     * surfacing the status. Plain commit() never retries (the
     * transaction body would need re-running).
     */
    int maxConflictRetries = 0;
};

/** How a Connection opened by Database::connect behaves. */
struct ConnectOptions
{
    /**
     * Let write statements outside an explicit transaction auto-open
     * one (the pre-§13 implicit behavior). Off by default: a write
     * statement without begin() fails with InvalidArgument so a
     * forgotten begin() cannot silently run N one-statement
     * transactions.
     */
    bool autoWriteTxn = false;
};

/** Database configuration. */
struct DbConfig
{
    std::string name = "app.db";
    WalMode walMode = WalMode::Nvwal;
    /** NVWAL scheme knobs (walMode == Nvwal). */
    NvwalConfig nvwal;
    std::uint32_t pageSize = 4096;
    /**
     * Reserved bytes per page. Unset picks the paper's setting for
     * the mode: 0 for the stock WAL and the rollback journal, 24
     * otherwise (the early-split/aligned-frame optimization of
     * section 5.4, also applied to NVWAL).
     */
    std::optional<std::uint32_t> reservedBytes;
    /** Auto-checkpoint threshold in frames (SQLite default: 1000). */
    std::uint64_t checkpointThreshold = 1000;
    bool autoCheckpoint = true;
    /**
     * Incremental auto-checkpointing: instead of one blocking
     * checkpoint at the threshold, write back at most
     * checkpointStepPages pages after each commit until the log can
     * be truncated. Bounds the per-commit latency spike.
     */
    bool incrementalCheckpoint = false;
    std::uint32_t checkpointStepPages = 8;
    /**
     * Run a background checkpointer thread that drains the log with
     * incremental checkpointStep() rounds whenever a commit pushes
     * framesSinceCheckpoint() past checkpointThreshold, so foreground
     * commits never absorb the write-back. While it runs, the
     * in-commit auto-checkpoint is replaced by a wakeup of the
     * thread. Snapshot pins bound its progress (the WAL refuses to
     * truncate past the oldest pin).
     */
    bool backgroundCheckpointer = false;
    /**
     * Bounded-staleness window for Durability::Async: a harden is
     * forced once this many epochs (async commit batches) are
     * pending, so at most asyncMaxEpochs epochs can be lost to a
     * crash. Must be >= 1.
     */
    std::uint32_t asyncMaxEpochs = 4;
    /**
     * Second half of the staleness bound: a harden is forced when
     * the oldest pending epoch has been un-hardened for this much
     * simulated time. 0 disables the age bound.
     */
    std::uint64_t asyncMaxStalenessNs = 1000000;  // 1 ms
    /**
     * Retire pending epochs from a background durability thread
     * (NVLog-style background syncing) instead of inline at the
     * staleness bound. Off by default: the crash-sweep harness needs
     * the deterministic inline schedule.
     */
    bool backgroundDurability = false;
    /**
     * Set by ShardedDatabase on every member it opens. Members share
     * one Env (and so one NVRAM heap): whole-heap maintenance that is
     * safe on a standalone database -- vacuum()'s reopen-driven heap
     * recovery in particular -- would reclaim blocks other shards
     * hold in flight, so it is refused while this is set.
     */
    bool shardMember = false;
    /**
     * NVRAM flight recorder (DESIGN.md §12): a persistent telemetry
     * ring next to the WAL, appended with plain stores only (zero
     * flushes/barriers on every commit path) and parsed into a
     * RecoveryReport on open. Only effective with WalMode::Nvwal;
     * silently off when the heap has no namespace slot left.
     */
    bool flightRecorder = true;
    /** Ring capacity in 40-byte records (clamped to >= 16). */
    std::uint32_t frRingRecords = 512;
    /**
     * Sample the counter set below into CounterSnapshot records every
     * N committed group batches. 0 disables sampling.
     */
    std::uint32_t frSnapshotEveryBatches = 64;
    /**
     * Counters sampled by the periodic snapshot. Empty picks a small
     * default set; every name must resolve via frCounterNameForHash
     * to decode symbolically in forensics output.
     */
    std::vector<std::string> frSnapshotCounters;
    /** Shard ordinal stamped into the ring header (set by the shard
     *  layer together with shardMember). */
    std::uint32_t frShard = 0;
    /**
     * Multi-writer engine (DESIGN.md §13): each Connection appends
     * commits to a private NVRAM log ("<wal ns>-cNN") ordered by a
     * global epoch counter, with optimistic page-level validation at
     * commit instead of the writer mutex. Requires WalMode::Nvwal
     * with SyncMode::Lazy; incompatible with shard membership and the
     * background checkpointer/durability threads (commits already
     * never block on write-back or barriers). The direct Database
     * statement API remains available through an internal root
     * connection.
     */
    bool multiWriter = false;
    /**
     * Number of per-connection logs (multiWriter only, 1..32).
     * Connections hash onto log slots, so more logs than concurrent
     * writers just costs namespace slots; fewer serializes appends of
     * the connections sharing a slot (commits stay optimistic).
     */
    std::uint32_t writerLogs = 8;
};

/**
 * Validate @p config before any engine state is built: page size
 * bounds (nonzero, <= 64 KiB, frame headers store a 16-bit length),
 * non-empty database name, and an NVWAL heap namespace that fits the
 * heap's fixed-width root-directory slots. Database::open runs this
 * first, so a bad configuration fails with a descriptive status
 * instead of asserting deep inside the pager or heap.
 */
Status validateDbConfig(const DbConfig &config);

class Database;
class Connection;

/**
 * Handle to one named table (a rowid-keyed B+-tree registered in the
 * database catalog). Obtained from Database::openTable(); owned by
 * the Database and invalidated by dropTable() and rollback().
 */
class Table
{
  public:
    Status insert(RowId key, ValueView value);
    Status update(RowId key, ValueView value);
    Status remove(RowId key);
    Status get(RowId key, ByteBuffer *value);
    Status scan(RowId lo, RowId hi, const BTree::ScanCallback &visit);
    Status count(std::uint64_t *out);

    const std::string &name() const { return _name; }
    BTree &btree() { return _tree; }

  private:
    friend class Database;
    Table(Database &db, std::string name, RowId catalog_id, PageNo root);

    Database &_db;
    std::string _name;
    RowId _catalogId;
    BTree _tree;
};

/**
 * An embedded database: one writer at a time, any number of snapshot
 * readers (through Connection handles).
 */
class Database
{
  public:
    /** The table the record-level convenience methods operate on. */
    static constexpr const char *kDefaultTable = "main";
    /** Open (and recover) a database on @p env. */
    static Status open(Env &env, DbConfig config,
                       std::unique_ptr<Database> *out);

    /**
     * Reconstruct a database from the media image that survived a
     * power failure: resets @p out, drops the file system's volatile
     * state, re-attaches the NVRAM heap and runs full recovery. This
     * is the entry point crash tests and the faultsim harness use
     * after catching a PowerFailure thrown by the NVRAM device (which
     * has already applied its survival policy by then). @p out may
     * hold the pre-crash database; it is destroyed first. Any
     * Connection into the pre-crash handle must be destroyed before
     * calling this.
     */
    static Status recoverAfterCrash(Env &env, DbConfig config,
                                    std::unique_ptr<Database> *out);

    ~Database();
    Database(const Database &) = delete;
    Database &operator=(const Database &) = delete;

    // ---- connections ------------------------------------------------

    /**
     * Open a Connection: a per-thread handle that can run snapshot
     * read transactions concurrently with the single writer and
     * enters write transactions through the group-commit queue. The
     * connection must be destroyed before the Database.
     */
    Status connect(std::unique_ptr<Connection> *out);

    /** connect() with per-connection behavior knobs. */
    Status connect(const ConnectOptions &options,
                   std::unique_ptr<Connection> *out);

    // ---- transactions ---------------------------------------------

    /** Begin an explicit write transaction. */
    Status begin();

    /**
     * Commit: log dirty pages + commit mark, then auto-checkpoint.
     * Durability::Async returns before the persist barrier; the
     * transaction's epoch (see lastCommitEpoch()) hardens within the
     * configured staleness window, at the next strict commit or
     * checkpoint, or via flushAsyncCommits()/waitForAsyncEpoch().
     */
    Status commit(Durability durability = Durability::Sync);

    /** Discard all uncommitted changes. */
    Status rollback();

    bool inTransaction() const;

    // ---- tables ----------------------------------------------------

    /** Create a new, empty table. Fails if the name exists. */
    Status createTable(const std::string &name);

    /** Open a handle to an existing table; NotFound otherwise. */
    Status openTable(const std::string &name, Table **out);

    /**
     * Drop a table: free all its pages to the database free list and
     * remove it from the catalog. The default table cannot be
     * dropped. Existing Table handles to it become invalid.
     */
    Status dropTable(const std::string &name);

    /** Names of all tables, in creation order. */
    Status listTables(std::vector<std::string> *out);

    // ---- statements (autocommit when no transaction is open) -------
    // These operate on the default table ("main").

    Status insert(RowId key, ValueView value);
    Status update(RowId key, ValueView value);
    Status remove(RowId key);
    Status get(RowId key, ByteBuffer *value);
    Status scan(RowId lo, RowId hi, const BTree::ScanCallback &visit);
    Status count(std::uint64_t *out);

    // ---- asynchronous durability (DESIGN.md §11) --------------------

    /**
     * Harden every pending async epoch now: one coalesced flush +
     * persist barrier over all of their frames, then complete the
     * acks. The clean-shutdown companion of Durability::Async.
     */
    Status flushAsyncCommits();

    /**
     * Block until epoch @p epoch is hardened. Without a background
     * durability thread this hardens inline (equivalent to
     * flushAsyncCommits() when the epoch is still pending).
     */
    Status waitForAsyncEpoch(std::uint64_t epoch);

    /** Async commits acknowledged but not yet guaranteed durable. */
    std::uint64_t asyncAcksPending() const;

    /** Newest hardened epoch (0 = none issued or none hardened). */
    std::uint64_t hardenedEpoch() const;

    /**
     * Epoch assigned to this handle's most recent Durability::Async
     * commit (0 when none, or when the commit dirtied nothing and
     * was trivially durable).
     */
    std::uint64_t lastCommitEpoch() const;

    // ---- maintenance -----------------------------------------------

    /** Force a checkpoint (write-back + log truncation). */
    Status checkpoint();

    /**
     * One incremental checkpoint round: write back at most
     * @p max_pages pages (0 = the configured checkpointStepPages).
     * Busy inside a write transaction. Snapshot pins clamp how far
     * the .db file advances; see WriteAheadLog::checkpointStep().
     */
    Status checkpointStep(std::uint32_t max_pages, bool *done);

    /**
     * Rebuild the database compactly (SQLite VACUUM): checkpoint,
     * copy every table in key order into a fresh file (dropping
     * free-list pages, freeblock fragmentation and dead overflow
     * chains), then atomically swap the files. Fails with Busy
     * inside a transaction or while any snapshot is pinned. Table
     * handles are invalidated.
     */
    Status vacuum();

    /**
     * Structural validation of the catalog and every table (page
     * invariants, key ordering, uniform leaf depth).
     */
    Status verifyIntegrity();

    // ---- two-phase commit (engine-locked; used by the shard layer) --

    /**
     * Resolve a transaction recovery left in doubt: persist the
     * decision in this database's WAL and apply or discard the
     * staged frames. On commit the pager is resynchronized with the
     * log (page count, dropped clean pages) so the applied frames
     * become visible. NotFound when @p gtid is not in doubt here.
     */
    Status resolvePreparedTxn(std::uint64_t gtid, bool commit);

    /** Gtids of recovered PREPAREs still awaiting a decision. */
    std::vector<std::uint64_t> inDoubtTransactions() const;

    /** Durable decision lookup for @p gtid (see WAL counterpart). */
    bool lookupDecision(std::uint64_t gtid, bool *commit) const;

    /** Largest gtid in any surviving PREPARE/DECISION record. */
    std::uint64_t walMaxSeenGtid() const;

    /** Truncation guard passthroughs (WriteAheadLog::acquire...). */
    void holdWalForTwoPhase();
    void releaseWalTwoPhaseHold();

    // ---- crash forensics (DESIGN.md §12) ----------------------------

    /**
     * Post-mortem built on open from the flight-recorder ring that
     * survived in NVRAM, cross-checked against the recovered WAL.
     * Immutable for the handle's lifetime. recorderEnabled is false
     * when the recorder is off (config or non-NVWAL mode).
     */
    const RecoveryReport &recoveryReport() const { return _recoveryReport; }

    /**
     * Flush + persist the recorder ring now (engine-locked). Tests
     * and tools only: commit/checkpoint paths never publish, so the
     * recorder provably adds zero barriers and zero flush syscalls
     * to every measured path.
     */
    Status publishFlightRecorder();

    // ---- introspection ----------------------------------------------

    WriteAheadLog &wal() { return *_wal; }
    Pager &pager() { return *_pager; }
    Env &env() { return _env; }
    const DbConfig &config() const { return _config; }

    /**
     * Engine-locked view of WAL frames not yet checkpointed: safe to
     * poll from any thread, e.g. to watch the background checkpointer
     * drain. wal().framesSinceCheckpoint() gives the same number but
     * is only safe while nothing else runs.
     */
    std::uint64_t walFramesSinceCheckpoint() const;

    /** Engine-locked read of a metrics counter (see statValue note). */
    std::uint64_t statValue(const std::string &name) const;

    /** Engine-locked read of a metrics gauge. */
    std::uint64_t statGauge(const std::string &name) const;

    // ---- multi-writer introspection (DESIGN.md §13) -----------------

    /** True when the multi-writer engine is running. */
    bool multiWriterActive() const { return _mwActive; }

    /** Contiguous published epoch floor (multi-writer mode). */
    std::uint64_t mwPublishedEpoch() const;

    /** Durable epoch floor (multi-writer mode). */
    std::uint64_t mwHardenedEpoch() const;

    /**
     * NVRAM blocks reachable from the multi-writer anchor and every
     * per-connection log (leak accounting in the crash sweeps; 0 when
     * the engine is off).
     */
    std::uint64_t mwReachableNvramBlocks() const;

    /**
     * Bumped on every engine (re)build -- open, crash recovery, and
     * the vacuum file swap. Cached reader state keyed on a WAL commit
     * sequence must also key on this: a rebuild resets the sequence
     * while moving every table root.
     */
    std::uint64_t engineGeneration() const
    { return _engineGeneration.load(std::memory_order_acquire); }

  private:
    friend class Table;
    friend class Connection;

    /**
     * One transaction's frames queued for group commit. The queued
     * entry owns deep copies of the dirty pages so the committing
     * writer can release the write lock (letting the next writer
     * mutate the shared cache) while the batch is still in flight.
     */
    struct GroupEntry
    {
        struct Frame
        {
            PageNo pageNo = kNoPage;
            ByteBuffer page;
            DirtyRanges ranges;
            /** Pager-observed dirty-ratio EWMA (see FrameWrite). */
            std::uint8_t observedDirtyPct = 0;
        };
        /**
         * What the leader appends for this entry: a plain commit
         * (frames + commit mark), a 2PC PREPARE (frames + PREPARE
         * record under gtid), or a 2PC DECISION record (no frames).
         */
        enum class Kind
        {
            Commit,
            Prepare,
            Decision,
        };
        Kind kind = Kind::Commit;
        std::uint64_t gtid = 0;          //!< Prepare/Decision only
        bool decisionCommit = false;     //!< Decision only
        /** Async commits append without barriers (Commit kind only). */
        bool async = false;
        /** Out: epoch assigned to an async entry by the leader. */
        std::uint64_t epoch = 0;
        /** Transaction sequence at begin (flight-recorder ack id). */
        std::uint64_t txnSeq = 0;
        std::vector<Frame> frames;
        std::uint32_t dbSizePages = 0;
        /**
         * True when the owner already published the transaction to
         * the shared cache (marked pages clean) before durability; a
         * failed append then poisons the database instead of being
         * retryable.
         */
        bool finalized = false;
        bool done = false;        //!< guarded by _commitQueueMutex
        Status status;
    };

    Database(Env &env, DbConfig config);

    Status openInternal();
    Status autocommitBegin(bool *started);
    Status autocommitEnd(bool started, Status op_status);
    void chargeStatement(std::size_t payload_bytes);

    /** Scan the catalog for @p name. */
    Status findCatalogEntry(const std::string &name, RowId *id,
                            PageNo *root, bool *found);
    Status defaultTable(Table **out);

    /** Engine-locked bookkeeping shared by both begin paths. */
    Status beginTxnBody();
    /** Engine-locked rollback work (no lock release). */
    void rollbackBody();

    // ---- group commit ----------------------------------------------

    /** Deep-copy the dirty page set; false when nothing is dirty. */
    bool collectDirtyFrames(GroupEntry *entry);

    /** Borrow a queued entry's pages as one WAL transaction. */
    static TxnFrames entryToTxn(const GroupEntry &e);

    /**
     * Queue @p entry and drive it to durability: the first committer
     * becomes the leader and appends every queued transaction as one
     * WAL group (one barrier pair for the whole batch); the rest wait
     * as followers. @p release_after_enqueue, when non-null, is the
     * caller's write lock, released as soon as the entry is queued so
     * the next writer can overlap its transaction body with this
     * batch -- that release order (queue, then unlock) is what keeps
     * WAL append order equal to writer-lock order.
     */
    Status submitAndWait(GroupEntry *entry,
                         std::unique_lock<std::mutex> *release_after_enqueue);

    /**
     * Write-intent bookkeeping for the group-commit combining window.
     * An intent is registered *before* the writer mutex is acquired
     * (both begin paths) and released exactly once when that
     * transaction stops being a commit candidate: after a durable
     * commit, after rollback, on a failed begin, or when the commit
     * turns out to be empty. The leader's combining wait uses the
     * intent count -- not the queue depth -- so it keeps the batch
     * open while writers that already announced themselves are still
     * running their transaction bodies.
     */
    void noteWriteIntent();
    void endWriteIntent();

    /** Leader body: append one batch under the engine lock. */
    Status appendGroup(const std::vector<GroupEntry *> &batch);

    /** Post-commit auto-checkpoint (inline or checkpointer wakeup). */
    Status maybeCheckpointAfterCommit();

    // ---- flight recorder (DESIGN.md §12) ----------------------------

    /**
     * Append one ring record if the recorder is live. Caller holds
     * the engine lock (every call site does); plain stores only.
     */
    void frRecord(FrRecordType type, std::uint8_t flags,
                  std::uint16_t a16, std::uint32_t a32, std::uint64_t a64,
                  std::uint64_t b64 = 0);
    /** Checkpoint round id truncated for record stamping (0 for
     *  non-NVWAL logs, which never carry durable-claim records). */
    std::uint32_t frCheckpointId32() const;
    /** Record a completed harden: marks + newest hardened epoch. */
    void frRecordHarden(FrHardenReason reason);
    /** Record truncation if the WAL's checkpoint round advanced past
     *  @p ckpt_before, and rebase the marks-since-checkpoint count. */
    void frNoteTruncation(std::uint64_t ckpt_before);
    /** Periodic counter sampling, every frSnapshotEveryBatches. */
    void frMaybeSnapshotCounters();
    /** Create/attach the ring and build _recoveryReport (open path,
     *  after WAL recovery; @p stats_before spans _wal->recover()). */
    void frOpenAndBuildReport(const StatsSnapshot &stats_before);

    // ---- durability-epoch pipeline (DESIGN.md §11) ------------------

    /**
     * Issue the next epoch for @p acks async commits appended up to
     * the WAL's current commitSeq(). Caller holds the engine lock.
     */
    std::uint64_t registerAsyncEpoch(std::uint32_t acks);

    /**
     * Complete the acks of every pending epoch at or below the WAL's
     * hardenedSeq() (counters, gauge, cv). Caller holds the engine
     * lock; called after anything that may have advanced the horizon
     * (harden, strict append, checkpoint).
     */
    void completePendingAcks();

    /**
     * Enforce the bounded-staleness window: harden inline (or kick
     * the durability thread) when the pending-epoch count or the
     * oldest epoch's age crosses the configured bound. Caller holds
     * the engine lock.
     */
    Status maybeHardenAsync();

    // ---- background durability thread -------------------------------

    void durabilityMain();
    void kickDurability();
    void stopDurability();

    // ---- Connection entry points (writer lock held by the caller) --

    Status beginFromConnection();
    Status commitFromConnection(std::unique_lock<std::mutex> *writer_lock,
                                Durability durability,
                                std::uint64_t *ack_epoch);
    Status rollbackFromConnection(std::unique_lock<std::mutex> *writer_lock);
    /**
     * 2PC phase 1: persist the open transaction's frames plus a
     * PREPARE record for @p gtid through the group-commit queue. The
     * transaction stays open and the caller KEEPS the writer lock --
     * the shard remains write-locked until decideFromConnection, so
     * at most one staged transaction exists per shard.
     */
    Status prepareFromConnection(std::uint64_t gtid);
    /**
     * 2PC phase 2: persist the DECISION record for @p gtid, apply or
     * roll back the local transaction accordingly, then release
     * @p writer_lock. Ends the write transaction either way.
     */
    Status decideFromConnection(std::uint64_t gtid, bool commit,
                                std::unique_lock<std::mutex> *writer_lock);
    void releaseConnection(Connection *conn);

    // ---- multi-writer engine (DESIGN.md §13) ------------------------
    //
    // Lock order within the engine: _mwCkptMutex, then _mwHardenMutex,
    // then a slot mutex, then _mwMutex. The engine lock may be taken
    // before _mwMutex (open path), never after. After activation every
    // flight-recorder append happens under _mwMutex, which replaces
    // the engine lock as the recorder's serialization.

    /**
     * Tail of openInternal when config.multiWriter: attach/create the
     * persistent anchor, recover the per-connection logs, merge their
     * surviving epochs above the anchor's base into the .db file (in
     * global epoch order, keeping each log's prefix-consistent slice
     * and stopping at the first gap), persist the advanced anchor,
     * truncate the logs, and start the engine. @p stats_before spans
     * the whole recovery so the rebuilt forensics report sees the
     * per-connection logs' recovery counters too.
     */
    Status mwActivate(const StatsSnapshot &stats_before);

    /**
     * Serve @p page_no as of published floor @p floor: the overlay
     * version if one exists at or below the floor, else the .db base
     * image. @p read_epoch (optional) gets the version's epoch, or
     * @p floor when the base image is current.
     */
    Status mwFetchPage(PageNo page_no, std::uint64_t floor, ByteSpan out,
                       std::uint64_t *read_epoch);

    /**
     * Open an optimistic write transaction: record its begin floor in
     * _mwActiveBegins (checkpoint clamp) and return it; @p db_size
     * gets the database size at that floor and @p txn_seq the
     * forensics transaction id for the eventual CommitAck. Waits for
     * the published floor to reach @p min_floor (the connection's own
     * last commit epoch) so every connection reads its own writes.
     */
    std::uint64_t mwBeginTxn(std::uint64_t min_floor,
                             std::uint32_t *db_size,
                             std::uint64_t *txn_seq);

    /** Close a write transaction that did not publish an epoch
     *  (rollback, conflict, empty write set, failed append). */
    void mwEndTxn(std::uint64_t begin_floor);
    /** Same, caller already holds _mwMutex. */
    void mwEndTxnLocked(std::uint64_t begin_floor);

    /**
     * Validate + claim + append + publish one workspace commit from
     * connection slot @p slot. Returns Conflict (no side effects
     * beyond the conflict counter) when a read-set page was
     * republished after the workspace's begin floor; poisons the
     * engine if the append fails after its epoch was claimed.
     */
    Status mwCommitWorkspace(std::uint32_t slot, MwWorkspace &ws,
                             const CommitOptions &opts,
                             std::uint64_t txn_seq,
                             std::uint64_t *epoch_out);

    /**
     * Group harden: wait until the published floor reaches @p target,
     * then run ONE shared persist barrier. Every commit flushed its
     * frame lines before publishing, so the single barrier makes all
     * published epochs at or below the sampled floor durable.
     */
    Status mwHardenUpTo(std::uint64_t target, FrHardenReason reason);

    /**
     * Full multi-writer checkpoint: harden the published floor, write
     * the newest overlay version of every page at or below the clamp
     * floor (pins and active begins hold it back) to the .db file,
     * fsync, persist the advanced anchor, prune the overlay, and
     * truncate every log whose epochs are all covered.
     */
    Status mwCheckpoint();
    /** Checkpoint body; caller holds _mwCkptMutex. */
    Status mwCheckpointLocked();

    /** Post-commit trigger: run mwCheckpoint() once the configured
     *  frame threshold is crossed and no other round is active. */
    void mwMaybeCheckpoint();

    /** Pin a read snapshot at the current published floor; @p db_size
     *  gets the size at that floor. Waits for the floor to reach
     *  @p min_floor first (a connection passes its last commit epoch
     *  so its reads observe its own writes). */
    std::uint64_t mwPinRead(std::uint32_t *db_size,
                            std::uint64_t min_floor = 0);
    void mwUnpinRead(std::uint64_t floor);

    /** Flight-recorder append under _mwMutex (the engine lock no
     *  longer serializes the ring once the engine is active). */
    void mwFrRecord(FrRecordType type, std::uint8_t flags,
                    std::uint16_t a16, std::uint32_t a32,
                    std::uint64_t a64, std::uint64_t b64 = 0);

    // ---- background checkpointer -----------------------------------

    void checkpointerMain();
    void kickCheckpointer();
    void stopCheckpointer();

    Env &_env;
    DbConfig _config;
    std::unique_ptr<DbFile> _dbFile;
    std::unique_ptr<Pager> _pager;
    std::unique_ptr<WriteAheadLog> _wal;
    /** Non-null when _wal is the NVRAM log (checkpointId access). */
    NvwalLog *_nvwalLog = nullptr;

    // ---- flight recorder (DESIGN.md §12) ----------------------------

    std::unique_ptr<FlightRecorder> _flightRecorder;
    RecoveryReport _recoveryReport;
    /**
     * WAL commitSeq at the last observed truncation. Recovered
     * commit sequences restart at marks-since-checkpoint, so
     * `commitSeq - _frMarksBase` is the media-absolute "commit marks
     * since the current checkpoint round" every durable-claim record
     * carries. Guarded by the engine lock.
     */
    std::uint64_t _frMarksBase = 0;
    std::uint32_t _frBatchesSinceSnapshot = 0;
    /** Catalog tree at the primary root (page 2): id -> entry. */
    std::unique_ptr<BTree> _catalog;
    std::map<std::string, std::unique_ptr<Table>> _tables;
    bool _inTxn = false;
    std::uint32_t _txnStartPageCount = 0;
    /** Monotonic id of the open/last transaction (trace attribution). */
    std::uint64_t _txnSeq = 0;
    /** Sim time at begin() of the open transaction. */
    SimTime _txnBeginNs = 0;
    /**
     * Set when a group append failed after its transactions were
     * already published to the shared cache; every later transaction
     * fails with this status until the database is reopened.
     */
    Status _poisoned = Status::ok();

    // ---- concurrency state ------------------------------------------

    /** Serializes write transactions (begin .. commit/rollback). */
    std::mutex _writerMutex;
    /**
     * Big engine lock: pager, WAL, catalog, tables, metrics.
     * Recursive because public operations nest (commit ->
     * checkpoint, statements -> autocommit).
     */
    mutable std::recursive_mutex _engineMutex;
    /**
     * Held across Database-level (non-Connection) write transactions.
     * The direct API is single-threaded by contract; concurrent
     * writers must use Connections.
     */
    std::unique_lock<std::mutex> _dbWriterLock;

    std::mutex _commitQueueMutex;
    std::condition_variable _commitCv;
    std::vector<GroupEntry *> _commitQueue;
    bool _groupLeaderActive = false;
    /**
     * Writers between begin-intent and transaction close. Atomic so
     * begin paths can register themselves before taking any lock;
     * decrements happen under _commitQueueMutex so the leader's
     * combining wait cannot miss the wakeup.
     */
    std::atomic<std::uint32_t> _writeIntents{0};

    std::thread _checkpointer;
    std::mutex _ckptMutex;
    std::condition_variable _ckptCv;
    bool _ckptStop = false;
    bool _ckptKick = false;

    // ---- durability-epoch pipeline ----------------------------------

    /** One batch of async commits awaiting its persist barrier. */
    struct AsyncEpoch
    {
        std::uint64_t epoch = 0;
        CommitSeq seq = 0;        //!< WAL commitSeq when issued
        std::uint32_t acks = 0;   //!< transactions acked against it
        SimTime issuedNs = 0;     //!< sim time at issue (age bound)
    };
    /**
     * Leaf lock guarding the epoch deque and ack bookkeeping (same
     * tier as _commitQueueMutex/_ckptMutex: never held while taking
     * the engine lock).
     */
    mutable std::mutex _asyncMutex;
    std::condition_variable _asyncCv;
    std::vector<AsyncEpoch> _asyncEpochs;     //!< pending, FIFO
    std::uint64_t _epochSequencer = 0;        //!< last epoch issued
    std::uint64_t _hardenedEpoch = 0;         //!< newest completed
    std::uint64_t _asyncAcksPending = 0;
    std::uint64_t _lastCommitEpoch = 0;       //!< direct-API handle
    bool _asyncAbandoned = false;             //!< shutdown: stop waits

    std::thread _durabilityThread;
    std::mutex _durMutex;
    std::condition_variable _durCv;
    bool _durStop = false;
    bool _durKick = false;

    std::uint32_t _openConnections = 0;  //!< guarded by _engineMutex
    std::uint32_t _nextConnSlot = 0;     //!< guarded by _engineMutex

    // ---- multi-writer engine state (DESIGN.md §13) ------------------

    /** One per-connection NVRAM log and its append serialization. */
    struct MwSlot
    {
        std::unique_ptr<NvwalLog> log;
        /** Serializes appends by connections sharing this slot; held
         *  while writeTxnEpoch + flushRuns run, released before the
         *  epoch publishes under _mwMutex. Mutable so const block
         *  accounting can sample the log. */
        mutable std::mutex mutex;
        std::uint64_t lastAppendedEpoch = 0;  //!< guarded by mutex
    };

    /** An epoch between claim and publish (guarded by _mwMutex). */
    struct MwPending
    {
        std::uint64_t epoch = 0;
        std::uint32_t slot = 0;
        std::uint32_t dbSizePages = 0;
        bool appended = false;
    };

    bool _mwActive = false;
    NvOffset _mwMetaOff = kNullNvOffset;
    std::uint64_t _mwGeneration = 0;
    std::vector<std::unique_ptr<MwSlot>> _mwSlots;

    /**
     * Innermost multi-writer lock: epoch claim/publish, the overlay,
     * page epochs, pins, active begins, pending queue, poison status,
     * and (after activation) the flight recorder.
     */
    mutable std::mutex _mwMutex;
    std::condition_variable _mwCv;
    std::uint64_t _mwEpoch = 0;      //!< last epoch claimed
    std::uint64_t _mwPublished = 0;  //!< contiguous published floor
    std::uint64_t _mwHardened = 0;   //!< durable floor
    std::uint64_t _mwEpochBase = 0;  //!< merged into the .db file
    std::uint32_t _mwDbSize = 0;     //!< size at _mwPublished
    /** Size at selected epochs <= _mwPublished (checkpoint clamp). */
    std::map<std::uint64_t, std::uint32_t> _mwDbSizeByEpoch;
    PageVersionMap _mwOverlay;
    /** page -> newest published epoch (validation; pruned with the
     *  overlay, so an absent page passes validation by design). */
    std::map<PageNo, std::uint64_t> _mwPageEpochs;
    std::deque<MwPending> _mwPending;
    std::multiset<std::uint64_t> _mwPins;
    std::multiset<std::uint64_t> _mwActiveBegins;
    /** Post-claim append failure: every later commit/harden fails
     *  with this until reopen (multi-writer twin of _poisoned). */
    Status _mwPoisoned = Status::ok();
    std::uint64_t _mwTxnSeq = 0;     //!< forensics ack attribution

    /** Serializes group hardens (one barrier covers many epochs). */
    std::mutex _mwHardenMutex;
    /** Serializes checkpoint rounds; above _mwHardenMutex. */
    std::mutex _mwCkptMutex;
    /**
     * Leaf lock serializing .db file access once the engine runs
     * multi-threaded (checkpoint write-back vs. reader base-image
     * fetches). Never held while acquiring any other lock.
     */
    mutable std::mutex _mwFileMutex;

    /** Shared page-number cursor (= current db size in pages). */
    std::atomic<std::uint32_t> _mwPageCursor{0};
    /** Write-set frames appended since the last checkpoint round. */
    std::atomic<std::uint64_t> _mwFramesSinceCkpt{0};
    std::atomic<std::uint64_t> _engineGeneration{0};

    /** Root of the default table (resolved once at activation; DDL is
     *  refused in multi-writer mode, so it never moves). */
    PageNo _mwDefaultRoot = kNoPage;
    /** Internal connection backing the direct Database statement API
     *  in multi-writer mode. Destroyed first in ~Database. */
    std::unique_ptr<Connection> _rootConn;

    /** Inputs stashed by frOpenAndBuildReport so mwActivate can
     *  rebuild the report after the cross-log merge. */
    FlightRecording _frParsedRecording;
    FrRecoveredWalState _frWalState;
    StatsSnapshot _frStatsBefore;
};

} // namespace nvwal

#endif // NVWAL_DB_DATABASE_HPP
