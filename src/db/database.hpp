/**
 * @file
 * The SQLite-like embedded database facade.
 *
 * One rowid-keyed table (B+-tree), a DRAM page cache, and a
 * selectable write-ahead-log mode:
 *
 *   - WalMode::FileStock     -- SQLite 3.8-style WAL file on flash
 *   - WalMode::FileOptimized -- + aligned frames & pre-allocation
 *   - WalMode::Nvwal         -- the paper's NVRAM write-ahead log,
 *                               in any NvwalConfig variant
 *
 * Transactions follow SQLite's serverless model: a single writer
 * with an exclusive database lock (section 4.1), explicit
 * begin/commit/rollback, and autocommit for standalone statements.
 * CPU costs of query processing are charged to the simulated clock
 * per statement and per transaction, calibrated in CostModel.
 */

#ifndef NVWAL_DB_DATABASE_HPP
#define NVWAL_DB_DATABASE_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.hpp"
#include "core/nvwal_log.hpp"
#include "db/env.hpp"
#include "wal/file_wal.hpp"
#include "wal/rollback_journal.hpp"

namespace nvwal
{

/** Which logging/journaling implementation backs the database. */
enum class WalMode
{
    /** SQLite's classic rollback journal (DELETE mode) on flash. */
    RollbackJournal,
    FileStock,
    FileOptimized,
    Nvwal,
};

/** Database configuration. */
struct DbConfig
{
    std::string name = "app.db";
    WalMode walMode = WalMode::Nvwal;
    /** NVWAL scheme knobs (walMode == Nvwal). */
    NvwalConfig nvwal;
    std::uint32_t pageSize = 4096;
    /**
     * Reserved bytes per page. kDefaultReserved picks the paper's
     * setting for the mode: 0 for stock WAL, 24 otherwise (the
     * early-split/aligned-frame optimization of section 5.4, also
     * applied to NVWAL).
     */
    static constexpr std::uint32_t kDefaultReserved = ~0u;
    std::uint32_t reservedBytes = kDefaultReserved;
    /** Auto-checkpoint threshold in frames (SQLite default: 1000). */
    std::uint64_t checkpointThreshold = 1000;
    bool autoCheckpoint = true;
    /**
     * Incremental auto-checkpointing: instead of one blocking
     * checkpoint at the threshold, write back at most
     * checkpointStepPages pages after each commit until the log can
     * be truncated. Bounds the per-commit latency spike.
     */
    bool incrementalCheckpoint = false;
    std::uint32_t checkpointStepPages = 8;

    std::uint32_t resolvedReservedBytes() const;
};

class Database;

/**
 * Handle to one named table (a rowid-keyed B+-tree registered in the
 * database catalog). Obtained from Database::openTable(); owned by
 * the Database and invalidated by dropTable() and rollback().
 */
class Table
{
  public:
    Status insert(RowId key, ConstByteSpan value);
    Status insert(RowId key, const std::string &value);
    Status update(RowId key, ConstByteSpan value);
    Status remove(RowId key);
    Status get(RowId key, ByteBuffer *value);
    Status scan(RowId lo, RowId hi, const BTree::ScanCallback &visit);
    Status count(std::uint64_t *out);

    const std::string &name() const { return _name; }
    BTree &btree() { return _tree; }

  private:
    friend class Database;
    Table(Database &db, std::string name, RowId catalog_id, PageNo root);

    Database &_db;
    std::string _name;
    RowId _catalogId;
    BTree _tree;
};

/** A single-writer embedded database. */
class Database
{
  public:
    /** The table the record-level convenience methods operate on. */
    static constexpr const char *kDefaultTable = "main";
    /** Open (and recover) a database on @p env. */
    static Status open(Env &env, DbConfig config,
                       std::unique_ptr<Database> *out);

    /**
     * Reconstruct a database from the media image that survived a
     * power failure: resets @p out, drops the file system's volatile
     * state, re-attaches the NVRAM heap and runs full recovery. This
     * is the entry point crash tests and the faultsim harness use
     * after catching a PowerFailure thrown by the NVRAM device (which
     * has already applied its survival policy by then). @p out may
     * hold the pre-crash database; it is destroyed first.
     */
    static Status recoverAfterCrash(Env &env, DbConfig config,
                                    std::unique_ptr<Database> *out);

    ~Database() = default;
    Database(const Database &) = delete;
    Database &operator=(const Database &) = delete;

    // ---- transactions ---------------------------------------------

    /** Begin an explicit write transaction. */
    Status begin();

    /** Commit: log dirty pages + commit mark, then auto-checkpoint. */
    Status commit();

    /** Discard all uncommitted changes. */
    Status rollback();

    bool inTransaction() const { return _inTxn; }

    // ---- tables ----------------------------------------------------

    /** Create a new, empty table. Fails if the name exists. */
    Status createTable(const std::string &name);

    /** Open a handle to an existing table; NotFound otherwise. */
    Status openTable(const std::string &name, Table **out);

    /**
     * Drop a table: free all its pages to the database free list and
     * remove it from the catalog. The default table cannot be
     * dropped. Existing Table handles to it become invalid.
     */
    Status dropTable(const std::string &name);

    /** Names of all tables, in creation order. */
    Status listTables(std::vector<std::string> *out);

    // ---- statements (autocommit when no transaction is open) -------
    // These operate on the default table ("main").

    Status insert(RowId key, ConstByteSpan value);
    Status insert(RowId key, const std::string &value);
    Status update(RowId key, ConstByteSpan value);
    Status remove(RowId key);
    Status get(RowId key, ByteBuffer *value);
    Status scan(RowId lo, RowId hi, const BTree::ScanCallback &visit);
    Status count(std::uint64_t *out);

    // ---- maintenance -----------------------------------------------

    /** Force a checkpoint (write-back + log truncation). */
    Status checkpoint();

    /**
     * Rebuild the database compactly (SQLite VACUUM): checkpoint,
     * copy every table in key order into a fresh file (dropping
     * free-list pages, freeblock fragmentation and dead overflow
     * chains), then atomically swap the files. Fails with Busy
     * inside a transaction. Table handles are invalidated.
     */
    Status vacuum();

    /**
     * Structural validation of the catalog and every table (page
     * invariants, key ordering, uniform leaf depth).
     */
    Status verifyIntegrity();

    // ---- introspection ----------------------------------------------

    WriteAheadLog &wal() { return *_wal; }
    Pager &pager() { return *_pager; }
    /** The default table's tree (legacy single-table accessor). */
    BTree &btree();
    Env &env() { return _env; }
    const DbConfig &config() const { return _config; }

  private:
    friend class Table;

    Database(Env &env, DbConfig config);

    Status openInternal();
    Status autocommitBegin(bool *started);
    Status autocommitEnd(bool started, Status op_status);
    void chargeStatement(std::size_t payload_bytes);

    /** Scan the catalog for @p name. */
    Status findCatalogEntry(const std::string &name, RowId *id,
                            PageNo *root, bool *found);
    Status defaultTable(Table **out);

    Env &_env;
    DbConfig _config;
    std::unique_ptr<DbFile> _dbFile;
    std::unique_ptr<Pager> _pager;
    std::unique_ptr<WriteAheadLog> _wal;
    /** Catalog tree at the primary root (page 2): id -> entry. */
    std::unique_ptr<BTree> _catalog;
    std::map<std::string, std::unique_ptr<Table>> _tables;
    bool _inTxn = false;
    std::uint32_t _txnStartPageCount = 0;
    /** Monotonic id of the open/last transaction (trace attribution). */
    std::uint64_t _txnSeq = 0;
    /** Sim time at begin() of the open transaction. */
    SimTime _txnBeginNs = 0;
};

} // namespace nvwal

#endif // NVWAL_DB_DATABASE_HPP
