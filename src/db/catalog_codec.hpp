/**
 * @file
 * Wire format of one catalog entry (the rows of the table-catalog
 * B-tree rooted at the primary root page): [root u32][name bytes].
 * Shared by the Database (live catalog) and Connection (snapshot
 * catalog) code paths.
 */

#ifndef NVWAL_DB_CATALOG_CODEC_HPP
#define NVWAL_DB_CATALOG_CODEC_HPP

#include <cstring>
#include <string>

#include "common/types.hpp"

namespace nvwal
{

inline ByteBuffer
encodeCatalogEntry(PageNo root, const std::string &name)
{
    ByteBuffer out(4 + name.size());
    storeU32(out.data(), root);
    std::memcpy(out.data() + 4, name.data(), name.size());
    return out;
}

inline bool
decodeCatalogEntry(ConstByteSpan raw, PageNo *root, std::string *name)
{
    if (raw.size() < 4)
        return false;
    *root = loadU32(raw.data());
    name->assign(reinterpret_cast<const char *>(raw.data()) + 4,
                 raw.size() - 4);
    return true;
}

} // namespace nvwal

#endif // NVWAL_DB_CATALOG_CODEC_HPP
