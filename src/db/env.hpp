/**
 * @file
 * Platform environment: one object wiring together the simulated
 * clock, cost model, NVRAM device + persistence primitives, the
 * Heapo-style NVRAM heap, and the flash block device + journaling
 * file system. Mirrors the two hardware platforms of the paper's
 * evaluation (Tuna board and Nexus 5).
 */

#ifndef NVWAL_DB_ENV_HPP
#define NVWAL_DB_ENV_HPP

#include <cstddef>

#include "blockdev/block_device.hpp"
#include "fs/journaling_fs.hpp"
#include "heap/nv_heap.hpp"
#include "nvram/nvram_device.hpp"
#include "pmem/pmem.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "sim/stats.hpp"

namespace nvwal
{

/** Sizing and seeding of the simulated platform. */
struct EnvConfig
{
    CostModel cost = CostModel::tuna();
    /** NVRAM capacity. */
    std::size_t nvramBytes = 64ull << 20;
    /** Heap-manager allocation unit (Heapo pages). */
    std::uint32_t heapBlockSize = 4096;
    /** Flash device capacity in blocks (default 64 MB). */
    std::uint64_t flashBlocks = 1ull << 14;
    /** EXT4-journal region size in blocks. */
    std::uint64_t journalBlocks = 256;
    /** Seed for the adversarial failure policy. */
    std::uint64_t seed = 0x5eed;
};

/** A fully wired simulated platform. */
class Env
{
  public:
    explicit
    Env(const EnvConfig &config = EnvConfig())
        : cost(config.cost),
          nvramDevice(config.nvramBytes, config.cost.cacheLineSize, stats,
                      config.seed),
          pmem(nvramDevice, clock, cost, stats),
          heap(pmem, stats),
          flash(config.flashBlocks, config.cost.blockSize, clock, cost,
                stats),
          fs(flash, clock, cost, stats, config.journalBlocks)
    {
        // Timestamps for trace events come from this platform's clock.
        stats.tracer().bindClock(&clock);

        // Attach to an existing heap (simulated reboot reuses the
        // same device) or format a fresh one.
        if (!heap.attach().isOk())
            NVWAL_CHECK_OK(heap.format(config.heapBlockSize));
    }

    Env(const Env &) = delete;
    Env &operator=(const Env &) = delete;

    /** Simulate losing power: NVRAM + file system volatile state. */
    void
    powerFail(FailurePolicy policy, double survive_prob = 0.5)
    {
        nvramDevice.powerFail(policy, survive_prob);
        fs.crash();
        NVWAL_CHECK_OK(heap.attach());
    }

    // ---- platform image snapshot / restore -------------------------

    /**
     * All storage-bearing platform state: the NVRAM device (durable
     * media + volatile cache/queue), the flash image and the file
     * system. The crash-sweep harness captures one snapshot after the
     * workload warm-up and restores it before every injection point,
     * instead of re-running the warm-up per point. The simulated
     * clock and stats counters are deliberately not captured: they
     * never influence behaviour, only reported costs.
     */
    struct MediaSnapshot
    {
        NvramDevice::Snapshot nvram;
        BlockDevice::Snapshot flash;
        JournalingFs::Snapshot fs;
    };

    MediaSnapshot
    snapshotMedia() const
    {
        return MediaSnapshot{nvramDevice.snapshot(), flash.snapshot(),
                             fs.snapshot()};
    }

    /** Restore a media snapshot and re-attach the heap's volatile
     *  mirror (resetting its allocation hint for determinism). */
    void
    restoreMedia(const MediaSnapshot &snap)
    {
        nvramDevice.restore(snap.nvram);
        flash.restore(snap.flash);
        fs.restore(snap.fs);
        NVWAL_CHECK_OK(heap.attach());
    }

    SimClock clock;
    MetricsRegistry stats;
    CostModel cost;
    NvramDevice nvramDevice;
    Pmem pmem;
    NvHeap heap;
    BlockDevice flash;
    JournalingFs fs;
};

} // namespace nvwal

#endif // NVWAL_DB_ENV_HPP
