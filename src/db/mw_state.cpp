#include "mw_state.hpp"

#include <algorithm>
#include <cstdio>

namespace nvwal
{

// ---- PageVersionMap ------------------------------------------------

void
PageVersionMap::publish(PageNo page_no, std::uint64_t epoch,
                        ConstByteSpan image)
{
    std::vector<Version> &versions = _pages[page_no];
    NVWAL_ASSERT(versions.empty() || versions.back().epoch < epoch,
                 "same-page versions must publish in epoch order");
    Version v;
    v.epoch = epoch;
    v.image.assign(image.data(), image.data() + image.size());
    versions.push_back(std::move(v));
}

const ByteBuffer *
PageVersionMap::readAt(PageNo page_no, std::uint64_t horizon,
                       std::uint64_t *epoch_out) const
{
    const auto it = _pages.find(page_no);
    if (it == _pages.end())
        return nullptr;
    const std::vector<Version> &versions = it->second;
    // Newest version with epoch <= horizon.
    auto pos = std::upper_bound(
        versions.begin(), versions.end(), horizon,
        [](std::uint64_t h, const Version &v) { return h < v.epoch; });
    if (pos == versions.begin())
        return nullptr;
    --pos;
    if (epoch_out != nullptr)
        *epoch_out = pos->epoch;
    return &pos->image;
}

std::map<PageNo, const ByteBuffer *>
PageVersionMap::collectUpTo(std::uint64_t horizon) const
{
    std::map<PageNo, const ByteBuffer *> out;
    for (const auto &[page_no, versions] : _pages) {
        const ByteBuffer *image = readAt(page_no, horizon);
        if (image != nullptr)
            out[page_no] = image;
    }
    return out;
}

void
PageVersionMap::pruneTo(std::uint64_t horizon)
{
    for (auto it = _pages.begin(); it != _pages.end();) {
        std::vector<Version> &versions = it->second;
        auto keep = std::upper_bound(
            versions.begin(), versions.end(), horizon,
            [](std::uint64_t h, const Version &v) { return h < v.epoch; });
        versions.erase(versions.begin(), keep);
        if (versions.empty())
            it = _pages.erase(it);
        else
            ++it;
    }
}

std::size_t
PageVersionMap::versionCount() const
{
    std::size_t n = 0;
    for (const auto &[page_no, versions] : _pages)
        n += versions.size();
    return n;
}

// ---- MwWorkspace ---------------------------------------------------

Status
MwWorkspace::getPage(PageNo page_no, CachedPage **out)
{
    NVWAL_ASSERT(page_no != kNoPage);
    auto it = _cache.find(page_no);
    if (it != _cache.end()) {
        *out = it->second.get();
        return Status::ok();
    }
    // Pages allocated by this transaction are always cache-resident,
    // so a miss beyond the begin-time size is a reference to another
    // transaction's uncommitted allocation -- a bug, not a race.
    if (page_no > _beginDbSize)
        return Status::invalidArgument("page beyond transaction snapshot");
    auto page = std::make_unique<CachedPage>();
    page->buf.resize(_pageSize);
    std::uint64_t read_epoch = _beginEpoch;
    NVWAL_RETURN_IF_ERROR(_fetch(page_no, page->span(), &read_epoch));
    _readSet.emplace(page_no, read_epoch);
    *out = page.get();
    _cache[page_no] = std::move(page);
    return Status::ok();
}

Status
MwWorkspace::allocatePage(CachedPage **out, PageNo *page_no)
{
    const std::uint32_t no = _pageCursor->fetch_add(1) + 1;
    auto page = std::make_unique<CachedPage>();
    page->buf.assign(_pageSize, 0);
    page->dirty.mark(0, _pageSize);
    *out = page.get();
    *page_no = no;
    _cache[no] = std::move(page);
    if (no > _maxAllocated)
        _maxAllocated = no;
    return Status::ok();
}

std::vector<PageNo>
MwWorkspace::dirtyPageNos() const
{
    std::vector<PageNo> out;
    for (const auto &[page_no, page] : _cache)
        if (page->isDirty())
            out.push_back(page_no);
    return out;
}

CachedPage *
MwWorkspace::cached(PageNo page_no)
{
    auto it = _cache.find(page_no);
    return it == _cache.end() ? nullptr : it->second.get();
}

// ---- MwMeta --------------------------------------------------------

void
mwMetaStore(Pmem &pmem, NvOffset off, const MwMeta &meta)
{
    std::uint8_t buf[MwMeta::kSize];
    storeU64(buf + 0, MwMeta::kMagic);
    storeU32(buf + 8, MwMeta::kVersion);
    storeU32(buf + 12, meta.writerLogs);
    storeU64(buf + 16, meta.epochBase);
    storeU64(buf + 24, meta.generation);
    storeU32(buf + 32, meta.dbSizePages);
    storeU32(buf + 36, 0);
    pmem.memcpyToNvram(off, ConstByteSpan(buf, sizeof(buf)));
    pmem.persistRangeEager(off, off + sizeof(buf));
}

Status
mwMetaLoad(Pmem &pmem, NvOffset off, MwMeta *out)
{
    std::uint8_t buf[MwMeta::kSize];
    pmem.readFromNvram(off, ByteSpan(buf, sizeof(buf)));
    if (loadU64(buf + 0) != MwMeta::kMagic)
        return Status::corruption("bad multi-writer anchor magic");
    if (loadU32(buf + 8) != MwMeta::kVersion)
        return Status::corruption("unknown multi-writer anchor version");
    out->writerLogs = loadU32(buf + 12);
    out->epochBase = loadU64(buf + 16);
    out->generation = loadU64(buf + 24);
    out->dbSizePages = loadU32(buf + 32);
    return Status::ok();
}

std::string
mwMetaNamespaceFor(const std::string &wal_namespace)
{
    return wal_namespace + "-mw";
}

std::string
mwLogNamespaceFor(const std::string &wal_namespace, std::uint32_t slot)
{
    char suffix[8];
    std::snprintf(suffix, sizeof(suffix), "-c%02u", slot);
    return wal_namespace + suffix;
}

} // namespace nvwal
