/**
 * @file
 * Connection: a per-thread handle onto one Database.
 *
 * The redesigned concurrency surface of the database: any number of
 * connections may run *read transactions* concurrently, each against
 * a consistent WAL snapshot (the commit horizon pinned at
 * beginRead()), while write transactions are serialized by the
 * database's writer lock and made durable through the group-commit
 * queue -- concurrent committers are batched into one WAL append
 * with a single persist-barrier pair (the paper's lazy sync,
 * stretched across transactions).
 *
 * A read transaction owns a private SnapshotCache, so repeated reads
 * touch no shared state at all; only the first fetch of a page takes
 * the engine lock. The snapshot pin bounds checkpointing: the WAL
 * will not advance the .db file past the oldest open snapshot, so a
 * long-lived reader sees the same data forever while commits and the
 * background checkpointer keep running.
 *
 * Thread confinement: one Connection is used by one thread at a
 * time. Distinct Connections are safe to use from distinct threads
 * concurrently; that is their purpose.
 */

#ifndef NVWAL_DB_CONNECTION_HPP
#define NVWAL_DB_CONNECTION_HPP

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "db/database.hpp"
#include "pager/snapshot_cache.hpp"

namespace nvwal
{

/** One client's handle onto a Database. */
class Connection
{
  public:
    /** Rolls back an open write txn and closes an open snapshot. */
    ~Connection();
    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    // ---- read transactions (snapshot isolation) ---------------------

    /**
     * Open a read transaction: pin the WAL's current commit horizon
     * and build a private snapshot cache over it. Every read until
     * endRead() sees exactly the transactions committed before this
     * call -- commits that land afterwards are invisible, even
     * across a crash+recovery of the writer. Unsupported when the
     * WAL mode has no snapshot support (rollback journal).
     */
    Status beginRead();

    /** Close the read transaction and release the snapshot pin. */
    Status endRead();

    bool inRead() const { return _snapshot != nullptr; }

    // ---- write transactions -----------------------------------------

    /**
     * Begin a write transaction; blocks until the writer slot is
     * free. Commit goes through the group-commit queue.
     */
    Status begin();
    /**
     * Commit the write transaction at the given durability level.
     * Group (the default) waits for the batch's persist barrier;
     * Async returns as soon as the append is ordered, and the
     * transaction hardens with its epoch (see lastCommitEpoch(),
     * Database::waitForAsyncEpoch()).
     */
    Status commit(Durability durability = Durability::Group);
    Status rollback();
    bool inWrite() const { return _inWrite; }

    /**
     * Epoch of this connection's most recent Durability::Async
     * commit (0 before any, or when the commit carried no frames).
     */
    std::uint64_t lastCommitEpoch() const { return _lastCommitEpoch; }

    // ---- two-phase commit (cross-shard transactions) ----------------

    /**
     * 2PC phase 1: persist this shard's slice of cross-shard
     * transaction @p gtid as a durable, undecided PREPARE record.
     * The write transaction stays open (and this connection keeps
     * the writer slot) until decide(). NVWAL mode only.
     */
    Status prepare(std::uint64_t gtid);

    /**
     * 2PC phase 2: persist the COMMIT/ABORT decision for @p gtid and
     * close the write transaction accordingly.
     */
    Status decide(std::uint64_t gtid, bool commit);

    // ---- statements (default table) ---------------------------------
    // Reads use the open snapshot (or a throwaway one); writes
    // require or auto-open a write transaction.

    Status insert(RowId key, ConstByteSpan value);
    Status insert(RowId key, const std::string &value);
    Status update(RowId key, ConstByteSpan value);
    Status remove(RowId key);
    Status get(RowId key, ByteBuffer *value);
    Status scan(RowId lo, RowId hi, const BTree::ScanCallback &visit);
    Status count(std::uint64_t *out);

    // ---- introspection ----------------------------------------------

    /** Horizon of the open snapshot (0 when none / before commits). */
    CommitSeq snapshotHorizon() const { return _horizon; }

    /** Pages served from the private cache (open snapshot only). */
    std::uint64_t snapshotCacheHits() const
    { return _snapshot ? _snapshot->cacheHits() : 0; }

    /** Pages fetched through the engine (open snapshot only). */
    std::uint64_t snapshotFetches() const
    { return _snapshot ? _snapshot->fetches() : 0; }

  private:
    friend class Database;
    explicit Connection(Database &db);

    /** Root of @p table as of the snapshot (cached per snapshot). */
    Status snapshotRoot(const std::string &table, PageNo *root);

    /** Run @p op inside the open snapshot, or a throwaway one. */
    template <typename Op>
    Status withReadSnapshot(const Op &op);

    Database &_db;
    /** Deferred lock on the database's writer mutex. */
    std::unique_lock<std::mutex> _writerLock;
    bool _inWrite = false;
    std::uint64_t _lastCommitEpoch = 0;

    std::unique_ptr<SnapshotCache> _snapshot;
    CommitSeq _horizon = 0;
    /** Table roots resolved from the snapshot's catalog. */
    std::map<std::string, PageNo> _snapshotRoots;
};

} // namespace nvwal

#endif // NVWAL_DB_CONNECTION_HPP
