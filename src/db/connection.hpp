/**
 * @file
 * Connection: a per-thread handle onto one Database.
 *
 * The concurrency surface of the database: any number of connections
 * may run *read transactions* concurrently, each against a consistent
 * horizon pinned at beginRead(), while write transactions commit in
 * one of two modes.
 *
 * Single-writer (the default): writers serialize on the database's
 * writer lock and are made durable through the group-commit queue --
 * concurrent committers are batched into one WAL append with a single
 * persist-barrier pair (the paper's lazy sync, stretched across
 * transactions).
 *
 * Multi-writer (DbConfig::multiWriter, DESIGN.md §13): each
 * connection owns a slot in a set of per-connection NVRAM logs and a
 * write transaction runs optimistically against a private workspace.
 * begin() pins the published epoch floor instead of a lock; commit()
 * validates the pages read against the epochs published since, and
 * returns StatusCode::Conflict -- never blocks on another writer --
 * when a page was republished. transact() wraps the
 * begin/run/commit/retry loop.
 *
 * A read transaction owns a private SnapshotCache, so repeated reads
 * touch no shared state at all. Read-only statements *outside*
 * beginRead() reuse a cached casual snapshot as long as the commit
 * horizon has not moved, so hot read loops build the cache once
 * instead of once per statement. The snapshot pin bounds
 * checkpointing: neither WAL mode advances the .db file past the
 * oldest open snapshot.
 *
 * Thread confinement: one Connection is used by one thread at a
 * time. Distinct Connections are safe to use from distinct threads
 * concurrently; that is their purpose.
 */

#ifndef NVWAL_DB_CONNECTION_HPP
#define NVWAL_DB_CONNECTION_HPP

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "db/database.hpp"
#include "db/mw_state.hpp"
#include "pager/snapshot_cache.hpp"

namespace nvwal
{

/** One client's handle onto a Database. */
class Connection
{
  public:
    /** Rolls back an open write txn and closes an open snapshot. */
    ~Connection();
    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    // ---- read transactions (snapshot isolation) ---------------------

    /**
     * Open a read transaction: pin the current commit horizon (the
     * WAL commit sequence, or the published epoch floor in
     * multi-writer mode) and build a private snapshot cache over it.
     * Every read until endRead() sees exactly the transactions
     * committed before this call -- commits that land afterwards are
     * invisible, even across a crash+recovery of the writer.
     * Unsupported when the WAL mode has no snapshot support (rollback
     * journal).
     */
    Status beginRead();

    /** Close the read transaction and release the snapshot pin. */
    Status endRead();

    bool inRead() const { return _snapshot != nullptr; }

    // ---- write transactions -----------------------------------------

    /**
     * Begin a write transaction. Single-writer: blocks until the
     * writer slot is free. Multi-writer: never blocks -- pins the
     * published epoch floor and opens a private workspace; the
     * conflict, if any, surfaces at commit().
     */
    Status begin();

    /**
     * Commit the write transaction.
     *
     * options.durability -- Group (default) waits for the persist
     * barrier that hardens this commit; Async returns as soon as the
     * commit is ordered (appended and published).
     *
     * options.waitForHarden -- when true (default), an Async commit
     * still waits for its epoch to harden before returning, i.e.
     * Async orders the commit cheaply but this call is synchronous.
     * Set it false for fire-and-forget commits that harden with a
     * later barrier (see lastCommitEpoch()).
     *
     * In multi-writer mode the commit first validates the pages this
     * transaction read against the epochs published since begin();
     * on a lost race it returns StatusCode::Conflict and the
     * transaction is rolled back -- nothing was appended. Retry by
     * re-running the transaction (see transact()).
     */
    Status commit(const CommitOptions &options = {});

    /**
     * Commit at a durability level, with the pre-CommitOptions
     * calling convention: Async does not wait for the harden.
     * @deprecated Thin wrapper kept one release for existing
     * callers; use commit(const CommitOptions &).
     */
    Status commit(Durability durability);

    Status rollback();
    bool inWrite() const { return _inWrite; }

    /**
     * Run @p fn (signature Status(Connection &)) inside a write
     * transaction: begin(), fn, commit(options) -- rolling back and
     * retrying up to options.maxConflictRetries times when the
     * transaction loses an optimistic race (StatusCode::Conflict from
     * fn or from the commit). Any other failure rolls back and
     * returns immediately. Retries count under
     * "db.txn_conflict_retries".
     */
    template <typename Fn>
    Status
    transact(Fn &&fn, const CommitOptions &options = {})
    {
        int attempt = 0;
        for (;;) {
            NVWAL_RETURN_IF_ERROR(begin());
            Status s = fn(*this);
            if (s.isOk())
                s = commit(options);
            else
                (void)rollback();
            if (!s.isConflict() || attempt >= options.maxConflictRetries)
                return s;
            ++attempt;
            noteConflictRetry();
            // Losing repeatedly usually means the winning committer
            // is mid-publish on another core; give it the CPU rather
            // than burning the retry budget against the same epoch.
            if (attempt >= 4)
                std::this_thread::yield();
        }
    }

    /**
     * Epoch of this connection's most recent Durability::Async
     * commit (0 before any, or when the commit carried no frames).
     * Harden it explicitly with Database::waitForAsyncEpoch().
     */
    std::uint64_t lastCommitEpoch() const { return _lastCommitEpoch; }

    // ---- two-phase commit (cross-shard transactions) ----------------

    /**
     * 2PC phase 1: persist this shard's slice of cross-shard
     * transaction @p gtid as a durable, undecided PREPARE record.
     * The write transaction stays open (and this connection keeps
     * the writer slot) until decide(). NVWAL single-writer mode only.
     */
    Status prepare(std::uint64_t gtid);

    /**
     * 2PC phase 2: persist the COMMIT/ABORT decision for @p gtid and
     * close the write transaction accordingly.
     */
    Status decide(std::uint64_t gtid, bool commit);

    // ---- statements (default table) ---------------------------------
    // Reads use the open snapshot (or the cached casual one); writes
    // require an open write transaction, unless the connection was
    // opened with ConnectOptions::autoWriteTxn, in which case a
    // statement outside a transaction runs as its own transaction.

    Status insert(RowId key, ValueView value);
    Status update(RowId key, ValueView value);
    Status remove(RowId key);
    Status get(RowId key, ByteBuffer *value);
    Status scan(RowId lo, RowId hi, const BTree::ScanCallback &visit);
    Status count(std::uint64_t *out);

    // ---- introspection ----------------------------------------------

    /** Horizon of the open snapshot (0 when none / before commits). */
    CommitSeq snapshotHorizon() const { return _horizon; }

    /** Pages served from the private cache (open snapshot only). */
    std::uint64_t snapshotCacheHits() const
    { return _snapshot ? _snapshot->cacheHits() : 0; }

    /** Pages fetched through the engine (open snapshot only). */
    std::uint64_t snapshotFetches() const
    { return _snapshot ? _snapshot->fetches() : 0; }

    /** Per-connection log slot (multi-writer; 0 in single-writer). */
    std::uint32_t slot() const { return _slot; }

  private:
    friend class Database;
    explicit Connection(Database &db, ConnectOptions options = {},
                        std::uint32_t slot = 0);

    /** Root of @p table as of the active snapshot (cached). */
    Status snapshotRoot(const std::string &table, PageNo *root);

    /** Run @p op inside the open snapshot, or the casual one. */
    template <typename Op>
    Status withReadSnapshot(const Op &op);

    /** Casual-read paths (no open snapshot). */
    template <typename Op>
    Status casualReadMw(const Op &op);
    template <typename Op>
    Status casualReadSw(const Op &op);

    /** Run @p op in the open write txn, or one of its own. */
    template <typename Op>
    Status withWriteTxn(const Op &op);

    /** Rebuild bookkeeping when the casual snapshot is replaced. */
    void resetCasualSnapshot(std::unique_ptr<SnapshotCache> snap,
                             std::uint64_t horizon);

    /** Fold the casual snapshot's read tallies into the registry. */
    void foldCasualStats();

    /** Count one optimistic retry (transact()). */
    void noteConflictRetry();

    Database &_db;
    const ConnectOptions _options;
    const std::uint32_t _slot;

    /** Deferred lock on the database's writer mutex (single-writer). */
    std::unique_lock<std::mutex> _writerLock;
    bool _inWrite = false;
    std::uint64_t _lastCommitEpoch = 0;

    /** Multi-writer: the open transaction's private workspace. */
    std::unique_ptr<MwWorkspace> _ws;
    std::uint64_t _wsTxnSeq = 0;

    std::unique_ptr<SnapshotCache> _snapshot;
    CommitSeq _horizon = 0;
    /** Table roots resolved from the snapshot's catalog. */
    std::map<std::string, PageNo> _snapshotRoots;

    /**
     * Cached casual snapshot: statements outside beginRead() reuse it
     * as long as (commit horizon, engine generation) are unchanged,
     * so a hot read loop pays one cache build, not one per statement.
     */
    std::unique_ptr<SnapshotCache> _casualSnap;
    std::uint64_t _casualHorizon = 0;
    std::uint64_t _casualGen = 0;
    std::map<std::string, PageNo> _casualRoots;
    std::uint64_t _casualHitsFolded = 0;
    std::uint64_t _casualReadsFolded = 0;

    /** The snapshot/roots the current statement resolves against. */
    SnapshotCache *_activeRead = nullptr;
    std::map<std::string, PageNo> *_activeRoots = nullptr;
};

} // namespace nvwal

#endif // NVWAL_DB_CONNECTION_HPP
