#include "database.hpp"

#include <algorithm>

namespace nvwal
{

namespace
{

/** Catalog entry payload: [root u32][name bytes]. */
ByteBuffer
encodeCatalogEntry(PageNo root, const std::string &name)
{
    ByteBuffer out(4 + name.size());
    storeU32(out.data(), root);
    std::memcpy(out.data() + 4, name.data(), name.size());
    return out;
}

bool
decodeCatalogEntry(ConstByteSpan raw, PageNo *root, std::string *name)
{
    if (raw.size() < 4)
        return false;
    *root = loadU32(raw.data());
    name->assign(reinterpret_cast<const char *>(raw.data()) + 4,
                 raw.size() - 4);
    return true;
}

} // namespace

// ---- Table ---------------------------------------------------------

Table::Table(Database &db, std::string name, RowId catalog_id,
             PageNo root)
    : _db(db), _name(std::move(name)), _catalogId(catalog_id),
      _tree(*db._pager, root)
{}

Status
Table::insert(RowId key, ConstByteSpan value)
{
    bool started;
    NVWAL_RETURN_IF_ERROR(_db.autocommitBegin(&started));
    _db.chargeStatement(value.size());
    return _db.autocommitEnd(started, _tree.insert(key, value));
}

Status
Table::insert(RowId key, const std::string &value)
{
    return insert(key,
                  ConstByteSpan(reinterpret_cast<const std::uint8_t *>(
                                    value.data()),
                                value.size()));
}

Status
Table::update(RowId key, ConstByteSpan value)
{
    bool started;
    NVWAL_RETURN_IF_ERROR(_db.autocommitBegin(&started));
    _db.chargeStatement(value.size());
    return _db.autocommitEnd(started, _tree.update(key, value));
}

Status
Table::remove(RowId key)
{
    bool started;
    NVWAL_RETURN_IF_ERROR(_db.autocommitBegin(&started));
    _db.chargeStatement(0);
    return _db.autocommitEnd(started, _tree.remove(key));
}

Status
Table::get(RowId key, ByteBuffer *value)
{
    _db.chargeStatement(0);
    return _tree.get(key, value);
}

Status
Table::scan(RowId lo, RowId hi, const BTree::ScanCallback &visit)
{
    _db.chargeStatement(0);
    return _tree.scan(lo, hi, visit);
}

Status
Table::count(std::uint64_t *out)
{
    return _tree.count(out);
}

// ---- Database ------------------------------------------------------

std::uint32_t
DbConfig::resolvedReservedBytes() const
{
    if (reservedBytes != kDefaultReserved)
        return reservedBytes;
    return walMode == WalMode::FileStock ||
                   walMode == WalMode::RollbackJournal
               ? 0
               : 24;
}

Database::Database(Env &env, DbConfig config)
    : _env(env), _config(std::move(config))
{}

Status
Database::open(Env &env, DbConfig config, std::unique_ptr<Database> *out)
{
    std::unique_ptr<Database> db(new Database(env, std::move(config)));
    NVWAL_RETURN_IF_ERROR(db->openInternal());
    *out = std::move(db);
    return Status::ok();
}

Status
Database::recoverAfterCrash(Env &env, DbConfig config,
                            std::unique_ptr<Database> *out)
{
    // The pre-crash handle references env; destroy it before touching
    // the media. The device already applied its survival policy when
    // it threw, so only the file system's volatile state is dropped
    // here, and the heap's volatile mirror is rebuilt from media.
    out->reset();
    env.fs.crash();
    NVWAL_RETURN_IF_ERROR(env.heap.attach());
    return open(env, std::move(config), out);
}

Status
Database::openInternal()
{
    const std::uint32_t reserved = _config.resolvedReservedBytes();
    _dbFile = std::make_unique<DbFile>(_env.fs, _config.name,
                                       _config.pageSize);
    NVWAL_RETURN_IF_ERROR(_dbFile->open());
    _pager = std::make_unique<Pager>(*_dbFile, _config.pageSize, reserved,
                                     &_env.stats);

    switch (_config.walMode) {
      case WalMode::RollbackJournal:
        _wal = std::make_unique<RollbackJournal>(
            _env.fs, _config.name + "-journal", *_dbFile,
            _config.pageSize, _env.stats);
        break;
      case WalMode::FileStock:
      case WalMode::FileOptimized: {
        FileWalConfig wal_config;
        wal_config.optimized = _config.walMode == WalMode::FileOptimized;
        _wal = std::make_unique<FileWal>(
            _env.fs, _config.name + "-wal", *_dbFile, _config.pageSize,
            reserved, wal_config, _env.stats);
        break;
      }
      case WalMode::Nvwal:
        _wal = std::make_unique<NvwalLog>(
            _env.heap, _env.pmem, *_dbFile, _config.pageSize, reserved,
            _config.nvwal, _env.stats);
        break;
    }

    // Recovery order matters: the WAL index must exist before the
    // pager reads any page (the newest committed copy of a page may
    // live only in the log).
    std::uint32_t db_size_pages = 0;
    NVWAL_RETURN_IF_ERROR(_wal->recover(&db_size_pages));
    _pager->setWalReader([this](PageNo page_no, ByteSpan out) {
        return _wal->readPage(page_no, out);
    });
    NVWAL_RETURN_IF_ERROR(_pager->open());
    if (db_size_pages != 0)
        _pager->setPageCount(db_size_pages);

    // The primary root (page 2) holds the table catalog; the default
    // table is created on first open.
    _catalog = std::make_unique<BTree>(*_pager, _pager->rootPage());
    bool found = false;
    RowId id;
    PageNo root;
    NVWAL_RETURN_IF_ERROR(
        findCatalogEntry(kDefaultTable, &id, &root, &found));
    if (!found)
        NVWAL_RETURN_IF_ERROR(createTable(kDefaultTable));
    return Status::ok();
}

Status
Database::findCatalogEntry(const std::string &name, RowId *id,
                           PageNo *root, bool *found)
{
    *found = false;
    Status scan_error = Status::ok();
    NVWAL_RETURN_IF_ERROR(_catalog->scan(
        INT64_MIN, INT64_MAX, [&](RowId key, ConstByteSpan raw) {
            PageNo entry_root;
            std::string entry_name;
            if (!decodeCatalogEntry(raw, &entry_root, &entry_name)) {
                scan_error = Status::corruption("bad catalog entry");
                return false;
            }
            if (entry_name == name) {
                *id = key;
                *root = entry_root;
                *found = true;
                return false;
            }
            return true;
        }));
    return scan_error;
}

Status
Database::createTable(const std::string &name)
{
    if (name.empty() || name.size() > 128)
        return Status::invalidArgument("table name length");
    bool started;
    NVWAL_RETURN_IF_ERROR(autocommitBegin(&started));

    auto create = [&]() -> Status {
        bool exists = false;
        RowId id;
        PageNo root;
        NVWAL_RETURN_IF_ERROR(
            findCatalogEntry(name, &id, &root, &exists));
        if (exists)
            return Status::invalidArgument("table exists: " + name);

        // Next catalog id: one past the largest in use.
        RowId next_id = 1;
        NVWAL_RETURN_IF_ERROR(_catalog->scan(
            INT64_MIN, INT64_MAX, [&](RowId key, ConstByteSpan) {
                next_id = key + 1;
                return true;
            }));

        CachedPage *page;
        PageNo new_root;
        NVWAL_RETURN_IF_ERROR(_pager->allocatePage(&page, &new_root));
        const ByteBuffer entry = encodeCatalogEntry(new_root, name);
        return _catalog->insert(next_id,
                                ConstByteSpan(entry.data(), entry.size()));
    };
    return autocommitEnd(started, create());
}

Status
Database::openTable(const std::string &name, Table **out)
{
    auto it = _tables.find(name);
    if (it != _tables.end()) {
        *out = it->second.get();
        return Status::ok();
    }
    bool found = false;
    RowId id;
    PageNo root;
    NVWAL_RETURN_IF_ERROR(findCatalogEntry(name, &id, &root, &found));
    if (!found)
        return Status::notFound("no such table: " + name);
    auto table =
        std::unique_ptr<Table>(new Table(*this, name, id, root));
    *out = table.get();
    _tables[name] = std::move(table);
    return Status::ok();
}

Status
Database::dropTable(const std::string &name)
{
    if (name == kDefaultTable)
        return Status::invalidArgument("cannot drop the default table");
    // Invalidate any handle up-front; the pages are about to go.
    _tables.erase(name);

    bool started;
    NVWAL_RETURN_IF_ERROR(autocommitBegin(&started));
    auto drop = [&]() -> Status {
        bool found = false;
        RowId id;
        PageNo root;
        NVWAL_RETURN_IF_ERROR(findCatalogEntry(name, &id, &root, &found));
        if (!found)
            return Status::notFound("no such table: " + name);
        BTree tree(*_pager, root);
        NVWAL_RETURN_IF_ERROR(tree.destroy());
        return _catalog->remove(id);
    };
    return autocommitEnd(started, drop());
}

Status
Database::listTables(std::vector<std::string> *out)
{
    out->clear();
    Status scan_error = Status::ok();
    NVWAL_RETURN_IF_ERROR(_catalog->scan(
        INT64_MIN, INT64_MAX, [&](RowId, ConstByteSpan raw) {
            PageNo root;
            std::string name;
            if (!decodeCatalogEntry(raw, &root, &name)) {
                scan_error = Status::corruption("bad catalog entry");
                return false;
            }
            out->push_back(name);
            return true;
        }));
    return scan_error;
}

Status
Database::defaultTable(Table **out)
{
    return openTable(kDefaultTable, out);
}

BTree &
Database::btree()
{
    Table *table = nullptr;
    NVWAL_CHECK_OK(openTable(kDefaultTable, &table));
    return table->btree();
}

Status
Database::begin()
{
    if (_inTxn)
        return Status::busy("a write transaction is already open");
    _inTxn = true;
    _txnStartPageCount = _pager->pageCount();
    ++_txnSeq;
    _txnBeginNs = _env.clock.now();
    _env.stats.tracer().setCurrentTxn(_txnSeq);
    _env.stats.tracer().instant("txn.begin", "db");
    return Status::ok();
}

Status
Database::commit()
{
    if (!_inTxn)
        return Status::invalidArgument("no transaction to commit");
    const SimTime commit_begin = _env.clock.now();

    // Per-transaction engine work (locking, journaling bookkeeping).
    _env.clock.advance(_env.cost.cpuTxnNs);

    const std::vector<PageNo> dirty = _pager->dirtyPageNos();
    if (!dirty.empty()) {
        std::vector<FrameWrite> frames;
        frames.reserve(dirty.size());
        for (PageNo no : dirty) {
            CachedPage *page = _pager->cached(no);
            NVWAL_ASSERT(page != nullptr, "dirty page not cached");
            frames.push_back(
                FrameWrite{no, page->cspan(), &page->dirty});
        }
        NVWAL_RETURN_IF_ERROR(
            _wal->writeFrames(frames, true, _pager->pageCount()));
        _pager->markAllClean();
    }
    _inTxn = false;
    _env.stats.add(stats::kTxnsCommitted);
    _env.stats.tracer().complete("db.commit", "db", commit_begin,
                                 "dirty_pages", dirty.size());
    _env.stats.tracer().complete("db.txn", "db", _txnBeginNs);
    _env.stats.recordNs(stats::kHistCommitNs,
                        _env.clock.now() - commit_begin);

    // The auto-checkpoint below is still attributed to this
    // transaction (it is the commit that tripped the threshold);
    // anything after commit() is background again.
    Status ckpt = Status::ok();
    if (_config.autoCheckpoint &&
        _wal->framesSinceCheckpoint() >= _config.checkpointThreshold) {
        if (!_config.incrementalCheckpoint) {
            ckpt = checkpoint();
        } else {
            bool done = false;
            ckpt = _wal->checkpointStep(_config.checkpointStepPages,
                                        &done);
        }
    }
    _env.stats.tracer().setCurrentTxn(0);
    return ckpt;
}

Status
Database::rollback()
{
    if (!_inTxn)
        return Status::invalidArgument("no transaction to roll back");
    _pager->discardDirty(_txnStartPageCount);
    _inTxn = false;
    _env.stats.tracer().instant("txn.rollback", "db");
    _env.stats.tracer().setCurrentTxn(0);
    // The rolled-back transaction may have created or dropped
    // tables; drop all handles so they are rebuilt from the (now
    // reverted) catalog.
    _tables.clear();
    return Status::ok();
}

Status
Database::autocommitBegin(bool *started)
{
    *started = false;
    if (!_inTxn) {
        NVWAL_RETURN_IF_ERROR(begin());
        *started = true;
    }
    return Status::ok();
}

Status
Database::autocommitEnd(bool started, Status op_status)
{
    if (!started)
        return op_status;
    if (!op_status.isOk()) {
        (void)rollback();
        return op_status;
    }
    return commit();
}

void
Database::chargeStatement(std::size_t payload_bytes)
{
    _env.clock.advance(_env.cost.cpuOpNs +
                       static_cast<SimTime>(_env.cost.cpuPerByteNs *
                                            static_cast<double>(
                                                payload_bytes)));
}

Status
Database::insert(RowId key, ConstByteSpan value)
{
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->insert(key, value);
}

Status
Database::insert(RowId key, const std::string &value)
{
    return insert(key,
                  ConstByteSpan(reinterpret_cast<const std::uint8_t *>(
                                    value.data()),
                                value.size()));
}

Status
Database::update(RowId key, ConstByteSpan value)
{
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->update(key, value);
}

Status
Database::remove(RowId key)
{
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->remove(key);
}

Status
Database::get(RowId key, ByteBuffer *value)
{
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->get(key, value);
}

Status
Database::scan(RowId lo, RowId hi, const BTree::ScanCallback &visit)
{
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->scan(lo, hi, visit);
}

Status
Database::count(std::uint64_t *out)
{
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->count(out);
}

Status
Database::checkpoint()
{
    if (_inTxn)
        return Status::busy("cannot checkpoint inside a transaction");
    return _wal->checkpoint();
}

Status
Database::vacuum()
{
    if (_inTxn)
        return Status::busy("cannot vacuum inside a transaction");
    // Make the .db file current and the log empty so the rebuild
    // can read pages straight from the file image.
    NVWAL_RETURN_IF_ERROR(checkpoint());

    const std::string tmp_name = _config.name + ".vacuum";
    if (_env.fs.exists(tmp_name))
        NVWAL_RETURN_IF_ERROR(_env.fs.remove(tmp_name));

    {
        DbFile tmp_file(_env.fs, tmp_name, _config.pageSize);
        NVWAL_RETURN_IF_ERROR(tmp_file.open());
        Pager tmp_pager(tmp_file, _config.pageSize,
                        _config.resolvedReservedBytes());
        NVWAL_RETURN_IF_ERROR(tmp_pager.open());
        BTree tmp_catalog(tmp_pager, tmp_pager.rootPage());

        // Copy each table in catalog order; scanning in key order
        // produces compact, append-built trees in the new file.
        Status copy_error = Status::ok();
        NVWAL_RETURN_IF_ERROR(_catalog->scan(
            INT64_MIN, INT64_MAX,
            [&](RowId id, ConstByteSpan raw) {
                PageNo old_root;
                std::string table_name;
                if (!decodeCatalogEntry(raw, &old_root, &table_name)) {
                    copy_error = Status::corruption("bad catalog entry");
                    return false;
                }
                CachedPage *root_page;
                PageNo new_root;
                copy_error =
                    tmp_pager.allocatePage(&root_page, &new_root);
                if (!copy_error.isOk())
                    return false;
                const ByteBuffer entry =
                    encodeCatalogEntry(new_root, table_name);
                copy_error = tmp_catalog.insert(
                    id, ConstByteSpan(entry.data(), entry.size()));
                if (!copy_error.isOk())
                    return false;

                BTree source(*_pager, old_root);
                BTree target(tmp_pager, new_root);
                const Status scan_status = source.scan(
                    INT64_MIN, INT64_MAX,
                    [&](RowId key, ConstByteSpan value) {
                        copy_error = target.insert(key, value);
                        return copy_error.isOk();
                    });
                if (copy_error.isOk())
                    copy_error = scan_status;
                return copy_error.isOk();
            }));
        NVWAL_RETURN_IF_ERROR(copy_error);
        NVWAL_RETURN_IF_ERROR(tmp_pager.flushAllToFile());
        NVWAL_RETURN_IF_ERROR(tmp_file.sync());
    }

    // Atomic swap, then rebuild all volatile state on the new file.
    NVWAL_RETURN_IF_ERROR(_env.fs.rename(tmp_name, _config.name));
    _tables.clear();
    _catalog.reset();
    _wal.reset();
    _pager.reset();
    _dbFile.reset();
    return openInternal();
}

Status
Database::verifyIntegrity()
{
    NVWAL_RETURN_IF_ERROR(_catalog->validate());
    std::vector<std::string> names;
    NVWAL_RETURN_IF_ERROR(listTables(&names));
    for (const std::string &name : names) {
        Table *table;
        NVWAL_RETURN_IF_ERROR(openTable(name, &table));
        NVWAL_RETURN_IF_ERROR(table->btree().validate());
    }
    return Status::ok();
}

} // namespace nvwal
