#include "database.hpp"

#include <algorithm>
#include <chrono>

#include "db/catalog_codec.hpp"
#include "db/connection.hpp"
#include "pager/snapshot_cache.hpp"

namespace nvwal
{

// ---- Table ---------------------------------------------------------

Table::Table(Database &db, std::string name, RowId catalog_id,
             PageNo root)
    : _db(db), _name(std::move(name)), _catalogId(catalog_id),
      _tree(*db._pager, root)
{}

Status
Table::insert(RowId key, ValueView value)
{
    bool started;
    NVWAL_RETURN_IF_ERROR(_db.autocommitBegin(&started));
    Status s;
    {
        std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
        _db.chargeStatement(value.size());
        s = _tree.insert(key, value.span());
    }
    return _db.autocommitEnd(started, s);
}

Status
Table::update(RowId key, ValueView value)
{
    bool started;
    NVWAL_RETURN_IF_ERROR(_db.autocommitBegin(&started));
    Status s;
    {
        std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
        _db.chargeStatement(value.size());
        s = _tree.update(key, value.span());
    }
    return _db.autocommitEnd(started, s);
}

Status
Table::remove(RowId key)
{
    bool started;
    NVWAL_RETURN_IF_ERROR(_db.autocommitBegin(&started));
    Status s;
    {
        std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
        _db.chargeStatement(0);
        s = _tree.remove(key);
    }
    return _db.autocommitEnd(started, s);
}

Status
Table::get(RowId key, ByteBuffer *value)
{
    std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
    _db.chargeStatement(0);
    return _tree.get(key, value);
}

Status
Table::scan(RowId lo, RowId hi, const BTree::ScanCallback &visit)
{
    std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
    _db.chargeStatement(0);
    return _tree.scan(lo, hi, visit);
}

Status
Table::count(std::uint64_t *out)
{
    std::lock_guard<std::recursive_mutex> eng(_db._engineMutex);
    return _tree.count(out);
}

// ---- Database ------------------------------------------------------

namespace
{

/** The paper's per-mode default when DbConfig::reservedBytes is unset. */
std::uint32_t
resolveReserved(const DbConfig &config)
{
    if (config.reservedBytes.has_value())
        return *config.reservedBytes;
    return config.walMode == WalMode::FileStock ||
                   config.walMode == WalMode::RollbackJournal
               ? 0
               : 24;
}

} // namespace

Status
validateDbConfig(const DbConfig &config)
{
    if (config.name.empty())
        return Status::invalidArgument("database name must not be empty");
    if (config.pageSize == 0 || config.pageSize > 65536)
        return Status::invalidArgument(
            "page size must be in (0, 65536]: " +
            std::to_string(config.pageSize));
    if (config.reservedBytes.has_value() &&
        *config.reservedBytes >= config.pageSize)
        return Status::invalidArgument(
            "reserved bytes must be smaller than the page size");
    if ((config.incrementalCheckpoint || config.backgroundCheckpointer) &&
        config.checkpointStepPages == 0)
        return Status::invalidArgument(
            "incremental checkpointing needs checkpointStepPages > 0");
    if (config.asyncMaxEpochs == 0)
        return Status::invalidArgument(
            "asyncMaxEpochs must be >= 1 (the staleness bound)");
    if (config.backgroundDurability && config.walMode != WalMode::Nvwal)
        return Status::invalidArgument(
            "background durability requires the NVRAM WAL");
    if (config.walMode == WalMode::Nvwal) {
        const std::string &ns = config.nvwal.heapNamespace;
        if (ns.empty() || ns.size() > NvHeap::kNamespaceNameLen)
            return Status::invalidArgument(
                "NVWAL heap namespace must be 1.." +
                std::to_string(NvHeap::kNamespaceNameLen) +
                " characters: \"" + ns + "\"");
    }
    if (config.multiWriter) {
        if (config.walMode != WalMode::Nvwal)
            return Status::invalidArgument(
                "multi-writer mode requires WalMode::Nvwal");
        if (config.nvwal.syncMode != SyncMode::Lazy)
            return Status::invalidArgument(
                "multi-writer mode requires SyncMode::Lazy (epoch "
                "commits flush lazily and harden in groups)");
        if (config.writerLogs < 1 || config.writerLogs > 32)
            return Status::invalidArgument(
                "writerLogs must be in [1, 32]: " +
                std::to_string(config.writerLogs));
        if (config.shardMember)
            return Status::invalidArgument(
                "multi-writer mode cannot run on a shard member");
        if (config.backgroundCheckpointer || config.backgroundDurability)
            return Status::invalidArgument(
                "multi-writer mode schedules hardens and checkpoints "
                "itself; disable the background threads");
        // "-cNN" suffixes must still fit the heap's name slots.
        if (config.nvwal.heapNamespace.size() >
            NvHeap::kNamespaceNameLen - 4)
            return Status::invalidArgument(
                "multi-writer namespace needs 4 spare characters for "
                "per-connection log suffixes: \"" +
                config.nvwal.heapNamespace + "\"");
    }
    return Status::ok();
}

Database::Database(Env &env, DbConfig config)
    : _env(env), _config(std::move(config)),
      _dbWriterLock(_writerMutex, std::defer_lock)
{}

Database::~Database()
{
    // The root connection holds engine references; destroy it before
    // any engine state goes away.
    _rootConn.reset();
    // Stop the durability thread first and abandon any still-pending
    // async epochs: a destructor must not issue media operations (the
    // handle may be torn down after a simulated crash), so commits
    // that were never flushed simply fall inside the documented
    // bounded loss window. Clean shutdowns call flushAsyncCommits().
    stopDurability();
    stopCheckpointer();
}

Status
Database::open(Env &env, DbConfig config, std::unique_ptr<Database> *out)
{
    NVWAL_RETURN_IF_ERROR(validateDbConfig(config));
    std::unique_ptr<Database> db(new Database(env, std::move(config)));
    NVWAL_RETURN_IF_ERROR(db->openInternal());
    *out = std::move(db);
    return Status::ok();
}

Status
Database::recoverAfterCrash(Env &env, DbConfig config,
                            std::unique_ptr<Database> *out)
{
    // The pre-crash handle references env; destroy it before touching
    // the media. The device already applied its survival policy when
    // it threw, so only the file system's volatile state is dropped
    // here, and the heap's volatile mirror is rebuilt from media.
    out->reset();
    env.fs.crash();
    NVWAL_RETURN_IF_ERROR(env.heap.attach());
    return open(env, std::move(config), out);
}

Status
Database::openInternal()
{
    // Every rebuild invalidates reader state cached against a WAL
    // commit sequence (recovery and vacuum both reset it).
    _engineGeneration.fetch_add(1, std::memory_order_acq_rel);
    const std::uint32_t reserved = resolveReserved(_config);
    _dbFile = std::make_unique<DbFile>(_env.fs, _config.name,
                                       _config.pageSize);
    NVWAL_RETURN_IF_ERROR(_dbFile->open());
    _pager = std::make_unique<Pager>(*_dbFile, _config.pageSize, reserved,
                                     &_env.stats);

    switch (_config.walMode) {
      case WalMode::RollbackJournal:
        _wal = std::make_unique<RollbackJournal>(
            _env.fs, _config.name + "-journal", *_dbFile,
            _config.pageSize, _env.stats);
        break;
      case WalMode::FileStock:
      case WalMode::FileOptimized: {
        FileWalConfig wal_config;
        wal_config.optimized = _config.walMode == WalMode::FileOptimized;
        _wal = std::make_unique<FileWal>(
            _env.fs, _config.name + "-wal", *_dbFile, _config.pageSize,
            reserved, wal_config, _env.stats);
        break;
      }
      case WalMode::Nvwal:
        _wal = std::make_unique<NvwalLog>(
            _env.heap, _env.pmem, *_dbFile, _config.pageSize, reserved,
            _config.nvwal, _env.stats);
        break;
    }

    // Recovery order matters: the WAL index must exist before the
    // pager reads any page (the newest committed copy of a page may
    // live only in the log).
    const StatsSnapshot stats_before_recovery = _env.stats.snapshot();
    std::uint32_t db_size_pages = 0;
    NVWAL_RETURN_IF_ERROR(_wal->recover(&db_size_pages));
    _nvwalLog = dynamic_cast<NvwalLog *>(_wal.get());
    frOpenAndBuildReport(stats_before_recovery);
    _pager->setWalReader([this](PageNo page_no, ByteSpan out) {
        return _wal->readPage(page_no, out);
    });
    NVWAL_RETURN_IF_ERROR(_pager->open());
    if (db_size_pages != 0)
        _pager->setPageCount(db_size_pages);

    // The primary root (page 2) holds the table catalog; the default
    // table is created on first open.
    _catalog = std::make_unique<BTree>(*_pager, _pager->rootPage());
    bool found = false;
    RowId id;
    PageNo root;
    NVWAL_RETURN_IF_ERROR(
        findCatalogEntry(kDefaultTable, &id, &root, &found));
    if (!found)
        NVWAL_RETURN_IF_ERROR(createTable(kDefaultTable));

    if (_config.multiWriter)
        NVWAL_RETURN_IF_ERROR(mwActivate(stats_before_recovery));

    if (_config.backgroundCheckpointer && !_checkpointer.joinable())
        _checkpointer = std::thread(&Database::checkpointerMain, this);
    if (_config.backgroundDurability && _wal->supportsAsyncCommits() &&
        !_durabilityThread.joinable())
        _durabilityThread = std::thread(&Database::durabilityMain, this);
    return Status::ok();
}

// ---- flight recorder (DESIGN.md §12) --------------------------------

void
Database::frRecord(FrRecordType type, std::uint8_t flags,
                   std::uint16_t a16, std::uint32_t a32, std::uint64_t a64,
                   std::uint64_t b64)
{
    if (_flightRecorder && _flightRecorder->ready())
        _flightRecorder->append(type, flags, a16, a32, a64, b64);
}

std::uint32_t
Database::frCheckpointId32() const
{
    return _nvwalLog != nullptr
               ? static_cast<std::uint32_t>(_nvwalLog->checkpointId())
               : 0;
}

void
Database::frRecordHarden(FrHardenReason reason)
{
    if (!_flightRecorder || !_flightRecorder->ready())
        return;
    const CommitSeq hardened = _wal->hardenedSeq();
    const std::uint64_t marks =
        hardened >= _frMarksBase ? hardened - _frMarksBase : 0;
    std::uint64_t epoch;
    {
        std::lock_guard<std::mutex> a(_asyncMutex);
        epoch = _hardenedEpoch;
    }
    frRecord(FrRecordType::Harden, kFrFlagDurableClaim,
             static_cast<std::uint16_t>(reason), frCheckpointId32(), marks,
             epoch);
}

void
Database::frNoteTruncation(std::uint64_t ckpt_before)
{
    if (_nvwalLog == nullptr || !_flightRecorder ||
        !_flightRecorder->ready())
        return;
    const std::uint64_t ckpt_after = _nvwalLog->checkpointId();
    if (ckpt_after == ckpt_before)
        return;
    const std::uint64_t marks = _wal->commitSeq() - _frMarksBase;
    // Durable-claim marks are counted per checkpoint round; the
    // truncation starts a new round, so rebase before the next ack.
    _frMarksBase = _wal->commitSeq();
    frRecord(FrRecordType::Truncation, kFrFlagDurableClaim, 0,
             static_cast<std::uint32_t>(ckpt_after), marks, ckpt_before);
}

void
Database::frMaybeSnapshotCounters()
{
    if (!_flightRecorder || !_flightRecorder->ready() ||
        _config.frSnapshotEveryBatches == 0)
        return;
    if (++_frBatchesSinceSnapshot < _config.frSnapshotEveryBatches)
        return;
    _frBatchesSinceSnapshot = 0;
    static const char *const kDefaultSet[] = {
        stats::kTxnsCommitted,   stats::kPersistBarriers,
        stats::kFlushSyscalls,   stats::kNvramBytesLogged,
        stats::kCheckpoints,
    };
    auto sample = [&](const std::string &name) {
        frRecord(FrRecordType::CounterSnapshot, 0, 0,
                 frCounterNameHash(name), _env.stats.get(name), _txnSeq);
    };
    if (_config.frSnapshotCounters.empty()) {
        for (const char *name : kDefaultSet)
            sample(name);
    } else {
        for (const std::string &name : _config.frSnapshotCounters)
            sample(name);
    }
}

void
Database::frOpenAndBuildReport(const StatsSnapshot &stats_before)
{
    _flightRecorder.reset();
    _recoveryReport = RecoveryReport();
    _frMarksBase = 0;
    _frBatchesSinceSnapshot = 0;
    if (_config.walMode != WalMode::Nvwal || !_config.flightRecorder)
        return;

    auto recorder = std::make_unique<FlightRecorder>(
        _env.heap, _env.pmem, _env.stats,
        FlightRecorder::namespaceFor(_config.nvwal.heapNamespace),
        _config.frRingRecords, _config.frShard);
    FlightRecording parsed;
    if (!recorder->openOrCreate(&parsed).isOk()) {
        // E.g. all heap namespace slots taken: run with the recorder
        // off rather than failing the open.
        return;
    }
    _flightRecorder = std::move(recorder);

    const auto delta = [&](const char *name) {
        const auto it = stats_before.find(name);
        const std::uint64_t before =
            it == stats_before.end() ? 0 : it->second;
        return _env.stats.get(name) - before;
    };
    FrRecoveredWalState wal_state;
    wal_state.recoveredMarks = _wal->commitSeq();
    wal_state.recoveredCheckpointId =
        _nvwalLog != nullptr ? _nvwalLog->checkpointId() : 0;
    wal_state.framesSinceCheckpoint = _wal->framesSinceCheckpoint();
    wal_state.tornFramesDetected = delta(stats::kWalTornFramesDetected);
    wal_state.framesDiscarded = delta(stats::kWalRecoveryFramesDiscarded);
    wal_state.lostMarks = delta(stats::kWalRecoveryLostMarks);
    wal_state.inDoubt = _wal->inDoubtTransactions();
    wal_state.lookupDecision = [this](std::uint64_t gtid, bool *commit) {
        return _wal->lookupDecision(gtid, commit);
    };

    _recoveryReport = buildRecoveryReport(parsed, wal_state);
    _recoveryReport.recorderEnabled = true;
    _recoveryReport.heapNamespace = _flightRecorder->heapNamespace();
    _recoveryReport.shard = _config.frShard;

    // Stash the report inputs: mwActivate rebuilds the report after
    // the cross-log merge adds its own recovery facts.
    _frParsedRecording = parsed;
    _frWalState = wal_state;
    _frStatsBefore = stats_before;

    // Delimit this incarnation in the ring. Recovered commit
    // sequences restart at marks-since-truncation, so the base is 0.
    frRecord(FrRecordType::RecorderOpen, 0, 0, frCheckpointId32(),
             _wal->commitSeq(), _wal->framesSinceCheckpoint());
}

Status
Database::publishFlightRecorder()
{
    if (_mwActive) {
        // _mwMutex serializes ring appends once the engine is active.
        std::lock_guard<std::mutex> mw(_mwMutex);
        if (!_flightRecorder || !_flightRecorder->ready())
            return Status::unsupported(
                "the flight recorder is not enabled");
        _flightRecorder->publish();
        return Status::ok();
    }
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    if (!_flightRecorder || !_flightRecorder->ready())
        return Status::unsupported("the flight recorder is not enabled");
    _flightRecorder->publish();
    return Status::ok();
}

Status
Database::findCatalogEntry(const std::string &name, RowId *id,
                           PageNo *root, bool *found)
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    *found = false;
    Status scan_error = Status::ok();
    NVWAL_RETURN_IF_ERROR(_catalog->scan(
        INT64_MIN, INT64_MAX, [&](RowId key, ConstByteSpan raw) {
            PageNo entry_root;
            std::string entry_name;
            if (!decodeCatalogEntry(raw, &entry_root, &entry_name)) {
                scan_error = Status::corruption("bad catalog entry");
                return false;
            }
            if (entry_name == name) {
                *id = key;
                *root = entry_root;
                *found = true;
                return false;
            }
            return true;
        }));
    return scan_error;
}

Status
Database::createTable(const std::string &name)
{
    if (_mwActive)
        return Status::unsupported(
            "DDL is single-writer only: reopen without multiWriter");
    if (name.empty() || name.size() > 128)
        return Status::invalidArgument("table name length");
    bool started;
    NVWAL_RETURN_IF_ERROR(autocommitBegin(&started));

    auto create = [&]() -> Status {
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        bool exists = false;
        RowId id;
        PageNo root;
        NVWAL_RETURN_IF_ERROR(
            findCatalogEntry(name, &id, &root, &exists));
        if (exists)
            return Status::invalidArgument("table exists: " + name);

        // Next catalog id: one past the largest in use.
        RowId next_id = 1;
        NVWAL_RETURN_IF_ERROR(_catalog->scan(
            INT64_MIN, INT64_MAX, [&](RowId key, ConstByteSpan) {
                next_id = key + 1;
                return true;
            }));

        CachedPage *page;
        PageNo new_root;
        NVWAL_RETURN_IF_ERROR(_pager->allocatePage(&page, &new_root));
        const ByteBuffer entry = encodeCatalogEntry(new_root, name);
        return _catalog->insert(next_id,
                                ConstByteSpan(entry.data(), entry.size()));
    };
    return autocommitEnd(started, create());
}

Status
Database::openTable(const std::string &name, Table **out)
{
    if (_mwActive)
        return Status::unsupported(
            "table handles run on the shared pager; use Connection "
            "statements in multi-writer mode");
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    auto it = _tables.find(name);
    if (it != _tables.end()) {
        *out = it->second.get();
        return Status::ok();
    }
    bool found = false;
    RowId id;
    PageNo root;
    NVWAL_RETURN_IF_ERROR(findCatalogEntry(name, &id, &root, &found));
    if (!found)
        return Status::notFound("no such table: " + name);
    auto table =
        std::unique_ptr<Table>(new Table(*this, name, id, root));
    *out = table.get();
    _tables[name] = std::move(table);
    return Status::ok();
}

Status
Database::dropTable(const std::string &name)
{
    if (_mwActive)
        return Status::unsupported(
            "DDL is single-writer only: reopen without multiWriter");
    if (name == kDefaultTable)
        return Status::invalidArgument("cannot drop the default table");
    {
        // Invalidate any handle up-front; the pages are about to go.
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        _tables.erase(name);
    }

    bool started;
    NVWAL_RETURN_IF_ERROR(autocommitBegin(&started));
    auto drop = [&]() -> Status {
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        bool found = false;
        RowId id;
        PageNo root;
        NVWAL_RETURN_IF_ERROR(findCatalogEntry(name, &id, &root, &found));
        if (!found)
            return Status::notFound("no such table: " + name);
        BTree tree(*_pager, root);
        NVWAL_RETURN_IF_ERROR(tree.destroy());
        return _catalog->remove(id);
    };
    return autocommitEnd(started, drop());
}

Status
Database::listTables(std::vector<std::string> *out)
{
    if (_mwActive) {
        // Read the catalog through a pinned snapshot: the shared
        // pager is not serialized against multi-writer checkpoints.
        out->clear();
        std::uint32_t pages = 0;
        const std::uint64_t floor = mwPinRead(&pages);
        SnapshotCache snap(
            _config.pageSize, _pager->reservedBytes(), pages,
            _pager->rootPage(), [this, floor](PageNo no, ByteSpan buf) {
                return mwFetchPage(no, floor, buf, nullptr);
            });
        BTree catalog(snap, _pager->rootPage());
        Status scan_error = Status::ok();
        const Status s = catalog.scan(
            INT64_MIN, INT64_MAX, [&](RowId, ConstByteSpan raw) {
                PageNo root;
                std::string name;
                if (!decodeCatalogEntry(raw, &root, &name)) {
                    scan_error = Status::corruption("bad catalog entry");
                    return false;
                }
                out->push_back(name);
                return true;
            });
        mwUnpinRead(floor);
        NVWAL_RETURN_IF_ERROR(s);
        return scan_error;
    }
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    out->clear();
    Status scan_error = Status::ok();
    NVWAL_RETURN_IF_ERROR(_catalog->scan(
        INT64_MIN, INT64_MAX, [&](RowId, ConstByteSpan raw) {
            PageNo root;
            std::string name;
            if (!decodeCatalogEntry(raw, &root, &name)) {
                scan_error = Status::corruption("bad catalog entry");
                return false;
            }
            out->push_back(name);
            return true;
        }));
    return scan_error;
}

Status
Database::defaultTable(Table **out)
{
    return openTable(kDefaultTable, out);
}

// ---- transactions --------------------------------------------------

Status
Database::beginTxnBody()
{
    NVWAL_RETURN_IF_ERROR(_poisoned);
    _inTxn = true;
    _txnStartPageCount = _pager->pageCount();
    ++_txnSeq;
    _txnBeginNs = _env.clock.now();
    _env.stats.tracer().setCurrentTxn(_txnSeq);
    _env.stats.tracer().instant("txn.begin", "db");
    frRecord(FrRecordType::TxnBegin, 0, 0, 0, _txnSeq);
    return Status::ok();
}

Status
Database::begin()
{
    if (_mwActive)
        return _rootConn->begin();
    {
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        if (_inTxn)
            return Status::busy("a write transaction is already open");
        NVWAL_RETURN_IF_ERROR(_poisoned);
    }
    // Register the write intent before blocking on the writer slot:
    // a committing leader holds its batch open while intents are
    // outstanding, so the announcement must precede the lock wait.
    noteWriteIntent();
    // Blocks while a Connection writer holds the slot. The direct
    // API is single-threaded by contract, so _dbWriterLock is only
    // ever touched by one thread at a time.
    _dbWriterLock.lock();
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    const Status s = beginTxnBody();
    if (!s.isOk()) {
        _dbWriterLock.unlock();
        endWriteIntent();
    }
    return s;
}

void
Database::noteWriteIntent()
{
    _writeIntents.fetch_add(1, std::memory_order_relaxed);
}

void
Database::endWriteIntent()
{
    std::lock_guard<std::mutex> q(_commitQueueMutex);
    NVWAL_ASSERT(_writeIntents.load(std::memory_order_relaxed) > 0);
    _writeIntents.fetch_sub(1, std::memory_order_relaxed);
    // Deliberately no notify: the leader re-evaluates its combining
    // window on enqueues. Waking it here would sample the instant a
    // writer sits between two transactions (intent ended, next begin
    // not yet announced), closing batches early; a withdrawn last
    // intent merely lets the window run to its bounded timeout.
}

bool
Database::collectDirtyFrames(GroupEntry *entry)
{
    const std::vector<PageNo> dirty = _pager->dirtyPageNos();
    entry->frames.clear();
    entry->frames.reserve(dirty.size());
    for (PageNo no : dirty) {
        CachedPage *page = _pager->cached(no);
        NVWAL_ASSERT(page != nullptr, "dirty page not cached");
        GroupEntry::Frame frame;
        frame.pageNo = no;
        frame.page = page->buf;
        frame.ranges = page->dirty;
        frame.observedDirtyPct = page->noteDirtyRatio();
        entry->frames.push_back(std::move(frame));
    }
    entry->dbSizePages = _pager->pageCount();
    return !entry->frames.empty();
}

TxnFrames
Database::entryToTxn(const GroupEntry &e)
{
    TxnFrames txn;
    txn.dbSizePages = e.dbSizePages;
    txn.frames.reserve(e.frames.size());
    for (const GroupEntry::Frame &f : e.frames) {
        txn.frames.push_back(FrameWrite{
            f.pageNo, ConstByteSpan(f.page.data(), f.page.size()),
            &f.ranges, f.observedDirtyPct});
    }
    return txn;
}

Status
Database::appendGroup(const std::vector<GroupEntry *> &batch)
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    _env.stats.add(stats::kGroupCommits);
    _env.stats.add(stats::kGroupCommitTxns, batch.size());
    _env.stats.recordNs(stats::kHistGroupCommitSize, batch.size());
    _env.stats.setGauge(stats::kGaugeCommitQueueDepth, batch.size());
    {
        std::uint64_t newest_txn = 0;
        for (const GroupEntry *e : batch)
            if (e->kind == GroupEntry::Kind::Commit &&
                e->txnSeq > newest_txn)
                newest_txn = e->txnSeq;
        frRecord(FrRecordType::GroupBatch, 0, 0,
                 static_cast<std::uint32_t>(batch.size()), newest_txn);
    }

    // The queue interleaves plain commits with 2PC records. Append
    // each maximal run of commits as one WAL group (one barrier pair
    // for the run); PREPARE/DECISION records go through their own WAL
    // entry points, in queue order, so a participant's records land
    // exactly where the writer-lock order put them.
    Status s = Status::ok();
    std::size_t i = 0;
    while (s.isOk() && i < batch.size()) {
        GroupEntry *e = batch[i];
        switch (e->kind) {
          case GroupEntry::Kind::Commit: {
            // Runs are split by durability: a sync run costs one
            // barrier pair for the whole run, an async run costs none
            // (its epoch hardens later). Mixing them would either
            // harden the async commits early or strand the sync ones.
            const bool async = e->async;
            std::vector<TxnFrames> txns;
            std::vector<GroupEntry *> run;
            while (i < batch.size() &&
                   batch[i]->kind == GroupEntry::Kind::Commit &&
                   batch[i]->async == async) {
                txns.push_back(entryToTxn(*batch[i]));
                run.push_back(batch[i]);
                ++i;
            }
            if (async) {
                s = _wal->writeFrameGroupAsync(txns);
                if (s.isOk()) {
                    const std::uint64_t epoch = registerAsyncEpoch(
                        static_cast<std::uint32_t>(run.size()));
                    for (GroupEntry *ge : run) {
                        ge->epoch = epoch;
                        // No durable claim: the ack only becomes
                        // guaranteed when the epoch hardens.
                        frRecord(FrRecordType::CommitAck, 0, 2,
                                 frCheckpointId32(), ge->txnSeq, epoch);
                    }
                    _env.stats.add(stats::kDbAsyncCommits, run.size());
                }
            } else {
                s = _wal->writeFrameGroup(txns);
                if (s.isOk()) {
                    // Under Eager/Lazy the strict group's barrier
                    // pair already ran, so the run's commit marks are
                    // durable when the records below are stored: a
                    // durable claim. ChecksumAsync acks before any
                    // barrier (§4.2 checksum commits) -- a crash may
                    // keep this record yet lose the marks, so no
                    // claim is stamped.
                    const bool hardened =
                        _config.nvwal.syncMode != SyncMode::ChecksumAsync;
                    const std::uint64_t marks =
                        _wal->commitSeq() - _frMarksBase;
                    for (const GroupEntry *ge : run)
                        frRecord(FrRecordType::CommitAck,
                                 hardened ? kFrFlagDurableClaim : 0, 0,
                                 frCheckpointId32(), ge->txnSeq, marks);
                }
            }
            break;
          }
          case GroupEntry::Kind::Prepare: {
            const TxnFrames txn = entryToTxn(*e);
            s = _wal->writePrepare(e->gtid, txn);
            if (s.isOk())
                // 2PC control frames flush eagerly: durable claim.
                frRecord(FrRecordType::Prepare, kFrFlagDurableClaim, 0,
                         frCheckpointId32(), e->gtid);
            ++i;
            break;
          }
          case GroupEntry::Kind::Decision:
            s = _wal->writeDecision(e->gtid, e->decisionCommit);
            if (s.isOk())
                frRecord(FrRecordType::Decision, kFrFlagDurableClaim,
                         e->decisionCommit ? 1 : 0, frCheckpointId32(),
                         e->gtid);
            ++i;
            break;
        }
    }
    if (!s.isOk()) {
        for (const GroupEntry *e : batch) {
            if (e->finalized) {
                // The transaction was already published to the shared
                // cache; there is no way back for it or anything that
                // read its pages since.
                _poisoned = s;
                break;
            }
        }
        return s;
    }
    // A sync run after an async one merges the pending unflushed
    // ranges into its barrier (NvwalLog strict appends harden first),
    // and the staleness bound may force a harden here; either way the
    // hardened horizon may have moved, so retire what it covers.
    s = maybeHardenAsync();
    completePendingAcks();
    frMaybeSnapshotCounters();
    return s;
}

Status
Database::submitAndWait(GroupEntry *entry,
                        std::unique_lock<std::mutex> *release_after_enqueue)
{
    std::unique_lock<std::mutex> q(_commitQueueMutex);
    _commitQueue.push_back(entry);
    _commitCv.notify_all();
    // The entry is ordered in the queue; only now may the next writer
    // begin (WAL append order must equal writer-lock order).
    if (release_after_enqueue != nullptr)
        release_after_enqueue->unlock();

    if (_groupLeaderActive) {
        _commitCv.wait(q, [&] { return entry->done; });
        return entry->status;
    }

    _groupLeaderActive = true;
    while (!_commitQueue.empty()) {
        // Commit combining: every registered write intent is a
        // transaction that will either enqueue an entry here or
        // withdraw (rollback, failed begin, empty commit), so hold
        // the batch open until the queue has caught up with the
        // intent count -- writers mid-body get absorbed and the whole
        // group costs one barrier pair. Never fires single-threaded
        // (one intent, one queued entry) and is real-time only: the
        // simulated clock is not charged for the window.
        _commitCv.wait_for(q, std::chrono::microseconds(500), [&] {
            std::uint32_t intents =
                _writeIntents.load(std::memory_order_relaxed);
            // After the leader's own entry was appended (iteration
            // 2+), its still-registered intent can never enqueue
            // again; counting it would force the full timeout.
            if (entry->done && intents > 0)
                --intents;
            return _commitQueue.size() >= intents;
        });
        std::vector<GroupEntry *> batch;
        batch.swap(_commitQueue);
        q.unlock();
        const Status s = appendGroup(batch);
        q.lock();
        for (GroupEntry *e : batch) {
            e->status = s;
            e->done = true;
        }
        _commitCv.notify_all();
    }
    _groupLeaderActive = false;
    return entry->status;
}

Status
Database::maybeCheckpointAfterCommit()
{
    if (_wal->framesSinceCheckpoint() < _config.checkpointThreshold)
        return Status::ok();
    if (_config.backgroundCheckpointer) {
        kickCheckpointer();
        return Status::ok();
    }
    if (!_config.autoCheckpoint)
        return Status::ok();
    if (!_config.incrementalCheckpoint)
        return checkpoint();
    bool done = false;
    const std::uint64_t ckpt_before =
        _nvwalLog != nullptr ? _nvwalLog->checkpointId() : 0;
    const CommitSeq hardened_before = _wal->hardenedSeq();
    frRecord(FrRecordType::CheckpointStart, 0, 0,
             static_cast<std::uint32_t>(ckpt_before),
             _wal->framesSinceCheckpoint());
    const Status s =
        _wal->checkpointStep(_config.checkpointStepPages, &done);
    completePendingAcks();
    if (s.isOk()) {
        frNoteTruncation(ckpt_before);
        if (_wal->hardenedSeq() != hardened_before)
            frRecordHarden(FrHardenReason::Checkpoint);
        frRecord(FrRecordType::CheckpointEnd, 0, done ? 1 : 0,
                 frCheckpointId32(), _wal->framesSinceCheckpoint());
    }
    return s;
}

Status
Database::commit(Durability durability)
{
    if (_mwActive)
        return _rootConn->commit(durability);
    GroupEntry entry;
    entry.async = durability == Durability::Async;
    bool have_entry = false;
    SimTime commit_begin = 0;
    {
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        if (!_inTxn)
            return Status::invalidArgument("no transaction to commit");
        NVWAL_RETURN_IF_ERROR(_poisoned);
        if (entry.async && !_wal->supportsAsyncCommits())
            return Status::unsupported(
                "this WAL mode has no asynchronous (checksum) commit; "
                "use Durability::Sync or Group");
        commit_begin = _env.clock.now();

        // Per-transaction engine work (locking, journaling
        // bookkeeping).
        _env.clock.advance(_env.cost.cpuTxnNs);
        have_entry = collectDirtyFrames(&entry);
        entry.txnSeq = _txnSeq;
    }

    if (have_entry) {
        // Keep the writer slot (and the dirty marks) until the batch
        // is durable: on failure the transaction is still open and
        // retryable after a checkpoint, exactly like the
        // single-threaded engine behaved.
        NVWAL_RETURN_IF_ERROR(submitAndWait(&entry, nullptr));
    }

    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    if (have_entry)
        _pager->markAllClean();
    _inTxn = false;
    if (entry.async) {
        std::lock_guard<std::mutex> a(_asyncMutex);
        _lastCommitEpoch = have_entry ? entry.epoch : 0;
    }
    _env.stats.add(stats::kTxnsCommitted);
    _env.stats.tracer().complete("db.commit", "db", commit_begin,
                                 "dirty_pages", entry.frames.size());
    _env.stats.tracer().complete("db.txn", "db", _txnBeginNs);
    _env.stats.recordNs(stats::kHistCommitNs,
                        _env.clock.now() - commit_begin);

    // The auto-checkpoint below is still attributed to this
    // transaction (it is the commit that tripped the threshold);
    // anything after commit() is background again.
    const Status ckpt = maybeCheckpointAfterCommit();
    _env.stats.tracer().setCurrentTxn(0);
    if (_dbWriterLock.owns_lock())
        _dbWriterLock.unlock();
    // The transaction is closed; it is no longer a commit candidate.
    // (Error returns above keep the intent: the txn stays open and
    // retryable, and begin() will not be called again.)
    endWriteIntent();
    return ckpt;
}

void
Database::rollbackBody()
{
    _pager->discardDirty(_txnStartPageCount);
    _inTxn = false;
    _env.stats.tracer().instant("txn.rollback", "db");
    _env.stats.tracer().setCurrentTxn(0);
    // The rolled-back transaction may have created or dropped
    // tables; drop all handles so they are rebuilt from the (now
    // reverted) catalog.
    _tables.clear();
}

Status
Database::rollback()
{
    if (_mwActive)
        return _rootConn->rollback();
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    if (!_inTxn)
        return Status::invalidArgument("no transaction to roll back");
    rollbackBody();
    if (_dbWriterLock.owns_lock())
        _dbWriterLock.unlock();
    endWriteIntent();
    return Status::ok();
}

bool
Database::inTransaction() const
{
    if (_mwActive)
        return _rootConn->inWrite();
    return _inTxn;
}

Status
Database::autocommitBegin(bool *started)
{
    *started = false;
    if (!_inTxn) {
        NVWAL_RETURN_IF_ERROR(begin());
        *started = true;
    }
    return Status::ok();
}

Status
Database::autocommitEnd(bool started, Status op_status)
{
    if (!started)
        return op_status;
    if (!op_status.isOk()) {
        (void)rollback();
        return op_status;
    }
    return commit();
}

void
Database::chargeStatement(std::size_t payload_bytes)
{
    _env.clock.advance(_env.cost.cpuOpNs +
                       static_cast<SimTime>(_env.cost.cpuPerByteNs *
                                            static_cast<double>(
                                                payload_bytes)));
}

// ---- Connection entry points ---------------------------------------

Status
Database::connect(std::unique_ptr<Connection> *out)
{
    return connect(ConnectOptions{}, out);
}

Status
Database::connect(const ConnectOptions &options,
                  std::unique_ptr<Connection> *out)
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    // Round-robin slot assignment spreads connections over the
    // per-connection logs (harmless in single-writer mode).
    const std::uint32_t slot =
        _config.writerLogs != 0 ? _nextConnSlot++ % _config.writerLogs
                                : 0;
    out->reset(new Connection(*this, options, slot));
    ++_openConnections;
    _env.stats.setGauge(stats::kGaugeOpenConnections, _openConnections);
    return Status::ok();
}

void
Database::releaseConnection(Connection *conn)
{
    (void)conn;
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    NVWAL_ASSERT(_openConnections > 0);
    --_openConnections;
    _env.stats.setGauge(stats::kGaugeOpenConnections, _openConnections);
}

Status
Database::beginFromConnection()
{
    // The caller holds the writer mutex, so no other write
    // transaction can be open.
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    NVWAL_ASSERT(!_inTxn, "writer lock held but a txn is open");
    return beginTxnBody();
}

Status
Database::commitFromConnection(std::unique_lock<std::mutex> *writer_lock,
                               Durability durability,
                               std::uint64_t *ack_epoch)
{
    GroupEntry entry;
    entry.finalized = true;
    entry.async = durability == Durability::Async;
    if (ack_epoch != nullptr)
        *ack_epoch = 0;
    bool have_entry = false;
    SimTime commit_begin = 0;
    {
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        NVWAL_ASSERT(_inTxn, "connection commit without open txn");
        if (!_poisoned.isOk()) {
            rollbackBody();
            writer_lock->unlock();
            endWriteIntent();
            return _poisoned;
        }
        if (entry.async && !_wal->supportsAsyncCommits()) {
            // The transaction stays open; the caller can retry with a
            // stricter durability level.
            return Status::unsupported(
                "this WAL mode has no asynchronous (checksum) commit; "
                "use Durability::Sync or Group");
        }
        commit_begin = _env.clock.now();
        _env.clock.advance(_env.cost.cpuTxnNs);
        have_entry = collectDirtyFrames(&entry);
        entry.txnSeq = _txnSeq;
        // Publish to the shared cache now: the next writer overlaps
        // its transaction body with this batch's durability.
        if (have_entry)
            _pager->markAllClean();
        _inTxn = false;
        _env.stats.add(stats::kTxnsCommitted);
        _env.stats.tracer().complete("db.commit", "db", commit_begin,
                                     "dirty_pages", entry.frames.size());
        _env.stats.tracer().complete("db.txn", "db", _txnBeginNs);
        _env.stats.tracer().setCurrentTxn(0);
    }

    Status s = Status::ok();
    if (have_entry) {
        s = submitAndWait(&entry, writer_lock);
        if (s.isOk() && entry.async) {
            if (ack_epoch != nullptr)
                *ack_epoch = entry.epoch;
            std::lock_guard<std::mutex> a(_asyncMutex);
            _lastCommitEpoch = entry.epoch;
        }
    } else {
        writer_lock->unlock();
    }
    // The transaction was published above (_inTxn already false), so
    // win or lose it is no longer a commit candidate; on failure the
    // database is poisoned rather than the txn retryable.
    endWriteIntent();

    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    _env.stats.recordNs(stats::kHistCommitNs,
                        _env.clock.now() - commit_begin);
    const Status ckpt = maybeCheckpointAfterCommit();
    return s.isOk() ? ckpt : s;
}

Status
Database::rollbackFromConnection(std::unique_lock<std::mutex> *writer_lock)
{
    {
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        NVWAL_ASSERT(_inTxn, "connection rollback without open txn");
        rollbackBody();
    }
    writer_lock->unlock();
    endWriteIntent();
    return Status::ok();
}

Status
Database::prepareFromConnection(std::uint64_t gtid)
{
    GroupEntry entry;
    entry.kind = GroupEntry::Kind::Prepare;
    entry.gtid = gtid;
    {
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        NVWAL_ASSERT(_inTxn, "connection prepare without open txn");
        NVWAL_RETURN_IF_ERROR(_poisoned);
        if (!_wal->supportsTwoPhase())
            return Status::unsupported(
                "WAL mode has no two-phase commit");
        _env.clock.advance(_env.cost.cpuTxnNs);
        // An empty frame set is fine: the PREPARE record alone still
        // makes this shard a voting participant.
        (void)collectDirtyFrames(&entry);
        entry.txnSeq = _txnSeq;
    }
    // Unlike a commit, the writer lock is kept and the pages stay
    // dirty: the transaction remains open (invisible, undecided)
    // until decideFromConnection. On failure nothing was staged and
    // the caller rolls back normally.
    return submitAndWait(&entry, nullptr);
}

Status
Database::decideFromConnection(std::uint64_t gtid, bool commit,
                               std::unique_lock<std::mutex> *writer_lock)
{
    GroupEntry entry;
    entry.kind = GroupEntry::Kind::Decision;
    entry.gtid = gtid;
    entry.decisionCommit = commit;
    // A failed decision append leaves the durable outcome unknown
    // (the record may or may not have reached NVRAM); poison rather
    // than pretend the transaction is retryable.
    entry.finalized = true;
    {
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        NVWAL_ASSERT(_inTxn, "connection decide without open txn");
        if (!_poisoned.isOk()) {
            rollbackBody();
            writer_lock->unlock();
            endWriteIntent();
            return _poisoned;
        }
        _env.clock.advance(_env.cost.cpuTxnNs);
    }

    const Status s = submitAndWait(&entry, nullptr);

    {
        std::lock_guard<std::recursive_mutex> eng(_engineMutex);
        if (s.isOk() && commit) {
            // The staged frames are applied in the WAL; publish the
            // local page images that produced them.
            _pager->markAllClean();
            _inTxn = false;
            _env.stats.add(stats::kTxnsCommitted);
            _env.stats.tracer().complete("db.txn", "db", _txnBeginNs);
            _env.stats.tracer().setCurrentTxn(0);
        } else {
            // Abort decision, or an append whose outcome is unknown
            // (the database is poisoned by then): discard the local
            // changes either way.
            rollbackBody();
        }
    }
    writer_lock->unlock();
    endWriteIntent();

    if (!s.isOk())
        return s;
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    return maybeCheckpointAfterCommit();
}

// ---- two-phase commit (shard-layer entry points) --------------------

Status
Database::resolvePreparedTxn(std::uint64_t gtid, bool commit)
{
    if (_mwActive)
        return Status::unsupported(
            "two-phase commit is not available in multi-writer mode");
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    if (_inTxn)
        return Status::busy(
            "cannot resolve an in-doubt txn inside a transaction");
    NVWAL_RETURN_IF_ERROR(_wal->resolveInDoubt(gtid, commit));
    frRecord(FrRecordType::Decision, kFrFlagDurableClaim, commit ? 1 : 0,
             frCheckpointId32(), gtid);
    if (commit) {
        // Frames that were invisible through recovery just became
        // committed; resynchronize the pager with the log so reads
        // see them.
        const std::uint32_t pages = _wal->committedDbSize();
        if (pages != 0)
            _pager->setPageCount(pages);
        _pager->dropCleanPages();
        _tables.clear();
    }
    return Status::ok();
}

std::vector<std::uint64_t>
Database::inDoubtTransactions() const
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    return _wal->inDoubtTransactions();
}

bool
Database::lookupDecision(std::uint64_t gtid, bool *commit) const
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    return _wal->lookupDecision(gtid, commit);
}

std::uint64_t
Database::walMaxSeenGtid() const
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    return _wal->maxSeenGtid();
}

void
Database::holdWalForTwoPhase()
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    _wal->acquireTwoPhaseHold();
}

void
Database::releaseWalTwoPhaseHold()
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    _wal->releaseTwoPhaseHold();
}

// ---- statements ----------------------------------------------------

Status
Database::insert(RowId key, ValueView value)
{
    if (_mwActive)
        return _rootConn->insert(key, value);
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->insert(key, value);
}

Status
Database::update(RowId key, ValueView value)
{
    if (_mwActive)
        return _rootConn->update(key, value);
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->update(key, value);
}

Status
Database::remove(RowId key)
{
    if (_mwActive)
        return _rootConn->remove(key);
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->remove(key);
}

Status
Database::get(RowId key, ByteBuffer *value)
{
    if (_mwActive)
        return _rootConn->get(key, value);
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->get(key, value);
}

Status
Database::scan(RowId lo, RowId hi, const BTree::ScanCallback &visit)
{
    if (_mwActive)
        return _rootConn->scan(lo, hi, visit);
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->scan(lo, hi, visit);
}

Status
Database::count(std::uint64_t *out)
{
    if (_mwActive)
        return _rootConn->count(out);
    Table *table;
    NVWAL_RETURN_IF_ERROR(defaultTable(&table));
    return table->count(out);
}

// ---- maintenance ---------------------------------------------------

Status
Database::checkpoint()
{
    if (_mwActive)
        return mwCheckpoint();
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    if (_inTxn)
        return Status::busy("cannot checkpoint inside a transaction");
    const std::uint64_t ckpt_before =
        _nvwalLog != nullptr ? _nvwalLog->checkpointId() : 0;
    const CommitSeq hardened_before = _wal->hardenedSeq();
    frRecord(FrRecordType::CheckpointStart, 0, 1,
             static_cast<std::uint32_t>(ckpt_before),
             _wal->framesSinceCheckpoint());
    const Status s = _wal->checkpoint();
    // A checkpoint hardens pending async appends before write-back;
    // retire the epochs that covered.
    completePendingAcks();
    if (s.isOk()) {
        frNoteTruncation(ckpt_before);
        if (_wal->hardenedSeq() != hardened_before)
            frRecordHarden(FrHardenReason::Checkpoint);
        frRecord(FrRecordType::CheckpointEnd, 0, 1, frCheckpointId32(),
                 _wal->framesSinceCheckpoint());
    }
    return s;
}

Status
Database::checkpointStep(std::uint32_t max_pages, bool *done)
{
    if (_mwActive) {
        // Multi-writer checkpoints are always full rounds: write-back
        // happens from the DRAM overlay, not the log, so there is no
        // incremental cursor to resume.
        *done = true;
        return mwCheckpoint();
    }
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    if (_inTxn)
        return Status::busy("cannot checkpoint inside a transaction");
    const std::uint64_t ckpt_before =
        _nvwalLog != nullptr ? _nvwalLog->checkpointId() : 0;
    const CommitSeq hardened_before = _wal->hardenedSeq();
    frRecord(FrRecordType::CheckpointStart, 0, 0,
             static_cast<std::uint32_t>(ckpt_before),
             _wal->framesSinceCheckpoint());
    const Status s = _wal->checkpointStep(
        max_pages != 0 ? max_pages : _config.checkpointStepPages, done);
    completePendingAcks();
    if (s.isOk()) {
        frNoteTruncation(ckpt_before);
        if (_wal->hardenedSeq() != hardened_before)
            frRecordHarden(FrHardenReason::Checkpoint);
        frRecord(FrRecordType::CheckpointEnd, 0, *done ? 1 : 0,
                 frCheckpointId32(), _wal->framesSinceCheckpoint());
    }
    return s;
}

std::uint64_t
Database::walFramesSinceCheckpoint() const
{
    if (_mwActive)
        return _mwFramesSinceCkpt.load(std::memory_order_relaxed);
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    return _wal->framesSinceCheckpoint();
}

std::uint64_t
Database::statValue(const std::string &name) const
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    return _env.stats.get(name);
}

std::uint64_t
Database::statGauge(const std::string &name) const
{
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    return _env.stats.gauge(name);
}

// ---- durability-epoch pipeline --------------------------------------

std::uint64_t
Database::registerAsyncEpoch(std::uint32_t acks)
{
    // Engine lock held by the caller (appendGroup); _asyncMutex is a
    // leaf below it.
    std::lock_guard<std::mutex> a(_asyncMutex);
    AsyncEpoch e;
    e.epoch = ++_epochSequencer;
    e.seq = _wal->commitSeq();
    e.acks = acks;
    e.issuedNs = _env.clock.now();
    _asyncEpochs.push_back(e);
    _asyncAcksPending += acks;
    _env.stats.setGauge(stats::kGaugeAsyncAcksPending, _asyncAcksPending);
    return e.epoch;
}

void
Database::completePendingAcks()
{
    const CommitSeq hardened = _wal->hardenedSeq();
    std::lock_guard<std::mutex> a(_asyncMutex);
    std::size_t completed = 0;
    while (completed < _asyncEpochs.size() &&
           _asyncEpochs[completed].seq <= hardened) {
        _asyncAcksPending -= _asyncEpochs[completed].acks;
        _hardenedEpoch = _asyncEpochs[completed].epoch;
        ++completed;
    }
    if (completed == 0)
        return;
    _asyncEpochs.erase(_asyncEpochs.begin(),
                       _asyncEpochs.begin() +
                           static_cast<std::ptrdiff_t>(completed));
    _env.stats.add(stats::kWalEpochsHardened, completed);
    _env.stats.setGauge(stats::kGaugeAsyncAcksPending, _asyncAcksPending);
    _asyncCv.notify_all();
}

Status
Database::maybeHardenAsync()
{
    bool over_epochs = false;
    bool over_age = false;
    {
        std::lock_guard<std::mutex> a(_asyncMutex);
        if (_asyncEpochs.empty())
            return Status::ok();
        over_epochs = _asyncEpochs.size() > _config.asyncMaxEpochs;
        over_age = _config.asyncMaxStalenessNs != 0 &&
                   _env.clock.now() - _asyncEpochs.front().issuedNs >=
                       _config.asyncMaxStalenessNs;
    }
    if (!over_epochs && !over_age)
        return Status::ok();
    if (_config.backgroundDurability) {
        kickDurability();
        return Status::ok();
    }
    NVWAL_RETURN_IF_ERROR(_wal->harden());
    completePendingAcks();
    frRecordHarden(over_epochs ? FrHardenReason::WindowEpochs
                               : FrHardenReason::WindowStaleness);
    return Status::ok();
}

Status
Database::flushAsyncCommits()
{
    if (_mwActive) {
        std::uint64_t floor;
        {
            std::lock_guard<std::mutex> mw(_mwMutex);
            NVWAL_RETURN_IF_ERROR(_mwPoisoned);
            floor = _mwPublished;
        }
        return mwHardenUpTo(floor, FrHardenReason::Explicit);
    }
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    NVWAL_RETURN_IF_ERROR(_poisoned);
    const CommitSeq hardened_before = _wal->hardenedSeq();
    NVWAL_RETURN_IF_ERROR(_wal->harden());
    completePendingAcks();
    if (_wal->hardenedSeq() != hardened_before)
        frRecordHarden(FrHardenReason::Explicit);
    return Status::ok();
}

Status
Database::waitForAsyncEpoch(std::uint64_t epoch)
{
    if (epoch == 0)
        return Status::ok();
    if (_mwActive)
        return mwHardenUpTo(epoch, FrHardenReason::Explicit);
    {
        std::lock_guard<std::mutex> a(_asyncMutex);
        if (_hardenedEpoch >= epoch)
            return Status::ok();
        if (_asyncAbandoned)
            return Status::busy("database is shutting down");
    }
    if (!_config.backgroundDurability)
        return flushAsyncCommits();
    kickDurability();
    std::unique_lock<std::mutex> a(_asyncMutex);
    _asyncCv.wait(a, [&] {
        return _hardenedEpoch >= epoch || _asyncAbandoned;
    });
    return _hardenedEpoch >= epoch
               ? Status::ok()
               : Status::busy("shutdown before the epoch hardened");
}

std::uint64_t
Database::asyncAcksPending() const
{
    if (_mwActive) {
        // One epoch == one acked transaction in multi-writer mode.
        std::lock_guard<std::mutex> mw(_mwMutex);
        return _mwPublished - _mwHardened;
    }
    std::lock_guard<std::mutex> a(_asyncMutex);
    return _asyncAcksPending;
}

std::uint64_t
Database::hardenedEpoch() const
{
    if (_mwActive) {
        std::lock_guard<std::mutex> mw(_mwMutex);
        return _mwHardened;
    }
    std::lock_guard<std::mutex> a(_asyncMutex);
    return _hardenedEpoch;
}

std::uint64_t
Database::lastCommitEpoch() const
{
    if (_mwActive)
        return _rootConn->lastCommitEpoch();
    std::lock_guard<std::mutex> a(_asyncMutex);
    return _lastCommitEpoch;
}

// ---- background durability thread -----------------------------------

void
Database::durabilityMain()
{
    std::unique_lock<std::mutex> l(_durMutex);
    for (;;) {
        // Periodic drain: the 500us timeout retires epochs that age
        // past the staleness window even when no commit kicks.
        _durCv.wait_for(l, std::chrono::microseconds(500),
                        [&] { return _durStop || _durKick; });
        if (_durStop)
            return;
        _durKick = false;
        l.unlock();

        bool pending;
        {
            std::lock_guard<std::mutex> a(_asyncMutex);
            pending = !_asyncEpochs.empty();
        }
        if (pending) {
            std::lock_guard<std::recursive_mutex> eng(_engineMutex);
            if (_poisoned.isOk()) {
                const CommitSeq hardened_before = _wal->hardenedSeq();
                (void)_wal->harden();
                completePendingAcks();
                if (_wal->hardenedSeq() != hardened_before)
                    frRecordHarden(FrHardenReason::Background);
            }
        }
        l.lock();
    }
}

void
Database::kickDurability()
{
    std::lock_guard<std::mutex> g(_durMutex);
    _durKick = true;
    _durCv.notify_all();
}

void
Database::stopDurability()
{
    {
        std::lock_guard<std::mutex> g(_durMutex);
        _durStop = true;
        _durCv.notify_all();
    }
    if (_durabilityThread.joinable())
        _durabilityThread.join();
    // Whatever is still pending will never harden through this
    // handle; wake waiters so they observe the abandonment.
    std::lock_guard<std::mutex> a(_asyncMutex);
    _asyncAbandoned = true;
    _asyncCv.notify_all();
}

// ---- multi-writer engine (DESIGN.md §13) ----------------------------

void
Database::mwFrRecord(FrRecordType type, std::uint8_t flags,
                     std::uint16_t a16, std::uint32_t a32,
                     std::uint64_t a64, std::uint64_t b64)
{
    // Caller holds _mwMutex (the ring's serialization once active).
    if (_flightRecorder && _flightRecorder->ready())
        _flightRecorder->append(type, flags, a16, a32, a64, b64);
}

Status
Database::mwActivate(const StatsSnapshot &stats_before)
{
    // Quiesce the primary log into the .db file: the cross-log merge
    // below needs a fully checkpointed base image to apply diffs on.
    NVWAL_RETURN_IF_ERROR(checkpoint());

    // Attach or create the persistent anchor.
    MwMeta meta;
    const std::string meta_ns =
        mwMetaNamespaceFor(_config.nvwal.heapNamespace);
    Status root_status = _env.heap.getRoot(meta_ns, &_mwMetaOff);
    if (root_status.isNotFound()) {
        NVWAL_RETURN_IF_ERROR(
            _env.heap.nvMalloc(MwMeta::kSize, &_mwMetaOff));
        meta.writerLogs = _config.writerLogs;
        meta.epochBase = 0;
        meta.generation = 0;
        meta.dbSizePages = _dbFile->pageCount();
        mwMetaStore(_env.pmem, _mwMetaOff, meta);
        NVWAL_RETURN_IF_ERROR(_env.heap.setRoot(meta_ns, _mwMetaOff));
    } else {
        NVWAL_RETURN_IF_ERROR(root_status);
        NVWAL_RETURN_IF_ERROR(mwMetaLoad(_env.pmem, _mwMetaOff, &meta));
        if (meta.writerLogs != _config.writerLogs)
            return Status::invalidArgument(
                "writerLogs does not match the on-media layout: "
                "configured " + std::to_string(_config.writerLogs) +
                ", anchored " + std::to_string(meta.writerLogs));
    }

    // Create and recover the per-connection logs, collecting every
    // epoch-stamped transaction above the anchored base.
    struct MergeTxn
    {
        const NvwalLog::RecoveredEpochTxn *txn;
        std::uint32_t slot;
    };
    std::vector<MergeTxn> survivors;
    _mwSlots.clear();
    for (std::uint32_t i = 0; i < _config.writerLogs; ++i) {
        auto slot = std::make_unique<MwSlot>();
        NvwalConfig log_config = _config.nvwal;
        log_config.heapNamespace =
            mwLogNamespaceFor(_config.nvwal.heapNamespace, i);
        log_config.epochMarks = true;
        slot->log = std::make_unique<NvwalLog>(
            _env.heap, _env.pmem, *_dbFile, _config.pageSize,
            resolveReserved(_config), log_config, _env.stats);
        std::uint32_t unused = 0;
        NVWAL_RETURN_IF_ERROR(slot->log->recover(&unused));
        for (const NvwalLog::RecoveredEpochTxn &txn :
             slot->log->recoveredEpochTxns())
            if (txn.epoch > meta.epochBase)
                survivors.push_back(MergeTxn{&txn, i});
        _mwSlots.push_back(std::move(slot));
    }
    std::sort(survivors.begin(), survivors.end(),
              [](const MergeTxn &a, const MergeTxn &b) {
                  return a.txn->epoch < b.txn->epoch;
              });

    // Merge the contiguous epoch prefix above the base: each log is
    // prefix-consistent on its own, so the first missing epoch
    // (un-published claim, torn tail) strands everything after it.
    const std::uint32_t file_pages = _dbFile->pageCount();
    std::uint64_t merged_epoch = meta.epochBase;
    std::uint64_t kept = 0;
    std::uint32_t db_size =
        std::max(meta.dbSizePages, file_pages);
    std::map<PageNo, ByteBuffer> images;
    for (const MergeTxn &m : survivors) {
        if (m.txn->epoch != merged_epoch + 1)
            break;
        for (const NvwalLog::RecoveredFrame &f : m.txn->frames) {
            auto it = images.find(f.pageNo);
            if (it == images.end()) {
                ByteBuffer buf(_config.pageSize, 0);
                if (f.pageNo <= file_pages)
                    NVWAL_RETURN_IF_ERROR(_dbFile->readPage(
                        f.pageNo, ByteSpan(buf.data(), buf.size())));
                it = images.emplace(f.pageNo, std::move(buf)).first;
            }
            _mwSlots[m.slot]->log->readPayload(
                f.payloadOff,
                ByteSpan(it->second.data() + f.pageOffset, f.size));
        }
        merged_epoch = m.txn->epoch;
        if (m.txn->dbSizePages > db_size)
            db_size = m.txn->dbSizePages;
        ++kept;
    }
    const std::uint64_t dropped = survivors.size() - kept;
    _env.stats.add(stats::kWalEpochMergeTxns, kept);
    _env.stats.add(stats::kWalEpochMergeGapDiscarded, dropped);

    // Write the merged images back (zero-filling pages an aborted
    // transaction's cursor bump left unreferenced), sync the file,
    // and only then advance the anchor: a crash replays the same
    // merge idempotently (absolute-offset diffs in epoch order).
    if (kept != 0 || db_size > file_pages) {
        for (std::uint32_t no = file_pages + 1; no <= db_size; ++no)
            if (images.find(no) == images.end())
                images.emplace(no, ByteBuffer(_config.pageSize, 0));
        for (const auto &[no, buf] : images)
            NVWAL_RETURN_IF_ERROR(_dbFile->writePage(
                no, ConstByteSpan(buf.data(), buf.size())));
        NVWAL_RETURN_IF_ERROR(_dbFile->sync());
    }
    meta.epochBase = merged_epoch;
    meta.generation += 1;
    meta.dbSizePages = db_size;
    mwMetaStore(_env.pmem, _mwMetaOff, meta);
    _mwGeneration = meta.generation;

    // The anchor covers every merged epoch; drop the logs.
    for (std::uint32_t i = 0; i < _mwSlots.size(); ++i) {
        NvwalLog *log = _mwSlots[i]->log.get();
        if (log->nodeCount() != 0) {
            NVWAL_RETURN_IF_ERROR(log->truncateAll());
            frRecord(FrRecordType::MwTruncation, kFrFlagDurableClaim,
                     static_cast<std::uint16_t>(i),
                     static_cast<std::uint32_t>(_mwGeneration),
                     merged_epoch, log->checkpointId());
        } else {
            log->clearRecoveredEpochTxns();
        }
    }

    // Resynchronize the single-writer structures with the merged file
    // (the catalog read below must see the merged pages).
    if (db_size != 0)
        _pager->setPageCount(db_size);
    _pager->dropCleanPages();
    _tables.clear();
    bool found = false;
    RowId id;
    NVWAL_RETURN_IF_ERROR(
        findCatalogEntry(kDefaultTable, &id, &_mwDefaultRoot, &found));
    if (!found)
        return Status::corruption(
            "default table missing after the epoch merge");

    // Volatile engine state.
    _mwEpoch = merged_epoch;
    _mwPublished = merged_epoch;
    _mwHardened = merged_epoch;
    _mwEpochBase = merged_epoch;
    _mwDbSize = db_size;
    _mwDbSizeByEpoch.clear();
    _mwOverlay = PageVersionMap();
    _mwPageEpochs.clear();
    _mwPending.clear();
    _mwPins.clear();
    _mwActiveBegins.clear();
    _mwPoisoned = Status::ok();
    _mwTxnSeq = 0;
    _mwPageCursor.store(db_size, std::memory_order_relaxed);
    _mwFramesSinceCkpt.store(0, std::memory_order_relaxed);

    // Rebuild the forensics report with the merge facts: the deltas
    // recomputed here include the per-connection logs' recovery work.
    if (_flightRecorder && _flightRecorder->ready()) {
        const auto delta = [&](const char *name) {
            const auto it = stats_before.find(name);
            const std::uint64_t before =
                it == stats_before.end() ? 0 : it->second;
            return _env.stats.get(name) - before;
        };
        _frWalState.tornFramesDetected =
            delta(stats::kWalTornFramesDetected);
        _frWalState.framesDiscarded =
            delta(stats::kWalRecoveryFramesDiscarded);
        _frWalState.lostMarks = delta(stats::kWalRecoveryLostMarks);
        _frWalState.mwEnabled = true;
        _frWalState.mwGeneration = _mwGeneration;
        _frWalState.mwMergedEpoch = merged_epoch;
        _recoveryReport =
            buildRecoveryReport(_frParsedRecording, _frWalState);
        _recoveryReport.recorderEnabled = true;
        _recoveryReport.heapNamespace = _flightRecorder->heapNamespace();
        _recoveryReport.shard = _config.frShard;
    }

    _mwActive = true;

    // The direct Database statement API runs through an internal root
    // connection from here on.
    ConnectOptions root_options;
    root_options.autoWriteTxn = true;
    return connect(root_options, &_rootConn);
}

Status
Database::mwFetchPage(PageNo page_no, std::uint64_t floor, ByteSpan out,
                      std::uint64_t *read_epoch)
{
    {
        std::lock_guard<std::mutex> mw(_mwMutex);
        std::uint64_t version_epoch = 0;
        const ByteBuffer *image =
            _mwOverlay.readAt(page_no, floor, &version_epoch);
        if (image != nullptr) {
            NVWAL_ASSERT(image->size() == out.size());
            std::copy(image->begin(), image->end(), out.data());
            if (read_epoch != nullptr)
                *read_epoch = version_epoch;
            return Status::ok();
        }
    }
    // No overlay version at or below the floor: the base image is
    // current for it. A checkpoint prunes an overlay entry only after
    // the covering file write synced, so checking the overlay first
    // makes the fallback race-free.
    if (read_epoch != nullptr)
        *read_epoch = floor;
    std::lock_guard<std::mutex> file(_mwFileMutex);
    if (page_no <= _dbFile->pageCount())
        return _dbFile->readPage(page_no, out);
    return Status::corruption(
        "page " + std::to_string(page_no) +
        " missing from the overlay and the file");
}

std::uint64_t
Database::mwBeginTxn(std::uint64_t min_floor, std::uint32_t *db_size,
                     std::uint64_t *txn_seq)
{
    std::unique_lock<std::mutex> mw(_mwMutex);
    // Read-your-writes: the caller's last commit claimed its epoch
    // before returning, but the contiguous published floor may still
    // trail it while an earlier epoch on another slot finishes its
    // append. Wait for the floor (appends only -- never hardening)
    // rather than beginning above it, which would tear the snapshot
    // prefix and mask conflicts with the in-flight epochs.
    if (min_floor > _mwEpoch)
        min_floor = _mwEpoch;
    _mwCv.wait(mw, [&] {
        return _mwPublished >= min_floor || !_mwPoisoned.isOk();
    });
    const std::uint64_t floor = _mwPublished;
    _mwActiveBegins.insert(floor);
    *db_size = _mwDbSize;
    *txn_seq = ++_mwTxnSeq;
    mwFrRecord(FrRecordType::TxnBegin, 0, 0, 0, *txn_seq);
    return floor;
}

void
Database::mwEndTxnLocked(std::uint64_t begin_floor)
{
    const auto it = _mwActiveBegins.find(begin_floor);
    NVWAL_ASSERT(it != _mwActiveBegins.end(),
                 "closing a write txn that never began");
    _mwActiveBegins.erase(it);
}

void
Database::mwEndTxn(std::uint64_t begin_floor)
{
    std::lock_guard<std::mutex> mw(_mwMutex);
    mwEndTxnLocked(begin_floor);
}

Status
Database::mwCommitWorkspace(std::uint32_t slot_no, MwWorkspace &ws,
                            const CommitOptions &opts,
                            std::uint64_t txn_seq,
                            std::uint64_t *epoch_out)
{
    *epoch_out = 0;
    const SimTime commit_begin = _env.clock.now();
    _env.clock.advance(_env.cost.cpuTxnNs);
    const std::vector<PageNo> dirty = ws.dirtyPageNos();

    if (dirty.empty()) {
        // Read-only or no-op transaction: nothing to validate (its
        // reads were served from a consistent floor) and nothing to
        // publish; it claims no epoch.
        std::lock_guard<std::mutex> mw(_mwMutex);
        mwEndTxnLocked(ws.beginEpoch());
        NVWAL_RETURN_IF_ERROR(_mwPoisoned);
        _env.stats.add(stats::kTxnsCommitted);
        return Status::ok();
    }

    MwSlot &slot = *_mwSlots[slot_no];
    std::unique_lock<std::mutex> slot_lock(slot.mutex);
    std::uint64_t epoch = 0;
    {
        std::lock_guard<std::mutex> mw(_mwMutex);
        if (!_mwPoisoned.isOk()) {
            mwEndTxnLocked(ws.beginEpoch());
            return _mwPoisoned;
        }
        // Optimistic validation: conflict iff any read page was
        // republished after the version this transaction read. Pages
        // absent from _mwPageEpochs pass by design -- the map is
        // pruned with the overlay, and the prune floor never passes
        // an active begin floor.
        for (const auto &[page_no, read_epoch] : ws.readSet()) {
            const auto it = _mwPageEpochs.find(page_no);
            if (it != _mwPageEpochs.end() && it->second > read_epoch) {
                _env.stats.add(stats::kWalLogConflicts);
                mwEndTxnLocked(ws.beginEpoch());
                return Status::conflict(
                    "page " + std::to_string(page_no) +
                    " republished at epoch " +
                    std::to_string(it->second));
            }
        }
        if (_mwEpoch >= 0x7fffffffULL) {
            mwEndTxnLocked(ws.beginEpoch());
            return Status::unsupported(
                "epoch counter exhausted; reopen the database");
        }
        // Claim the epoch and pre-publish the write set's epochs so a
        // concurrent validator conflicts against this commit before
        // its append even lands (claimed under the slot lock, so this
        // slot's log receives epochs in ascending order).
        epoch = ++_mwEpoch;
        for (PageNo page_no : dirty)
            _mwPageEpochs[page_no] = epoch;
        _mwPending.push_back(
            MwPending{epoch, slot_no, ws.dbSizePages(), false});
    }

    // Append to this slot's log and queue the flush -- lock-free of
    // every other slot. No barrier here: hardening is grouped.
    TxnFrames txn;
    txn.dbSizePages = ws.dbSizePages();
    txn.frames.reserve(dirty.size());
    for (PageNo page_no : dirty) {
        CachedPage *page = ws.cached(page_no);
        NVWAL_ASSERT(page != nullptr, "dirty page not in workspace");
        txn.frames.push_back(FrameWrite{
            page_no, ConstByteSpan(page->buf.data(), page->buf.size()),
            &page->dirty, page->noteDirtyRatio()});
    }
    const Status append = slot.log->writeTxnEpoch(txn, epoch);
    if (append.isOk()) {
        slot.log->flushRuns();
        slot.lastAppendedEpoch = epoch;
    }
    slot_lock.unlock();

    std::uint64_t published_floor = 0;
    bool window_harden = false;
    {
        std::lock_guard<std::mutex> mw(_mwMutex);
        if (!append.isOk()) {
            // The epoch was claimed: a permanent gap that would
            // strand every later epoch at recovery. Poison.
            _mwPoisoned = append;
            mwEndTxnLocked(ws.beginEpoch());
            _mwCv.notify_all();
            return append;
        }
        // Publish the full page images; readers at floors >= epoch
        // (once the contiguous floor reaches it) see them.
        for (PageNo page_no : dirty) {
            CachedPage *page = ws.cached(page_no);
            _mwOverlay.publish(
                page_no, epoch,
                ConstByteSpan(page->buf.data(), page->buf.size()));
        }
        for (MwPending &pending : _mwPending)
            if (pending.epoch == epoch) {
                pending.appended = true;
                break;
            }
        while (!_mwPending.empty() && _mwPending.front().appended) {
            const MwPending &front = _mwPending.front();
            _mwPublished = front.epoch;
            if (front.dbSizePages > _mwDbSize)
                _mwDbSize = front.dbSizePages;
            _mwDbSizeByEpoch[front.epoch] = _mwDbSize;
            _mwPending.pop_front();
        }
        published_floor = _mwPublished;
        mwEndTxnLocked(ws.beginEpoch());
        _env.stats.add(stats::kTxnsCommitted);
        if (opts.durability == Durability::Async)
            _env.stats.add(stats::kDbAsyncCommits);
        // Unstamped ack: durability arrives with the group harden.
        mwFrRecord(FrRecordType::CommitAck, 0,
                   static_cast<std::uint16_t>(slot_no),
                   static_cast<std::uint32_t>(_mwGeneration), txn_seq,
                   epoch);
        _mwCv.notify_all();
        window_harden =
            published_floor - _mwHardened > _config.asyncMaxEpochs;
    }
    _mwFramesSinceCkpt.fetch_add(dirty.size(),
                                 std::memory_order_relaxed);

    Status harden = Status::ok();
    const bool wait_for_harden =
        opts.durability != Durability::Async || opts.waitForHarden;
    if (wait_for_harden)
        harden = mwHardenUpTo(epoch, FrHardenReason::StrictRun);
    else if (window_harden)
        harden = mwHardenUpTo(published_floor,
                              FrHardenReason::WindowEpochs);
    *epoch_out = epoch;
    _env.stats.recordNs(stats::kHistCommitNs,
                        _env.clock.now() - commit_begin);
    NVWAL_RETURN_IF_ERROR(harden);
    mwMaybeCheckpoint();
    return Status::ok();
}

Status
Database::mwHardenUpTo(std::uint64_t target, FrHardenReason reason)
{
    std::lock_guard<std::mutex> h(_mwHardenMutex);
    std::uint64_t floor = 0;
    {
        std::unique_lock<std::mutex> mw(_mwMutex);
        if (target > _mwEpoch)
            target = _mwEpoch;
        if (_mwHardened >= target)
            return Status::ok();
        _mwCv.wait(mw, [&] {
            return _mwPublished >= target || !_mwPoisoned.isOk();
        });
        NVWAL_RETURN_IF_ERROR(_mwPoisoned);
        floor = _mwPublished;
    }
    // Sample each log's flush candidate under its slot lock: every
    // epoch <= floor queued its lines (inline flushRuns) before it
    // published, so the one barrier below covers all of them.
    std::vector<CommitSeq> candidates(_mwSlots.size(), 0);
    for (std::size_t i = 0; i < _mwSlots.size(); ++i) {
        MwSlot &slot = *_mwSlots[i];
        std::uint64_t newest = 0;
        {
            std::lock_guard<std::mutex> sl(slot.mutex);
            candidates[i] = slot.log->flushCandidateSeq();
            newest = slot.lastAppendedEpoch;
        }
        std::lock_guard<std::mutex> mw(_mwMutex);
        mwFrRecord(FrRecordType::MwLogHarden, 0,
                   static_cast<std::uint16_t>(i),
                   static_cast<std::uint32_t>(_mwGeneration), newest,
                   candidates[i]);
    }
    _env.pmem.persistBarrier();
    for (std::size_t i = 0; i < _mwSlots.size(); ++i) {
        std::lock_guard<std::mutex> sl(_mwSlots[i]->mutex);
        _mwSlots[i]->log->finishHarden(candidates[i]);
    }
    {
        std::lock_guard<std::mutex> mw(_mwMutex);
        if (floor > _mwHardened)
            _mwHardened = floor;
        _env.stats.add(stats::kWalMwHardens);
        mwFrRecord(FrRecordType::MwHarden, kFrFlagDurableClaim,
                   static_cast<std::uint16_t>(reason),
                   static_cast<std::uint32_t>(_mwGeneration), floor,
                   _mwHardened);
        _mwCv.notify_all();
    }
    return Status::ok();
}

Status
Database::mwCheckpoint()
{
    std::lock_guard<std::mutex> ck(_mwCkptMutex);
    return mwCheckpointLocked();
}

void
Database::mwMaybeCheckpoint()
{
    if (!_config.autoCheckpoint)
        return;
    if (_mwFramesSinceCkpt.load(std::memory_order_relaxed) <
        _config.checkpointThreshold)
        return;
    std::unique_lock<std::mutex> ck(_mwCkptMutex, std::try_to_lock);
    if (!ck.owns_lock())
        return;  // another round is already draining
    (void)mwCheckpointLocked();
}

Status
Database::mwCheckpointLocked()
{
    // Every epoch written to the file must be durable in some log
    // first (no file state ahead of the logs), so harden the current
    // published floor before any write-back.
    std::uint64_t floor = 0;
    {
        std::lock_guard<std::mutex> mw(_mwMutex);
        NVWAL_RETURN_IF_ERROR(_mwPoisoned);
        floor = _mwPublished;
    }
    NVWAL_RETURN_IF_ERROR(
        mwHardenUpTo(floor, FrHardenReason::Checkpoint));

    // Clamp the write-back target: the base image must not advance
    // past a reader pin or an active transaction's begin floor (their
    // overlay versions -- including "absent = base" -- must survive).
    std::uint64_t target = 0;
    std::uint32_t db_size_at_target = 0;
    std::map<PageNo, ByteBuffer> pages;
    {
        std::lock_guard<std::mutex> mw(_mwMutex);
        target = _mwHardened;
        if (!_mwPins.empty())
            target = std::min(target, *_mwPins.begin());
        if (!_mwActiveBegins.empty())
            target = std::min(target, *_mwActiveBegins.begin());
        if (target < _mwHardened)
            _env.stats.add(stats::kCheckpointsPinBlocked);
        if (target <= _mwEpochBase)
            return Status::ok();
        for (const auto &[page_no, image] :
             _mwOverlay.collectUpTo(target))
            pages.emplace(page_no, *image);
        const auto it = _mwDbSizeByEpoch.upper_bound(target);
        NVWAL_ASSERT(it != _mwDbSizeByEpoch.begin(),
                     "published epochs above the base have size marks");
        db_size_at_target = std::prev(it)->second;
        mwFrRecord(FrRecordType::CheckpointStart, 0, 1,
                   static_cast<std::uint32_t>(_mwGeneration), target);
    }

    // File first, then anchor, then volatile prune, then truncation:
    // a crash at any point recovers (the logs still hold everything
    // above the persisted anchor).
    {
        std::lock_guard<std::mutex> file(_mwFileMutex);
        const std::uint32_t file_pages = _dbFile->pageCount();
        for (std::uint32_t no = file_pages + 1; no <= db_size_at_target;
             ++no)
            if (pages.find(no) == pages.end())
                pages.emplace(no, ByteBuffer(_config.pageSize, 0));
        for (const auto &[no, buf] : pages)
            NVWAL_RETURN_IF_ERROR(_dbFile->writePage(
                no, ConstByteSpan(buf.data(), buf.size())));
        NVWAL_RETURN_IF_ERROR(_dbFile->sync());
    }
    MwMeta meta;
    meta.writerLogs = _config.writerLogs;
    meta.epochBase = target;
    meta.generation = _mwGeneration;
    meta.dbSizePages = db_size_at_target;
    mwMetaStore(_env.pmem, _mwMetaOff, meta);
    {
        std::lock_guard<std::mutex> mw(_mwMutex);
        _mwEpochBase = target;
        _mwOverlay.pruneTo(target);
        for (auto it = _mwPageEpochs.begin();
             it != _mwPageEpochs.end();) {
            if (it->second <= target)
                it = _mwPageEpochs.erase(it);
            else
                ++it;
        }
        // Keep the newest size mark at or below the base (the next
        // round's clamp may land on it), drop the rest.
        auto keep = _mwDbSizeByEpoch.upper_bound(target);
        if (keep != _mwDbSizeByEpoch.begin())
            _mwDbSizeByEpoch.erase(_mwDbSizeByEpoch.begin(),
                                   std::prev(keep));
    }

    // Truncate every log whose epochs are all covered by the anchor.
    for (std::size_t i = 0; i < _mwSlots.size(); ++i) {
        MwSlot &slot = *_mwSlots[i];
        std::lock_guard<std::mutex> sl(slot.mutex);
        if (slot.lastAppendedEpoch <= target &&
            slot.log->nodeCount() != 0) {
            NVWAL_RETURN_IF_ERROR(slot.log->truncateAll());
            std::lock_guard<std::mutex> mw(_mwMutex);
            mwFrRecord(FrRecordType::MwTruncation, kFrFlagDurableClaim,
                       static_cast<std::uint16_t>(i),
                       static_cast<std::uint32_t>(_mwGeneration),
                       target, slot.log->checkpointId());
        }
    }
    std::uint64_t remaining = 0;
    for (const auto &slot : _mwSlots) {
        std::lock_guard<std::mutex> sl(slot->mutex);
        remaining += slot->log->framesSinceCheckpoint();
    }
    _mwFramesSinceCkpt.store(remaining, std::memory_order_relaxed);
    _env.stats.add(stats::kCheckpoints);
    {
        std::lock_guard<std::mutex> mw(_mwMutex);
        mwFrRecord(FrRecordType::CheckpointEnd, 0, 1,
                   static_cast<std::uint32_t>(_mwGeneration), target,
                   remaining);
    }
    return Status::ok();
}

std::uint64_t
Database::mwPinRead(std::uint32_t *db_size, std::uint64_t min_floor)
{
    std::unique_lock<std::mutex> mw(_mwMutex);
    if (min_floor > _mwEpoch)
        min_floor = _mwEpoch;
    _mwCv.wait(mw, [&] {
        return _mwPublished >= min_floor || !_mwPoisoned.isOk();
    });
    _mwPins.insert(_mwPublished);
    *db_size = _mwDbSize;
    _env.stats.setGauge(stats::kGaugeOpenSnapshots, _mwPins.size());
    return _mwPublished;
}

void
Database::mwUnpinRead(std::uint64_t floor)
{
    std::lock_guard<std::mutex> mw(_mwMutex);
    const auto it = _mwPins.find(floor);
    NVWAL_ASSERT(it != _mwPins.end(), "unpin without pin");
    _mwPins.erase(it);
    _env.stats.setGauge(stats::kGaugeOpenSnapshots, _mwPins.size());
}

std::uint64_t
Database::mwPublishedEpoch() const
{
    std::lock_guard<std::mutex> mw(_mwMutex);
    return _mwPublished;
}

std::uint64_t
Database::mwHardenedEpoch() const
{
    std::lock_guard<std::mutex> mw(_mwMutex);
    return _mwHardened;
}

std::uint64_t
Database::mwReachableNvramBlocks() const
{
    if (!_mwActive)
        return 0;
    std::uint64_t blocks = _env.heap.extentBlocksAt(_mwMetaOff);
    for (const auto &slot : _mwSlots) {
        std::lock_guard<std::mutex> sl(slot->mutex);
        blocks += slot->log->reachableNvramBlocks();
    }
    return blocks;
}

// ---- background checkpointer ---------------------------------------

void
Database::checkpointerMain()
{
    std::unique_lock<std::mutex> l(_ckptMutex);
    for (;;) {
        _ckptCv.wait(l, [&] { return _ckptStop || _ckptKick; });
        if (_ckptStop)
            return;
        _ckptKick = false;
        l.unlock();

        // Drain: one bounded round per engine-lock acquisition, so
        // foreground commits interleave instead of stalling behind a
        // monolithic checkpoint. done=true also covers the
        // pin-blocked case (round complete, truncation deferred);
        // the next commit kicks again.
        bool done = false;
        while (!done) {
            {
                std::lock_guard<std::recursive_mutex> eng(_engineMutex);
                if (_inTxn || _wal->framesSinceCheckpoint() == 0)
                    break;
                const std::uint64_t ckpt_before =
                    _nvwalLog != nullptr ? _nvwalLog->checkpointId() : 0;
                frRecord(FrRecordType::CheckpointStart, 0, 0,
                         static_cast<std::uint32_t>(ckpt_before),
                         _wal->framesSinceCheckpoint());
                const Status s = _wal->checkpointStep(
                    _config.checkpointStepPages, &done);
                _env.stats.add(stats::kCheckpointerSteps);
                completePendingAcks();
                if (!s.isOk())
                    break;
                frNoteTruncation(ckpt_before);
                frRecord(FrRecordType::CheckpointEnd, 0, done ? 1 : 0,
                         frCheckpointId32(),
                         _wal->framesSinceCheckpoint());
            }
            std::lock_guard<std::mutex> g(_ckptMutex);
            if (_ckptStop)
                return;
        }
        l.lock();
    }
}

void
Database::kickCheckpointer()
{
    std::lock_guard<std::mutex> g(_ckptMutex);
    _ckptKick = true;
    _ckptCv.notify_all();
}

void
Database::stopCheckpointer()
{
    {
        std::lock_guard<std::mutex> g(_ckptMutex);
        _ckptStop = true;
        _ckptCv.notify_all();
    }
    if (_checkpointer.joinable())
        _checkpointer.join();
}

Status
Database::vacuum()
{
    if (_mwActive)
        return Status::unsupported(
            "vacuum is single-writer only: reopen without multiWriter "
            "to compact");
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    if (_inTxn)
        return Status::busy("cannot vacuum inside a transaction");
    if (_wal->hasPins())
        return Status::busy("open snapshots pin the log");
    if (_config.shardMember)
        return Status::unsupported(
            "vacuum on a shard member: the reopen would re-recover the "
            "shared NVRAM heap under the other shards");
    // Make the .db file current and the log empty so the rebuild
    // can read pages straight from the file image.
    NVWAL_RETURN_IF_ERROR(checkpoint());

    const std::string tmp_name = _config.name + ".vacuum";
    if (_env.fs.exists(tmp_name))
        NVWAL_RETURN_IF_ERROR(_env.fs.remove(tmp_name));

    {
        DbFile tmp_file(_env.fs, tmp_name, _config.pageSize);
        NVWAL_RETURN_IF_ERROR(tmp_file.open());
        Pager tmp_pager(tmp_file, _config.pageSize,
                        resolveReserved(_config));
        NVWAL_RETURN_IF_ERROR(tmp_pager.open());
        BTree tmp_catalog(tmp_pager, tmp_pager.rootPage());

        // Copy each table in catalog order; scanning in key order
        // produces compact, append-built trees in the new file.
        Status copy_error = Status::ok();
        NVWAL_RETURN_IF_ERROR(_catalog->scan(
            INT64_MIN, INT64_MAX,
            [&](RowId id, ConstByteSpan raw) {
                PageNo old_root;
                std::string table_name;
                if (!decodeCatalogEntry(raw, &old_root, &table_name)) {
                    copy_error = Status::corruption("bad catalog entry");
                    return false;
                }
                CachedPage *root_page;
                PageNo new_root;
                copy_error =
                    tmp_pager.allocatePage(&root_page, &new_root);
                if (!copy_error.isOk())
                    return false;
                const ByteBuffer entry =
                    encodeCatalogEntry(new_root, table_name);
                copy_error = tmp_catalog.insert(
                    id, ConstByteSpan(entry.data(), entry.size()));
                if (!copy_error.isOk())
                    return false;

                BTree source(*_pager, old_root);
                BTree target(tmp_pager, new_root);
                const Status scan_status = source.scan(
                    INT64_MIN, INT64_MAX,
                    [&](RowId key, ConstByteSpan value) {
                        copy_error = target.insert(key, value);
                        return copy_error.isOk();
                    });
                if (copy_error.isOk())
                    copy_error = scan_status;
                return copy_error.isOk();
            }));
        NVWAL_RETURN_IF_ERROR(copy_error);
        NVWAL_RETURN_IF_ERROR(tmp_pager.flushAllToFile());
        NVWAL_RETURN_IF_ERROR(tmp_file.sync());
    }

    // Atomic swap, then rebuild all volatile state on the new file.
    NVWAL_RETURN_IF_ERROR(_env.fs.rename(tmp_name, _config.name));
    _tables.clear();
    _catalog.reset();
    _wal.reset();
    _pager.reset();
    _dbFile.reset();
    return openInternal();
}

Status
Database::verifyIntegrity()
{
    if (_mwActive) {
        // Validate through a pinned snapshot; the shared pager is not
        // serialized against multi-writer checkpoints.
        std::uint32_t pages = 0;
        const std::uint64_t floor = mwPinRead(&pages);
        SnapshotCache snap(
            _config.pageSize, _pager->reservedBytes(), pages,
            _pager->rootPage(), [this, floor](PageNo no, ByteSpan buf) {
                return mwFetchPage(no, floor, buf, nullptr);
            });
        auto validate = [&]() -> Status {
            BTree catalog(snap, _pager->rootPage());
            NVWAL_RETURN_IF_ERROR(catalog.validate());
            Status scan_error = Status::ok();
            std::vector<PageNo> roots;
            NVWAL_RETURN_IF_ERROR(catalog.scan(
                INT64_MIN, INT64_MAX, [&](RowId, ConstByteSpan raw) {
                    PageNo root;
                    std::string name;
                    if (!decodeCatalogEntry(raw, &root, &name)) {
                        scan_error =
                            Status::corruption("bad catalog entry");
                        return false;
                    }
                    roots.push_back(root);
                    return true;
                }));
            NVWAL_RETURN_IF_ERROR(scan_error);
            for (PageNo root : roots) {
                BTree tree(snap, root);
                NVWAL_RETURN_IF_ERROR(tree.validate());
            }
            return Status::ok();
        };
        const Status s = validate();
        mwUnpinRead(floor);
        return s;
    }
    std::lock_guard<std::recursive_mutex> eng(_engineMutex);
    NVWAL_RETURN_IF_ERROR(_catalog->validate());
    std::vector<std::string> names;
    NVWAL_RETURN_IF_ERROR(listTables(&names));
    for (const std::string &name : names) {
        Table *table;
        NVWAL_RETURN_IF_ERROR(openTable(name, &table));
        NVWAL_RETURN_IF_ERROR(table->btree().validate());
    }
    return Status::ok();
}

} // namespace nvwal
