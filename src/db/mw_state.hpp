/**
 * @file
 * Volatile and persistent state backing the multi-writer engine
 * (DESIGN.md §13): per-connection NVRAM logs append epoch-stamped
 * commits lock-free of each other, and these types hold the shared
 * DRAM overlay the published epochs are read through, the private
 * per-transaction workspace an optimistic writer mutates, and the
 * small persistent metadata blob the cross-log merge anchors on.
 *
 *  - PageVersionMap: page -> ascending (epoch, full page image)
 *    versions. Commits publish here once their log append is
 *    complete; readers resolve a page as of a published epoch floor,
 *    falling back to the .db base image. Checkpointing writes the
 *    newest version at or below a durable floor back to the file and
 *    prunes everything it covered.
 *
 *  - MwWorkspace: the PageSource a multi-writer write transaction
 *    runs its B-tree on. Pages are fetched copy-on-read from the
 *    overlay/.db through a fetcher callback that also reports the
 *    epoch of the version read; the workspace records that epoch per
 *    page (the transaction's read set) so commit-time validation can
 *    detect pages republished since. Page allocation bumps a shared
 *    atomic cursor, so concurrent transactions never collide on page
 *    numbers; freed pages are leaked until a vacuum in single-writer
 *    mode reclaims them (grow-only by design).
 *
 *  - MwMeta: the per-database persistent anchor (heap namespace
 *    "<wal ns>-mw", docs/FORMAT.md §8): the epoch base every log's
 *    surviving commits are merged above, the merge generation, and
 *    the database size at the base. Persisted eagerly on every merge
 *    and multi-writer checkpoint, always before any log truncates.
 */

#ifndef NVWAL_DB_MW_STATE_HPP
#define NVWAL_DB_MW_STATE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "pager/page_source.hpp"
#include "pmem/pmem.hpp"

namespace nvwal
{

/** Shared DRAM overlay of published-but-not-checkpointed pages. */
class PageVersionMap
{
  public:
    /** One published version of a page. */
    struct Version
    {
        std::uint64_t epoch = 0;
        ByteBuffer image;
    };

    /**
     * Publish @p image as the state of @p page_no after @p epoch.
     * Same-page epochs always arrive ascending: a later-epoch writer
     * of the page must have read (and thus waited for) the earlier
     * version, or it would have failed validation.
     */
    void publish(PageNo page_no, std::uint64_t epoch, ConstByteSpan image);

    /**
     * Newest version of @p page_no with epoch <= @p horizon, or
     * nullptr when the .db base image is current for that horizon.
     * @p epoch_out (optional) receives the version's epoch.
     */
    const ByteBuffer *readAt(PageNo page_no, std::uint64_t horizon,
                             std::uint64_t *epoch_out = nullptr) const;

    /**
     * The checkpoint write-back set: for every page with a version at
     * or below @p horizon, the newest such version's image.
     */
    std::map<PageNo, const ByteBuffer *>
    collectUpTo(std::uint64_t horizon) const;

    /** Drop every version with epoch <= @p horizon (now in the file). */
    void pruneTo(std::uint64_t horizon);

    /** Pages holding at least one version (tests, gauges). */
    std::size_t pageCount() const { return _pages.size(); }

    /** Total versions held (tests, gauges). */
    std::size_t versionCount() const;

  private:
    std::map<PageNo, std::vector<Version>> _pages;
};

/**
 * Private PageSource of one optimistic write transaction. Confined to
 * the owning connection's thread; only the fetcher and the shared
 * page cursor touch cross-transaction state.
 */
class MwWorkspace : public PageSource
{
  public:
    /**
     * Materialize @p page as of the transaction's begin floor and
     * report the epoch of the version served (the begin floor itself
     * when the .db base image was current).
     */
    using Fetcher = std::function<Status(PageNo page, ByteSpan out,
                                         std::uint64_t *read_epoch)>;

    MwWorkspace(std::uint32_t page_size, std::uint32_t reserved_bytes,
                PageNo root_page, std::uint64_t begin_epoch,
                std::uint32_t begin_db_size,
                std::atomic<std::uint32_t> *page_cursor, Fetcher fetch)
        : _pageSize(page_size), _reservedBytes(reserved_bytes),
          _rootPage(root_page), _beginEpoch(begin_epoch),
          _beginDbSize(begin_db_size), _pageCursor(page_cursor),
          _fetch(std::move(fetch))
    {}

    Status getPage(PageNo page_no, CachedPage **out) override;
    Status allocatePage(CachedPage **out, PageNo *page_no) override;

    /**
     * Grow-only: multi-writer page numbers come from a shared atomic
     * cursor, so returning one to a free list would need cross-txn
     * coordination at exactly the point the design removes it. The
     * page is simply leaked until a single-writer vacuum compacts.
     */
    Status freePage(PageNo page_no) override
    {
        (void)page_no;
        return Status::ok();
    }

    std::uint32_t pageSize() const override { return _pageSize; }
    std::uint32_t usableSize() const override
    { return _pageSize - _reservedBytes; }
    PageNo rootPage() const override { return _rootPage; }

    /** Published epoch floor pinned when the transaction began. */
    std::uint64_t beginEpoch() const { return _beginEpoch; }

    /** Database size in pages after this transaction commits. */
    std::uint32_t
    dbSizePages() const
    {
        return _maxAllocated > _beginDbSize ? _maxAllocated : _beginDbSize;
    }

    /** page -> epoch of the version this transaction read. */
    const std::map<PageNo, std::uint64_t> &readSet() const
    { return _readSet; }

    /** Page numbers of all dirty workspace pages, ascending. */
    std::vector<PageNo> dirtyPageNos() const;

    /** Cached entry or nullptr (no fetch). */
    CachedPage *cached(PageNo page_no);

  private:
    std::uint32_t _pageSize;
    std::uint32_t _reservedBytes;
    PageNo _rootPage;
    std::uint64_t _beginEpoch;
    std::uint32_t _beginDbSize;
    std::uint32_t _maxAllocated = 0;
    std::atomic<std::uint32_t> *_pageCursor;
    Fetcher _fetch;
    std::map<PageNo, std::unique_ptr<CachedPage>> _cache;
    std::map<PageNo, std::uint64_t> _readSet;
};

/**
 * Persistent multi-writer anchor (one per database, heap namespace
 * "<wal ns>-mw"). 40-byte little-endian layout:
 *
 *   0   magic u64
 *   8   version u32
 *   12  writer log count u32
 *   16  epoch base u64 (every log's epochs <= this are in the .db)
 *   24  merge generation u64
 *   32  db size in pages at the epoch base u32
 *   36  reserved u32
 *
 * Individual u64/u32 fields update atomically on the simulated
 * device; the anchor is persisted eagerly (flush + barrier) before
 * any log truncation relies on it, and a crash between field stores
 * can only leave generation/dbSizePages stale -- epochBase itself is
 * a single word and the merge tolerates a stale size by taking the
 * max of the anchor, the file, and the replayed marks.
 */
struct MwMeta
{
    static constexpr std::uint64_t kMagic = 0x31574d4c4157564eULL; // "NVWALMW1"
    static constexpr std::uint32_t kVersion = 1;
    static constexpr std::uint32_t kSize = 40;

    std::uint32_t writerLogs = 0;
    std::uint64_t epochBase = 0;
    std::uint64_t generation = 0;
    std::uint32_t dbSizePages = 0;
};

/** Store + eagerly persist @p meta at @p off. */
void mwMetaStore(Pmem &pmem, NvOffset off, const MwMeta &meta);

/** Load and validate the anchor at @p off. */
Status mwMetaLoad(Pmem &pmem, NvOffset off, MwMeta *out);

/** Heap namespace of the anchor ("nvwal" -> "nvwal-mw"). */
std::string mwMetaNamespaceFor(const std::string &wal_namespace);

/** Heap namespace of per-connection log @p slot ("nvwal-c03"). */
std::string mwLogNamespaceFor(const std::string &wal_namespace,
                              std::uint32_t slot);

} // namespace nvwal

#endif // NVWAL_DB_MW_STATE_HPP
