/**
 * @file
 * Byte-addressable NVRAM device model with an explicit CPU-cache
 * persistence boundary.
 *
 * The model separates three storage states, mirroring the hardware
 * the paper targets (section 4):
 *
 *  1. *cached*  -- CPU stores land in a simulated write-back cache
 *     (volatile). This is where memcpy() puts WAL frames.
 *  2. *queued*  -- a cache-line flush (dccmvac/clflush) snapshots the
 *     line into the memory-controller write queue. Still volatile
 *     without hardware support.
 *  3. *durable* -- a persist barrier (pcommit-like) drains the queue
 *     into the NVRAM media. Only this state survives power failure
 *     under the pessimistic policy.
 *
 * Power-failure injection: a crash point can be scheduled at the
 * N-th persistence-relevant operation; when reached, the device
 * throws PowerFailure after applying the configured survival policy.
 * Crash-recovery tests sweep N across a transaction to exercise
 * every intermediate state (section 4.3 failure cases).
 */

#ifndef NVWAL_NVRAM_NVRAM_DEVICE_HPP
#define NVWAL_NVRAM_NVRAM_DEVICE_HPP

#include <cstdint>
#include <exception>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/stats.hpp"

namespace nvwal
{

/** Thrown when a scheduled power failure fires. */
class PowerFailure : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "simulated power failure";
    }
};

/** What survives an injected power failure. */
enum class FailurePolicy
{
    /** Only persist-barrier-drained data survives. */
    Pessimistic,
    /**
     * Arbitrary cache eviction: each dirty cached line independently
     * survives with the configured probability, and queued lines may
     * tear at 8-byte granularity. Models the worst case the paper's
     * recovery protocol must tolerate.
     */
    Adversarial,
    /** Everything survives (DRAM-like; for differential testing). */
    AllSurvive,
};

/**
 * Byte-addressable NVRAM with simulated cache-line persistence.
 *
 * Thread-safety: one device backs every shard of a sharded engine
 * (a single global op counter is what lets the crash sweep inject a
 * power failure at one cross-shard instant), so all public methods
 * take an internal recursive mutex. The lock order is strictly
 * top-down — heap/pmem/fs lock before calling into the device, and
 * the device never calls back up — so no inversion is possible.
 */
class NvramDevice
{
  public:
    /**
     * @param size Device capacity in bytes. Need not be a multiple of
     *        the cache line size; the last line is partial and all
     *        persistence paths clamp to it.
     * @param cache_line_size Cache line size in bytes (power of two).
     * @param stats Counter registry (may outlive traffic queries).
     * @param seed RNG seed for the adversarial failure policy.
     */
    NvramDevice(std::size_t size, std::uint32_t cache_line_size,
                MetricsRegistry &stats, std::uint64_t seed = 0x7a51);

    std::size_t size() const { return _durable.size(); }
    std::uint32_t cacheLineSize() const { return _lineSize; }

    // ---- CPU-visible data path -----------------------------------

    /** Store @p data at @p off. Lands in the simulated cache. */
    void write(NvOffset off, ConstByteSpan data);

    /** Coherent read (sees cached data over durable data). */
    void read(NvOffset off, ByteSpan out) const;

    /** Convenience single-value accessors for metadata code. */
    std::uint64_t readU64(NvOffset off) const;
    void writeU64(NvOffset off, std::uint64_t value);

    // ---- persistence path ------------------------------------------

    /**
     * Flush the cache line containing @p addr into the persist
     * queue (snapshot semantics: later stores to the line are not
     * covered). Clean lines are flushed as a no-op. Mirrors the
     * non-invalidating ARM dccmvac used by the paper (Algorithm 2).
     */
    void flushLine(NvOffset addr);

    /** Drain the persist queue into the durable media. */
    void drainPersistQueue();

    /**
     * Flush every dirty cached line into the persist queue and
     * return how many lines were flushed. Models a hardware epoch
     * barrier (PersistencyModel::EpochHW), where the memory system
     * tracks the write-set itself.
     */
    std::size_t flushAllDirtyLines();

    // ---- failure injection -----------------------------------------

    /**
     * Schedule a power failure at the @p op_count-th subsequent
     * persistence-relevant operation (write / flush / drain). Pass 0
     * to cancel.
     */
    void scheduleCrashAtOp(std::uint64_t op_count);

    /** Operations counted so far toward crash scheduling. */
    std::uint64_t
    opCount() const
    {
        std::lock_guard<std::recursive_mutex> g(_mu);
        return _opCount;
    }

    /**
     * Apply @p policy and drop all volatile state, as if power was
     * lost this instant. Unlike the scheduled variant this does not
     * throw; tests call it directly at a chosen point.
     */
    void powerFail(FailurePolicy policy, double survive_prob = 0.5);

    /** Number of dirty (unflushed) cached lines; test introspection. */
    std::size_t
    dirtyLineCount() const
    {
        std::lock_guard<std::recursive_mutex> g(_mu);
        return _cache.size();
    }

    /** Number of flushed-but-undrained lines; test introspection. */
    std::size_t
    queuedLineCount() const
    {
        std::lock_guard<std::recursive_mutex> g(_mu);
        return _queue.size();
    }

    /** Direct durable-media peek, bypassing the cache (tests). */
    void readDurable(NvOffset off, ByteSpan out) const;

    // ---- image snapshot / restore ----------------------------------

    /** One simulated cache line (full _lineSize bytes, tail padded). */
    struct Line
    {
        ByteBuffer data;
    };

    /**
     * Complete device state: durable media plus the volatile cache
     * and persist-queue contents, the op counter and the adversarial
     * RNG. Capturing volatile state lets a crash-sweep harness
     * restore mid-workload images without replaying the warm-up.
     */
    struct Snapshot
    {
        ByteBuffer durable;
        std::unordered_map<std::uint64_t, Line> cache;
        std::unordered_map<std::uint64_t, Line> queue;
        std::uint64_t opCount = 0;
        Rng rng{0};
    };

    Snapshot snapshot() const;

    /** Restore a snapshot; cancels any scheduled crash. */
    void restore(const Snapshot &snap);

    /** Reset the adversarial-draw RNG (per-sweep-point seeds). */
    void
    reseed(std::uint64_t seed)
    {
        std::lock_guard<std::recursive_mutex> g(_mu);
        _rng = Rng(seed);
    }

  private:
    std::uint64_t lineIndex(NvOffset addr) const { return addr / _lineSize; }

    /** Bytes of line @p line_idx that exist on the media (the last
     *  line of a non-line-multiple device is partial). */
    std::size_t lineSpanBytes(std::uint64_t line_idx) const;

    void countOp();
    void applyLineToDurable(std::uint64_t line_idx, const ByteBuffer &data);

    /** Recursive: write() nests under writeU64(), powerFail() under
     *  countOp(). Guards every member below. */
    mutable std::recursive_mutex _mu;
    ByteBuffer _durable;
    std::uint32_t _lineSize;
    MetricsRegistry &_stats;
    Rng _rng;

    /** Dirty lines not yet flushed (volatile). */
    std::unordered_map<std::uint64_t, Line> _cache;
    /** Flushed line snapshots awaiting a persist barrier. */
    std::unordered_map<std::uint64_t, Line> _queue;

    std::uint64_t _opCount = 0;
    std::uint64_t _crashAtOp = 0;
    FailurePolicy _pendingPolicy = FailurePolicy::Pessimistic;
    double _pendingSurviveProb = 0.5;

  public:
    /** Configure the policy used when a *scheduled* crash fires. */
    void
    setScheduledCrashPolicy(FailurePolicy policy, double survive_prob = 0.5)
    {
        std::lock_guard<std::recursive_mutex> g(_mu);
        _pendingPolicy = policy;
        _pendingSurviveProb = survive_prob;
    }
};

} // namespace nvwal

#endif // NVWAL_NVRAM_NVRAM_DEVICE_HPP
