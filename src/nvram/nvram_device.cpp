#include "nvram_device.hpp"

#include <algorithm>
#include <cstring>

namespace nvwal
{

NvramDevice::NvramDevice(std::size_t size, std::uint32_t cache_line_size,
                         MetricsRegistry &stats, std::uint64_t seed)
    : _durable(size, 0), _lineSize(cache_line_size), _stats(stats),
      _rng(seed)
{
    NVWAL_ASSERT(cache_line_size > 0 &&
                 (cache_line_size & (cache_line_size - 1)) == 0,
                 "cache line size must be a power of two");
}

std::size_t
NvramDevice::lineSpanBytes(std::uint64_t line_idx) const
{
    const std::size_t start =
        static_cast<std::size_t>(line_idx) * _lineSize;
    NVWAL_ASSERT(start < _durable.size(), "line index out of range");
    return std::min<std::size_t>(_lineSize, _durable.size() - start);
}

void
NvramDevice::countOp()
{
    ++_opCount;
    if (_crashAtOp != 0 && _opCount >= _crashAtOp) {
        _crashAtOp = 0;
        powerFail(_pendingPolicy, _pendingSurviveProb);
        throw PowerFailure();
    }
}

void
NvramDevice::write(NvOffset off, ConstByteSpan data)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    NVWAL_ASSERT(off + data.size() <= _durable.size(),
                 "NVRAM write out of range: off=%llu len=%zu",
                 static_cast<unsigned long long>(off), data.size());
    countOp();
    std::size_t pos = 0;
    while (pos < data.size()) {
        const NvOffset addr = off + pos;
        const std::uint64_t idx = lineIndex(addr);
        const std::uint32_t in_line =
            static_cast<std::uint32_t>(addr % _lineSize);
        const std::size_t chunk =
            std::min<std::size_t>(_lineSize - in_line, data.size() - pos);

        auto [it, inserted] = _cache.try_emplace(idx);
        if (inserted) {
            // Fill the line from the current coherent view: the
            // persist queue may hold a newer snapshot than durable.
            // The last line of a non-line-multiple device is partial
            // on the media; its buffer tail stays zero.
            it->second.data.resize(_lineSize);
            std::memcpy(it->second.data.data(),
                        _durable.data() + idx * _lineSize,
                        lineSpanBytes(idx));
            auto qit = _queue.find(idx);
            if (qit != _queue.end()) {
                std::memcpy(it->second.data.data(),
                            qit->second.data.data(), _lineSize);
            }
        }
        std::memcpy(it->second.data.data() + in_line, data.data() + pos,
                    chunk);
        pos += chunk;
    }
}

void
NvramDevice::read(NvOffset off, ByteSpan out) const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    NVWAL_ASSERT(off + out.size() <= _durable.size(),
                 "NVRAM read out of range");
    std::size_t pos = 0;
    while (pos < out.size()) {
        const NvOffset addr = off + pos;
        const std::uint64_t idx = lineIndex(addr);
        const std::uint32_t in_line =
            static_cast<std::uint32_t>(addr % _lineSize);
        const std::size_t chunk =
            std::min<std::size_t>(_lineSize - in_line, out.size() - pos);

        auto cit = _cache.find(idx);
        if (cit != _cache.end()) {
            std::memcpy(out.data() + pos, cit->second.data.data() + in_line,
                        chunk);
        } else {
            auto qit = _queue.find(idx);
            if (qit != _queue.end()) {
                std::memcpy(out.data() + pos,
                            qit->second.data.data() + in_line, chunk);
            } else {
                std::memcpy(out.data() + pos,
                            _durable.data() + addr, chunk);
            }
        }
        pos += chunk;
    }
}

std::uint64_t
NvramDevice::readU64(NvOffset off) const
{
    std::uint8_t buf[8];
    read(off, ByteSpan(buf, 8));
    return loadU64(buf);
}

void
NvramDevice::writeU64(NvOffset off, std::uint64_t value)
{
    std::uint8_t buf[8];
    storeU64(buf, value);
    write(off, ConstByteSpan(buf, 8));
}

void
NvramDevice::flushLine(NvOffset addr)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    NVWAL_ASSERT(addr < _durable.size(), "flush out of range");
    countOp();
    const std::uint64_t idx = lineIndex(addr);
    auto cit = _cache.find(idx);
    if (cit == _cache.end())
        return;  // clean line: dccmvac of a clean line is a no-op
    _queue[idx] = std::move(cit->second);
    _cache.erase(cit);
    _stats.add(stats::kNvramLinesFlushed);
    _stats.tracer().instant("nvram.flush_line", "nvram", "addr", addr);
}

std::size_t
NvramDevice::flushAllDirtyLines()
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    countOp();
    const std::size_t n = _cache.size();
    for (auto &[idx, line] : _cache)
        _queue[idx] = std::move(line);
    _cache.clear();
    _stats.add(stats::kNvramLinesFlushed, n);
    _stats.tracer().instant("nvram.flush_all_dirty", "nvram", "lines", n);
    return n;
}

void
NvramDevice::drainPersistQueue()
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    countOp();
    const std::size_t n = _queue.size();
    for (auto &[idx, line] : _queue)
        applyLineToDurable(idx, line.data);
    _queue.clear();
    _stats.tracer().instant("nvram.drain_queue", "nvram", "lines", n);
}

void
NvramDevice::applyLineToDurable(std::uint64_t line_idx,
                                const ByteBuffer &data)
{
    // Clamp to the media: the last line of a non-line-multiple device
    // is partial, and copying the full line buffer would overrun the
    // durable image.
    std::memcpy(_durable.data() + line_idx * _lineSize, data.data(),
                lineSpanBytes(line_idx));
}

void
NvramDevice::scheduleCrashAtOp(std::uint64_t op_count)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    _crashAtOp = op_count == 0 ? 0 : _opCount + op_count;
}

void
NvramDevice::powerFail(FailurePolicy policy, double survive_prob)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    switch (policy) {
      case FailurePolicy::Pessimistic:
        // Neither dirty cached lines nor queued-but-undrained lines
        // reach the media.
        break;

      case FailurePolicy::Adversarial:
        // Queued lines are "in flight": each 8-byte unit lands
        // independently (the paper assumes 8-byte atomic writes,
        // section 4.1, so no unit ever tears internally).
        for (auto &[idx, line] : _queue) {
            const std::size_t span = lineSpanBytes(idx);
            for (std::size_t unit = 0; unit < span; unit += 8) {
                if (_rng.nextBool(0.75)) {
                    std::memcpy(_durable.data() + idx * _lineSize + unit,
                                line.data.data() + unit,
                                std::min<std::size_t>(8, span - unit));
                }
            }
        }
        // Dirty cached lines may have been evicted by the cache at
        // any earlier point; model that as a whole-line coin flip.
        for (auto &[idx, line] : _cache) {
            if (_rng.nextBool(survive_prob))
                applyLineToDurable(idx, line.data);
        }
        break;

      case FailurePolicy::AllSurvive:
        for (auto &[idx, line] : _queue)
            applyLineToDurable(idx, line.data);
        for (auto &[idx, line] : _cache)
            applyLineToDurable(idx, line.data);
        break;
    }
    _cache.clear();
    _queue.clear();
    _crashAtOp = 0;
}

NvramDevice::Snapshot
NvramDevice::snapshot() const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    Snapshot snap;
    snap.durable = _durable;
    snap.cache = _cache;
    snap.queue = _queue;
    snap.opCount = _opCount;
    snap.rng = _rng;
    return snap;
}

void
NvramDevice::restore(const Snapshot &snap)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    NVWAL_ASSERT(snap.durable.size() == _durable.size(),
                 "snapshot is for a different device size");
    _durable = snap.durable;
    _cache = snap.cache;
    _queue = snap.queue;
    _opCount = snap.opCount;
    _rng = snap.rng;
    _crashAtOp = 0;
}

void
NvramDevice::readDurable(NvOffset off, ByteSpan out) const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    NVWAL_ASSERT(off + out.size() <= _durable.size(),
                 "durable read out of range");
    std::memcpy(out.data(), _durable.data() + off, out.size());
}

} // namespace nvwal
