#include "nvwal_log.hpp"

#include <algorithm>
#include <cstring>

namespace nvwal
{

std::string
NvwalConfig::schemeName() const
{
    std::string name;
    if (userHeap)
        name += "UH+";
    switch (syncMode) {
      case SyncMode::Eager:
        name += "E";
        break;
      case SyncMode::Lazy:
        name += "LS";
        break;
      case SyncMode::ChecksumAsync:
        name += "CS";
        break;
    }
    if (diffLogging)
        name += "+Diff";
    return name;
}

NvwalLog::NvwalLog(NvHeap &heap, Pmem &pmem, DbFile &db_file,
                   std::uint32_t page_size, std::uint32_t reserved_bytes,
                   NvwalConfig config, MetricsRegistry &stats)
    : _heap(heap), _pmem(pmem), _dbFile(db_file), _pageSize(page_size),
      _reservedBytes(reserved_bytes), _config(config), _stats(stats),
      _logWriteHist(stats.histogram(stats::kHistLogWriteNs)),
      _commitMarkHist(stats.histogram(stats::kHistCommitMarkNs)),
      _checkpointHist(stats.histogram(stats::kHistCheckpointNs)),
      _recoverHist(stats.histogram(stats::kHistRecoverNs)),
      _name("NVWAL " + config.schemeName())
{
    NVWAL_ASSERT(page_size <= 0xffff,
                 "frame headers store 16-bit sizes/offsets");
}

void
NvwalLog::persistU64(NvOffset off, std::uint64_t value)
{
    _pmem.storeU64(off, value);
    _pmem.memoryBarrier();
    _pmem.cacheLineFlush(off, off + 8);
    _pmem.memoryBarrier();
    _pmem.persistBarrier();
}

Status
NvwalLog::initHeader()
{
    // The header allocation follows the same tri-state protocol as
    // log nodes (Algorithm 1): allocate pending, publish the link
    // (here: the namespace root), then mark in-use. A crash before
    // the root lands leaves a pending block the heap reclaims; a
    // crash before nvSetUsedFlag() leaves the root dangling at a
    // reclaimed block, which recover() detects and re-initializes.
    // The previous nvMalloc() version leaked the header block forever
    // when a crash hit between allocation and root publication.
    NVWAL_RETURN_IF_ERROR(_heap.nvPreMalloc(64, &_headerOff));
    std::uint8_t header[32];
    std::memset(header, 0, sizeof(header));
    storeU64(header, kMagic);
    storeU32(header + 8, _pageSize);
    storeU32(header + 12, _reservedBytes);
    storeU64(header + 16, 0);                 // checkpoint id
    storeU64(header + 24, kNullNvOffset);     // first node
    _pmem.memcpyToNvram(_headerOff, ConstByteSpan(header, sizeof(header)));
    _pmem.memoryBarrier();
    _pmem.cacheLineFlush(_headerOff, _headerOff + sizeof(header));
    _pmem.memoryBarrier();
    _pmem.persistBarrier();
    // Publishing the root is the atomic "this log exists" step.
    NVWAL_RETURN_IF_ERROR(_heap.setRoot(_config.heapNamespace, _headerOff));
    return _heap.nvSetUsedFlag(_headerOff);
}

Status
NvwalLog::loadHeader()
{
    NvramDevice &dev = _pmem.device();
    if (dev.readU64(_headerOff) != kMagic)
        return Status::corruption("NVWAL header magic mismatch");
    std::uint8_t geo[8];
    dev.read(_headerOff + 8, ByteSpan(geo, sizeof(geo)));
    if (loadU32(geo) != _pageSize || loadU32(geo + 4) != _reservedBytes)
        return Status::invalidArgument("NVWAL page geometry mismatch");
    _checkpointId = dev.readU64(checkpointIdFieldOff());
    return Status::ok();
}

Status
NvwalLog::appendNode(std::uint32_t min_payload)
{
    std::size_t bytes = kNodeHeaderSize + min_payload;
    NvOffset node;
    if (_config.userHeap) {
        // Pre-allocate a large block to amortize the heap-manager
        // calls over multiple frames (the paper's 8 KB blocks hold
        // two full-page WAL frames, section 5.3), so never size it
        // below two of the requesting frame.
        bytes = std::max<std::size_t>(
            {bytes, _config.nvBlockSize,
             kNodeHeaderSize + 2ull * min_payload});
    }
    // Both modes follow Algorithm 1 lines 5-13: allocate pending,
    // link, then mark in-use. An eagerly in-use but unlinked block
    // would be unreachable (and unreclaimable) after a crash between
    // allocation and linking. The baseline still pays the manager
    // calls per frame instead of per block.
    NVWAL_RETURN_IF_ERROR(_heap.nvPreMalloc(bytes, &node));
    // The usable capacity: the whole block for the user-level heap
    // (frames bump-allocate inside it), but only the requested bytes
    // for the per-frame baseline -- it must pay another allocation
    // for the next frame even though the heap rounded the extent up.
    const std::uint32_t capacity =
        _config.userHeap
            ? _heap.extentBlocksAt(node) * _heap.blockSize()
            : static_cast<std::uint32_t>(bytes);

    // Terminate the new node before anything can reach it, then
    // publish the link (dmb; flush; dmb; persist -- lines 8-11).
    persistU64(node, kNullNvOffset);
    persistU64(_linkFieldOff, node);

    NVWAL_RETURN_IF_ERROR(_heap.nvSetUsedFlag(node));

    _tailNode = node;
    _tailUsed = kNodeHeaderSize;
    _tailCapacity = capacity;
    _linkFieldOff = node;  // next node links at this node's next field
    _nodesSinceCheckpoint++;
    return Status::ok();
}

Status
NvwalLog::placeFrame(PageNo page_no, std::uint16_t page_offset,
                     ConstByteSpan payload, NvOffset *frame_off)
{
    NVWAL_ASSERT(!payload.empty() && payload.size() <= _pageSize);
    const std::uint32_t total =
        kFrameHeaderSize + static_cast<std::uint32_t>(payload.size());
    if (_tailNode == kNullNvOffset || _tailUsed + total > _tailCapacity) {
        // Heap-manager path: the frame forces a new node allocation
        // (per frame for the LS baseline, per block for the
        // user-level heap).
        TraceSpan span(_stats.tracer(), "wal.append_node", "wal",
                       "bytes", total);
        NVWAL_RETURN_IF_ERROR(appendNode(total));
        _stats.add(stats::kWalNodeAllocs);
    } else {
        // User-level bump-allocation inside the tail node: no heap
        // manager involved (the paper's amortization win, §3.3).
        _stats.add(stats::kWalBumpAllocs);
    }

    const NvOffset off = _tailNode + _tailUsed;
    _stats.tracer().instant("wal.frame_append", "wal", "page",
                            page_no);

    std::uint8_t header[kFrameHeaderSize];
    storeU32(header, page_no);
    storeU16(header + 4, page_offset);
    storeU16(header + 6, static_cast<std::uint16_t>(payload.size()));
    storeU64(header + 8, 0);  // commit word, set later
    storeU64(header + 16, _checkpointId);
    _chain.update(ConstByteSpan(header, 8));
    _chain.update(ConstByteSpan(header + 16, 8));
    _chain.update(payload);
    storeU64(header + 24, _chain.value());

    _pmem.memcpyToNvram(off, ConstByteSpan(header, kFrameHeaderSize));
    _pmem.memcpyToNvram(off + kFrameHeaderSize, payload);

    _tailUsed = static_cast<std::uint32_t>(
        alignUp(_tailUsed + total, 8));
    _stats.add(stats::kNvramFramesWritten);
    _stats.add(stats::kNvramBytesLogged, total);
    *frame_off = off;
    return Status::ok();
}

Status
NvwalLog::reserveContiguous(std::uint32_t bytes)
{
    if (!_config.userHeap)
        return Status::ok();  // the LS baseline allocates per frame
    if (_tailNode != kNullNvOffset && _tailUsed + bytes <= _tailCapacity)
        return Status::ok();  // the tail node already fits the txn
    TraceSpan span(_stats.tracer(), "wal.append_node", "wal", "bytes",
                   bytes);
    const Status reserved = appendNode(bytes);
    if (!reserved.isOk() && reserved.code() == StatusCode::NoSpace) {
        // One extent for the whole transaction does not fit (NVRAM
        // pressure or fragmentation). Fall back to per-frame
        // placement: the frames lose contiguity but the transaction
        // still commits, exactly as before the marshalling pass.
        return Status::ok();
    }
    NVWAL_RETURN_IF_ERROR(reserved);
    _stats.add(stats::kWalNodeAllocs);
    return Status::ok();
}

Status
NvwalLog::logTxnFrames(const std::vector<FrameWrite> &frames,
                       std::vector<FrameRef> *refs)
{
    // Marshal the transaction (paper §4.2): expand every FrameWrite
    // into its dirty ranges first so the transaction's total footprint
    // is known, then reserve one contiguous run in the tail node and
    // place the frames back to back. Contiguity is what lets
    // lazySyncRefs collapse the batch into a single flush range.
    std::vector<PendingFrame> pending;
    std::uint32_t total = 0;
    for (const FrameWrite &fw : frames) {
        NVWAL_ASSERT(fw.page.size() == _pageSize);
        std::vector<ByteRange> ranges;
        if (_config.diffLogging) {
            NVWAL_ASSERT(fw.ranges != nullptr,
                         "diff logging needs dirty ranges");
            if (_config.diffGranularity == DiffGranularity::MultiRange)
                ranges = fw.ranges->ranges();
            else
                ranges.push_back(fw.ranges->bounding());
            // Adaptive logging granularity (DESIGN.md §14): when the
            // bytes this page would log exceed the threshold share of
            // the page -- judged by the pager's observed dirty-ratio
            // EWMA when provided, else by this commit alone -- ship
            // ONE full-page frame instead. Same wire format
            // (pageOffset 0, size == page size), but the frame
            // supersedes the page's replay chain: it becomes the
            // full_frame_shortcut anchor every later read starts at.
            const std::uint32_t threshold =
                _config.adaptiveFullFrameThresholdPct;
            bool adaptive_full = false;
            const bool already_full =
                ranges.size() == 1 && ranges[0].lo == 0 &&
                ranges[0].size() == _pageSize;
            if (threshold > 0 && !already_full) {
                std::uint64_t log_bytes = 0;
                for (const ByteRange &r : ranges)
                    log_bytes += r.size();
                if (log_bytes > 0) {
                    const std::uint64_t pct =
                        fw.observedDirtyPct != 0
                            ? fw.observedDirtyPct
                            : 100 * log_bytes / _pageSize;
                    if (pct > threshold) {
                        ranges.assign(1, ByteRange{0, _pageSize});
                        adaptive_full = true;
                        _stats.add(stats::kWalFullFramesAdaptive);
                    }
                }
            }
            // Natural full-page writes are neither promotions nor
            // byte-diffs; the two counters partition only the frames
            // the adaptive decision actually ruled on.
            if (!adaptive_full && !already_full) {
                std::uint64_t diff_frames = 0;
                for (const ByteRange &r : ranges)
                    diff_frames += r.empty() ? 0 : 1;
                if (diff_frames > 0)
                    _stats.add(stats::kWalDiffFrames, diff_frames);
            }
        } else {
            ranges.push_back(ByteRange{0, _pageSize});
        }
        for (const ByteRange &r : ranges) {
            if (r.empty())
                continue;
            NVWAL_ASSERT(r.hi <= _pageSize);
            pending.push_back(PendingFrame{
                fw.pageNo, static_cast<std::uint16_t>(r.lo),
                fw.page.subspan(r.lo, r.size())});
            total += static_cast<std::uint32_t>(alignUp(
                kFrameHeaderSize + r.size(), 8));
        }
    }
    if (pending.empty())
        return Status::ok();

    NVWAL_RETURN_IF_ERROR(reserveContiguous(total));
    for (const PendingFrame &pf : pending) {
        NvOffset off;
        NVWAL_RETURN_IF_ERROR(
            placeFrame(pf.pageNo, pf.pageOffset, pf.payload, &off));
        refs->push_back(FrameRef{
            off, pf.pageNo, pf.pageOffset,
            static_cast<std::uint16_t>(pf.payload.size()), 0});
        if (_config.syncMode == SyncMode::Eager) {
            // Figure 4(b): flush + fence + persist per log entry.
            _pmem.memoryBarrier();
            _pmem.cacheLineFlush(
                off, off + kFrameHeaderSize + pf.payload.size());
            _pmem.memoryBarrier();
            _pmem.persistBarrier();
        }
    }
    return Status::ok();
}

Status
NvwalLog::writeFrames(const std::vector<FrameWrite> &frames, bool commit,
                      std::uint32_t db_size_pages)
{
    // Phase 1 -- logging: memcpy WAL frames into NVRAM (Algorithm 1
    // lines 1-20). Eager mode synchronizes after every frame; lazy
    // and checksum-async modes defer.
    std::vector<FrameRef> refs;
    const SimTime log_begin = _pmem.clock().now();
    NVWAL_RETURN_IF_ERROR(logTxnFrames(frames, &refs));

    syncRefs(refs, /*force=*/false);

    if (!frames.empty()) {
        _stats.tracer().complete("wal.log_write", "wal", log_begin,
                                 "frames", refs.size());
        _logWriteHist.record(_pmem.clock().now() - log_begin);
    }

    _pendingRefs.insert(_pendingRefs.end(), refs.begin(), refs.end());
    if (!commit)
        return Status::ok();
    if (_pendingRefs.empty()) {
        // A commit that dirtied no pages still carries the database
        // size (e.g. a truncating vacuum): record it, or the next
        // commit mark would persist a stale size.
        _dbSizePages = db_size_pages;
        return Status::ok();
    }

    // An eager-mode commit mark promises everything below it is
    // durable; unhardened async frames chained earlier would break
    // that promise if torn. (Lazy merged them in syncRefs above;
    // ChecksumAsync promises nothing, so it defers as designed.)
    if (_config.syncMode == SyncMode::Eager && !_unhardenedRuns.empty())
        NVWAL_RETURN_IF_ERROR(harden());

    persistCommitMark(_pendingRefs.back(), db_size_pages,
                      _pendingRefs.size());

    // Publish in the volatile index under a fresh commit sequence.
    // Pages committed while an incremental checkpoint round is
    // active must be written back (again) before that round may
    // truncate the log.
    const CommitSeq seq = ++_commitSeq;
    for (FrameRef &ref : _pendingRefs) {
        ref.seq = seq;
        indexFrame(ref);
        if (_ckptRoundActive)
            _ckptPending.insert(ref.pageNo);
    }
    _framesSinceCheckpoint += _pendingRefs.size();
    _pendingRefs.clear();
    _dbSizePages = db_size_pages;
    return Status::ok();
}

void
NvwalLog::syncRefs(const std::vector<FrameRef> &refs, bool force)
{
    if (_config.syncMode != SyncMode::Lazy && !force)
        return;
    if (refs.empty() && _unhardenedRuns.empty())
        return;
    // Transaction-aware lazy synchronization (Algorithm 1 lines
    // 21-28): one dmb, a batch of non-blocking flushes, a closing
    // dmb and one persist barrier for the whole batch. Group commit
    // widens the batch to many transactions' frames; ranges still
    // pending from async appends ride along, so the barrier pair
    // also catches the durability horizon up (DESIGN.md §11).
    //
    // Before issuing anything, coalesce the batch: align every
    // frame's [off, off + header + size) to cache-line boundaries,
    // sort, and merge overlapping or adjacent intervals. Marshalled
    // placement puts a transaction's frames back to back, so the
    // batch usually collapses to one contiguous run -- one kernel
    // crossing instead of one per frame, and a line shared by two
    // small diffs is flushed exactly once.
    const std::uint64_t line = _pmem.cost().cacheLineSize;
    std::vector<std::pair<NvOffset, NvOffset>> runs;
    runs.reserve(refs.size() + _unhardenedRuns.size());
    std::uint64_t naive_lines = 0;
    for (const FrameRef &ref : refs) {
        const NvOffset lo = alignDown(ref.off, line);
        const NvOffset hi =
            alignUp(ref.off + kFrameHeaderSize + ref.size, line);
        naive_lines += (hi - lo) / line;
        runs.emplace_back(lo, hi);
    }
    for (const auto &run : _unhardenedRuns)
        naive_lines += (run.second - run.first) / line;
    runs.insert(runs.end(), _unhardenedRuns.begin(),
                _unhardenedRuns.end());
    const std::uint64_t inputs = runs.size();
    std::sort(runs.begin(), runs.end());
    std::size_t last = 0;
    for (std::size_t i = 1; i < runs.size(); ++i) {
        if (runs[i].first <= runs[last].second)
            runs[last].second = std::max(runs[last].second,
                                         runs[i].second);
        else
            runs[++last] = runs[i];
    }
    runs.resize(last + 1);

    std::uint64_t flushed_lines = 0;
    _pmem.memoryBarrier();
    for (const auto &run : runs) {
        flushed_lines += (run.second - run.first) / line;
        _pmem.cacheLineFlush(run.first, run.second);
    }
    _pmem.memoryBarrier();
    _pmem.persistBarrier();
    _stats.add(stats::kWalFlushRangesCoalesced, inputs - runs.size());
    _stats.add(stats::kPmemFlushLinesDeduped,
               naive_lines - flushed_lines);
    _unhardenedRuns.clear();
    _hardenedSeq = _commitSeq;
    _flushCandidateSeq = _commitSeq;
}

void
NvwalLog::deferSyncRef(const FrameRef &ref)
{
    const std::uint64_t line = _pmem.cost().cacheLineSize;
    const NvOffset lo = alignDown(ref.off, line);
    const NvOffset hi =
        alignUp(ref.off + kFrameHeaderSize + ref.size, line);
    // Extend the previous run in place when the append is contiguous
    // (the common marshalled case), so the pending set stays tiny.
    if (!_unhardenedRuns.empty() && _unhardenedRuns.back().second >= lo) {
        _unhardenedRuns.back().second =
            std::max(_unhardenedRuns.back().second, hi);
        return;
    }
    _unhardenedRuns.emplace_back(lo, hi);
}

Status
NvwalLog::harden()
{
    if (_unhardenedRuns.empty()) {
        _hardenedSeq = _commitSeq;
        _flushCandidateSeq = _commitSeq;
        return Status::ok();
    }
    // One barrier pair for every range appended since the last
    // harden, however many transactions they span: this is where the
    // epoch pipeline's persist-barrier amortization comes from.
    const SimTime begin = _pmem.clock().now();
    std::sort(_unhardenedRuns.begin(), _unhardenedRuns.end());
    std::size_t last = 0;
    for (std::size_t i = 1; i < _unhardenedRuns.size(); ++i) {
        if (_unhardenedRuns[i].first <= _unhardenedRuns[last].second)
            _unhardenedRuns[last].second =
                std::max(_unhardenedRuns[last].second,
                         _unhardenedRuns[i].second);
        else
            _unhardenedRuns[++last] = _unhardenedRuns[i];
    }
    _unhardenedRuns.resize(last + 1);
    _pmem.memoryBarrier();
    for (const auto &run : _unhardenedRuns)
        _pmem.cacheLineFlush(run.first, run.second);
    _pmem.memoryBarrier();
    _pmem.persistBarrier();
    _unhardenedRuns.clear();
    _hardenedSeq = _commitSeq;
    _flushCandidateSeq = _commitSeq;
    _stats.add(stats::kWalHardenBatches);
    _stats.tracer().complete("wal.harden", "wal", begin);
    return Status::ok();
}

Status
NvwalLog::writeFrameGroupAsync(const std::vector<TxnFrames> &txns)
{
    NVWAL_ASSERT(_pendingRefs.empty(),
                 "async commit with an open single-writer transaction");

    // Checksum commit (paper §3.2 / Figure 4(d)) stretched into a
    // durability epoch: append every transaction's frames and set a
    // commit mark per transaction, with no flush or barrier at all.
    // The cumulative checksum chain is what recovery later uses to
    // decide how much of this survived; harden() retires the epoch
    // with one coalesced barrier pair.
    std::vector<FrameRef> refs;
    std::vector<std::size_t> txn_end;   //!< end index in refs, per txn
    const SimTime log_begin = _pmem.clock().now();
    for (const TxnFrames &txn : txns) {
        NVWAL_RETURN_IF_ERROR(logTxnFrames(txn.frames, &refs));
        txn_end.push_back(refs.size());
    }
    if (refs.empty()) {
        if (!txns.empty())
            _dbSizePages = txns.back().dbSizePages;
        return Status::ok();
    }
    _stats.tracer().complete("wal.log_write", "wal", log_begin,
                             "frames", refs.size());
    _logWriteHist.record(_pmem.clock().now() - log_begin);

    // Per-transaction commit marks (plain stores): recovery recovers
    // the longest valid committed prefix, so marking transactions
    // individually narrows the loss window for free -- no caller has
    // been acknowledged yet, so there is no group-atomicity promise
    // to keep.
    std::size_t begin = 0;
    for (std::size_t t = 0; t < txns.size(); ++t) {
        const std::size_t end = txn_end[t];
        if (end == begin)
            continue;  // a transaction that dirtied nothing
        _pmem.storeU64(refs[end - 1].off + 8,
                       kCommitFlag | txns[t].dbSizePages);
        const CommitSeq seq = ++_commitSeq;
        for (std::size_t i = begin; i < end; ++i) {
            refs[i].seq = seq;
            indexFrame(refs[i]);
            if (_ckptRoundActive)
                _ckptPending.insert(refs[i].pageNo);
        }
        begin = end;
    }
    for (const FrameRef &ref : refs)
        deferSyncRef(ref);
    _framesSinceCheckpoint += refs.size();
    _dbSizePages = txns.back().dbSizePages;
    return Status::ok();
}

Status
NvwalLog::writeTxnEpoch(const TxnFrames &txn, std::uint64_t epoch)
{
    NVWAL_ASSERT(_config.epochMarks,
                 "epoch-stamped commits need an epochMarks log");
    NVWAL_ASSERT(_config.syncMode == SyncMode::Lazy,
                 "per-connection logs run lazy synchronization");
    NVWAL_ASSERT(_pendingRefs.empty(),
                 "epoch commit with an open single-writer transaction");
    NVWAL_ASSERT(epoch != 0 && epoch <= 0x7fffffffULL,
                 "epoch out of the mark's 31-bit field");

    // A multi-writer commit is the checksum-async append shape with
    // the epoch folded into the mark: frames + mark land with plain
    // stores (no barrier on the commit path), the writer flushes its
    // own ranges into the persist queue, and durability comes from
    // the shared group persist barrier in the database's harden.
    std::vector<FrameRef> refs;
    const SimTime log_begin = _pmem.clock().now();
    NVWAL_RETURN_IF_ERROR(logTxnFrames(txn.frames, &refs));
    if (refs.empty()) {
        _dbSizePages = txn.dbSizePages;
        return Status::ok();
    }
    _stats.tracer().complete("wal.log_write", "wal", log_begin,
                             "frames", refs.size());
    _logWriteHist.record(_pmem.clock().now() - log_begin);

    _pmem.storeU64(refs.back().off + 8,
                   kCommitFlag | (epoch << 32) | txn.dbSizePages);
    ++_commitSeq;
    for (const FrameRef &ref : refs)
        deferSyncRef(ref);
    _framesSinceCheckpoint += refs.size();
    _dbSizePages = txn.dbSizePages;
    return Status::ok();
}

void
NvwalLog::flushRuns()
{
    if (_unhardenedRuns.empty()) {
        _flushCandidateSeq = _commitSeq;
        return;
    }
    std::sort(_unhardenedRuns.begin(), _unhardenedRuns.end());
    std::size_t last = 0;
    for (std::size_t i = 1; i < _unhardenedRuns.size(); ++i) {
        if (_unhardenedRuns[i].first <= _unhardenedRuns[last].second)
            _unhardenedRuns[last].second =
                std::max(_unhardenedRuns[last].second,
                         _unhardenedRuns[i].second);
        else
            _unhardenedRuns[++last] = _unhardenedRuns[i];
    }
    _unhardenedRuns.resize(last + 1);
    _pmem.memoryBarrier();
    for (const auto &run : _unhardenedRuns)
        _pmem.cacheLineFlush(run.first, run.second);
    _pmem.memoryBarrier();
    _unhardenedRuns.clear();
    _flushCandidateSeq = _commitSeq;
}

Status
NvwalLog::truncateAll()
{
    NVWAL_ASSERT(_pendingRefs.empty(),
                 "truncation with an open transaction");
    NVWAL_ASSERT(_staged.empty() && _twoPhaseHolds == 0,
                 "epoch-marked logs carry no 2PC state");
    // Same crash-safe order as a checkpoint round's truncation tail:
    // bump the persistent checkpoint id first so a crash mid-free
    // cannot leave a replayable stale prefix, then free nodes from
    // the end of the chain backward.
    _checkpointId++;
    persistU64(checkpointIdFieldOff(), _checkpointId);

    std::vector<NvOffset> nodes;
    NvOffset node = _pmem.device().readU64(firstNodeFieldOff());
    while (node != kNullNvOffset) {
        nodes.push_back(node);
        node = _pmem.device().readU64(node);
    }
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it)
        NVWAL_RETURN_IF_ERROR(_heap.nvFree(*it));
    persistU64(firstNodeFieldOff(), kNullNvOffset);

    _pageIndex.clear();
    _indexedFrames = 0;
    publishIndexGauge();
    clearImageCache();
    _chain.reset();
    _tailNode = kNullNvOffset;
    _tailUsed = 0;
    _tailCapacity = 0;
    _linkFieldOff = firstNodeFieldOff();
    _framesSinceCheckpoint = 0;
    _nodesSinceCheckpoint = 0;
    _unhardenedRuns.clear();
    _flushCandidateSeq = _commitSeq;
    _hardenedSeq = _commitSeq;
    clearRecoveredEpochTxns();
    return Status::ok();
}

void
NvwalLog::persistCommitMark(const FrameRef &last,
                            std::uint32_t db_size_pages,
                            std::uint64_t frame_count)
{
    // Commit: set the commit mark on the last frame with a single
    // 8-byte atomic store, then flush and persist it (Algorithm 1
    // lines 29-36). ChecksumAsync flushes the whole header line so
    // the cumulative checksum lands with the mark (Figure 4(d));
    // frames themselves were never flushed.
    const SimTime mark_begin = _pmem.clock().now();
    _pmem.storeU64(last.off + 8, kCommitFlag | db_size_pages);
    _pmem.memoryBarrier();
    if (_config.syncMode == SyncMode::ChecksumAsync)
        _pmem.cacheLineFlush(last.off, last.off + kFrameHeaderSize);
    else
        _pmem.cacheLineFlush(last.off + 8, last.off + 16);
    _pmem.memoryBarrier();
    _pmem.persistBarrier();
    _stats.tracer().complete("wal.commit_mark", "wal", mark_begin,
                             "frames", frame_count);
    _commitMarkHist.record(_pmem.clock().now() - mark_begin);
}

Status
NvwalLog::writeFrameGroup(const std::vector<TxnFrames> &txns)
{
    NVWAL_ASSERT(_pendingRefs.empty(),
                 "group commit with an open single-writer transaction");

    // Phase 1 -- log every transaction's frames back to back, each
    // transaction marshalled contiguously. Eager mode still
    // synchronizes per frame; Lazy defers to one barrier pair
    // covering the whole group.
    std::vector<FrameRef> refs;
    std::vector<std::size_t> txn_end;   //!< end index in refs, per txn
    const SimTime log_begin = _pmem.clock().now();
    for (const TxnFrames &txn : txns) {
        NVWAL_RETURN_IF_ERROR(logTxnFrames(txn.frames, &refs));
        txn_end.push_back(refs.size());
    }
    if (refs.empty()) {
        // Even an all-empty group carries the final database size
        // (same stale-size hazard as an empty single commit).
        if (!txns.empty())
            _dbSizePages = txns.back().dbSizePages;
        return Status::ok();
    }

    syncRefs(refs, /*force=*/false);
    _stats.tracer().complete("wal.log_write", "wal", log_begin,
                             "frames", refs.size());
    _logWriteHist.record(_pmem.clock().now() - log_begin);

    // See writeFrames: an eager-mode mark must not sit above an
    // unhardened async prefix.
    if (_config.syncMode == SyncMode::Eager && !_unhardenedRuns.empty())
        NVWAL_RETURN_IF_ERROR(harden());

    // Phase 2 -- one commit mark for the whole group, carrying the
    // final transaction's database size. Recovery sees the group as
    // a single atomic unit: all of it commits or none of it does,
    // which is sound because no caller is acknowledged before the
    // group is durable.
    persistCommitMark(refs.back(), txns.back().dbSizePages,
                      refs.size());

    // Phase 3 -- publish, one commit sequence per transaction so
    // snapshots can still distinguish intra-group boundaries.
    std::size_t begin = 0;
    for (std::size_t t = 0; t < txns.size(); ++t) {
        const std::size_t end = txn_end[t];
        if (end == begin)
            continue;  // a transaction that dirtied nothing
        const CommitSeq seq = ++_commitSeq;
        for (std::size_t i = begin; i < end; ++i) {
            refs[i].seq = seq;
            indexFrame(refs[i]);
            if (_ckptRoundActive)
                _ckptPending.insert(refs[i].pageNo);
        }
        begin = end;
    }
    _framesSinceCheckpoint += refs.size();
    _dbSizePages = txns.back().dbSizePages;
    return Status::ok();
}

Status
NvwalLog::placeControlFrame(std::uint32_t type, std::uint64_t gtid,
                            std::uint32_t db_size_pages, FrameRef *out)
{
    std::uint8_t payload[kControlPayloadSize];
    storeU32(payload, kControlMagic);
    storeU32(payload + 4, type);
    storeU64(payload + 8, gtid);
    storeU32(payload + 16, db_size_pages);
    storeU32(payload + 20, 0);
    NvOffset off;
    NVWAL_RETURN_IF_ERROR(placeFrame(
        kControlPage, 0, ConstByteSpan(payload, sizeof(payload)), &off));
    *out = FrameRef{off, kControlPage, 0, kControlPayloadSize, 0};
    return Status::ok();
}

Status
NvwalLog::writePrepare(std::uint64_t gtid, const TxnFrames &txn)
{
    NVWAL_ASSERT(_pendingRefs.empty(),
                 "prepare with an open single-writer transaction");
    if (_staged.count(gtid) != 0)
        return Status::invalidArgument(
            "gtid already prepared in this log: " + std::to_string(gtid));

    // Phase 1 of 2PC is phase 1+2 of a normal commit, with the
    // commit mark carried by a PREPARE control frame appended after
    // the data: the whole unit becomes durable (and chain-valid)
    // atomically, but the data frames stay staged -- invisible to
    // readers and checkpoints -- until the decision record lands.
    std::vector<FrameRef> refs;
    const SimTime log_begin = _pmem.clock().now();
    NVWAL_RETURN_IF_ERROR(logTxnFrames(txn.frames, &refs));
    FrameRef ctrl;
    NVWAL_RETURN_IF_ERROR(placeControlFrame(kCtrlPrepare, gtid,
                                            txn.dbSizePages, &ctrl));
    std::vector<FrameRef> unit = refs;
    unit.push_back(ctrl);
    // 2PC records harden eagerly under EVERY sync mode, pending
    // async ranges included: a prepared unit that could tear would
    // let recovery re-stage garbage that a COMMIT decision then
    // applies, and an in-doubt shard resolves by reading other
    // participants' decision records -- neither may be probabilistic.
    syncRefs(unit, /*force=*/true);
    _stats.tracer().complete("wal.log_write", "wal", log_begin,
                             "frames", unit.size());
    _logWriteHist.record(_pmem.clock().now() - log_begin);

    persistCommitMark(ctrl, txn.dbSizePages, unit.size());

    _staged[gtid] = StagedTxn{std::move(refs), txn.dbSizePages};
    _maxSeenGtid = std::max(_maxSeenGtid, gtid);
    _stats.add(stats::kWalPrepareRecords);
    _stats.tracer().instant("wal.prepare", "wal", "gtid", gtid);
    return Status::ok();
}

void
NvwalLog::applyDecision(std::uint64_t gtid, bool commit)
{
    _decisions[gtid] = commit;
    _maxSeenGtid = std::max(_maxSeenGtid, gtid);
    auto it = _staged.find(gtid);
    if (it == _staged.end())
        return;
    if (commit) {
        // The staged frames become visible under one fresh sequence,
        // exactly like a group commit's atomicity unit.
        const CommitSeq seq = ++_commitSeq;
        for (FrameRef &ref : it->second.refs) {
            ref.seq = seq;
            indexFrame(ref);
            if (_ckptRoundActive)
                _ckptPending.insert(ref.pageNo);
        }
        _framesSinceCheckpoint += it->second.refs.size();
        _dbSizePages = it->second.dbSizePages;
    }
    // Aborted frames stay as dead bytes until truncation; they are
    // unreachable from the page index, so reads never see them.
    _staged.erase(it);
}

Status
NvwalLog::writeDecision(std::uint64_t gtid, bool commit)
{
    NVWAL_ASSERT(_pendingRefs.empty(),
                 "decision with an open single-writer transaction");
    FrameRef ctrl;
    NVWAL_RETURN_IF_ERROR(placeControlFrame(
        commit ? kCtrlCommit : kCtrlAbort, gtid, 0, &ctrl));
    std::vector<FrameRef> unit{ctrl};
    // Decisions are the 2PC ground truth; like prepares they flush
    // eagerly under every sync mode (see writePrepare).
    syncRefs(unit, /*force=*/true);
    // The decision's own mark carries the database size that results
    // from it, keeping the "last mark's size" recovery rule uniform.
    const auto staged = _staged.find(gtid);
    const std::uint32_t db_size =
        commit && staged != _staged.end() ? staged->second.dbSizePages
                                          : _dbSizePages;
    persistCommitMark(ctrl, db_size, 1);

    applyDecision(gtid, commit);
    _stats.add(stats::kWalDecisionRecords);
    _stats.tracer().instant("wal.decision", "wal", "gtid", gtid);
    return Status::ok();
}

Status
NvwalLog::resolveInDoubt(std::uint64_t gtid, bool commit)
{
    if (_staged.find(gtid) == _staged.end())
        return Status::notFound("gtid not in doubt: " +
                                std::to_string(gtid));
    return writeDecision(gtid, commit);
}

std::vector<std::uint64_t>
NvwalLog::inDoubtTransactions() const
{
    std::vector<std::uint64_t> gtids;
    gtids.reserve(_staged.size());
    for (const auto &[gtid, txn] : _staged)
        gtids.push_back(gtid);
    return gtids;
}

bool
NvwalLog::lookupDecision(std::uint64_t gtid, bool *commit) const
{
    const auto it = _decisions.find(gtid);
    if (it == _decisions.end())
        return false;
    *commit = it->second;
    return true;
}

void
NvwalLog::indexFrame(const FrameRef &ref)
{
    const std::uint64_t nodes_before = _frameIndexNodes;
    auto [it, inserted] = _pageIndex.try_emplace(ref.pageNo);
    PageEntry &entry = it->second;
    // A new commit supersedes the page's cached images; pinned
    // readers re-materialize at their own horizon (their key can no
    // longer be found, so they rebuild from the frame index). The
    // checkpointed base image (page, baseSeq) is exempt: it is an
    // immutable byte-correct fact, and it is exactly the replay base
    // this commit needs when truncation already reclaimed the
    // page's frame chain.
    invalidateCachedImagesExcept(ref.pageNo, entry.baseSeq);
    if (inserted)
        entry.frames.bindNodeGauge(&_frameIndexNodes);
    const bool full_page =
        ref.pageOffset == 0 && ref.size == _pageSize;
    if (full_page && !hasPins()) {
        // A full-page frame supersedes all earlier frames -- but an
        // open snapshot may still need the superseded diffs for
        // readPageAt(), so the prune only runs while no snapshot is
        // pinned. Retained stale prefixes are harmless: replaying
        // absolute-byte diffs in log order is idempotent, and the
        // leaf's anchorSeq makes reads skip them anyway.
        _indexedFrames -= entry.frames.frameCount();
        entry.frames.clear();
    }
    entry.frames.insert(
        ref.seq, FrameIndex::Slot{ref.off, ref.pageOffset, ref.size},
        full_page);
    ++_indexedFrames;
    if (_frameIndexNodes != nodes_before)
        publishIndexGauge();
}

void
NvwalLog::publishIndexGauge()
{
    _stats.setGauge(stats::kWalFrameIndexNodes, _frameIndexNodes);
}

bool
NvwalLog::cachedImageGet(PageNo page_no, CommitSeq seq, ByteSpan out,
                         bool record_stats)
{
    if (_config.materializeCacheEntries == 0)
        return false;
    const auto it = _imageIndex.find({page_no, seq});
    if (it == _imageIndex.end()) {
        if (record_stats)
            _stats.add(stats::kWalMaterializeCacheMisses);
        return false;
    }
    _imageLru.splice(_imageLru.begin(), _imageLru, it->second);
    std::memcpy(out.data(), it->second->image.data(), _pageSize);
    if (record_stats)
        _stats.add(stats::kWalMaterializeCacheHits);
    return true;
}

void
NvwalLog::cachedImagePut(PageNo page_no, CommitSeq seq,
                         ConstByteSpan image)
{
    if (_config.materializeCacheEntries == 0)
        return;
    if (_imageIndex.count({page_no, seq}) != 0)
        return;
    while (_imageLru.size() >= _config.materializeCacheEntries) {
        const CachedImage &victim = _imageLru.back();
        _imageIndex.erase({victim.pageNo, victim.seq});
        _imageLru.pop_back();
    }
    _imageLru.push_front(CachedImage{
        page_no, seq,
        ByteBuffer(image.data(), image.data() + image.size())});
    _imageIndex[{page_no, seq}] = _imageLru.begin();
}

void
NvwalLog::invalidateCachedImagesExcept(PageNo page_no,
                                       CommitSeq keep_seq)
{
    auto it = _imageIndex.lower_bound({page_no, 0});
    while (it != _imageIndex.end() && it->first.first == page_no) {
        if (keep_seq != 0 && it->first.second == keep_seq) {
            ++it;
            continue;
        }
        _imageLru.erase(it->second);
        it = _imageIndex.erase(it);
    }
}

void
NvwalLog::clearImageCache()
{
    _imageLru.clear();
    _imageIndex.clear();
}

Status
NvwalLog::materializePage(PageNo page_no, ByteSpan out, CommitSeq horizon,
                          CommitSeq *effective_out)
{
    auto it = _pageIndex.find(page_no);
    if (it == _pageIndex.end())
        return Status::notFound("page not in WAL index");
    NVWAL_ASSERT(out.size() == _pageSize);
    PageEntry &entry = it->second;

    // O(log) horizon lookup: the newest leaf at or below the horizon
    // in the page's radix frame index. The steps counter (descent
    // nodes + leaves visited + frames applied) is the deterministic
    // observable the long-log flatness gate watches.
    std::uint64_t steps = 0;
    const FrameIndex::Leaf *visible =
        entry.frames.findVisible(horizon, &steps);
    if (visible == nullptr) {
        // No retained frame at or below the horizon. NotFound is the
        // WAL read contract -- the caller falls back to the .db
        // file, which (for horizon >= baseSeq) holds exactly the
        // checkpointed base image. A surviving (page, baseSeq) cache
        // entry pays off on the next materialization that replays on
        // top of the base, not here.
        return Status::notFound(
            "no committed frame at snapshot horizon");
    }

    // The cache key is the newest commit folded into the image, not
    // the raw horizon: every horizon that sees the same frame prefix
    // shares one entry, and a pinned snapshot can never hit an image
    // containing commits past its horizon.
    const CommitSeq effective = visible->seq;
    if (effective_out != nullptr)
        *effective_out = effective;
    if (cachedImageGet(page_no, effective, out)) {
        _stats.add(stats::kWalFrameScanSteps, steps);
        return Status::ok();
    }

    // Replay start, in preference order: the indexed "last full
    // frame <= horizon" anchor (no scan -- each leaf carries it,
    // maintained O(1) at insert), else the cached base image, else
    // the .db file, else zeros (a page born in the log). An anchor
    // at or below baseSeq/prunedThrough points at reclaimed frames
    // whose effects the base image already contains; ignore it.
    const CommitSeq anchor = visible->anchorSeq;
    const bool anchored = anchor != 0 && anchor > entry.baseSeq &&
                          anchor > entry.frames.prunedThrough();
    CommitSeq replay_lo = 0;
    if (anchored) {
        _stats.add(stats::kWalFullFrameShortcuts);
        replay_lo = anchor;
    } else if (entry.baseSeq != 0 &&
               cachedImageGet(page_no, entry.baseSeq, out,
                              /*record_stats=*/false)) {
        // Base image from the cache; replay the retained suffix.
    } else if (page_no <= _dbFile.pageCount()) {
        // Base image: the page as the .db file knows it. Checkpoint
        // write-back never advances the base image past the oldest
        // pinned snapshot (checkpointTarget()), so base +
        // prefix-of-diffs is exactly the page at the horizon. An
        // I/O error here is the caller's to handle, not fatal.
        NVWAL_RETURN_IF_ERROR(_dbFile.readPage(page_no, out));
    } else {
        // A page born in the log and not yet checkpointed: diffs
        // apply over zeros.
        std::memset(out.data(), 0, out.size());
    }
    entry.frames.forRange(
        replay_lo, effective, [&](const FrameIndex::Leaf &leaf) {
            ++steps;  // leaf visited
            std::size_t begin = 0;
            if (anchored && leaf.seq == anchor) {
                NVWAL_ASSERT(leaf.lastFull >= 0,
                             "anchor leaf without a full frame");
                begin = static_cast<std::size_t>(leaf.lastFull);
            }
            for (std::size_t i = begin; i < leaf.slots.size(); ++i) {
                const FrameIndex::Slot &slot = leaf.slots[i];
                _pmem.readFromNvram(
                    slot.off + kFrameHeaderSize,
                    out.subspan(slot.pageOffset, slot.size));
                ++steps;  // frame applied
            }
        });
    _stats.add(stats::kWalFrameScanSteps, steps);
    cachedImagePut(page_no, effective,
                   ConstByteSpan(out.data(), out.size()));
    return Status::ok();
}

Status
NvwalLog::readPage(PageNo page_no, ByteSpan out)
{
    return materializePage(page_no, out, kNoPin);
}

Status
NvwalLog::readPageAt(PageNo page_no, ByteSpan out, CommitSeq horizon)
{
    return materializePage(page_no, out, horizon);
}

Status
NvwalLog::checkpoint()
{
    TraceSpan span(_stats.tracer(), "wal.checkpoint", "wal");
    const SimTime begin = _pmem.clock().now();
    bool done = false;
    while (!done) {
        NVWAL_RETURN_IF_ERROR(
            checkpointStep(~static_cast<std::uint32_t>(0), &done));
    }
    _checkpointHist.record(_pmem.clock().now() - begin);
    return Status::ok();
}

Status
NvwalLog::checkpointStep(std::uint32_t max_pages, bool *done)
{
    TraceSpan span(_stats.tracer(), "wal.checkpoint_step", "wal");
    *done = false;
    NVWAL_ASSERT(_pendingRefs.empty(),
                 "checkpoint with an open transaction");
    // Write-back must never outrun the durable log: if the .db base
    // advanced past frames that could still tear, a post-crash
    // recovery would mix a newer base with an older log prefix.
    // Harden pending async ranges before touching the file.
    if (!_unhardenedRuns.empty())
        NVWAL_RETURN_IF_ERROR(harden());
    // Trivially done only when the chain itself is empty: a log can
    // hold zero indexed frames yet still own nodes (pure 2PC control
    // records, aborted staged frames) that a full round must free.
    // Frame-less stub entries (a baseSeq kept for a surviving cached
    // image) don't make a round necessary by themselves.
    if (_indexedFrames == 0 && _nodesSinceCheckpoint == 0) {
        _ckptRoundActive = false;
        _ckptQueue.clear();
        _ckptQueuePos = 0;
        _ckptPending.clear();
        *done = true;
        return Status::ok();
    }

    // The write-back horizon: the newest commit, clamped to the
    // oldest pinned snapshot so the base image a pinned reader falls
    // back to never gets ahead of its horizon.
    const CommitSeq target = checkpointTarget();

    // Start a new round: snapshot the dirty-in-log page set in
    // ascending page order (the map already is), so the block device
    // sees one sequential sweep instead of a scatter (Fig. 8). Pages
    // committed while the round is in progress land in _ckptPending
    // (see writeFrames) and are drained by ascending catch-up passes,
    // so the round only finishes when the write-back has caught up
    // with the log.
    if (!_ckptRoundActive) {
        _ckptQueue.clear();
        _ckptQueue.reserve(_pageIndex.size());
        for (const auto &[page_no, entry] : _pageIndex)
            if (!entry.frames.empty())
                _ckptQueue.push_back(page_no);
        _ckptQueuePos = 0;
        _ckptPending.clear();
        _ckptLastWritten = kNoPage;
        _ckptRoundActive = true;
    }

    // Reconstruct and batch up to max_pages pages to the .db file
    // (section 4.3: replaying this after a crash is idempotent
    // because the log is only truncated after the fsync). The
    // materialized-image cache makes the reconstruction O(1) for any
    // page the read path recently built.
    ByteBuffer page(_pageSize);
    std::uint32_t written = 0;
    while (written < max_pages) {
        if (_ckptQueuePos == _ckptQueue.size()) {
            if (_ckptPending.empty())
                break;  // the round has caught up with the log
            // Catch-up pass over the pages re-dirtied mid-round,
            // again in ascending order.
            _ckptQueue.assign(_ckptPending.begin(), _ckptPending.end());
            _ckptQueuePos = 0;
            _ckptPending.clear();
        }
        const PageNo page_no = _ckptQueue[_ckptQueuePos++];
        CommitSeq effective = 0;
        const Status read =
            materializePage(page_no, ByteSpan(page.data(), _pageSize),
                            target, &effective);
        if (read.isNotFound()) {
            // The page was born after the clamped horizon; it stays
            // in the log and a later round (once the pin releases)
            // writes it back.
            continue;
        }
        NVWAL_RETURN_IF_ERROR(read);
        PageEntry &entry = _pageIndex.find(page_no)->second;
        if (effective == entry.baseSeq) {
            // Everything visible at the target is already in the
            // base image (the page re-queued but its new commits sit
            // past the clamped horizon); nothing to write.
            continue;
        }
        NVWAL_RETURN_IF_ERROR(_dbFile.writePage(
            page_no, ConstByteSpan(page.data(), _pageSize)));
        _stats.add(stats::kWalCkptPagesWritten);
        if (_ckptLastWritten != kNoPage && page_no > _ckptLastWritten)
            _stats.add(stats::kWalCkptSequentialWrites);
        _ckptLastWritten = page_no;
        ++written;
        // Reclaim the page's written-back frames from the volatile
        // index (the NVRAM bytes stay until truncation): the base
        // image now contains every effect at or below `effective`,
        // and every pinned horizon is >= target >= effective, so no
        // reader can need them. This is what bounds index memory for
        // fully-checkpointed pages between truncations.
        entry.baseSeq = effective;
        const std::uint64_t nodes_before = _frameIndexNodes;
        _indexedFrames -= entry.frames.pruneThrough(effective);
        if (_frameIndexNodes != nodes_before)
            publishIndexGauge();
    }
    if (_ckptQueuePos < _ckptQueue.size() || !_ckptPending.empty()) {
        // Sync what this step wrote: file writes are buffered, so
        // without a per-step fsync the entire block-program bill
        // would land on the final step and the latency bound this
        // API exists for would be lost. Intermediate syncs are safe
        // because replaying the (still intact) log is idempotent.
        if (written > 0)
            NVWAL_RETURN_IF_ERROR(_dbFile.sync());
        return Status::ok();  // more steps required
    }

    NVWAL_RETURN_IF_ERROR(_dbFile.sync());
    *done = true;
    _ckptRoundActive = false;
    _ckptQueue.clear();
    _ckptQueuePos = 0;

    if (target < _commitSeq) {
        // A pinned snapshot sits below the newest commit, so frames
        // past the target must survive; the round ends with the base
        // file advanced to the target but the log retained. A later
        // round truncates once the pin releases.
        _stats.add(stats::kCheckpointsPinBlocked);
        return Status::ok();
    }
    if (!_staged.empty() || _twoPhaseHolds > 0) {
        // A prepared-but-undecided transaction (or a coordinator
        // mid-protocol) pins the log the same way a snapshot does:
        // truncating would destroy the staged frames -- and, on other
        // participants, the decision records an in-doubt shard needs
        // to resolve after a crash. Write-back is complete; only the
        // truncation is deferred to a later round.
        _stats.add(stats::kWalCkptTwoPhaseBlocked);
        return Status::ok();
    }

    // Open a new checkpoint epoch *before* truncating: every logged
    // frame carries the epoch id, so bumping it atomically
    // invalidates the whole log. Without this, a crash midway
    // through freeing the nodes (tail first, section 4.3) would
    // leave a valid *prefix* of frames, and replaying old diffs on
    // top of the already-checkpointed pages would revert the
    // transactions whose frames were freed.
    _checkpointId++;
    persistU64(checkpointIdFieldOff(), _checkpointId);

    // Truncate the NVRAM log: free nodes from the end of the list to
    // the beginning (section 4.3), then clear the head pointer.
    std::vector<NvOffset> nodes;
    NvOffset node = _pmem.device().readU64(firstNodeFieldOff());
    while (node != kNullNvOffset) {
        nodes.push_back(node);
        node = _pmem.device().readU64(node);
    }
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it)
        NVWAL_RETURN_IF_ERROR(_heap.nvFree(*it));
    persistU64(firstNodeFieldOff(), kNullNvOffset);

    // Truncation invalidates the image cache per page, not
    // wholesale: a page's frames are gone, but the round just wrote
    // its state at baseSeq into the .db file, so a cached image at
    // exactly (page, baseSeq) is still a byte-correct base image --
    // keep it (and a frame-less stub entry so reads find it) and it
    // keeps hitting. Commit sequences don't restart at truncation
    // (only recover() restarts them), so the keys stay unique facts.
    for (auto it = _pageIndex.begin(); it != _pageIndex.end();) {
        const PageNo page_no = it->first;
        PageEntry &entry = it->second;
        _indexedFrames -= entry.frames.frameCount();
        entry.frames.clear();
        invalidateCachedImagesExcept(page_no, entry.baseSeq);
        if (entry.baseSeq != 0 && imageCached(page_no, entry.baseSeq))
            ++it;
        else
            it = _pageIndex.erase(it);
    }
    publishIndexGauge();
    _chain.reset();
    _tailNode = kNullNvOffset;
    _tailUsed = 0;
    _tailCapacity = 0;
    _linkFieldOff = firstNodeFieldOff();
    _framesSinceCheckpoint = 0;
    _nodesSinceCheckpoint = 0;
    _stats.add(stats::kCheckpoints);
    return Status::ok();
}

Status
NvwalLog::recover(std::uint32_t *db_size_pages)
{
    TraceSpan span(_stats.tracer(), "wal.recover", "wal");
    const SimTime recover_begin = _pmem.clock().now();
    *db_size_pages = 0;
    _pageIndex.clear();
    _indexedFrames = 0;
    publishIndexGauge();
    _pendingRefs.clear();
    _ckptRoundActive = false;
    _ckptQueue.clear();
    _ckptQueuePos = 0;
    _ckptPending.clear();
    // Commit sequences restart below, so a stale (page, seq) cache
    // key could collide with a *different* post-recovery commit;
    // the cache must not survive recovery.
    clearImageCache();
    _chain.reset();
    _framesSinceCheckpoint = 0;
    _nodesSinceCheckpoint = 0;
    _dbSizePages = 0;
    _tailNode = kNullNvOffset;
    _tailUsed = 0;
    _tailCapacity = 0;
    // Sequences restart per process lifetime; recovery runs only
    // while no connection (and hence no snapshot pin) is open.
    NVWAL_ASSERT(!hasPins(), "recovery with an open snapshot");
    _commitSeq = 0;
    // Whatever survived the crash is on media by definition; the
    // async pipeline restarts empty.
    _unhardenedRuns.clear();
    _hardenedSeq = 0;
    _flushCandidateSeq = 0;
    clearRecoveredEpochTxns();
    _staged.clear();
    _decisions.clear();
    _maxSeenGtid = 0;
    _twoPhaseHolds = 0;

    // The heap manager reclaims pending blocks first (section 4.3,
    // failure case 1): a block that was allocated but never linked
    // leaks otherwise, and a block that was linked but never marked
    // in-use must be treated as free (failure case 2).
    NVWAL_RETURN_IF_ERROR(_heap.recover());

    Status root = _heap.getRoot(_config.heapNamespace, &_headerOff);
    if (root.isNotFound()) {
        NVWAL_RETURN_IF_ERROR(initHeader());
        _linkFieldOff = firstNodeFieldOff();
        _recoverHist.record(_pmem.clock().now() - recover_begin);
        return Status::ok();
    }
    NVWAL_RETURN_IF_ERROR(root);
    if (_heap.blockStateAt(_headerOff) != BlockState::InUse) {
        // The root points at a block the heap reclaimed: the crash
        // hit initHeader() between setRoot() and nvSetUsedFlag(), so
        // heap recovery freed the pending header. The log never
        // existed; re-initialize it (failure case 2 applied to the
        // header allocation itself).
        NVWAL_RETURN_IF_ERROR(initHeader());
        _linkFieldOff = firstNodeFieldOff();
        _recoverHist.record(_pmem.clock().now() - recover_begin);
        return Status::ok();
    }
    NVWAL_RETURN_IF_ERROR(loadHeader());
    _linkFieldOff = firstNodeFieldOff();

    NvramDevice &dev = _pmem.device();

    // Walk the node chain, validating the frame checksum chain.
    // Frames after the last valid *durable mark* -- a data commit, a
    // PREPARE, or a DECISION, all of which carry a commit word --
    // belong to a unit that never became durable and are discarded.
    // The tail restores at the last mark, not the last data commit:
    // a staged PREPARE past the last commit must survive.
    struct Mark
    {
        NvOffset node = kNullNvOffset;
        std::uint32_t used = 0;
        std::uint32_t capacity = 0;
        CumulativeChecksum chain;
        std::uint32_t dbSize = 0;
    };
    Mark last_mark;
    bool any_mark = false;
    std::uint32_t recovered_db_size = 0;
    std::uint64_t epoch_frames = 0;
    std::vector<FrameRef> pending;
    std::vector<FrameRef> committed;
    ByteBuffer payload(_pageSize);

    // Checksum-commit classification (DESIGN.md §11): the first chain
    // mismatch ends the recoverable prefix, but the walk keeps
    // scanning read-only to meter the loss window. In discard mode
    // each structurally-plausible frame is checked *incrementally* --
    // its stored checksum against its predecessor's stored checksum
    // plus its own content -- which distinguishes a torn frame
    // (content damaged in the NVRAM cache hierarchy) from an intact
    // frame that is merely unreachable past the break.
    bool discard_mode = false;
    std::uint64_t discard_prev_chain = 0;
    const auto enterDiscardMode = [&](std::uint64_t stored_chain,
                                      std::uint64_t commit_word) {
        discard_mode = true;
        discard_prev_chain = stored_chain;
        _stats.add(stats::kWalTornFramesDetected);
        _stats.add(stats::kWalRecoveryFramesDiscarded);
        if (commit_word != 0)
            _stats.add(stats::kWalRecoveryLostMarks);
    };

    NvOffset link_field = firstNodeFieldOff();
    NvOffset node = dev.readU64(link_field);
    CumulativeChecksum chain;
    while (node != kNullNvOffset) {
        if (_heap.blockStateAt(node) != BlockState::InUse) {
            // Dangling reference to a block the heap reclaimed
            // (crash between linking and nvSetUsedFlag): delete the
            // reference (section 4.3, failure case 2). In discard
            // mode the walk is read-only; the truncation pass below
            // already frees everything past the last mark.
            if (!discard_mode)
                persistU64(link_field, kNullNvOffset);
            break;
        }
        const std::uint32_t capacity =
            _heap.extentBlocksAt(node) * _heap.blockSize();
        std::uint32_t pos = kNodeHeaderSize;
        while (pos + kFrameHeaderSize <= capacity) {
            std::uint8_t header[kFrameHeaderSize];
            _pmem.readFromNvram(node + pos,
                                ByteSpan(header, kFrameHeaderSize));
            const PageNo page_no = loadU32(header);
            const std::uint16_t page_off = loadU16(header + 4);
            const std::uint16_t size = loadU16(header + 6);
            const std::uint64_t commit_word = loadU64(header + 8);
            const std::uint64_t ckpt_id = loadU64(header + 16);
            if (size == 0 || page_no == kNoPage ||
                static_cast<std::uint32_t>(page_off) + size > _pageSize ||
                pos + kFrameHeaderSize + size > capacity ||
                ckpt_id != _checkpointId) {
                // No (valid) frame here: the rest of this node is
                // unused tail space -- continue with the next node.
                // If these bytes were a torn frame instead, any
                // later commit's cumulative checksum will fail to
                // verify, which ends the walk there.
                break;
            }
            _pmem.readFromNvram(node + pos + kFrameHeaderSize,
                     ByteSpan(payload.data(), size));
            const std::uint64_t stored_chain = loadU64(header + 24);
            if (discard_mode) {
                // Read-only tail metering past the recoverable
                // prefix: a frame whose stored checksum disagrees
                // with (predecessor's stored checksum + own content)
                // is torn; one that agrees is intact but discarded.
                CumulativeChecksum attempt{discard_prev_chain};
                attempt.update(ConstByteSpan(header, 8));
                attempt.update(ConstByteSpan(header + 16, 8));
                attempt.update(ConstByteSpan(payload.data(), size));
                _stats.add(stats::kWalRecoveryFramesDiscarded);
                if (attempt.value() != stored_chain)
                    _stats.add(stats::kWalTornFramesDetected);
                if (commit_word != 0)
                    _stats.add(stats::kWalRecoveryLostMarks);
                discard_prev_chain = stored_chain;
                pos = static_cast<std::uint32_t>(
                    alignUp(pos + kFrameHeaderSize + size, 8));
                continue;
            }
            CumulativeChecksum attempt = chain;
            attempt.update(ConstByteSpan(header, 8));
            attempt.update(ConstByteSpan(header + 16, 8));
            attempt.update(ConstByteSpan(payload.data(), size));
            if (attempt.value() != stored_chain) {
                // Torn or missing bytes: the committed prefix ends
                // at the previous mark; keep scanning to meter what
                // was lost.
                enterDiscardMode(stored_chain, commit_word);
                pos = static_cast<std::uint32_t>(
                    alignUp(pos + kFrameHeaderSize + size, 8));
                continue;
            }
            chain = attempt;
            const NvOffset frame_off = node + pos;
            pos = static_cast<std::uint32_t>(
                alignUp(pos + kFrameHeaderSize + size, 8));
            bool mark = false;
            if (page_no == kControlPage) {
                // A 2PC control frame (chained like any frame). Its
                // payload is already in `payload`.
                if (size != kControlPayloadSize ||
                    loadU32(payload.data()) != kControlMagic) {
                    // Chain-valid bytes that are not a record we
                    // ever wrote: treat as damage, end the prefix.
                    enterDiscardMode(stored_chain, commit_word);
                    continue;
                }
                const std::uint32_t type = loadU32(payload.data() + 4);
                const std::uint64_t gtid = loadU64(payload.data() + 8);
                const std::uint32_t txn_db_size =
                    loadU32(payload.data() + 16);
                _maxSeenGtid = std::max(_maxSeenGtid, gtid);
                if (commit_word != 0) {
                    mark = true;
                    if (type == kCtrlPrepare) {
                        // Re-stage: durable, undecided, invisible.
                        _staged[gtid] =
                            StagedTxn{std::move(pending), txn_db_size};
                        pending.clear();
                    } else {
                        const bool commit = type == kCtrlCommit;
                        _decisions[gtid] = commit;
                        auto it = _staged.find(gtid);
                        if (it != _staged.end()) {
                            if (commit) {
                                const CommitSeq seq = ++_commitSeq;
                                for (FrameRef &ref : it->second.refs)
                                    ref.seq = seq;
                                committed.insert(
                                    committed.end(),
                                    it->second.refs.begin(),
                                    it->second.refs.end());
                                recovered_db_size =
                                    it->second.dbSizePages;
                            }
                            _staged.erase(it);
                        }
                    }
                }
            } else {
                pending.push_back(FrameRef{frame_off, page_no, page_off,
                                           size, 0});
                if (commit_word != 0 && _config.epochMarks) {
                    // Epoch-stamped mark (DESIGN.md §13): bits
                    // [32, 63) carry the global commit epoch, the low
                    // 32 bits the db size. Collect the transaction
                    // for the cross-log merge instead of indexing it
                    // for reads.
                    mark = true;
                    ++_commitSeq;
                    RecoveredEpochTxn txn;
                    txn.epoch = (commit_word >> 32) & 0x7fffffffULL;
                    txn.dbSizePages = static_cast<std::uint32_t>(
                        commit_word & 0xffffffffULL);
                    txn.frames.reserve(pending.size());
                    for (const FrameRef &ref : pending)
                        txn.frames.push_back(RecoveredFrame{
                            ref.pageNo, ref.pageOffset, ref.size,
                            ref.off + kFrameHeaderSize});
                    epoch_frames += pending.size();
                    pending.clear();
                    recovered_db_size = txn.dbSizePages;
                    _recoveredEpochTxns.push_back(std::move(txn));
                } else if (commit_word != 0) {
                    // Every frame up to this mark committed together;
                    // a group commit recovers as one sequence, which
                    // is exactly its atomicity unit.
                    mark = true;
                    const CommitSeq seq = ++_commitSeq;
                    for (FrameRef &ref : pending)
                        ref.seq = seq;
                    committed.insert(committed.end(), pending.begin(),
                                     pending.end());
                    pending.clear();
                    recovered_db_size = static_cast<std::uint32_t>(
                        commit_word & ~kCommitFlag);
                }
            }
            if (mark) {
                any_mark = true;
                last_mark.node = node;
                last_mark.used = pos;
                last_mark.capacity = capacity;
                last_mark.chain = chain;
                last_mark.dbSize = recovered_db_size;
            }
        }
        _nodesSinceCheckpoint++;
        link_field = node;
        node = dev.readU64(node);
    }

    if (any_mark) {
        _tailNode = last_mark.node;
        _tailUsed = last_mark.used;
        // Per-frame (non-user-heap) nodes never accept a second
        // frame, recovered or not.
        _tailCapacity =
            _config.userHeap ? last_mark.capacity : last_mark.used;
        _linkFieldOff = _tailNode;
        _chain = last_mark.chain;
        _dbSizePages = last_mark.dbSize;
        for (const FrameRef &ref : committed)
            indexFrame(ref);
        _framesSinceCheckpoint =
            _config.epochMarks ? epoch_frames : committed.size();

        // Erase the frame header slot right after the last durable
        // mark. The tail may hold a torn (or merely uncommitted)
        // frame; if it stayed in place and a later append skipped to
        // a fresh node because its frame did not fit here, a future
        // recovery walk would stop on the stale bytes and lose the
        // valid continuation in the following nodes.
        if (_tailUsed + kFrameHeaderSize <= last_mark.capacity) {
            const std::uint8_t zeros[kFrameHeaderSize] = {};
            const NvOffset tail = _tailNode + _tailUsed;
            _pmem.memcpyToNvram(
                tail, ConstByteSpan(zeros, kFrameHeaderSize));
            _pmem.memoryBarrier();
            _pmem.cacheLineFlush(tail, tail + kFrameHeaderSize);
            _pmem.memoryBarrier();
            _pmem.persistBarrier();
        }

        // Free any nodes past the commit point (they hold only
        // uncommitted frames) and cut the chain there.
        NvOffset extra = dev.readU64(_tailNode);
        if (extra != kNullNvOffset) {
            std::vector<NvOffset> tail_nodes;
            NvOffset n = extra;
            while (n != kNullNvOffset &&
                   _heap.blockStateAt(n) == BlockState::InUse) {
                tail_nodes.push_back(n);
                n = dev.readU64(n);
            }
            for (auto it = tail_nodes.rbegin(); it != tail_nodes.rend();
                 ++it) {
                NVWAL_RETURN_IF_ERROR(_heap.nvFree(*it));
            }
            persistU64(_tailNode, kNullNvOffset);
        }
        // The walk counted every node it visited, including the
        // freed tail nodes and any dangling reference it cut off.
        // Recount from the (now truncated) chain so framesPerNode()
        // and the leak invariant see the live node set.
        _nodesSinceCheckpoint = nodeCount();
    } else {
        // No committed transaction: drop the whole chain.
        std::vector<NvOffset> all_nodes;
        NvOffset n = dev.readU64(firstNodeFieldOff());
        while (n != kNullNvOffset &&
               _heap.blockStateAt(n) == BlockState::InUse) {
            all_nodes.push_back(n);
            n = dev.readU64(n);
        }
        for (auto it = all_nodes.rbegin(); it != all_nodes.rend(); ++it)
            NVWAL_RETURN_IF_ERROR(_heap.nvFree(*it));
        persistU64(firstNodeFieldOff(), kNullNvOffset);
        _linkFieldOff = firstNodeFieldOff();
        _nodesSinceCheckpoint = 0;
    }

    _hardenedSeq = _commitSeq;
    _flushCandidateSeq = _commitSeq;
    *db_size_pages = _dbSizePages;
    _recoverHist.record(_pmem.clock().now() - recover_begin);
    return Status::ok();
}

std::uint64_t
NvwalLog::nodeCount() const
{
    std::uint64_t count = 0;
    NvOffset node = _pmem.device().readU64(firstNodeFieldOff());
    while (node != kNullNvOffset) {
        ++count;
        node = _pmem.device().readU64(node);
    }
    return count;
}

double
NvwalLog::framesPerNode() const
{
    if (_nodesSinceCheckpoint == 0)
        return 0.0;
    return static_cast<double>(_framesSinceCheckpoint) /
           static_cast<double>(_nodesSinceCheckpoint);
}

std::uint64_t
NvwalLog::reachableNvramBlocks() const
{
    if (_headerOff == kNullNvOffset)
        return 0;
    std::uint64_t blocks = _heap.extentBlocksAt(_headerOff);
    NvOffset node = _pmem.device().readU64(firstNodeFieldOff());
    while (node != kNullNvOffset) {
        blocks += _heap.extentBlocksAt(node);
        node = _pmem.device().readU64(node);
    }
    return blocks;
}

} // namespace nvwal
