/**
 * @file
 * NVWAL: the NVRAM write-ahead log (the paper's core contribution).
 *
 * Persistent layout, all inside NvHeap allocations:
 *
 *   namespace "nvwal" -> header allocation:
 *     0   magic u64
 *     8   page size u32, reserved bytes u32
 *     16  checkpoint id u64
 *     24  first node offset u64 (kNullNvOffset when the log is empty)
 *
 *   log node (one heap allocation; the user-level heap packs many
 *   frames per node, the LS baseline holds one frame per node):
 *     0   next node offset u64
 *     8   frames, each 8-byte aligned
 *
 *   WAL frame (32-byte header + payload, section 3.2):
 *     0   page number u32
 *     4   in-page offset u16
 *     6   payload size u16
 *     8   commit word u64 -- 0, or kCommitFlag | dbSizePages.
 *         Excluded from the checksum so the commit mark can be set
 *         by a single 8-byte atomic store after the payload is
 *         durable (section 4.1).
 *     16  checkpoint id u64
 *     24  cumulative checksum u64 over [0, 8) + [16, 24) + payload,
 *         chained across all frames since the last checkpoint, so
 *         recovery detects any torn or missing prefix (and gives the
 *         ChecksumAsync variant its probabilistic commit validity,
 *         section 4.2).
 *
 * Commit protocol (Algorithm 1): frames are memcpy'd into NVRAM,
 * synchronized per the SyncMode, and only then is the last frame's
 * commit word written, flushed and persisted. Recovery replays
 * frames up to the last frame whose chain verifies and whose commit
 * word is set; everything after is discarded and the heap reclaims
 * pending blocks (section 4.3).
 *
 * Two-phase commit records (DESIGN.md §10): a control frame is an
 * ordinary chained frame whose page number is kControlPage and whose
 * 24-byte payload encodes {magic u32, type u32, gtid u64,
 * dbSizePages u32, pad u32}. A PREPARE unit is the transaction's
 * data frames followed by a PREPARE control frame; the commit word
 * is set on the control frame, making the unit durable, but the
 * data frames are *staged* (not applied) until a COMMIT/ABORT
 * DECISION control frame for the same gtid lands. Recovery
 * re-stages surviving PREPAREs whose decision is missing; the shard
 * router resolves them across participant logs (presumed-abort).
 * Checkpoint truncation is deferred while staged transactions or
 * coordinator holds exist, so decision records stay findable.
 */

#ifndef NVWAL_CORE_NVWAL_LOG_HPP
#define NVWAL_CORE_NVWAL_LOG_HPP

#include <algorithm>
#include <list>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/checksum.hpp"
#include "core/frame_index.hpp"
#include "core/nvwal_config.hpp"
#include "heap/nv_heap.hpp"
#include "pager/db_file.hpp"
#include "wal/write_ahead_log.hpp"

namespace nvwal
{

/** The NVRAM write-ahead log. */
class NvwalLog : public WriteAheadLog
{
  public:
    static constexpr std::uint64_t kMagic = 0x3130304c4157564eULL;
    static constexpr std::uint32_t kFrameHeaderSize = 32;
    static constexpr std::uint32_t kNodeHeaderSize = 8;
    static constexpr std::uint64_t kCommitFlag = 1ULL << 63;

    /**
     * Frame page number marking a 2PC control frame. Distinct from
     * kNoPage (0), which recovery treats as "no frame here"; real
     * pages are allocated sequentially from 1 and can never reach it.
     */
    static constexpr PageNo kControlPage = ~static_cast<PageNo>(0);
    static constexpr std::uint32_t kControlMagic = 0x43325043; // "C2PC"
    static constexpr std::uint32_t kCtrlPrepare = 1;
    static constexpr std::uint32_t kCtrlCommit = 2;
    static constexpr std::uint32_t kCtrlAbort = 3;
    static constexpr std::uint32_t kControlPayloadSize = 24;

    NvwalLog(NvHeap &heap, Pmem &pmem, DbFile &db_file,
             std::uint32_t page_size, std::uint32_t reserved_bytes,
             NvwalConfig config, MetricsRegistry &stats);

    Status writeFrames(const std::vector<FrameWrite> &frames, bool commit,
                       std::uint32_t db_size_pages) override;
    Status writeFrameGroup(const std::vector<TxnFrames> &txns) override;
    bool supportsAsyncCommits() const override { return true; }
    Status writeFrameGroupAsync(const std::vector<TxnFrames> &txns) override;
    Status harden() override;
    CommitSeq hardenedSeq() const override { return _hardenedSeq; }
    Status readPage(PageNo page_no, ByteSpan out) override;
    Status readPageAt(PageNo page_no, ByteSpan out,
                      CommitSeq horizon) override;
    CommitSeq commitSeq() const override { return _commitSeq; }
    std::uint32_t committedDbSize() const override { return _dbSizePages; }
    bool supportsSnapshots() const override { return true; }
    Status checkpoint() override;
    Status checkpointStep(std::uint32_t max_pages, bool *done) override;
    Status recover(std::uint32_t *db_size_pages) override;
    std::uint64_t framesSinceCheckpoint() const override
    { return _framesSinceCheckpoint; }
    const char *name() const override { return _name.c_str(); }

    // ---- two-phase commit (DESIGN.md §10) --------------------------

    bool supportsTwoPhase() const override { return true; }
    Status writePrepare(std::uint64_t gtid,
                        const TxnFrames &txn) override;
    Status writeDecision(std::uint64_t gtid, bool commit) override;
    Status resolveInDoubt(std::uint64_t gtid, bool commit) override;
    std::vector<std::uint64_t> inDoubtTransactions() const override;
    bool lookupDecision(std::uint64_t gtid, bool *commit) const override;
    std::uint64_t maxSeenGtid() const override { return _maxSeenGtid; }
    void acquireTwoPhaseHold() override { ++_twoPhaseHolds; }
    void
    releaseTwoPhaseHold() override
    {
        NVWAL_ASSERT(_twoPhaseHolds > 0);
        --_twoPhaseHolds;
    }

    const NvwalConfig &config() const { return _config; }

    // ---- multi-writer per-connection log mode (DESIGN.md §13) ------

    /** One committed frame recovered from an epoch-marked log. */
    struct RecoveredFrame
    {
        PageNo pageNo;
        std::uint16_t pageOffset;
        std::uint16_t size;       //!< payload bytes
        NvOffset payloadOff;      //!< NVRAM offset of the payload
    };

    /**
     * One transaction recovered from an epoch-marked log: its global
     * commit epoch (decoded from the mark's bits [32, 63)), the db
     * size its mark carried, and its frames in append order. The
     * database merges these across all per-connection logs by epoch.
     */
    struct RecoveredEpochTxn
    {
        std::uint64_t epoch = 0;
        std::uint32_t dbSizePages = 0;
        std::vector<RecoveredFrame> frames;
    };

    /**
     * Append one transaction with an epoch-stamped commit mark
     * (config().epochMarks only): frames and mark land with plain
     * stores and their ranges are deferred; durability comes from a
     * later flushRuns() + group persist barrier + finishHarden().
     * Frames are never indexed — epoch-marked logs serve no reads.
     */
    Status writeTxnEpoch(const TxnFrames &txn, std::uint64_t epoch);

    /**
     * Flush every deferred range into the persist queue (dmb; clwb
     * batch; dmb) WITHOUT the persist barrier, and remember the
     * commit seq the flush covers. The caller issues one shared
     * persist barrier across N logs and then calls finishHarden() on
     * each — this is how a multi-writer group harden pays a single
     * barrier for all per-connection logs.
     */
    void flushRuns();

    /**
     * Commit seq covered by the latest flushRuns(). The group-harden
     * caller samples this under the log's slot lock *before* issuing
     * the shared barrier; a racing commit may advance it afterwards,
     * so the barrier only vouches for the sampled value.
     */
    CommitSeq flushCandidateSeq() const { return _flushCandidateSeq; }

    /** Publish a sampled candidate seq as durable (after the barrier). */
    void
    finishHarden(CommitSeq candidate)
    {
        if (candidate > _hardenedSeq)
            _hardenedSeq = candidate;
    }

    /**
     * Free the whole node chain under a new checkpoint id, exactly
     * like the truncation tail of a completed checkpoint round but
     * with no page write-back — the multi-writer checkpointer writes
     * pages back from its own overlay before truncating each log.
     */
    Status truncateAll();

    /** Read @p out.size() payload bytes at @p off (merge replay). */
    void readPayload(NvOffset off, ByteSpan out)
    { _pmem.readFromNvram(off, out); }

    /** Transactions collected by recover() in epochMarks mode. */
    const std::vector<RecoveredEpochTxn> &recoveredEpochTxns() const
    { return _recoveredEpochTxns; }

    /** Drop the recovered-txn set once the merge has applied it. */
    void clearRecoveredEpochTxns()
    { std::vector<RecoveredEpochTxn>().swap(_recoveredEpochTxns); }

    /**
     * Monotonic checkpoint-round id from the persistent header. Bumped
     * by every truncation, recovered verbatim — the flight recorder
     * stamps durable-claim records with it so forensic cross-checks
     * can tell whether a claimed commit-mark count predates the
     * recovered truncation horizon (DESIGN.md §12).
     */
    std::uint64_t checkpointId() const { return _checkpointId; }

    // ---- introspection for tests and benches ----------------------

    /** Heap allocations (log nodes) currently linked in the chain. */
    std::uint64_t nodeCount() const;

    /**
     * Cached count of live log nodes; must always equal nodeCount().
     * Recovery recounts it after truncating uncommitted tail nodes.
     */
    std::uint64_t nodesSinceCheckpoint() const
    { return _nodesSinceCheckpoint; }

    /** Average frames stored per node since the last checkpoint. */
    double framesPerNode() const;

    /**
     * Heap blocks reachable from the log's persistent structure: the
     * header allocation's extent plus every linked node's extent.
     * After recovery this must equal the heap's total in-use block
     * count -- the sweep harness's NVRAM-leak invariant.
     */
    std::uint64_t reachableNvramBlocks() const;

    /** NVRAM offset where the next frame will be placed (tests). */
    NvOffset
    tailOffset() const
    {
        return _tailNode == kNullNvOffset ? kNullNvOffset
                                          : _tailNode + _tailUsed;
    }

    /** Current cumulative-checksum chain value (tests). */
    std::uint64_t chainValue() const { return _chain.value(); }

    /** Live radix nodes across every per-page frame index. */
    std::uint64_t frameIndexNodes() const { return _frameIndexNodes; }

    /** Committed frames currently held in the volatile index. */
    std::uint64_t indexedFrames() const { return _indexedFrames; }

    /** Committed frames indexed for @p page_no (0 when absent). */
    std::uint64_t
    indexedFrames(PageNo page_no) const
    {
        const auto it = _pageIndex.find(page_no);
        return it == _pageIndex.end() ? 0
                                      : it->second.frames.frameCount();
    }

    /**
     * Newest commit sequence whose effects on @p page_no are
     * contained in the .db base image (checkpoint write-back);
     * frames at or below it have been reclaimed from the index.
     */
    CommitSeq
    pageBaseSeq(PageNo page_no) const
    {
        const auto it = _pageIndex.find(page_no);
        return it == _pageIndex.end() ? 0 : it->second.baseSeq;
    }

  private:
    struct FrameRef
    {
        NvOffset off;           //!< frame header offset
        PageNo pageNo;
        std::uint16_t pageOffset;
        std::uint16_t size;     //!< payload bytes
        CommitSeq seq = 0;      //!< commit sequence (volatile, index-only)
    };

    /**
     * A frame whose placement has been deferred so the transaction's
     * total size is known first; the payload still lives in the
     * caller's page buffer.
     */
    struct PendingFrame
    {
        PageNo pageNo;
        std::uint16_t pageOffset;
        ConstByteSpan payload;
    };

    /** One materialized page image held by the read-path LRU. */
    struct CachedImage
    {
        PageNo pageNo;
        CommitSeq seq;      //!< newest commit folded into the image
        ByteBuffer image;
    };

    /**
     * A prepared transaction: durable in the log (its PREPARE unit
     * carries a commit mark) but not applied -- the refs are absent
     * from _pageIndex until a commit decision assigns them a
     * sequence, or an abort decision drops them.
     */
    struct StagedTxn
    {
        std::vector<FrameRef> refs;
        std::uint32_t dbSizePages = 0;
    };

    NvOffset headerFieldOff(std::uint32_t field) const
    { return _headerOff + field; }
    NvOffset firstNodeFieldOff() const { return headerFieldOff(24); }
    NvOffset checkpointIdFieldOff() const { return headerFieldOff(16); }

    Status initHeader();
    Status loadHeader();

    /** Persist a single 8-byte field: store, fence, flush, persist. */
    void persistU64(NvOffset off, std::uint64_t value);

    /** Allocate + link a new log node with >= @p min_payload bytes. */
    Status appendNode(std::uint32_t min_payload);

    /** Place one frame; returns its header offset. */
    Status placeFrame(PageNo page_no, std::uint16_t page_offset,
                      ConstByteSpan payload, NvOffset *frame_off);

    /**
     * Log one transaction's frames: expand every FrameWrite into its
     * dirty ranges, reserve one contiguous tail-node run for the
     * whole transaction (paper §4.2's marshalling), then place the
     * frames back to back. Eager mode still synchronizes per frame.
     * Appends one FrameRef per placed frame to @p refs.
     */
    Status logTxnFrames(const std::vector<FrameWrite> &frames,
                        std::vector<FrameRef> *refs);

    /**
     * Ensure the tail node can hold @p bytes contiguously (user-heap
     * mode only). Falls back to per-frame allocation when the heap
     * cannot produce one extent of that size.
     */
    Status reserveContiguous(std::uint32_t bytes);

    // ---- materialized-page LRU cache -------------------------------

    /**
     * Copy a cached image of (page, seq) into @p out, if present.
     * @p record_stats suppresses the hit/miss counters for
     * secondary probes (the base-image fallback inside one
     * materialization), so the counters keep meaning "one lookup
     * per read".
     */
    bool cachedImageGet(PageNo page_no, CommitSeq seq, ByteSpan out,
                        bool record_stats = true);

    /** Remember @p image as the page's state as of @p seq. */
    void cachedImagePut(PageNo page_no, CommitSeq seq,
                        ConstByteSpan image);

    /**
     * Drop @p page_no's cached images except the one at @p keep_seq
     * (pass 0 to keep none). Truncation invalidates per page with
     * the page's checkpointed base image exempted: its frames are
     * gone, but the (page, baseSeq) fact is still byte-correct and
     * keeps serving reads.
     */
    void invalidateCachedImagesExcept(PageNo page_no,
                                      CommitSeq keep_seq);

    /** Whether the cache holds an image of (page, seq); no LRU touch. */
    bool imageCached(PageNo page_no, CommitSeq seq) const
    { return _imageIndex.count({page_no, seq}) != 0; }

    /** Drop the whole cache (recovery). */
    void clearImageCache();

    /** Apply one committed frame to the volatile page index. */
    void indexFrame(const FrameRef &ref);

    /** Re-publish the wal.frame_index_nodes gauge after a change. */
    void publishIndexGauge();

    /**
     * Shared page materialization: base .db image plus committed
     * diffs with seq <= @p horizon, in log order. kNoPin reads the
     * newest committed version. @p effective_out (optional) reports
     * the newest commit sequence folded into the image.
     */
    Status materializePage(PageNo page_no, ByteSpan out,
                           CommitSeq horizon,
                           CommitSeq *effective_out = nullptr);

    /**
     * Make @p refs durable when the sync mode is Lazy or @p force is
     * set (2PC records harden eagerly under every mode). Any ranges
     * still pending from earlier async appends are merged into the
     * same coalesced flush batch, so a strict commit chained after
     * unhardened async commits never leaves a torn-prone prefix
     * under its own durable mark.
     */
    void syncRefs(const std::vector<FrameRef> &refs, bool force);

    /** Record @p ref's NVRAM range as appended-but-unflushed. */
    void deferSyncRef(const FrameRef &ref);

    /** Set + persist the commit mark on @p last (Algorithm 1 §4.1). */
    void persistCommitMark(const FrameRef &last,
                           std::uint32_t db_size_pages,
                           std::uint64_t frame_count);

    /** Place one 2PC control frame (chained like any frame). */
    Status placeControlFrame(std::uint32_t type, std::uint64_t gtid,
                             std::uint32_t db_size_pages, FrameRef *out);

    /**
     * Volatile half of a decision: apply (fresh commit sequence,
     * index, size update) or discard the staged refs of @p gtid, and
     * remember the decision for cross-shard lookups. No-op when the
     * gtid is not staged (its prepare was already resolved).
     */
    void applyDecision(std::uint64_t gtid, bool commit);

    /**
     * The commit horizon a checkpoint round may write back to the
     * .db file: the newest commit, clamped so the base image never
     * advances past the oldest pinned snapshot.
     */
    CommitSeq checkpointTarget() const
    { return std::min(oldestPin(), _commitSeq); }

    NvHeap &_heap;
    Pmem &_pmem;
    DbFile &_dbFile;
    std::uint32_t _pageSize;
    std::uint32_t _reservedBytes;
    NvwalConfig _config;
    MetricsRegistry &_stats;
    // Per-phase latency histograms (sim ns); registry-owned, so the
    // references stay valid for the log's lifetime.
    Histogram &_logWriteHist;
    Histogram &_commitMarkHist;
    Histogram &_checkpointHist;
    Histogram &_recoverHist;
    std::string _name;

    // Volatile state, rebuilt by recover().
    NvOffset _headerOff = kNullNvOffset;
    std::uint64_t _checkpointId = 0;
    NvOffset _tailNode = kNullNvOffset;   //!< last node in the chain
    std::uint32_t _tailUsed = 0;          //!< bytes used in tail node
    std::uint32_t _tailCapacity = 0;      //!< tail node total bytes
    /** NVRAM offset of the link field to store the next node into. */
    NvOffset _linkFieldOff = kNullNvOffset;
    CumulativeChecksum _chain;
    std::uint64_t _framesSinceCheckpoint = 0;
    std::uint64_t _nodesSinceCheckpoint = 0;
    std::uint32_t _dbSizePages = 0;
    /**
     * Sequence of the newest committed transaction. Monotonic across
     * checkpoints (pinned snapshots outlive log truncation); rebuilt
     * by recover(), which runs only while no snapshot is open.
     */
    CommitSeq _commitSeq = 0;
    /**
     * Newest commit sequence known durable. Trails _commitSeq only
     * while async-appended ranges sit in _unhardenedRuns; harden()
     * (or any flush that merges the runs) catches it up.
     */
    CommitSeq _hardenedSeq = 0;
    /**
     * NVRAM [begin, end) ranges appended by writeFrameGroupAsync()
     * and not yet flushed; coalesced in place when they pile up.
     */
    std::vector<std::pair<NvOffset, NvOffset>> _unhardenedRuns;
    /**
     * Commit seq covered by the latest flushRuns(): everything at or
     * below it sits in the persist queue, so once the caller's group
     * persist barrier drains, finishHarden() promotes it durable.
     */
    CommitSeq _flushCandidateSeq = 0;
    /** Epoch-marked transactions collected by recover() (MW mode). */
    std::vector<RecoveredEpochTxn> _recoveredEpochTxns;
    /** Frames logged but not yet covered by a commit mark. */
    std::vector<FrameRef> _pendingRefs;
    /**
     * Prepared-but-undecided transactions by gtid. At most one entry
     * in steady state (the coordinator holds this shard's writer
     * lock from prepare to decision); recovery may briefly hold the
     * re-staged in-doubt set until the router resolves it.
     */
    std::map<std::uint64_t, StagedTxn> _staged;
    /** Durable decisions seen (live writes + recovery walk). */
    std::map<std::uint64_t, bool> _decisions;
    /** Largest gtid in any surviving PREPARE/DECISION record. */
    std::uint64_t _maxSeenGtid = 0;
    /** Open coordinator truncation guards (see acquireTwoPhaseHold). */
    std::uint32_t _twoPhaseHolds = 0;
    /**
     * The in-progress incremental checkpoint round. The round drains
     * _ckptQueue front to back -- pages in ascending order, so the
     * block device sees sequential writes (Fig. 8). Pages committed
     * while the round is active land in _ckptPending and are drained
     * by catch-up passes (again ascending) until no re-dirtied page
     * remains; replaying absolute-byte diffs is idempotent, so
     * partial write-backs are always crash-safe.
     */
    bool _ckptRoundActive = false;
    std::vector<PageNo> _ckptQueue;   //!< current pass, ascending
    std::size_t _ckptQueuePos = 0;    //!< next queue index to drain
    std::set<PageNo> _ckptPending;    //!< re-dirtied during the round
    PageNo _ckptLastWritten = kNoPage; //!< previous write-back target
    /**
     * One page's volatile read-path state: the radix frame index
     * over its retained committed frames (DESIGN.md §14), plus
     * baseSeq — the newest commit sequence whose effects the .db
     * base image already contains (advanced by checkpoint
     * write-back, which then reclaims the frames at or below it).
     * A frame-less "stub" entry (baseSeq only) survives truncation
     * while its cached base image keeps serving reads.
     */
    struct PageEntry
    {
        FrameIndex frames;
        CommitSeq baseSeq = 0;
    };
    /** page -> committed-frame index + checkpointed base horizon. */
    std::map<PageNo, PageEntry> _pageIndex;
    /** Total frames held across every page's index. */
    std::uint64_t _indexedFrames = 0;
    /** Live radix nodes across every page's index (gauge backing). */
    std::uint64_t _frameIndexNodes = 0;
    /**
     * Materialized-image LRU (front = most recent) plus its lookup
     * index. Keyed by (page, newest seq folded in), so a pinned
     * snapshot naturally misses entries built past its horizon. No
     * internal locking: every caller already holds the database
     * engine mutex.
     */
    std::list<CachedImage> _imageLru;
    std::map<std::pair<PageNo, CommitSeq>,
             std::list<CachedImage>::iterator> _imageIndex;
};

} // namespace nvwal

#endif // NVWAL_CORE_NVWAL_LOG_HPP
