/**
 * @file
 * Per-page radix-tree index over committed WAL frames, keyed by
 * commit sequence (DESIGN.md §14).
 *
 * The read path's problem: under checkpoint lag a page accumulates an
 * unbounded frame chain, and the old per-page vector forced every
 * cold-miss materialization to scan it backward twice (horizon
 * boundary, then latest-full-frame shortcut) — O(frames committed
 * past the reader's horizon). This index stores one leaf per commit
 * sequence that touched the page (a multi-range transaction's frames
 * share the leaf), in a fanout-16 radix tree over the sequence space,
 * so:
 *
 *   - findVisible(horizon) — the newest leaf at or below a snapshot
 *     horizon — is an O(log16 seq-range) floor descent, and
 *   - every leaf carries anchorSeq, the newest sequence <= its own
 *     that contains a full-page frame, maintained O(1) at insert
 *     time; replay starts there instead of scanning for it.
 *
 * The O(1) anchor maintenance leans on an engine-wide invariant:
 * frames are always inserted in nondecreasing sequence order (live
 * commits take ++commitSeq under the writer lock, 2PC decisions
 * assign a fresh sequence, and recovery replays the log in order),
 * so once a newer leaf exists, an older leaf is immutable and its
 * frozen anchorSeq stays correct forever. insert() asserts the
 * invariant.
 *
 * pruneThrough(seq) reclaims every leaf at or below a checkpointed
 * sequence and frees interior nodes that became empty — the memory
 * bound for fully-checkpointed pages. Retained leaves may still
 * carry an anchorSeq pointing below the prune horizon; callers must
 * ignore anchors <= prunedThrough() (the anchor's effects are in the
 * checkpointed base image anyway).
 *
 * Not thread-safe: every caller already holds the database engine
 * mutex, like the rest of the NvwalLog volatile index.
 */

#ifndef NVWAL_CORE_FRAME_INDEX_HPP
#define NVWAL_CORE_FRAME_INDEX_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"
#include "wal/write_ahead_log.hpp"

namespace nvwal
{

/** Radix-tree index of one page's committed frames, by commit seq. */
class FrameIndex
{
  public:
    static constexpr std::uint32_t kBitsPerLevel = 4;
    static constexpr std::uint32_t kFanout = 1u << kBitsPerLevel;
    /** 16 levels of 4 bits cover the whole 64-bit sequence space. */
    static constexpr std::uint32_t kMaxHeight = 16;

    /** One committed frame (the page and seq are implied). */
    struct Slot
    {
        NvOffset off;             //!< frame header offset in NVRAM
        std::uint16_t pageOffset;
        std::uint16_t size;       //!< payload bytes
    };

    /** All frames one commit sequence contributed to the page. */
    struct Leaf
    {
        CommitSeq seq = 0;
        std::vector<Slot> slots;
        /** Index of the newest full-page slot in slots, or -1. */
        int lastFull = -1;
        /**
         * Newest sequence <= seq whose leaf holds a full-page frame
         * (possibly this leaf), frozen when the leaf was last
         * touched; 0 when no full frame exists at or below seq.
         */
        CommitSeq anchorSeq = 0;
    };

    FrameIndex() = default;
    ~FrameIndex() { clear(); }

    FrameIndex(const FrameIndex &) = delete;
    FrameIndex &operator=(const FrameIndex &) = delete;

    FrameIndex(FrameIndex &&other) noexcept { *this = std::move(other); }

    FrameIndex &
    operator=(FrameIndex &&other) noexcept
    {
        if (this == &other)
            return *this;
        clear();
        _root = other._root;
        _height = other._height;
        _tail = other._tail;
        _nodeGauge = other._nodeGauge;
        _nodeCount = other._nodeCount;
        _frameCount = other._frameCount;
        _leafCount = other._leafCount;
        _lastFullSeq = other._lastFullSeq;
        _prunedThrough = other._prunedThrough;
        other._root = nullptr;
        other._height = 0;
        other._tail = nullptr;
        other._nodeCount = 0;
        other._frameCount = 0;
        other._leafCount = 0;
        other._lastFullSeq = 0;
        other._prunedThrough = 0;
        return *this;
    }

    /**
     * Point node accounting at an external counter (the log's
     * wal.frame_index_nodes gauge); every node or leaf allocated or
     * freed adjusts it. Must be bound before the first insert.
     */
    void bindNodeGauge(std::uint64_t *gauge) { _nodeGauge = gauge; }

    /** Append one frame under @p seq (nondecreasing across calls). */
    void
    insert(CommitSeq seq, const Slot &slot, bool full_page)
    {
        NVWAL_ASSERT(seq != 0, "commit sequences start at 1");
        NVWAL_ASSERT(_tail == nullptr || seq >= _tail->seq,
                     "frame index inserts must be seq-nondecreasing");
        NVWAL_ASSERT(seq > _prunedThrough,
                     "insert at or below the pruned horizon");
        Leaf *leaf = (_tail != nullptr && _tail->seq == seq)
                         ? _tail
                         : attachLeaf(seq);
        leaf->slots.push_back(slot);
        if (full_page) {
            leaf->lastFull = static_cast<int>(leaf->slots.size()) - 1;
            _lastFullSeq = seq;
        }
        leaf->anchorSeq = _lastFullSeq;
        ++_frameCount;
    }

    /**
     * The newest leaf with seq <= @p horizon, or nullptr when no
     * retained frame is visible. Adds the descent cost (nodes
     * touched) to @p steps.
     */
    const Leaf *
    findVisible(CommitSeq horizon, std::uint64_t *steps) const
    {
        if (_tail == nullptr)
            return nullptr;
        if (horizon >= _tail->seq) {
            // The common unpinned read: the newest leaf is visible.
            *steps += 1;
            return _tail;
        }
        if (_root == nullptr)
            return nullptr;
        return floorIn(_root, _height, horizon, steps);
    }

    /**
     * Visit every retained leaf with lo <= seq <= hi in ascending
     * sequence order.
     */
    template <typename Fn>
    void
    forRange(CommitSeq lo, CommitSeq hi, Fn &&fn) const
    {
        if (_root == nullptr || hi < lo)
            return;
        rangeIn(_root, _height, 0, lo, hi, fn);
    }

    /**
     * Drop every leaf with seq <= @p through and free interior nodes
     * left empty. Returns the number of frames (slots) reclaimed.
     */
    std::uint64_t
    pruneThrough(CommitSeq through)
    {
        if (through > _prunedThrough)
            _prunedThrough = through;
        if (_lastFullSeq <= through)
            _lastFullSeq = 0;
        if (_root == nullptr || through == 0)
            return 0;
        // Drop the tail shortcut before freeing anything: pruneIn
        // may free the leaf it points at.
        if (_tail != nullptr && _tail->seq <= through)
            _tail = nullptr;
        std::uint64_t removed = 0;
        if (pruneIn(&_root, _height, 0, through, &removed))
            _height = 0;
        NVWAL_ASSERT(removed <= _frameCount);
        _frameCount -= removed;
        return removed;
    }

    /** Free everything; the index becomes empty and reusable. */
    void
    clear()
    {
        if (_root != nullptr) {
            std::uint64_t removed = 0;
            freeSubtree(_root, _height, &removed);
            _root = nullptr;
        }
        _height = 0;
        _tail = nullptr;
        _frameCount = 0;
        _leafCount = 0;
        _lastFullSeq = 0;
        _prunedThrough = 0;
    }

    bool empty() const { return _leafCount == 0; }
    std::uint64_t frameCount() const { return _frameCount; }
    std::uint64_t leafCount() const { return _leafCount; }
    /** Live nodes (interior + leaf) owned by this index. */
    std::uint64_t nodeCount() const { return _nodeCount; }
    CommitSeq newestSeq() const
    { return _tail != nullptr ? _tail->seq : 0; }
    CommitSeq prunedThrough() const { return _prunedThrough; }

  private:
    /**
     * Interior node at level l >= 1: child i covers sequences
     * [base + i * 16^(l-1), base + (i+1) * 16^(l-1)). Children of a
     * level-1 node are Leafs.
     */
    struct Node
    {
        void *child[kFanout] = {nullptr};
    };

    static std::uint32_t
    childIndex(CommitSeq key, std::uint32_t level)
    {
        return static_cast<std::uint32_t>(
                   key >> (kBitsPerLevel * (level - 1))) &
               (kFanout - 1);
    }

    /** Sequences covered per child of a node at @p level. */
    static CommitSeq
    childSpan(std::uint32_t level)
    {
        return static_cast<CommitSeq>(1)
               << (kBitsPerLevel * (level - 1));
    }

    bool
    covers(CommitSeq key) const
    {
        return _height >= kMaxHeight ||
               key < (static_cast<CommitSeq>(1)
                      << (kBitsPerLevel * _height));
    }

    Node *
    allocNode()
    {
        ++_nodeCount;
        if (_nodeGauge != nullptr)
            ++*_nodeGauge;
        return new Node();
    }

    Leaf *
    allocLeaf(CommitSeq seq)
    {
        ++_nodeCount;
        ++_leafCount;
        if (_nodeGauge != nullptr)
            ++*_nodeGauge;
        Leaf *leaf = new Leaf();
        leaf->seq = seq;
        return leaf;
    }

    void
    freeNode(Node *node)
    {
        NVWAL_ASSERT(_nodeCount > 0);
        --_nodeCount;
        if (_nodeGauge != nullptr)
            --*_nodeGauge;
        delete node;
    }

    void
    freeLeaf(Leaf *leaf)
    {
        NVWAL_ASSERT(_nodeCount > 0 && _leafCount > 0);
        --_nodeCount;
        --_leafCount;
        if (_nodeGauge != nullptr)
            --*_nodeGauge;
        delete leaf;
    }

    /** Create (and link) the leaf for @p seq; grows the tree. */
    Leaf *
    attachLeaf(CommitSeq seq)
    {
        if (_root == nullptr) {
            _root = allocNode();
            _height = 1;
        }
        while (!covers(seq)) {
            // Grow upward: the old root becomes child 0 of a new
            // root, since it always covers [0, 16^height).
            Node *root = allocNode();
            root->child[0] = _root;
            _root = root;
            ++_height;
        }
        Node *node = static_cast<Node *>(_root);
        for (std::uint32_t level = _height; level > 1; --level) {
            void *&slot = node->child[childIndex(seq, level)];
            if (slot == nullptr)
                slot = allocNode();
            node = static_cast<Node *>(slot);
        }
        void *&slot = node->child[childIndex(seq, 1)];
        NVWAL_ASSERT(slot == nullptr, "leaf already attached");
        Leaf *leaf = allocLeaf(seq);
        slot = leaf;
        _tail = leaf;
        return leaf;
    }

    const Leaf *
    floorIn(const void *node, std::uint32_t level, CommitSeq key,
            std::uint64_t *steps) const
    {
        *steps += 1;
        if (level == 0) {
            const Leaf *leaf = static_cast<const Leaf *>(node);
            return leaf->seq <= key ? leaf : nullptr;
        }
        const Node *n = static_cast<const Node *>(node);
        const std::uint32_t start = childIndex(key, level);
        for (std::uint32_t i = start + 1; i-- > 0;) {
            if (n->child[i] == nullptr)
                continue;
            const Leaf *found =
                i == start ? floorIn(n->child[i], level - 1, key, steps)
                           : maxIn(n->child[i], level - 1, steps);
            if (found != nullptr)
                return found;
        }
        return nullptr;
    }

    const Leaf *
    maxIn(const void *node, std::uint32_t level,
          std::uint64_t *steps) const
    {
        *steps += 1;
        if (level == 0)
            return static_cast<const Leaf *>(node);
        const Node *n = static_cast<const Node *>(node);
        for (std::uint32_t i = kFanout; i-- > 0;)
            if (n->child[i] != nullptr)
                return maxIn(n->child[i], level - 1, steps);
        NVWAL_ASSERT(false, "interior radix node with no children");
        return nullptr;
    }

    template <typename Fn>
    void
    rangeIn(const void *node, std::uint32_t level, CommitSeq base,
            CommitSeq lo, CommitSeq hi, Fn &&fn) const
    {
        if (level == 0) {
            const Leaf *leaf = static_cast<const Leaf *>(node);
            if (leaf->seq >= lo && leaf->seq <= hi)
                fn(*leaf);
            return;
        }
        const Node *n = static_cast<const Node *>(node);
        const CommitSeq span = childSpan(level);
        for (std::uint32_t i = 0; i < kFanout; ++i) {
            if (n->child[i] == nullptr)
                continue;
            const CommitSeq child_base = base + i * span;
            if (child_base > hi)
                break;
            if (child_base + (span - 1) < lo)
                continue;
            rangeIn(n->child[i], level - 1, child_base, lo, hi, fn);
        }
    }

    void
    freeSubtree(void *node, std::uint32_t level, std::uint64_t *removed)
    {
        if (level == 0) {
            Leaf *leaf = static_cast<Leaf *>(node);
            *removed += leaf->slots.size();
            freeLeaf(leaf);
            return;
        }
        Node *n = static_cast<Node *>(node);
        for (std::uint32_t i = 0; i < kFanout; ++i)
            if (n->child[i] != nullptr)
                freeSubtree(n->child[i], level - 1, removed);
        freeNode(n);
    }

    /** Returns true when the subtree at *slot emptied and was freed. */
    bool
    pruneIn(void **slot, std::uint32_t level, CommitSeq base,
            CommitSeq through, std::uint64_t *removed)
    {
        if (level == 0) {
            Leaf *leaf = static_cast<Leaf *>(*slot);
            if (leaf->seq > through)
                return false;
            *removed += leaf->slots.size();
            freeLeaf(leaf);
            *slot = nullptr;
            return true;
        }
        Node *n = static_cast<Node *>(*slot);
        const CommitSeq span = childSpan(level);
        bool any_left = false;
        for (std::uint32_t i = 0; i < kFanout; ++i) {
            if (n->child[i] == nullptr)
                continue;
            const CommitSeq child_base = base + i * span;
            if (child_base > through) {
                any_left = true;
                continue;
            }
            if (child_base + (span - 1) <= through) {
                // Whole subtree at or below the horizon.
                freeSubtree(n->child[i], level - 1, removed);
                n->child[i] = nullptr;
                continue;
            }
            if (!pruneIn(&n->child[i], level - 1, child_base, through,
                         removed))
                any_left = true;
        }
        if (any_left)
            return false;
        freeNode(n);
        *slot = nullptr;
        return true;
    }

    void *_root = nullptr;       //!< Node* (level == _height)
    std::uint32_t _height = 0;   //!< interior levels; 0 == empty
    Leaf *_tail = nullptr;       //!< newest leaf (append fast path)
    std::uint64_t *_nodeGauge = nullptr;
    std::uint64_t _nodeCount = 0;
    std::uint64_t _frameCount = 0;
    std::uint64_t _leafCount = 0;
    CommitSeq _lastFullSeq = 0;
    CommitSeq _prunedThrough = 0;
};

} // namespace nvwal

#endif // NVWAL_CORE_FRAME_INDEX_HPP
