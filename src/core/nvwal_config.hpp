/**
 * @file
 * Configuration of the NVWAL scheme variants evaluated in the paper
 * (Figure 7's legend): synchronization mode x differential logging x
 * user-level heap.
 */

#ifndef NVWAL_CORE_NVWAL_CONFIG_HPP
#define NVWAL_CORE_NVWAL_CONFIG_HPP

#include <cstdint>
#include <string>

namespace nvwal
{

/** How log writes are synchronized to NVRAM (section 4). */
enum class SyncMode
{
    /**
     * Eager: cache-line flush + barriers + persist barrier after
     * every WAL frame's memcpy (Figure 4(b), configuration 'E').
     */
    Eager,
    /**
     * Transaction-aware lazy synchronization: one batched
     * flush/fence/persist sequence between the logging phase and the
     * commit-mark phase (Figure 4(c), Algorithm 1 -- the paper's
     * recommended scheme).
     */
    Lazy,
    /**
     * Asynchronous commit: frames are not flushed at all; only the
     * commit mark + cumulative checksum line is flushed and
     * persisted. Probabilistically consistent (Figure 4(d),
     * section 4.2 -- 'CS' in Figure 7).
     */
    ChecksumAsync,
};

/** How a dirty page is turned into differential WAL frames. */
enum class DiffGranularity
{
    /**
     * One frame per page covering the bounding dirty range, i.e.
     * "truncate the preceding and trailing clean regions" -- the
     * paper's formulation (section 3.2). This reproduces the
     * paper's ~4.9 frames per 8 KB block and its Table 2 savings.
     */
    SingleRange,
    /**
     * One frame per disjoint dirty range (an extension beyond the
     * paper): a B-tree insert dirties the header/pointer area and
     * the appended cell but not the clean span between them, so
     * multi-range frames log considerably fewer bytes.
     */
    MultiRange,
};

/** NVWAL scheme knobs. */
struct NvwalConfig
{
    SyncMode syncMode = SyncMode::Lazy;

    /** Byte-granularity differential logging (section 3.2). */
    bool diffLogging = true;

    /** Frame granularity used when diffLogging is on. */
    DiffGranularity diffGranularity = DiffGranularity::SingleRange;

    /**
     * User-level heap management (section 3.3): pre-allocate
     * nvBlockSize-byte NVRAM blocks with the pending/in-use protocol
     * and bump-allocate frames inside them. When false, every frame
     * allocates its own NVRAM block via nvmalloc() (the 'LS'
     * baseline of Figure 7).
     */
    bool userHeap = true;

    /** User-heap block size (8 KB in the paper's experiments). */
    std::uint32_t nvBlockSize = 8192;

    /**
     * Materialized-page LRU cache capacity (page images kept by the
     * read path, keyed by (page, commit seq)). 0 disables the cache
     * and every read replays the diff chain.
     */
    std::uint32_t materializeCacheEntries = 16;

    /**
     * Adaptive logging granularity (DESIGN.md §14), active when
     * diffLogging is on: a page whose logged bytes would exceed this
     * percentage of the page size -- judged by the pager's observed
     * dirty-ratio EWMA (FrameWrite::observedDirtyPct) when provided,
     * else by the commit's own ratio -- ships as ONE full-page frame
     * instead of byte diffs. The frame is format-compatible
     * (pageOffset 0, size == page size) and doubles as a
     * full_frame_shortcut anchor that truncates the page's replay
     * chain. 0 disables the heuristic (always diff).
     */
    std::uint32_t adaptiveFullFrameThresholdPct = 50;

    /**
     * NvHeap namespace the log's header root is published under.
     * Every log sharing one heap needs a distinct name (the sharded
     * engine binds "nvwal-s00", "nvwal-s01", ... -- DESIGN.md §10);
     * the default keeps single-database media layouts unchanged.
     * Must fit NvHeap::kNamespaceNameLen.
     */
    std::string heapNamespace = "nvwal";

    /**
     * Multi-writer per-connection log mode (DESIGN.md §13): commit
     * marks carry a global epoch number in bits [32, 63) instead of
     * leaving them for the db size alone, frames are never indexed
     * for reads, and recover() collects epoch-tagged transactions
     * for the cross-log merge instead of replaying into the page
     * index. Off for the primary log; on for "<ns>-cNN" logs.
     */
    bool epochMarks = false;

    /** Scheme label matching the paper's legend, e.g. "UH+LS+Diff". */
    std::string schemeName() const;
};

} // namespace nvwal

#endif // NVWAL_CORE_NVWAL_CONFIG_HPP
