/**
 * @file
 * ShardedDatabase: N fully independent Database instances behind one
 * facade, with cross-shard atomic transactions via two-phase commit
 * (DESIGN.md §10).
 *
 * Each shard is a complete engine -- its own .db file, NVWAL, group
 * commit queue and (optionally) background checkpointer -- sharing
 * one simulated platform (Env). Per-shard NVWAL header roots are
 * published under distinct NvHeap namespaces ("nvwal-s00", ...), so
 * all logs coexist in the one NVRAM heap and every shard recovers
 * independently.
 *
 * Single-shard transactions run exactly as before on the owning
 * shard. Multi-shard transactions commit with 2PC: a PREPARE record
 * persisted in every participant's log under a shared global
 * transaction id (gtid), then a COMMIT decision record in each.
 * Recovery resolves transactions left in doubt by a crash between
 * the phases by scanning the other shards' logs for a surviving
 * decision record; when none exists anywhere the transaction aborts
 * (presumed abort -- the coordinator cannot have reported it
 * committed, because it only does so after every decision record is
 * durable... and it writes the first decision record only after all
 * PREPAREs are durable).
 */

#ifndef NVWAL_SHARD_SHARDED_DATABASE_HPP
#define NVWAL_SHARD_SHARDED_DATABASE_HPP

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "db/connection.hpp"
#include "db/database.hpp"
#include "shard/partitioner.hpp"

namespace nvwal
{

/** Configuration of a sharded store. */
struct ShardConfig
{
    /**
     * Base name; shard k lives in files "<baseName>-s<k>.db" etc.
     * and NvHeap namespace "nvwal-s<k>".
     */
    std::string baseName = "app";

    std::uint32_t shardCount = 4;

    RoutingKind routing = RoutingKind::Hash;

    /**
     * Per-shard engine configuration. name and nvwal.heapNamespace
     * are derived per shard and must be left at their defaults;
     * walMode must be Nvwal (2PC needs the NVRAM log). shardMember
     * is set automatically.
     */
    DbConfig dbTemplate;
};

/** What open() did about one transaction recovery left in doubt. */
struct InDoubtResolution
{
    std::uint64_t gtid = 0;
    std::uint32_t shard = 0;     //!< the shard that was in doubt
    bool committed = false;      //!< outcome applied
    /** Shard whose decision record settled it; -1 = presumed abort. */
    std::int32_t decidedByShard = -1;
};

class ShardedConnection;

/** The sharded multi-database engine. */
class ShardedDatabase
{
  public:
    /** Ceiling on shardCount (the heap directory has 64 root slots,
     *  and one is left for a standalone "nvwal" namespace). */
    static constexpr std::uint32_t kMaxShards = 32;

    /**
     * Validate @p config, open every shard, resolve in-doubt 2PC
     * transactions across the shard set, and seed the gtid counter
     * past everything the logs have seen.
     */
    static Status open(Env &env, ShardConfig config,
                       std::unique_ptr<ShardedDatabase> *out);

    /**
     * Rebuild the whole shard set from the media image after a power
     * failure (see Database::recoverAfterCrash): resets @p out, drops
     * file-system volatile state, re-attaches the heap, then runs
     * open() -- including cross-shard in-doubt resolution.
     */
    static Status recoverAfterCrash(Env &env, ShardConfig config,
                                    std::unique_ptr<ShardedDatabase> *out);

    /** Descriptive validation (satellite of Database::open's). */
    static Status validateConfig(const ShardConfig &config);

    /** Engine name of shard @p k, e.g. "app-s02.db". */
    static std::string shardDbName(const ShardConfig &config,
                                   std::uint32_t k);

    /** NvHeap namespace shard @p k's NVWAL publishes its header
     *  under, e.g. "nvwal-s02" (the media-inspection tools use this
     *  to walk one shard's log). */
    static std::string shardHeapNamespace(std::uint32_t k);

    ~ShardedDatabase() = default;
    ShardedDatabase(const ShardedDatabase &) = delete;
    ShardedDatabase &operator=(const ShardedDatabase &) = delete;

    /** One routed connection over all shards. */
    Status connect(std::unique_ptr<ShardedConnection> *out);

    // ---- routing ----------------------------------------------------

    std::uint32_t shardCount() const { return _config.shardCount; }

    std::uint32_t
    shardOf(RowId key) const
    {
        return routeKey(_config.routing, key, _config.shardCount);
    }

    Database &shard(std::uint32_t k) { return *_shards[k]; }

    /** Next global transaction id (monotonic across reopen). */
    std::uint64_t nextGtid()
    { return _nextGtid.fetch_add(1, std::memory_order_relaxed); }

    /** What open() decided about recovered in-doubt transactions. */
    const std::vector<InDoubtResolution> &resolutions() const
    { return _resolutions; }

    // ---- crash forensics (DESIGN.md §12) ----------------------------

    /** Shard @p k's post-mortem (see Database::recoveryReport()). */
    const RecoveryReport &shardRecoveryReport(std::uint32_t k) const
    { return _shards[k]->recoveryReport(); }

    /**
     * Merged cross-shard 2PC timeline keyed by gtid, built from every
     * shard's surviving flight-recorder ring: which shards' PREPAREs
     * and which decisions survived the crash. Empty when the
     * recorders are off.
     */
    std::vector<GtidTimeline> forensicsTimeline() const;

    // ---- maintenance ------------------------------------------------

    /** Checkpoint every shard (write-back + log truncation). */
    Status checkpointAll();

    /** Structural validation of every shard. */
    Status verifyIntegrity();

    const ShardConfig &config() const { return _config; }

  private:
    explicit ShardedDatabase(Env &env, ShardConfig config);

    /** Cross-shard in-doubt resolution (presumed abort). */
    Status resolveInDoubt();

    Env &_env;
    ShardConfig _config;
    std::vector<std::unique_ptr<Database>> _shards;
    std::atomic<std::uint64_t> _nextGtid{1};
    std::vector<InDoubtResolution> _resolutions;
};

} // namespace nvwal

#endif // NVWAL_SHARD_SHARDED_DATABASE_HPP
