/**
 * @file
 * Key partitioners for the sharded engine (DESIGN.md §10).
 *
 * A partitioner is a pure function (key, shard count) -> shard
 * index: no state, no media, no randomness. That purity is what
 * makes reopen rebalance-free -- the same key maps to the same shard
 * across close/recover/crash because there is nothing to drift.
 */

#ifndef NVWAL_SHARD_PARTITIONER_HPP
#define NVWAL_SHARD_PARTITIONER_HPP

#include <cstdint>

#include "common/types.hpp"

namespace nvwal
{

/** How keys are distributed across shards. */
enum class RoutingKind
{
    /**
     * splitmix64 of the key, modulo the shard count. Spreads any key
     * pattern (sequential rowids included) uniformly.
     */
    Hash,
    /**
     * The signed key domain split into shardCount equal-width
     * contiguous ranges. Preserves key locality per shard, so range
     * scans touch few shards; skewed inserts pay for it.
     */
    Range,
};

/**
 * Shard index of @p key under @p kind with @p shard_count shards.
 * @p shard_count must be >= 1.
 */
std::uint32_t routeKey(RoutingKind kind, RowId key,
                       std::uint32_t shard_count);

} // namespace nvwal

#endif // NVWAL_SHARD_PARTITIONER_HPP
