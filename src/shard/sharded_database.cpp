#include "sharded_database.hpp"

#include <algorithm>
#include <cstdio>

#include "shard/sharded_connection.hpp"

namespace nvwal
{

namespace
{

std::string
shardSuffix(std::uint32_t k)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "-s%02u", k);
    return std::string(buf);
}

} // namespace

ShardedDatabase::ShardedDatabase(Env &env, ShardConfig config)
    : _env(env), _config(std::move(config))
{}

std::string
ShardedDatabase::shardDbName(const ShardConfig &config, std::uint32_t k)
{
    return config.baseName + shardSuffix(k) + ".db";
}

std::string
ShardedDatabase::shardHeapNamespace(std::uint32_t k)
{
    return "nvwal" + shardSuffix(k);
}

Status
ShardedDatabase::validateConfig(const ShardConfig &config)
{
    if (config.baseName.empty())
        return Status::invalidArgument(
            "shard base name must not be empty");
    if (config.shardCount < 1 || config.shardCount > kMaxShards)
        return Status::invalidArgument(
            "shard count must be in [1, " +
            std::to_string(kMaxShards) +
            "]: " + std::to_string(config.shardCount));
    if (config.dbTemplate.walMode != WalMode::Nvwal)
        return Status::invalidArgument(
            "sharded stores require WalMode::Nvwal (2PC records live "
            "in the NVRAM log)");
    if (config.dbTemplate.name != DbConfig().name)
        return Status::invalidArgument(
            "dbTemplate.name is derived per shard; leave it default");
    if (config.dbTemplate.nvwal.heapNamespace !=
        NvwalConfig().heapNamespace)
        return Status::invalidArgument(
            "dbTemplate heap namespace is derived per shard; leave it "
            "default");
    // Validate one fully derived member config so page-size or
    // checkpoint mistakes surface here, not mid-open of shard 0.
    DbConfig probe = config.dbTemplate;
    probe.name = shardDbName(config, 0);
    probe.nvwal.heapNamespace = shardHeapNamespace(0);
    probe.shardMember = true;
    return validateDbConfig(probe);
}

Status
ShardedDatabase::open(Env &env, ShardConfig config,
                      std::unique_ptr<ShardedDatabase> *out)
{
    NVWAL_RETURN_IF_ERROR(validateConfig(config));
    std::unique_ptr<ShardedDatabase> db(
        new ShardedDatabase(env, std::move(config)));

    for (std::uint32_t k = 0; k < db->_config.shardCount; ++k) {
        DbConfig member = db->_config.dbTemplate;
        member.name = shardDbName(db->_config, k);
        member.nvwal.heapNamespace = shardHeapNamespace(k);
        member.shardMember = true;
        member.frShard = k;
        std::unique_ptr<Database> shard;
        NVWAL_RETURN_IF_ERROR(Database::open(env, member, &shard));
        db->_shards.push_back(std::move(shard));
    }

    NVWAL_RETURN_IF_ERROR(db->resolveInDoubt());

    // Gtids must never repeat across reopen: any gtid a surviving
    // PREPARE or DECISION record carries is burned.
    std::uint64_t max_seen = 0;
    for (auto &shard : db->_shards)
        max_seen = std::max(max_seen, shard->walMaxSeenGtid());
    db->_nextGtid.store(max_seen + 1, std::memory_order_relaxed);

    env.stats.setGauge(stats::kGaugeShardCount, db->_config.shardCount);
    *out = std::move(db);
    return Status::ok();
}

Status
ShardedDatabase::recoverAfterCrash(Env &env, ShardConfig config,
                                   std::unique_ptr<ShardedDatabase> *out)
{
    out->reset();
    env.fs.crash();
    NVWAL_RETURN_IF_ERROR(env.heap.attach());
    return open(env, std::move(config), out);
}

Status
ShardedDatabase::resolveInDoubt()
{
    // A shard is in doubt about gtid G when its PREPARE survived but
    // no local decision did. The coordinator persisted the decision
    // in every participant in turn while holding truncation guards,
    // so if ANY shard has a decision record for G, that is the
    // outcome; otherwise the coordinator cannot have committed
    // anywhere and presumed abort is safe.
    for (std::uint32_t k = 0; k < _config.shardCount; ++k) {
        for (std::uint64_t gtid : _shards[k]->inDoubtTransactions()) {
            InDoubtResolution res;
            res.gtid = gtid;
            res.shard = k;
            for (std::uint32_t other = 0; other < _config.shardCount;
                 ++other) {
                if (other == k)
                    continue;
                bool commit = false;
                if (_shards[other]->lookupDecision(gtid, &commit)) {
                    res.committed = commit;
                    res.decidedByShard = static_cast<std::int32_t>(other);
                    break;
                }
            }
            NVWAL_RETURN_IF_ERROR(
                _shards[k]->resolvePreparedTxn(gtid, res.committed));
            _env.stats.add(res.committed ? stats::kShardIndoubtCommitted
                                         : stats::kShardIndoubtAborted);
            _resolutions.push_back(res);
        }
    }
    return Status::ok();
}

std::vector<GtidTimeline>
ShardedDatabase::forensicsTimeline() const
{
    std::vector<const FlightRecording *> rings;
    for (const auto &shard : _shards) {
        const RecoveryReport &report = shard->recoveryReport();
        if (report.recorderEnabled && report.parsed)
            rings.push_back(&report.recording);
    }
    return buildCrossShardTimeline(rings);
}

Status
ShardedDatabase::connect(std::unique_ptr<ShardedConnection> *out)
{
    std::unique_ptr<ShardedConnection> conn(new ShardedConnection(*this));
    // Single-shard statements on a ShardedConnection run as their own
    // transaction on the owning shard; cross-shard batches open
    // explicit transactions themselves.
    ConnectOptions options;
    options.autoWriteTxn = true;
    for (auto &shard : _shards) {
        std::unique_ptr<Connection> c;
        NVWAL_RETURN_IF_ERROR(shard->connect(options, &c));
        conn->_conns.push_back(std::move(c));
    }
    *out = std::move(conn);
    return Status::ok();
}

Status
ShardedDatabase::checkpointAll()
{
    for (auto &shard : _shards)
        NVWAL_RETURN_IF_ERROR(shard->checkpoint());
    return Status::ok();
}

Status
ShardedDatabase::verifyIntegrity()
{
    for (auto &shard : _shards)
        NVWAL_RETURN_IF_ERROR(shard->verifyIntegrity());
    return Status::ok();
}

} // namespace nvwal
