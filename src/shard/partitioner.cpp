#include "partitioner.hpp"

#include "common/logging.hpp"

namespace nvwal
{

namespace
{

/** splitmix64 finalizer: cheap, well-mixed 64-bit avalanche. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint32_t
routeKey(RoutingKind kind, RowId key, std::uint32_t shard_count)
{
    NVWAL_ASSERT(shard_count >= 1);
    if (shard_count == 1)
        return 0;
    // Bias the key into [0, 2^64) so the arithmetic below is
    // well-defined for the whole signed domain.
    const std::uint64_t u =
        static_cast<std::uint64_t>(key) ^ (1ull << 63);
    switch (kind) {
      case RoutingKind::Hash:
        return static_cast<std::uint32_t>(mix64(u) % shard_count);
      case RoutingKind::Range: {
        // Fixed-width contiguous ranges over the biased domain. The
        // width is rounded up so the last shard absorbs the remainder
        // and every index stays < shard_count.
        const std::uint64_t width =
            ~0ull / shard_count + 1;  // ceil(2^64 / count)
        const std::uint32_t idx =
            static_cast<std::uint32_t>(u / width);
        return idx < shard_count ? idx : shard_count - 1;
      }
    }
    return 0;
}

} // namespace nvwal
