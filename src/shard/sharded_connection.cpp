#include "sharded_connection.hpp"

#include <algorithm>

namespace nvwal
{

ShardedConnection::ShardedConnection(ShardedDatabase &db) : _db(db) {}

// ---- Op constructors ------------------------------------------------

ShardedConnection::Op
ShardedConnection::Op::insert(RowId key, ConstByteSpan value)
{
    Op op;
    op.kind = Kind::Insert;
    op.key = key;
    op.value.assign(value.begin(), value.end());
    return op;
}

ShardedConnection::Op
ShardedConnection::Op::insert(RowId key, const std::string &value)
{
    return insert(key, ConstByteSpan(reinterpret_cast<const std::uint8_t *>(
                                         value.data()),
                                     value.size()));
}

ShardedConnection::Op
ShardedConnection::Op::update(RowId key, ConstByteSpan value)
{
    Op op;
    op.kind = Kind::Update;
    op.key = key;
    op.value.assign(value.begin(), value.end());
    return op;
}

ShardedConnection::Op
ShardedConnection::Op::update(RowId key, const std::string &value)
{
    return update(key, ConstByteSpan(reinterpret_cast<const std::uint8_t *>(
                                         value.data()),
                                     value.size()));
}

ShardedConnection::Op
ShardedConnection::Op::remove(RowId key)
{
    Op op;
    op.kind = Kind::Remove;
    op.key = key;
    return op;
}

// ---- routed single-key statements -----------------------------------

Status
ShardedConnection::insert(RowId key, ConstByteSpan value)
{
    return _conns[_db.shardOf(key)]->insert(key, value);
}

Status
ShardedConnection::insert(RowId key, const std::string &value)
{
    return _conns[_db.shardOf(key)]->insert(key, value);
}

Status
ShardedConnection::update(RowId key, ConstByteSpan value)
{
    return _conns[_db.shardOf(key)]->update(key, value);
}

Status
ShardedConnection::remove(RowId key)
{
    return _conns[_db.shardOf(key)]->remove(key);
}

Status
ShardedConnection::get(RowId key, ByteBuffer *value)
{
    return _conns[_db.shardOf(key)]->get(key, value);
}

Status
ShardedConnection::scan(RowId lo, RowId hi,
                        const BTree::ScanCallback &visit)
{
    // Collect per shard, then emit in global key order. A key lives
    // on exactly one shard, so a plain sort is a correct merge.
    std::vector<std::pair<RowId, ByteBuffer>> rows;
    for (auto &conn : _conns) {
        NVWAL_RETURN_IF_ERROR(
            conn->scan(lo, hi, [&](RowId key, ConstByteSpan value) {
                rows.emplace_back(key,
                                  ByteBuffer(value.begin(), value.end()));
                return true;
            }));
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &row : rows) {
        if (!visit(row.first,
                   ConstByteSpan(row.second.data(), row.second.size())))
            break;
    }
    return Status::ok();
}

Status
ShardedConnection::count(std::uint64_t *out)
{
    *out = 0;
    for (auto &conn : _conns) {
        std::uint64_t one = 0;
        NVWAL_RETURN_IF_ERROR(conn->count(&one));
        *out += one;
    }
    return Status::ok();
}

// ---- atomic multi-key transactions ----------------------------------

Status
ShardedConnection::applyOp(std::uint32_t shard, const Op &op)
{
    Connection &conn = *_conns[shard];
    const ConstByteSpan value(op.value.data(), op.value.size());
    switch (op.kind) {
      case Op::Kind::Insert:
        return conn.insert(op.key, value);
      case Op::Kind::Update:
        return conn.update(op.key, value);
      case Op::Kind::Remove:
        return conn.remove(op.key);
    }
    return Status::invalidArgument("unknown op kind");
}

Status
ShardedConnection::runAtomic(const std::vector<Op> &ops)
{
    if (ops.empty())
        return Status::ok();

    std::vector<std::vector<const Op *>> by_shard(_db.shardCount());
    for (const Op &op : ops)
        by_shard[_db.shardOf(op.key)].push_back(&op);

    std::vector<std::uint32_t> participants;
    for (std::uint32_t k = 0; k < by_shard.size(); ++k) {
        if (!by_shard[k].empty())
            participants.push_back(k);
    }
    if (participants.size() == 1)
        return runSingleShard(participants[0], by_shard[participants[0]]);
    return runCrossShard(by_shard, participants);
}

Status
ShardedConnection::runSingleShard(std::uint32_t shard,
                                  const std::vector<const Op *> &ops)
{
    Env &env = _db.shard(shard).env();
    const SimTime begin_ns = env.clock.now();
    Connection &conn = *_conns[shard];
    NVWAL_RETURN_IF_ERROR(conn.begin());
    for (const Op *op : ops) {
        const Status s = applyOp(shard, *op);
        if (!s.isOk()) {
            (void)conn.rollback();
            return s;
        }
    }
    NVWAL_RETURN_IF_ERROR(conn.commit());
    env.stats.add(stats::kShardTxnsSingle);
    env.stats.recordNs(stats::shardCommitHistName(shard),
                       env.clock.now() - begin_ns);
    return Status::ok();
}

Status
ShardedConnection::runCrossShard(
    const std::vector<std::vector<const Op *>> &by_shard,
    const std::vector<std::uint32_t> &participants)
{
    Env &env = _db.shard(participants[0]).env();
    const SimTime begin_ns = env.clock.now();
    const std::uint64_t gtid = _db.nextGtid();

    // Truncation guards on every participant before the first
    // PREPARE: an in-doubt shard resolves by reading the others'
    // decision records, so none may be checkpointed away until all
    // decisions are durable. Participants are visited in ascending
    // shard order everywhere below, so concurrent coordinators
    // cannot deadlock on the writer locks either.
    for (std::uint32_t k : participants)
        _db.shard(k).holdWalForTwoPhase();

    std::size_t begun = 0;     // participants with an open txn
    std::size_t prepared = 0;  // ... whose PREPARE is durable
    Status s = Status::ok();

    for (; begun < participants.size(); ++begun) {
        const std::uint32_t k = participants[begun];
        s = _conns[k]->begin();
        if (!s.isOk())
            break;
        for (const Op *op : by_shard[k]) {
            s = applyOp(k, *op);
            if (!s.isOk())
                break;
        }
        if (!s.isOk()) {
            ++begun;  // this shard's txn is open and must be closed
            break;
        }
    }

    if (s.isOk()) {
        for (; prepared < participants.size(); ++prepared) {
            s = _conns[participants[prepared]]->prepare(gtid);
            if (!s.isOk())
                break;
        }
    }

    if (!s.isOk()) {
        // Abort: decide(false) on every prepared shard (discarding
        // its staged record), plain rollback on the rest.
        for (std::size_t i = 0; i < begun; ++i) {
            Connection &conn = *_conns[participants[i]];
            if (!conn.inWrite())
                continue;
            if (i < prepared)
                (void)conn.decide(gtid, false);
            else
                (void)conn.rollback();
        }
        for (std::uint32_t k : participants)
            _db.shard(k).releaseWalTwoPhaseHold();
        env.stats.add(stats::kShardCrossAborts);
        return s;
    }

    // Every PREPARE is durable; the transaction commits. Persist the
    // decision in each participant. A failure here poisons that
    // shard (its durable outcome is unknown) but cannot un-commit
    // the transaction: recovery finds the other decision records.
    Status decide_error = Status::ok();
    for (std::uint32_t k : participants) {
        const Status d = _conns[k]->decide(gtid, true);
        if (!d.isOk() && decide_error.isOk())
            decide_error = d;
    }
    for (std::uint32_t k : participants)
        _db.shard(k).releaseWalTwoPhaseHold();

    env.stats.add(stats::kShardTxnsCross);
    env.stats.recordNs(stats::kHistShardCrossCommitNs,
                       env.clock.now() - begin_ns);
    return decide_error;
}

} // namespace nvwal
