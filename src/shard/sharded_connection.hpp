/**
 * @file
 * ShardedConnection: one client handle over every shard of a
 * ShardedDatabase, presenting the familiar Connection-style surface.
 *
 * Single-key statements route to the owning shard and run there as
 * ordinary (autocommit) operations. Multi-key atomic transactions go
 * through runAtomic(): a single-shard batch commits locally (no
 * coordination cost), while a batch spanning shards commits with
 * two-phase commit under a fresh global transaction id.
 *
 * Thread confinement matches Connection: one ShardedConnection per
 * thread; distinct handles from distinct threads are the intended
 * concurrency model.
 */

#ifndef NVWAL_SHARD_SHARDED_CONNECTION_HPP
#define NVWAL_SHARD_SHARDED_CONNECTION_HPP

#include <memory>
#include <vector>

#include "db/connection.hpp"
#include "shard/sharded_database.hpp"

namespace nvwal
{

/** A routed, 2PC-capable client handle over all shards. */
class ShardedConnection
{
  public:
    /** One mutation inside an atomic multi-key batch. */
    struct Op
    {
        enum class Kind
        {
            Insert,
            Update,
            Remove,
        };
        Kind kind = Kind::Insert;
        RowId key = 0;
        ByteBuffer value;  //!< unused for Remove

        static Op insert(RowId key, ConstByteSpan value);
        static Op insert(RowId key, const std::string &value);
        static Op update(RowId key, ConstByteSpan value);
        static Op update(RowId key, const std::string &value);
        static Op remove(RowId key);
    };

    ~ShardedConnection() = default;
    ShardedConnection(const ShardedConnection &) = delete;
    ShardedConnection &operator=(const ShardedConnection &) = delete;

    // ---- routed single-key statements (autocommit) ------------------

    Status insert(RowId key, ConstByteSpan value);
    Status insert(RowId key, const std::string &value);
    Status update(RowId key, ConstByteSpan value);
    Status remove(RowId key);
    Status get(RowId key, ByteBuffer *value);

    /** Merged scan over all shards, in global key order. */
    Status scan(RowId lo, RowId hi, const BTree::ScanCallback &visit);

    /** Total row count across shards. */
    Status count(std::uint64_t *out);

    // ---- atomic multi-key transactions ------------------------------

    /**
     * Apply @p ops atomically: all visible after success, none after
     * failure or a crash at any point -- including between the 2PC
     * phases, where recovery resolves the outcome from the decision
     * records (presumed abort when none survived). Ops grouped on one
     * shard commit locally; a cross-shard batch runs two-phase.
     */
    Status runAtomic(const std::vector<Op> &ops);

  private:
    friend class ShardedDatabase;
    explicit ShardedConnection(ShardedDatabase &db);

    /** Apply one op on the (already in-txn) owning connection. */
    Status applyOp(std::uint32_t shard, const Op &op);

    Status runSingleShard(std::uint32_t shard,
                          const std::vector<const Op *> &ops);
    Status runCrossShard(
        const std::vector<std::vector<const Op *>> &by_shard,
        const std::vector<std::uint32_t> &participants);

    ShardedDatabase &_db;
    /** One engine connection per shard, index == shard id. */
    std::vector<std::unique_ptr<Connection>> _conns;
};

} // namespace nvwal

#endif // NVWAL_SHARD_SHARDED_CONNECTION_HPP
