#include "crash_sweep.hpp"

#include <algorithm>

#include "db/connection.hpp"

namespace nvwal::faultsim
{
namespace
{

/** table name -> full content; the unit of oracle comparison. */
using TableImage = std::map<RowId, ByteBuffer>;
using DbImage = std::map<std::string, TableImage>;

/**
 * Per-replay state the snapshot ops need: a lazily-opened Connection
 * (destroyed strictly before the Database it points at), the oracle
 * states when available, and which state the open snapshot pinned.
 * The replay's snapshot is a *scripted* reader: it runs on the replay
 * thread so the device-op stream stays deterministic, standing in for
 * the concurrent readers the live engine serves from other threads.
 */
struct ReplaySession
{
    std::unique_ptr<Connection> conn;
    /**
     * Numbered writer connections for the multi-writer ops (lazily
     * opened in first-use order, so slot assignment is deterministic
     * across replays). Destroyed strictly before the Database.
     */
    std::map<int, std::unique_ptr<Connection>> conns;
    /** Oracle states; null during the counting pass (not built yet). */
    const std::vector<DbImage> *oracle = nullptr;
    /** Index of the state the currently open snapshot pinned. */
    std::uint64_t pinnedEvents = 0;

    Status
    writerConn(Database &db, int index, Connection **out)
    {
        std::unique_ptr<Connection> &conn = conns[index];
        if (!conn)
            NVWAL_RETURN_IF_ERROR(db.connect(&conn));
        *out = conn.get();
        return Status::ok();
    }
};

Status
applyOp(Database &db, ReplaySession &session, const WorkloadOp &op,
        std::uint64_t done_events)
{
    const ConstByteSpan value(op.value.data(), op.value.size());
    Table *table = nullptr;
    switch (op.kind) {
      case WorkloadOp::Kind::Begin:
        return db.begin();
      case WorkloadOp::Kind::Commit:
        return db.commit();
      case WorkloadOp::Kind::CommitAsync:
        return db.commit(Durability::Async);
      case WorkloadOp::Kind::FlushAsync:
        return db.flushAsyncCommits();
      case WorkloadOp::Kind::Checkpoint:
        return db.checkpoint();
      case WorkloadOp::Kind::CheckpointStep: {
        bool done = false;
        return db.checkpointStep(0, &done);
      }
      case WorkloadOp::Kind::SnapshotOpen:
        if (!session.conn)
            NVWAL_RETURN_IF_ERROR(db.connect(&session.conn));
        session.pinnedEvents = done_events;
        return session.conn->beginRead();
      case WorkloadOp::Kind::SnapshotVerify: {
        if (!session.conn || !session.conn->inRead())
            return Status::invalidArgument("no snapshot to verify");
        TableImage seen;
        NVWAL_RETURN_IF_ERROR(session.conn->scan(
            INT64_MIN, INT64_MAX, [&](RowId k, ConstByteSpan v) {
                seen[k] = ByteBuffer(v.begin(), v.end());
                return true;
            }));
        if (session.oracle != nullptr) {
            // The snapshot must still read as the state it pinned,
            // no matter how many commits or checkpoint steps have
            // run since SnapshotOpen.
            const DbImage &want = (*session.oracle)[session.pinnedEvents];
            static const TableImage kEmpty;
            const auto it = want.find(Database::kDefaultTable);
            const TableImage &expect =
                it == want.end() ? kEmpty : it->second;
            if (seen != expect)
                return Status::corruption(
                    "snapshot drifted from pinned state S_" +
                    std::to_string(session.pinnedEvents));
        }
        return Status::ok();
      }
      case WorkloadOp::Kind::SnapshotClose:
        if (!session.conn || !session.conn->inRead())
            return Status::invalidArgument("no snapshot to close");
        return session.conn->endRead();
      case WorkloadOp::Kind::CreateTable:
        return db.createTable(op.table);
      case WorkloadOp::Kind::DropTable:
        return db.dropTable(op.table);
      case WorkloadOp::Kind::Insert:
        if (op.table.empty())
            return db.insert(op.key, value);
        NVWAL_RETURN_IF_ERROR(db.openTable(op.table, &table));
        return table->insert(op.key, value);
      case WorkloadOp::Kind::Update:
        if (op.table.empty())
            return db.update(op.key, value);
        NVWAL_RETURN_IF_ERROR(db.openTable(op.table, &table));
        return table->update(op.key, value);
      case WorkloadOp::Kind::Remove:
        if (op.table.empty())
            return db.remove(op.key);
        NVWAL_RETURN_IF_ERROR(db.openTable(op.table, &table));
        return table->remove(op.key);
      case WorkloadOp::Kind::ConnBegin: {
        Connection *conn = nullptr;
        NVWAL_RETURN_IF_ERROR(session.writerConn(db, op.conn, &conn));
        return conn->begin();
      }
      case WorkloadOp::Kind::ConnCommit: {
        Connection *conn = nullptr;
        NVWAL_RETURN_IF_ERROR(session.writerConn(db, op.conn, &conn));
        return conn->commit(CommitOptions{});
      }
      case WorkloadOp::Kind::ConnCommitNoWait: {
        Connection *conn = nullptr;
        NVWAL_RETURN_IF_ERROR(session.writerConn(db, op.conn, &conn));
        CommitOptions options;
        options.durability = Durability::Async;
        options.waitForHarden = false;
        return conn->commit(options);
      }
      case WorkloadOp::Kind::ConnInsert: {
        Connection *conn = nullptr;
        NVWAL_RETURN_IF_ERROR(session.writerConn(db, op.conn, &conn));
        return conn->insert(op.key, value);
      }
      case WorkloadOp::Kind::ConnUpdate: {
        Connection *conn = nullptr;
        NVWAL_RETURN_IF_ERROR(session.writerConn(db, op.conn, &conn));
        return conn->update(op.key, value);
      }
      case WorkloadOp::Kind::ConnRemove: {
        Connection *conn = nullptr;
        NVWAL_RETURN_IF_ERROR(session.writerConn(db, op.conn, &conn));
        return conn->remove(op.key);
      }
      case WorkloadOp::Kind::ConnHardenAll:
        return db.flushAsyncCommits();
    }
    return Status::invalidArgument("unknown workload op");
}

/**
 * Whether executing @p op will complete a commit event (a new
 * durable state the oracle must snapshot): an explicit commit, or
 * any state-changing statement issued outside a transaction
 * (autocommit). Decidable before execution, so the per-point replay
 * knows whether the op the crash interrupted was a committing one.
 */
bool
isCommitEventOp(const Database &db, const WorkloadOp &op)
{
    switch (op.kind) {
      case WorkloadOp::Kind::Commit:
      case WorkloadOp::Kind::CommitAsync:
      case WorkloadOp::Kind::ConnCommit:
      case WorkloadOp::Kind::ConnCommitNoWait:
        return true;
      case WorkloadOp::Kind::Insert:
      case WorkloadOp::Kind::Update:
      case WorkloadOp::Kind::Remove:
      case WorkloadOp::Kind::CreateTable:
      case WorkloadOp::Kind::DropTable:
        return !db.inTransaction();
      case WorkloadOp::Kind::Begin:
      case WorkloadOp::Kind::Checkpoint:
      case WorkloadOp::Kind::CheckpointStep:
      case WorkloadOp::Kind::FlushAsync:
      case WorkloadOp::Kind::SnapshotOpen:
      case WorkloadOp::Kind::SnapshotVerify:
      case WorkloadOp::Kind::SnapshotClose:
      case WorkloadOp::Kind::ConnBegin:
      case WorkloadOp::Kind::ConnInsert:
      case WorkloadOp::Kind::ConnUpdate:
      case WorkloadOp::Kind::ConnRemove:
      case WorkloadOp::Kind::ConnHardenAll:
        return false;
    }
    return false;
}

/** Full logical content of every table (the shadow model state). */
DbImage
dumpAll(Database &db)
{
    DbImage image;
    if (db.config().multiWriter) {
        // DDL is disabled in multi-writer mode, so the default table
        // is the whole database; table handles are unavailable (the
        // shared pager is bypassed) -- read through the statement API.
        TableImage &content = image[Database::kDefaultTable];
        NVWAL_CHECK_OK(db.scan(
            INT64_MIN, INT64_MAX, [&](RowId k, ConstByteSpan v) {
                content[k] = ByteBuffer(v.begin(), v.end());
                return true;
            }));
        return image;
    }
    std::vector<std::string> tables;
    NVWAL_CHECK_OK(db.listTables(&tables));
    for (const std::string &name : tables) {
        Table *table = nullptr;
        NVWAL_CHECK_OK(db.openTable(name, &table));
        TableImage &content = image[name];
        NVWAL_CHECK_OK(table->scan(
            INT64_MIN, INT64_MAX, [&](RowId k, ConstByteSpan v) {
                content[k] = ByteBuffer(v.begin(), v.end());
                return true;
            }));
    }
    return image;
}

/** Distinct adversarial draw sequence per (seed, crash point). */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t point)
{
    return seed + 0x9e3779b97f4a7c15ULL * (point + 1);
}

/**
 * Blocks of the flight-recorder ring under @p wal_namespace: InUse
 * but deliberately not reachable from the log's persistent structure,
 * so the leak invariant must account for them separately.
 */
std::uint64_t
recorderBlocks(const NvHeap &heap, const std::string &wal_namespace)
{
    NvOffset root = kNullNvOffset;
    if (!heap.getRoot(FlightRecorder::namespaceFor(wal_namespace), &root)
             .isOk())
        return 0;
    if (heap.blockStateAt(root) != BlockState::InUse)
        return 0;
    return heap.extentBlocksAt(root);
}

/**
 * Check every post-recovery invariant; returns an empty string when
 * all hold, else the first violation's description.
 *
 * @p done_events commit events completed before the crash fired;
 * @p in_commit_event whether the interrupted op was itself one.
 * @p floor_events the durable floor: the newest commit event whose
 * epoch had hardened before the crash -- a recovered prefix below it
 * breaks the bounded loss window. @p matched_state receives the index
 * of the oracle state the recovered image equals (on success).
 */
std::string
checkInvariants(Env &env, Database &db, const std::vector<DbImage> &states,
                std::uint64_t done_events, bool in_commit_event,
                bool prefix_semantics, std::uint64_t floor_events,
                std::uint64_t *matched_state)
{
    const Status integrity = db.verifyIntegrity();
    if (!integrity.isOk())
        return "integrity check failed: " + integrity.toString();

    const DbImage content = dumpAll(db);
    const std::uint64_t upper = done_events + (in_commit_event ? 1 : 0);
    bool match = false;
    if (prefix_semantics) {
        // Checksum/async commits (section 4.2): a committed prefix is
        // legal; a torn unflushed frame invalidates everything after
        // it. Scan from the newest candidate down so matched_state
        // reports the longest matching prefix.
        std::uint64_t j = upper + 1;
        while (j > 0 && !match) {
            --j;
            match = content == states[j];
        }
        if (!match)
            return "recovered state is not a committed prefix (<= S_" +
                   std::to_string(upper) + ")";
        *matched_state = j;
        if (j < floor_events)
            return "recovered prefix S_" + std::to_string(j) +
                   " is below the durable floor S_" +
                   std::to_string(floor_events) +
                   " (hardened epoch lost: bounded-staleness window "
                   "violated)";
    } else {
        // Strict durability + atomicity: exactly the pre-crash
        // committed state, plus the victim if (and only if) the
        // crash fired inside its committing operation.
        match = content == states[done_events] ||
                (in_commit_event && content == states[upper]);
        if (!match)
            return "recovered state is neither S_" +
                   std::to_string(done_events) +
                   (in_commit_event
                        ? " nor S_" + std::to_string(upper)
                        : std::string()) +
                   " (lost or torn transaction)";
        *matched_state =
            content == states[done_events] ? done_events : upper;
    }

    const std::uint64_t pending = env.heap.countBlocks(BlockState::Pending);
    if (pending != 0)
        return std::to_string(pending) +
               " pending heap block(s) leaked by recovery";

    if (db.config().walMode == WalMode::Nvwal) {
        auto *log = dynamic_cast<NvwalLog *>(&db.wal());
        NVWAL_ASSERT(log != nullptr);
        if (log->nodesSinceCheckpoint() != log->nodeCount())
            return "node accounting skew: nodesSinceCheckpoint=" +
                   std::to_string(log->nodesSinceCheckpoint()) +
                   " nodeCount=" + std::to_string(log->nodeCount());
        const std::uint64_t reachable =
            log->reachableNvramBlocks() +
            db.mwReachableNvramBlocks() +
            recorderBlocks(env.heap, db.config().nvwal.heapNamespace);
        const std::uint64_t in_use =
            env.heap.countBlocks(BlockState::InUse);
        if (reachable != in_use)
            return "NVRAM block leak: " + std::to_string(in_use) +
                   " in use, " + std::to_string(reachable) +
                   " reachable from the log or the flight recorder";
    }
    return std::string();
}

} // namespace

const char *
failurePolicyName(FailurePolicy policy)
{
    switch (policy) {
      case FailurePolicy::Pessimistic: return "pessimistic";
      case FailurePolicy::Adversarial: return "adversarial";
      case FailurePolicy::AllSurvive: return "all-survive";
    }
    return "unknown";
}

std::string
SweepReport::summary() const
{
    std::string out;
    out += "swept " + std::to_string(pointsSwept) + "/" +
           std::to_string(totalOps) + " device ops, " +
           std::to_string(replays) + " replays, " +
           std::to_string(crashes) + " crashes, " +
           std::to_string(violations.size()) + " violations\n";
    if (asyncReplays > 0 || tornFramesDetected > 0) {
        out += "  loss window: " + std::to_string(asyncReplays) +
               " crashes with pending acks, max loss " +
               std::to_string(maxLossEvents) + " event(s), " +
               std::to_string(tornFramesDetected) + " torn frame(s), " +
               std::to_string(framesDiscarded) + " discarded, " +
               std::to_string(lostMarks) + " lost mark(s)\n";
    }
    if (forensicsChecked > 0) {
        out += "  forensics: " + std::to_string(forensicsChecked) +
               " reports checked, " +
               std::to_string(frRecordsSurvived) +
               " ring records survived, " +
               std::to_string(frTornSlotsDiscarded) +
               " torn slot(s) discarded\n";
    }
    for (const auto &[label, cov] : phases) {
        out += "  " + label + ": " + std::to_string(cov.points) +
               " points, " + std::to_string(cov.replays) + " replays, " +
               std::to_string(cov.crashes) + " crashes, " +
               std::to_string(cov.violations) + " violations\n";
    }
    for (const Violation &v : violations) {
        out += "  VIOLATION op " + std::to_string(v.opIndex) + " [" +
               failurePolicyName(v.policy) + " seed " +
               std::to_string(v.seed) + ", " + v.phase + "]: " +
               v.message + "\n";
    }
    return out;
}

Status
CrashSweep::run(SweepReport *report)
{
    *report = SweepReport{};
    const Workload &workload = _config.workload;
    if (workload.empty())
        return Status::invalidArgument("empty sweep workload");

    std::vector<PolicyRun> policies = _config.policies;
    if (policies.empty()) {
        policies.push_back(PolicyRun{FailurePolicy::Pessimistic, {0}, 0.5});
        policies.push_back(
            PolicyRun{FailurePolicy::Adversarial, {1, 2, 3, 4}, 0.5});
    }

    const bool cs_mode =
        _config.db.walMode == WalMode::Nvwal &&
        _config.db.nvwal.syncMode == SyncMode::ChecksumAsync;
    bool has_async = false;
    for (std::size_t i = 0; i < workload.size(); ++i)
        has_async |=
            workload.op(i).kind == WorkloadOp::Kind::CommitAsync ||
            workload.op(i).kind == WorkloadOp::Kind::ConnCommitNoWait;
    // Async commits relax strict durability to prefix semantics, but
    // -- unlike ChecksumAsync, where every commit is probabilistic --
    // with a durable floor: epochs hardened before the crash must
    // survive, so the loss window stays bounded.
    const bool prefix_semantics = cs_mode || has_async;

    // ---- warm-up (runs once; the snapshot replaces re-runs) --------
    Env env(_config.env);
    if (_config.trace)
        env.stats.tracer().setEnabled(true);
    std::unique_ptr<Database> db;
    NVWAL_RETURN_IF_ERROR(Database::open(env, _config.db, &db));
    {
        ReplaySession warm;
        for (std::size_t i = 0; i < _config.warmup.size(); ++i)
            NVWAL_RETURN_IF_ERROR(
                applyOp(*db, warm, _config.warmup.op(i), 0));
    }
    if (_config.checkpointAfterWarmup)
        NVWAL_RETURN_IF_ERROR(db->checkpoint());
    db.reset();
    const Env::MediaSnapshot snap = env.snapshotMedia();

    // ---- pass A: count device ops, map them to workload ops --------
    // spans[i] = (device ops before op i, after op i), relative to
    // the post-open count so recovery's own ops are never swept.
    struct OpSpan
    {
        std::uint64_t before = 0;
        std::uint64_t after = 0;
    };
    std::vector<OpSpan> spans(workload.size());
    env.restoreMedia(snap);
    NVWAL_RETURN_IF_ERROR(Database::open(env, _config.db, &db));
    const std::uint64_t base = env.nvramDevice.opCount();
    {
        ReplaySession count_session;   // no oracle yet: verify scans only
        std::uint64_t count_events = 0;
        for (std::size_t i = 0; i < workload.size(); ++i) {
            spans[i].before = env.nvramDevice.opCount() - base;
            const bool event = isCommitEventOp(*db, workload.op(i));
            NVWAL_RETURN_IF_ERROR(
                applyOp(*db, count_session, workload.op(i), count_events));
            if (event)
                count_events++;
            spans[i].after = env.nvramDevice.opCount() - base;
        }
    }
    const std::uint64_t total_ops = env.nvramDevice.opCount() - base;
    report->totalOps = total_ops;
    db.reset();

    // ---- pass B: oracle states S_0 .. S_K at commit boundaries -----
    // A separate pass because dumping the database perturbs the page
    // cache (and therefore later device-op counts), but never the
    // logical states themselves.
    std::vector<DbImage> states;
    env.restoreMedia(snap);
    NVWAL_RETURN_IF_ERROR(Database::open(env, _config.db, &db));
    states.push_back(dumpAll(*db));   // S_0: the warm state
    {
        ReplaySession oracle_session;
        oracle_session.oracle = &states;   // verify while building
        for (std::size_t i = 0; i < workload.size(); ++i) {
            const bool event = isCommitEventOp(*db, workload.op(i));
            NVWAL_RETURN_IF_ERROR(applyOp(*db, oracle_session,
                                          workload.op(i),
                                          states.size() - 1));
            if (event)
                states.push_back(dumpAll(*db));
        }
    }
    db.reset();
    report->commitEvents = states.size() - 1;

    // ---- pick the crash points -------------------------------------
    std::vector<std::uint64_t> points;
    std::uint64_t first = 1;
    if (_config.stride > 1)
        first = 1 + Rng(_config.sampleSeed).nextBelow(_config.stride);
    for (std::uint64_t n = first; n <= total_ops; n += _config.stride)
        points.push_back(n);
    if (_config.maxPoints > 0 && points.size() > _config.maxPoints) {
        std::vector<std::uint64_t> sampled;
        sampled.reserve(_config.maxPoints);
        for (std::uint64_t j = 0; j < _config.maxPoints; ++j)
            sampled.push_back(
                points[j * points.size() / _config.maxPoints]);
        points.swap(sampled);
    }
    report->pointsSwept = points.size();

    // Phase labels in workload order, plus an index for attribution.
    std::map<std::string, std::size_t> phase_index;
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const std::string &label = workload.phaseOf(i);
        if (phase_index.emplace(label, report->phases.size()).second)
            report->phases.emplace_back(label, PhaseCoverage{});
    }
    const auto phaseAt = [&](std::uint64_t n) -> PhaseCoverage & {
        // The op whose span contains device op n: spans are
        // contiguous and non-decreasing, so the first op with
        // after >= n is it.
        std::size_t lo = 0, hi = workload.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (spans[mid].after >= n)
                hi = mid;
            else
                lo = mid + 1;
        }
        return report->phases[phase_index[workload.phaseOf(lo)]].second;
    };

    // ---- the sweep -------------------------------------------------
    for (const std::uint64_t n : points) {
        PhaseCoverage &cov = phaseAt(n);
        cov.points++;
        for (const PolicyRun &run : policies) {
            for (const std::uint64_t seed : run.seeds) {
                report->replays++;
                cov.replays++;
                const auto violation = [&](std::string message) {
                    report->violations.push_back(
                        Violation{n, run.policy, seed,
                                  workload.phaseOf(0), // patched below
                                  std::move(message)});
                    // Recompute the phase from the crash point.
                    for (std::size_t i = 0; i < workload.size(); ++i) {
                        if (spans[i].before < n && n <= spans[i].after) {
                            report->violations.back().phase =
                                workload.phaseOf(i);
                            break;
                        }
                    }
                    cov.violations++;
                };

                env.restoreMedia(snap);
                env.nvramDevice.reseed(mixSeed(seed, n));
                NVWAL_RETURN_IF_ERROR(
                    Database::open(env, _config.db, &db));
                env.nvramDevice.setScheduledCrashPolicy(
                    run.policy, run.surviveProb);
                env.nvramDevice.scheduleCrashAtOp(n);

                std::uint64_t done_events = 0;
                bool in_commit_event = false;
                bool crashed = false;
                Status replay = Status::ok();
                ReplaySession session;
                session.oracle = &states;
                try {
                    for (std::size_t i = 0; i < workload.size(); ++i) {
                        in_commit_event =
                            isCommitEventOp(*db, workload.op(i));
                        replay = applyOp(*db, session, workload.op(i),
                                         done_events);
                        if (!replay.isOk())
                            break;
                        if (in_commit_event) {
                            done_events++;
                            in_commit_event = false;
                        }
                    }
                } catch (const PowerFailure &) {
                    crashed = true;
                }
                env.nvramDevice.scheduleCrashAtOp(0);
                // The Connections reference the crashed Database;
                // destroy them (their pins, workspaces, and snapshots
                // die with them) before the Database they point at.
                session.conn.reset();
                session.conns.clear();
                if (!crashed && !replay.isOk())
                    return replay;   // workload must be infallible
                if (!crashed) {
                    // Every point is <= total_ops, so the failure
                    // must fire; a silent completion means the
                    // replay diverged from the counting pass.
                    violation("scheduled crash never fired "
                              "(replay diverged)");
                    db.reset();
                    continue;
                }
                report->crashes++;
                cov.crashes++;

                // The durable floor at the instant of the crash: the
                // commit events minus the acks still awaiting their
                // epoch's barrier. Reading it touches only volatile
                // leaf state, never the (dead) media. Under pure
                // ChecksumAsync even "sync" commits are probabilistic,
                // so the floor degenerates to 0 there.
                // Pre-crash oracle for the forensics cross-check:
                // the newest epoch whose barrier had completed. The
                // epoch sequencer is per-incarnation, so this is only
                // comparable when the recovered report's slice is.
                const std::uint64_t hardened_epoch_before =
                    db->hardenedEpoch();
                const std::uint64_t pending_acks = db->asyncAcksPending();
                std::uint64_t floor_events = 0;
                if (!cs_mode)
                    floor_events = done_events > pending_acks
                                       ? done_events - pending_acks
                                       : 0;
                if (pending_acks > 0)
                    report->asyncReplays++;

                const std::uint64_t torn0 =
                    env.stats.get(stats::kWalTornFramesDetected);
                const std::uint64_t disc0 =
                    env.stats.get(stats::kWalRecoveryFramesDiscarded);
                const std::uint64_t lost0 =
                    env.stats.get(stats::kWalRecoveryLostMarks);

                const Status recovered =
                    Database::recoverAfterCrash(env, _config.db, &db);
                if (!recovered.isOk()) {
                    violation("recovery failed: " + recovered.toString());
                    continue;
                }
                report->tornFramesDetected +=
                    env.stats.get(stats::kWalTornFramesDetected) - torn0;
                report->framesDiscarded +=
                    env.stats.get(stats::kWalRecoveryFramesDiscarded) -
                    disc0;
                report->lostMarks +=
                    env.stats.get(stats::kWalRecoveryLostMarks) - lost0;

                // Forensics: at EVERY crash point the post-mortem must
                // be parseable and consistent with the recovered WAL
                // and the pre-crash shadow state. Durable-claim
                // cross-checks live in buildRecoveryReport (any entry
                // in inconsistencies is a recovery bug); the epoch
                // ceiling is checked against the pre-crash oracle.
                const RecoveryReport &forensics = db->recoveryReport();
                if (forensics.recorderEnabled) {
                    report->forensicsChecked++;
                    report->frRecordsSurvived +=
                        forensics.recording.validRecords;
                    report->frTornSlotsDiscarded +=
                        forensics.recording.tornSlots;
                    if (!forensics.parsed) {
                        violation("forensics: surviving ring failed "
                                  "to parse");
                    } else {
                        for (const std::string &msg :
                             forensics.inconsistencies)
                            violation("forensics inconsistency: " + msg);
                        if (forensics.incarnationKnown &&
                            forensics.lastDurableEpoch >
                                hardened_epoch_before)
                            violation(
                                "forensics: last durable epoch " +
                                std::to_string(
                                    forensics.lastDurableEpoch) +
                                " exceeds the pre-crash hardened "
                                "epoch " +
                                std::to_string(hardened_epoch_before));
                    }
                }

                std::uint64_t matched_state = done_events;
                std::string message = checkInvariants(
                    env, *db, states, done_events, in_commit_event,
                    prefix_semantics, floor_events, &matched_state);
                if (message.empty() && matched_state < done_events)
                    report->maxLossEvents =
                        std::max(report->maxLossEvents,
                                 done_events - matched_state);
                if (message.empty() &&
                    _config.probeInsertAfterRecovery) {
                    const Status probe = db->insert(
                        static_cast<RowId>(0x4000000000000000LL +
                                           static_cast<RowId>(n)),
                        "post-crash probe");
                    if (!probe.isOk())
                        message = "recovered database rejected a new "
                                  "write: " + probe.toString();
                }
                if (!message.empty())
                    violation(std::move(message));
                db.reset();
            }
        }
    }
    return Status::ok();
}

} // namespace nvwal::faultsim
