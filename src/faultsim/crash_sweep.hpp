/**
 * @file
 * Exhaustive crash-point sweep harness (section 4.3 methodology,
 * industrialized).
 *
 * The harness runs a scripted workload once to count every
 * persistence-relevant NVRAM device operation it issues, then for
 * each operation index N replays the workload from a media snapshot
 * with a power failure injected at N -- under the pessimistic policy
 * and, with multiple RNG seeds, under the adversarial policy --
 * recovers a database on the surviving image and checks the recovery
 * invariants:
 *
 *  - durability: every transaction that committed before the crash
 *    is fully visible (Eager/Lazy), or the recovered state is some
 *    committed prefix (ChecksumAsync, section 4.2);
 *  - atomicity: no transaction is ever partially visible; the
 *    in-flight victim may appear only if the crash fired inside its
 *    committing operation;
 *  - structural integrity: the B-tree validates;
 *  - no NVRAM leaks: the heap holds no pending blocks and its in-use
 *    block count equals exactly the blocks reachable from the log's
 *    persistent structure;
 *  - liveness: the recovered database accepts a new write.
 *
 * The warm-up runs once; Env::snapshotMedia() captures the complete
 * media image (durable NVRAM + volatile cache/queue + flash + file
 * system) so every injection point restores in O(image) instead of
 * re-running the warm-up.
 */

#ifndef NVWAL_FAULTSIM_CRASH_SWEEP_HPP
#define NVWAL_FAULTSIM_CRASH_SWEEP_HPP

#include <map>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "faultsim/workload.hpp"

namespace nvwal::faultsim
{

/** One survival policy plus the RNG seeds to replay it under. */
struct PolicyRun
{
    FailurePolicy policy = FailurePolicy::Pessimistic;
    /**
     * Seeds for the adversarial draws, one full replay per seed (the
     * pessimistic policy is deterministic, one seed suffices). Each
     * seed is mixed with the crash-point index so distinct points
     * see distinct draw sequences.
     */
    std::vector<std::uint64_t> seeds{0};
    double surviveProb = 0.5;
};

/** What to sweep and how densely. */
struct SweepConfig
{
    EnvConfig env;
    DbConfig db;
    /** Run once before the media snapshot; never crash-injected. */
    Workload warmup;
    /** The swept workload; crash points cover all its device ops. */
    Workload workload;
    /**
     * Policies to inject under. Empty selects the default matrix:
     * Pessimistic (one seed) plus Adversarial with four seeds.
     */
    std::vector<PolicyRun> policies;
    /**
     * Checkpoint at the end of the warm-up so the warm state is
     * durable in the .db file. Required for ChecksumAsync configs:
     * without it, losing unflushed warm-up frames would be a legal
     * outcome the oracle (which starts at the warm state) cannot
     * express.
     */
    bool checkpointAfterWarmup = true;
    /** 1 = exhaustive; > 1 sweeps every stride-th op index. */
    std::uint64_t stride = 1;
    /** Cap on distinct crash points (0 = unlimited). */
    std::uint64_t maxPoints = 0;
    /** Seed for the deterministic strided-offset / subsample pick. */
    std::uint64_t sampleSeed = 1;
    /** Insert a probe row after each recovery (liveness check). */
    bool probeInsertAfterRecovery = true;
    /**
     * Enable the transaction-phase tracer for the whole sweep. The
     * tracer is pure observation -- obs_test sweeps with it on and
     * off and proves identical recovery outcomes -- but it is off by
     * default to keep exhaustive sweeps fast.
     */
    bool trace = false;
};

/** One invariant violation found by the sweep. */
struct Violation
{
    std::uint64_t opIndex = 0;   //!< crash point (1-based device op)
    FailurePolicy policy = FailurePolicy::Pessimistic;
    std::uint64_t seed = 0;
    std::string phase;
    std::string message;
};

/** Sweep statistics for one workload phase label. */
struct PhaseCoverage
{
    std::uint64_t points = 0;    //!< distinct crash points attributed
    std::uint64_t replays = 0;   //!< points x policies x seeds
    std::uint64_t crashes = 0;   //!< replays where the failure fired
    std::uint64_t violations = 0;
};

/** Outcome of CrashSweep::run(). */
struct SweepReport
{
    std::uint64_t totalOps = 0;      //!< device ops the workload issues
    std::uint64_t commitEvents = 0;  //!< commit boundaries (oracle states)
    std::uint64_t pointsSwept = 0;
    std::uint64_t replays = 0;
    std::uint64_t crashes = 0;
    // ---- loss-window audit (async / checksum commits) ---------------
    /** Replays that crashed with acknowledged-but-unhardened commits. */
    std::uint64_t asyncReplays = 0;
    /** Torn frames recovery classified, summed over all replays. */
    std::uint64_t tornFramesDetected = 0;
    /** Frames recovery discarded past the valid prefix, summed. */
    std::uint64_t framesDiscarded = 0;
    /** Commit marks among the discarded frames, summed. */
    std::uint64_t lostMarks = 0;
    /** Worst observed loss: max commit events below done_events that
     *  a recovered prefix rolled back (always within the window). */
    std::uint64_t maxLossEvents = 0;
    // ---- flight-recorder forensics audit ----------------------------
    /** Replays whose recovery produced a recorder-backed report. */
    std::uint64_t forensicsChecked = 0;
    /** Checksum-valid ring records surviving, summed over replays. */
    std::uint64_t frRecordsSurvived = 0;
    /** Torn ring slots discarded by checksum, summed over replays. */
    std::uint64_t frTornSlotsDiscarded = 0;
    std::vector<Violation> violations;
    /** Keyed by workload phase label, in workload order. */
    std::vector<std::pair<std::string, PhaseCoverage>> phases;

    bool ok() const { return violations.empty(); }

    /** Multi-line human-readable summary (one line per phase). */
    std::string summary() const;
};

/** Human-readable policy name ("pessimistic"/"adversarial"/...). */
const char *failurePolicyName(FailurePolicy policy);

/** The sweep driver. See the file comment for the methodology. */
class CrashSweep
{
  public:
    explicit CrashSweep(SweepConfig config) : _config(std::move(config)) {}

    /**
     * Run the sweep. Returns non-OK only for harness-level failures
     * (the workload itself failed, recovery returned an error for a
     * reason recorded as a violation is NOT one of them); invariant
     * violations are reported through @p report.
     */
    Status run(SweepReport *report);

  private:
    SweepConfig _config;
};

} // namespace nvwal::faultsim

#endif // NVWAL_FAULTSIM_CRASH_SWEEP_HPP
