/**
 * @file
 * Scripted database workloads for the crash-sweep harness.
 *
 * A Workload is a flat list of database operations (begin / commit /
 * record ops / table ops / checkpoint / incremental checkpoint steps /
 * snapshot reads over a Connection) the harness can replay
 * deterministically any number of times: once to count the NVRAM
 * persistence operations it issues, once to build the oracle states
 * at every commit boundary, and then once per injected crash point.
 *
 * Every operation carries a phase label (set by phase()), which the
 * sweep report uses to attribute crash points, e.g. "txn 3" or
 * "drop table". Labels are free-form and purely diagnostic.
 */

#ifndef NVWAL_FAULTSIM_WORKLOAD_HPP
#define NVWAL_FAULTSIM_WORKLOAD_HPP

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace nvwal::faultsim
{

/** One scripted database operation. */
struct WorkloadOp
{
    enum class Kind
    {
        Begin,
        Commit,
        Insert,
        Update,
        Remove,
        CreateTable,
        DropTable,
        Checkpoint,
        /** One incremental checkpointStep() (a checkpointer slice). */
        CheckpointStep,
        /** Open a read snapshot on the harness connection. */
        SnapshotOpen,
        /** Re-scan the snapshot; must still equal the pinned state. */
        SnapshotVerify,
        /** Close the snapshot and release its pin. */
        SnapshotClose,
        /** Commit with Durability::Async (ack before the barrier). */
        CommitAsync,
        /** Database::flushAsyncCommits(): harden every pending epoch. */
        FlushAsync,
        // ---- multi-writer ops (DbConfig::multiWriter sweeps) --------
        // Each addresses one of several numbered connections, so a
        // single replay thread drives interleaved transactions across
        // distinct per-connection NVRAM logs deterministically.
        /** Connection::begin() on connection @c conn. */
        ConnBegin,
        /** Connection::commit() (Group, waits for the harden). */
        ConnCommit,
        /** commit({Async, waitForHarden=false}): published, not yet
         *  hardened -- opens the cross-log loss window. */
        ConnCommitNoWait,
        /** Insert on connection @c conn's open transaction. */
        ConnInsert,
        /** Update on connection @c conn's open transaction. */
        ConnUpdate,
        /** Remove on connection @c conn's open transaction. */
        ConnRemove,
        /** flushAsyncCommits(): one barrier hardens every log. */
        ConnHardenAll,
    };

    Kind kind = Kind::Begin;
    std::string table;      //!< empty = the default table
    RowId key = 0;
    ByteBuffer value;
    int conn = -1;          //!< connection index (multi-writer ops)
};

/** Builder + container for a replayable operation script. */
class Workload
{
  public:
    /** Label subsequent operations; returns *this for chaining. */
    Workload &
    phase(std::string label)
    {
        _currentPhase = std::move(label);
        return *this;
    }

    Workload &begin() { return push(make(WorkloadOp::Kind::Begin)); }
    Workload &commit() { return push(make(WorkloadOp::Kind::Commit)); }

    Workload &
    commitAsync()
    {
        return push(make(WorkloadOp::Kind::CommitAsync));
    }

    Workload &
    flushAsync()
    {
        return push(make(WorkloadOp::Kind::FlushAsync));
    }

    Workload &
    checkpoint()
    {
        return push(make(WorkloadOp::Kind::Checkpoint));
    }

    Workload &
    checkpointStep()
    {
        return push(make(WorkloadOp::Kind::CheckpointStep));
    }

    Workload &
    snapshotOpen()
    {
        return push(make(WorkloadOp::Kind::SnapshotOpen));
    }

    Workload &
    snapshotVerify()
    {
        return push(make(WorkloadOp::Kind::SnapshotVerify));
    }

    Workload &
    snapshotClose()
    {
        return push(make(WorkloadOp::Kind::SnapshotClose));
    }

    Workload &
    insert(RowId key, ByteBuffer value, std::string table = "")
    {
        return push(make(WorkloadOp::Kind::Insert, std::move(table), key,
                         std::move(value)));
    }

    Workload &
    update(RowId key, ByteBuffer value, std::string table = "")
    {
        return push(make(WorkloadOp::Kind::Update, std::move(table), key,
                         std::move(value)));
    }

    Workload &
    remove(RowId key, std::string table = "")
    {
        return push(make(WorkloadOp::Kind::Remove, std::move(table), key));
    }

    Workload &
    connBegin(int conn)
    {
        return push(makeConn(WorkloadOp::Kind::ConnBegin, conn));
    }

    Workload &
    connCommit(int conn)
    {
        return push(makeConn(WorkloadOp::Kind::ConnCommit, conn));
    }

    Workload &
    connCommitNoWait(int conn)
    {
        return push(makeConn(WorkloadOp::Kind::ConnCommitNoWait, conn));
    }

    Workload &
    connInsert(int conn, RowId key, ByteBuffer value)
    {
        return push(makeConn(WorkloadOp::Kind::ConnInsert, conn, key,
                             std::move(value)));
    }

    Workload &
    connUpdate(int conn, RowId key, ByteBuffer value)
    {
        return push(makeConn(WorkloadOp::Kind::ConnUpdate, conn, key,
                             std::move(value)));
    }

    Workload &
    connRemove(int conn, RowId key)
    {
        return push(makeConn(WorkloadOp::Kind::ConnRemove, conn, key));
    }

    Workload &
    connHardenAll()
    {
        return push(make(WorkloadOp::Kind::ConnHardenAll));
    }

    Workload &
    createTable(std::string name)
    {
        return push(make(WorkloadOp::Kind::CreateTable, std::move(name)));
    }

    Workload &
    dropTable(std::string name)
    {
        return push(make(WorkloadOp::Kind::DropTable, std::move(name)));
    }

    // ---- factories -------------------------------------------------

    /** Deterministic pseudo-random payload (same recipe as tests). */
    static ByteBuffer
    valueFor(std::size_t size, std::uint64_t tag)
    {
        Rng rng(tag);
        ByteBuffer out(size);
        for (auto &b : out)
            b = static_cast<std::uint8_t>(rng.next());
        return out;
    }

    /**
     * The canonical crash-test workload: @p txns explicit
     * transactions of 3 inserts plus (from the second one on) one
     * update of an earlier key, numbered from @p first_txn so a
     * warm-up and a sweep workload can share the key space without
     * colliding. One phase label per transaction.
     */
    static Workload
    standardTxns(int first_txn, int txns, std::size_t value_bytes = 80)
    {
        Workload w;
        for (int txn = first_txn; txn < first_txn + txns; ++txn) {
            w.phase("txn " + std::to_string(txn));
            w.begin();
            for (int i = 0; i < 3; ++i) {
                const RowId key = txn * 10 + i;
                w.insert(key, valueFor(value_bytes,
                                       static_cast<std::uint64_t>(txn) *
                                               1000 +
                                           static_cast<std::uint64_t>(key)));
            }
            if (txn > first_txn) {
                const RowId prev = (txn - 1) * 10;
                w.update(prev,
                         valueFor(value_bytes,
                                  static_cast<std::uint64_t>(txn) * 1000 +
                                      static_cast<std::uint64_t>(prev)));
            }
            w.commit();
        }
        return w;
    }

    /**
     * The async-commit variant of standardTxns(): identical
     * transactions committed with Durability::Async, plus an explicit
     * flushAsyncCommits() after every @p flush_every transactions
     * (0 = never; the configured staleness window still bounds the
     * un-hardened backlog).
     */
    static Workload
    asyncTxns(int first_txn, int txns, int flush_every = 0,
              std::size_t value_bytes = 80)
    {
        Workload w;
        for (int txn = first_txn; txn < first_txn + txns; ++txn) {
            w.phase("txn " + std::to_string(txn));
            w.begin();
            for (int i = 0; i < 3; ++i) {
                const RowId key = txn * 10 + i;
                w.insert(key, valueFor(value_bytes,
                                       static_cast<std::uint64_t>(txn) *
                                               1000 +
                                           static_cast<std::uint64_t>(key)));
            }
            if (txn > first_txn) {
                const RowId prev = (txn - 1) * 10;
                w.update(prev,
                         valueFor(value_bytes,
                                  static_cast<std::uint64_t>(txn) * 1000 +
                                      static_cast<std::uint64_t>(prev)));
            }
            w.commitAsync();
            if (flush_every > 0 &&
                (txn - first_txn + 1) % flush_every == 0)
                w.flushAsync();
        }
        return w;
    }

    /**
     * The canonical multi-writer crash workload: @p writers
     * connections committing round-robin, each transaction two
     * inserts plus (after the first) an update of the key the
     * *previous* connection wrote -- a cross-log same-page chain the
     * epoch merge must order correctly at recovery. Transactions are
     * serial (no two open at once) so optimistic validation never
     * aborts during replay; alternating connections still spread the
     * epochs across all the per-connection logs. Even-indexed
     * transactions commit without waiting for the harden, leaving
     * published-but-unhardened epochs across several logs at once
     * (the cross-log loss window); odd ones group-harden everything
     * published; a final connHardenAll() per round drains the rest.
     */
    static Workload
    multiWriterTxns(int writers, int rounds, std::size_t value_bytes = 64)
    {
        Workload w;
        int txn = 0;
        RowId prev_key = 0;
        bool has_prev = false;
        for (int r = 0; r < rounds; ++r) {
            for (int c = 0; c < writers; ++c, ++txn) {
                w.phase("mw txn " + std::to_string(txn) + " conn " +
                        std::to_string(c));
                const RowId key = 9000 + txn * 10;
                w.connBegin(c);
                w.connInsert(c, key,
                             valueFor(value_bytes,
                                      static_cast<std::uint64_t>(key) * 7 +
                                          1));
                w.connInsert(c, key + 1,
                             valueFor(value_bytes,
                                      static_cast<std::uint64_t>(key) * 7 +
                                          2));
                if (has_prev)
                    w.connUpdate(c, prev_key,
                                 valueFor(value_bytes,
                                          static_cast<std::uint64_t>(key) *
                                                  7 +
                                              3));
                if (txn % 2 == 0)
                    w.connCommitNoWait(c);
                else
                    w.connCommit(c);
                prev_key = key;
                has_prev = true;
            }
            w.phase("mw harden " + std::to_string(r));
            w.connHardenAll();
        }
        return w;
    }

    // ---- access ----------------------------------------------------

    std::size_t size() const { return _ops.size(); }
    bool empty() const { return _ops.empty(); }
    const WorkloadOp &op(std::size_t i) const { return _ops[i]; }
    const std::string &phaseOf(std::size_t i) const { return _phases[i]; }

  private:
    static WorkloadOp
    make(WorkloadOp::Kind kind, std::string table = std::string(),
         RowId key = 0, ByteBuffer value = ByteBuffer())
    {
        WorkloadOp op;
        op.kind = kind;
        op.table = std::move(table);
        op.key = key;
        op.value = std::move(value);
        return op;
    }

    static WorkloadOp
    makeConn(WorkloadOp::Kind kind, int conn, RowId key = 0,
             ByteBuffer value = ByteBuffer())
    {
        WorkloadOp op;
        op.kind = kind;
        op.conn = conn;
        op.key = key;
        op.value = std::move(value);
        return op;
    }

    Workload &
    push(WorkloadOp op)
    {
        _ops.push_back(std::move(op));
        _phases.push_back(_currentPhase);
        return *this;
    }

    std::vector<WorkloadOp> _ops;
    std::vector<std::string> _phases;   //!< parallel to _ops
    std::string _currentPhase = "workload";
};

} // namespace nvwal::faultsim

#endif // NVWAL_FAULTSIM_WORKLOAD_HPP
