#include "shard_sweep.hpp"

#include <algorithm>
#include <map>

namespace nvwal::faultsim
{
namespace
{

/** The shadow-model state: the merged logical content of the store. */
using ShadowImage = std::map<RowId, ByteBuffer>;

/** Apply one atomic batch to the shadow model (all-or-nothing by
 *  construction: the map mutates only on scripted, infallible ops). */
void
applyToShadow(ShadowImage *state, const ShardTxnStep &step)
{
    for (const ShardedConnection::Op &op : step.ops) {
        switch (op.kind) {
          case ShardedConnection::Op::Kind::Insert:
          case ShardedConnection::Op::Kind::Update:
            (*state)[op.key] = op.value;
            break;
          case ShardedConnection::Op::Kind::Remove:
            state->erase(op.key);
            break;
        }
    }
}

/** Run one step through the live engine. */
Status
applyStep(ShardedDatabase &db, ShardedConnection &conn,
          const ShardTxnStep &step)
{
    if (step.checkpoint)
        return db.checkpointAll();
    return conn.runAtomic(step.ops);
}

/** Distinct adversarial draw sequence per (seed, crash point). */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t point)
{
    return seed + 0x9e3779b97f4a7c15ULL * (point + 1);
}

/** Heap blocks held by one shard's flight-recorder ring (0 when the
 *  recorder namespace was never bound). The ring is reachable from
 *  its own heap root, not from the log, so the leak check must
 *  account for it separately. */
std::uint64_t
recorderBlocks(const NvHeap &heap, const std::string &wal_namespace)
{
    NvOffset root = kNullNvOffset;
    if (!heap.getRoot(FlightRecorder::namespaceFor(wal_namespace), &root)
             .isOk())
        return 0;
    if (heap.blockStateAt(root) != BlockState::InUse)
        return 0;
    return heap.extentBlocksAt(root);
}

/**
 * Post-recovery invariants over the whole shard set; empty string
 * when all hold, else the first violation's description.
 */
std::string
checkShardInvariants(Env &env, ShardedDatabase &db,
                     const std::vector<ShadowImage> &states,
                     std::uint64_t done_events, bool in_commit_event)
{
    const Status integrity = db.verifyIntegrity();
    if (!integrity.isOk())
        return "integrity check failed: " + integrity.toString();

    // Merge every shard's default table, checking routing while at
    // it: a key on the wrong shard would be unreachable through the
    // router even though a whole-store dump still sees it.
    ShadowImage content;
    for (std::uint32_t k = 0; k < db.shardCount(); ++k) {
        std::string misrouted;
        const Status s = db.shard(k).scan(
            INT64_MIN, INT64_MAX, [&](RowId key, ConstByteSpan value) {
                if (db.shardOf(key) != k) {
                    misrouted = "key " + std::to_string(key) +
                                " found on shard " + std::to_string(k) +
                                ", routed to shard " +
                                std::to_string(db.shardOf(key));
                    return false;
                }
                content[key] = ByteBuffer(value.begin(), value.end());
                return true;
            });
        if (!misrouted.empty())
            return misrouted;
        if (!s.isOk())
            return "shard " + std::to_string(k) +
                   " scan failed: " + s.toString();
    }

    // Cross-shard atomicity + durability: exactly the committed
    // pre-crash state, or -- iff the crash hit the interrupted
    // batch's commit machinery -- the state after it. A 2PC victim
    // applied on a strict subset of its participants matches
    // neither bound and fails here.
    const std::uint64_t upper = done_events + (in_commit_event ? 1 : 0);
    const bool match = content == states[done_events] ||
                       (in_commit_event && content == states[upper]);
    if (!match)
        return "recovered store is neither S_" +
               std::to_string(done_events) +
               (in_commit_event ? " nor S_" + std::to_string(upper)
                                : std::string()) +
               " (lost, torn, or partially applied transaction)";

    const std::uint64_t pending = env.heap.countBlocks(BlockState::Pending);
    if (pending != 0)
        return std::to_string(pending) +
               " pending heap block(s) leaked by recovery";

    // All shards allocate from the one heap: the union of blocks
    // their logs reach must account for every in-use block.
    std::uint64_t reachable = 0;
    for (std::uint32_t k = 0; k < db.shardCount(); ++k) {
        auto *log = dynamic_cast<NvwalLog *>(&db.shard(k).wal());
        NVWAL_ASSERT(log != nullptr);
        if (log->nodesSinceCheckpoint() != log->nodeCount())
            return "shard " + std::to_string(k) +
                   " node accounting skew: nodesSinceCheckpoint=" +
                   std::to_string(log->nodesSinceCheckpoint()) +
                   " nodeCount=" + std::to_string(log->nodeCount());
        reachable += log->reachableNvramBlocks();
        reachable += recorderBlocks(
            env.heap, db.shard(k).config().nvwal.heapNamespace);
    }
    const std::uint64_t in_use = env.heap.countBlocks(BlockState::InUse);
    if (reachable != in_use)
        return "NVRAM block leak: " + std::to_string(in_use) +
               " in use, " + std::to_string(reachable) +
               " reachable from the shard logs or flight recorders";
    return std::string();
}

} // namespace

std::string
ShardSweepReport::summary() const
{
    std::string out;
    out += "swept " + std::to_string(pointsSwept) + "/" +
           std::to_string(totalOps) + " device ops, " +
           std::to_string(replays) + " replays, " +
           std::to_string(crashes) + " crashes, " +
           std::to_string(indoubtResolved) + " in-doubt resolved, " +
           std::to_string(violations.size()) + " violations\n";
    out += "  forensics: " + std::to_string(forensicsChecked) +
           " shard reports checked, " +
           std::to_string(frRecordsSurvived) + " ring records survived, " +
           std::to_string(frTornSlotsDiscarded) +
           " torn slot(s) discarded, " +
           std::to_string(forensicsGtidChecks) +
           " in-doubt outcome(s) cross-checked\n";
    for (const Violation &v : violations) {
        out += "  VIOLATION op " + std::to_string(v.opIndex) + " [" +
               failurePolicyName(v.policy) + " seed " +
               std::to_string(v.seed) + ", " + v.phase + "]: " +
               v.message + "\n";
    }
    return out;
}

Status
ShardCrashSweep::run(ShardSweepReport *report)
{
    *report = ShardSweepReport{};
    const std::vector<ShardTxnStep> &workload = _config.workload;
    if (workload.empty())
        return Status::invalidArgument("empty shard-sweep workload");

    std::vector<PolicyRun> policies = _config.policies;
    if (policies.empty()) {
        policies.push_back(PolicyRun{FailurePolicy::Pessimistic, {0}, 0.5});
        policies.push_back(
            PolicyRun{FailurePolicy::Adversarial, {1, 2, 3, 4}, 0.5});
    }
    if (_config.shard.dbTemplate.nvwal.syncMode ==
        SyncMode::ChecksumAsync) {
        // PREPARE/DECISION records harden eagerly under every sync
        // mode, so cross-shard (2PC) steps keep strict semantics even
        // with checksum commits. Single-shard steps bypass 2PC and
        // commit probabilistically under ChecksumAsync -- an outcome
        // this oracle's strict prefix check cannot express -- so only
        // those are rejected.
        const auto singleShard = [&](const ShardTxnStep &step) {
            if (step.checkpoint || step.ops.empty())
                return false;
            const std::uint32_t first =
                routeKey(_config.shard.routing, step.ops[0].key,
                         _config.shard.shardCount);
            for (const ShardedConnection::Op &op : step.ops)
                if (routeKey(_config.shard.routing, op.key,
                             _config.shard.shardCount) != first)
                    return false;
            return true;
        };
        for (const ShardTxnStep &step : workload)
            if (singleShard(step))
                return Status::invalidArgument(
                    "shard sweep under ChecksumAsync: step \"" +
                    step.label +
                    "\" routes to a single shard and would commit "
                    "probabilistically (no 2PC decision record); the "
                    "strict shard oracle cannot express that loss");
    }

    // ---- warm-up (runs once; the snapshot replaces re-runs) --------
    Env env(_config.env);
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_RETURN_IF_ERROR(ShardedDatabase::open(env, _config.shard, &db));
    {
        std::unique_ptr<ShardedConnection> conn;
        NVWAL_RETURN_IF_ERROR(db->connect(&conn));
        for (const ShardTxnStep &step : _config.warmup)
            NVWAL_RETURN_IF_ERROR(applyStep(*db, *conn, step));
    }
    if (_config.checkpointAfterWarmup)
        NVWAL_RETURN_IF_ERROR(db->checkpointAll());
    db.reset();
    const Env::MediaSnapshot snap = env.snapshotMedia();

    // ---- the oracle: pure shadow states S_0 .. S_K -----------------
    // S_0 is the warm state; every non-checkpoint step commits one
    // event. Computed entirely in plain code -- no database is ever
    // read to build it.
    std::vector<ShadowImage> states;
    {
        ShadowImage state;
        for (const ShardTxnStep &step : _config.warmup)
            applyToShadow(&state, step);
        states.push_back(state);   // S_0
        for (const ShardTxnStep &step : workload) {
            if (step.checkpoint)
                continue;
            applyToShadow(&state, step);
            states.push_back(state);
        }
    }
    report->commitEvents = states.size() - 1;

    // ---- pass A: count device ops, map them to steps ---------------
    struct StepSpan
    {
        std::uint64_t before = 0;
        std::uint64_t after = 0;
    };
    std::vector<StepSpan> spans(workload.size());
    env.restoreMedia(snap);
    NVWAL_RETURN_IF_ERROR(ShardedDatabase::open(env, _config.shard, &db));
    const std::uint64_t base = env.nvramDevice.opCount();
    {
        std::unique_ptr<ShardedConnection> conn;
        NVWAL_RETURN_IF_ERROR(db->connect(&conn));
        for (std::size_t i = 0; i < workload.size(); ++i) {
            spans[i].before = env.nvramDevice.opCount() - base;
            NVWAL_RETURN_IF_ERROR(applyStep(*db, *conn, workload[i]));
            spans[i].after = env.nvramDevice.opCount() - base;
        }
    }
    const std::uint64_t total_ops = env.nvramDevice.opCount() - base;
    report->totalOps = total_ops;
    db.reset();

    // ---- pick the crash points -------------------------------------
    std::vector<std::uint64_t> points;
    std::uint64_t first = 1;
    if (_config.stride > 1)
        first = 1 + Rng(_config.sampleSeed).nextBelow(_config.stride);
    for (std::uint64_t n = first; n <= total_ops; n += _config.stride)
        points.push_back(n);
    if (_config.maxPoints > 0 && points.size() > _config.maxPoints) {
        std::vector<std::uint64_t> sampled;
        sampled.reserve(_config.maxPoints);
        for (std::uint64_t j = 0; j < _config.maxPoints; ++j)
            sampled.push_back(points[j * points.size() / _config.maxPoints]);
        points.swap(sampled);
    }
    report->pointsSwept = points.size();

    const auto labelAt = [&](std::uint64_t n) -> const std::string & {
        std::size_t lo = 0, hi = workload.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (spans[mid].after >= n)
                hi = mid;
            else
                lo = mid + 1;
        }
        return workload[lo].label;
    };

    // ---- the sweep -------------------------------------------------
    for (const std::uint64_t n : points) {
        for (const PolicyRun &run : policies) {
            for (const std::uint64_t seed : run.seeds) {
                report->replays++;
                const auto violation = [&](std::string message) {
                    report->violations.push_back(Violation{
                        n, run.policy, seed, labelAt(n),
                        std::move(message)});
                };

                env.restoreMedia(snap);
                env.nvramDevice.reseed(mixSeed(seed, n));
                NVWAL_RETURN_IF_ERROR(
                    ShardedDatabase::open(env, _config.shard, &db));
                env.nvramDevice.setScheduledCrashPolicy(
                    run.policy, run.surviveProb);
                env.nvramDevice.scheduleCrashAtOp(n);

                std::uint64_t done_events = 0;
                bool in_commit_event = false;
                bool crashed = false;
                Status replay = Status::ok();
                std::unique_ptr<ShardedConnection> conn;
                try {
                    replay = db->connect(&conn);
                    for (std::size_t i = 0;
                         replay.isOk() && i < workload.size(); ++i) {
                        in_commit_event = !workload[i].checkpoint;
                        replay = applyStep(*db, *conn, workload[i]);
                        if (replay.isOk() && in_commit_event) {
                            done_events++;
                            in_commit_event = false;
                        }
                    }
                } catch (const PowerFailure &) {
                    crashed = true;
                }
                env.nvramDevice.scheduleCrashAtOp(0);
                // Connections reference the crashed engines; they
                // must die first.
                conn.reset();
                if (!crashed && !replay.isOk())
                    return replay;   // workload must be infallible
                if (!crashed) {
                    violation("scheduled crash never fired "
                              "(replay diverged)");
                    db.reset();
                    continue;
                }
                report->crashes++;

                // Epoch ceiling per shard, read from the crashed
                // handles BEFORE recovery resets them: no surviving
                // ring record may claim a durable epoch beyond what
                // its shard had actually hardened.
                std::vector<std::uint64_t> hardened_before;
                for (std::uint32_t k = 0; k < db->shardCount(); ++k)
                    hardened_before.push_back(db->shard(k).hardenedEpoch());

                const Status recovered = ShardedDatabase::recoverAfterCrash(
                    env, _config.shard, &db);
                if (!recovered.isOk()) {
                    violation("recovery failed: " + recovered.toString());
                    continue;
                }
                report->indoubtResolved += db->resolutions().size();

                // ---- flight-recorder forensics audit -------------
                // Every swept crash point must yield a parseable,
                // internally consistent post-mortem on every shard.
                for (std::uint32_t k = 0; k < db->shardCount(); ++k) {
                    const RecoveryReport &fr = db->shardRecoveryReport(k);
                    if (!fr.recorderEnabled)
                        continue;
                    report->forensicsChecked++;
                    if (!fr.parsed) {
                        violation("shard " + std::to_string(k) +
                                  " flight-recorder ring failed to "
                                  "parse after crash");
                        continue;
                    }
                    report->frRecordsSurvived += fr.recording.validRecords;
                    report->frTornSlotsDiscarded += fr.recording.tornSlots;
                    for (const std::string &problem : fr.inconsistencies)
                        violation("shard " + std::to_string(k) +
                                  " forensics inconsistency: " + problem);
                    if (fr.incarnationKnown &&
                        fr.lastDurableEpoch > hardened_before[k])
                        violation(
                            "shard " + std::to_string(k) +
                            " forensics claims durable epoch " +
                            std::to_string(fr.lastDurableEpoch) +
                            " but only " +
                            std::to_string(hardened_before[k]) +
                            " was hardened before the crash");
                }
                // Cross-check recovery's in-doubt outcomes against
                // the merged gtid timeline: a surviving commit
                // decision record (a durable claim) forces commit;
                // abort-only decisions forbid it.
                const std::vector<GtidTimeline> timeline =
                    db->forensicsTimeline();
                for (const InDoubtResolution &res : db->resolutions()) {
                    const auto it = std::find_if(
                        timeline.begin(), timeline.end(),
                        [&](const GtidTimeline &t) {
                            return t.gtid == res.gtid;
                        });
                    if (it == timeline.end())
                        continue;
                    report->forensicsGtidChecks++;
                    if (!it->committedShards.empty() && !res.committed)
                        violation(
                            "gtid " + std::to_string(res.gtid) +
                            ": ring shows a durable commit decision "
                            "but recovery aborted it");
                    if (it->committedShards.empty() &&
                        !it->abortedShards.empty() && res.committed)
                        violation(
                            "gtid " + std::to_string(res.gtid) +
                            ": ring shows only abort decisions but "
                            "recovery committed it");
                }

                std::string message = checkShardInvariants(
                    env, *db, states, done_events, in_commit_event);
                if (message.empty() && _config.probeInsertAfterRecovery) {
                    std::unique_ptr<ShardedConnection> probe_conn;
                    Status probe = db->connect(&probe_conn);
                    if (probe.isOk())
                        probe = probe_conn->insert(
                            static_cast<RowId>(0x4000000000000000LL +
                                               static_cast<RowId>(n)),
                            std::string("post-crash probe"));
                    probe_conn.reset();
                    if (!probe.isOk())
                        message = "recovered store rejected a new "
                                  "write: " + probe.toString();
                }
                if (!message.empty())
                    violation(std::move(message));
                db.reset();
            }
        }
    }
    return Status::ok();
}

} // namespace nvwal::faultsim
