/**
 * @file
 * Cross-shard crash-point sweep: the crash_sweep methodology lifted
 * to the sharded engine, with the two-phase commit window as the
 * point of interest.
 *
 * A scripted workload of atomic batches (single-shard and
 * cross-shard) runs once to count every NVRAM device operation; each
 * operation index is then replayed from a media snapshot with a
 * power failure injected there -- which places crash points at every
 * state between "first participant's PREPARE partially written" and
 * "last participant's DECISION durable" -- and recovery across the
 * whole shard set is checked against a pure shadow-model oracle:
 *
 *  - per-shard structural integrity;
 *  - cross-shard atomicity: the merged content of all shards equals
 *    the oracle state before the interrupted batch or (iff the crash
 *    hit its commit machinery) after it -- a transaction applied on
 *    some participants but not others matches neither and fails;
 *  - routing: every surviving key lives on exactly the shard the
 *    partitioner maps it to;
 *  - no NVRAM leaks: zero pending heap blocks, per-shard node
 *    accounting consistent, and the union of blocks reachable from
 *    every shard's log equals the heap's in-use count;
 *  - liveness: the recovered store accepts a routed write.
 *
 * The oracle is a shadow model computed in plain code (a map the
 * batches are applied to), never read back from any database.
 */

#ifndef NVWAL_FAULTSIM_SHARD_SWEEP_HPP
#define NVWAL_FAULTSIM_SHARD_SWEEP_HPP

#include <string>
#include <vector>

#include "faultsim/crash_sweep.hpp"
#include "shard/sharded_connection.hpp"
#include "shard/sharded_database.hpp"

namespace nvwal::faultsim
{

/** One scripted step: an atomic batch or a maintenance action. */
struct ShardTxnStep
{
    /** Label for violation attribution ("single", "cross", ...). */
    std::string label = "txn";
    /** Applied through ShardedConnection::runAtomic(). */
    std::vector<ShardedConnection::Op> ops;
    /** When true, run checkpointAll() instead (no commit event). */
    bool checkpoint = false;

    static ShardTxnStep
    txn(std::string label, std::vector<ShardedConnection::Op> ops)
    {
        ShardTxnStep step;
        step.label = std::move(label);
        step.ops = std::move(ops);
        return step;
    }

    static ShardTxnStep
    checkpointAll()
    {
        ShardTxnStep step;
        step.label = "checkpoint";
        step.checkpoint = true;
        return step;
    }
};

/** What to sweep and how densely (see SweepConfig). */
struct ShardSweepConfig
{
    EnvConfig env;
    ShardConfig shard;
    std::vector<ShardTxnStep> warmup;
    std::vector<ShardTxnStep> workload;
    std::vector<PolicyRun> policies;
    bool checkpointAfterWarmup = true;
    std::uint64_t stride = 1;
    std::uint64_t maxPoints = 0;
    std::uint64_t sampleSeed = 1;
    bool probeInsertAfterRecovery = true;
};

/** Outcome of ShardCrashSweep::run(). */
struct ShardSweepReport
{
    std::uint64_t totalOps = 0;
    std::uint64_t commitEvents = 0;
    std::uint64_t pointsSwept = 0;
    std::uint64_t replays = 0;
    std::uint64_t crashes = 0;
    /** In-doubt transactions recovery had to resolve, summed over
     *  every replay (> 0 proves the sweep exercised the 2PC window). */
    std::uint64_t indoubtResolved = 0;
    // ---- flight-recorder forensics audit ----------------------------
    /** Per-shard forensics reports checked, summed over replays. */
    std::uint64_t forensicsChecked = 0;
    /** Checksum-valid ring records surviving, summed over replays. */
    std::uint64_t frRecordsSurvived = 0;
    /** Torn ring slots discarded by checksum, summed over replays. */
    std::uint64_t frTornSlotsDiscarded = 0;
    /** In-doubt resolutions cross-checked against the merged
     *  gtid-keyed ring timeline, summed over replays. */
    std::uint64_t forensicsGtidChecks = 0;
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
    std::string summary() const;
};

/** The cross-shard sweep driver. */
class ShardCrashSweep
{
  public:
    explicit ShardCrashSweep(ShardSweepConfig config)
        : _config(std::move(config))
    {}

    /** Run the sweep; harness-level failures return non-OK,
     *  invariant violations land in @p report. */
    Status run(ShardSweepReport *report);

  private:
    ShardSweepConfig _config;
};

} // namespace nvwal::faultsim

#endif // NVWAL_FAULTSIM_SHARD_SWEEP_HPP
