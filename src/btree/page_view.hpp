/**
 * @file
 * Slotted B-tree page codec, modelled on SQLite's page format.
 *
 * Layout within the usable area (pageSize - reservedBytes):
 *
 *   0    u8   page type (0 = uninitialized, 1 = leaf, 2 = interior)
 *   1    u8   fragmented bytes (dead bytes too small for freeblocks)
 *   2    u16  cell count
 *   4    u16  cell content start (grows downward from usable end)
 *   6    u16  first freeblock offset (0 = none)
 *   8    u32  right-most child (interior pages only)
 *   12   u16  cell pointer array, one entry per cell, sorted by key
 *   ...  unallocated gap ...
 *   ccs  cell content area (cells + freeblocks), to the usable end
 *
 * Leaf cell:     [key i64][value length u16][value bytes]
 * Interior cell: [key i64][left child u32], meaning: the child
 * subtree holds keys <= key (and > the previous cell's key); keys
 * greater than the last cell's key live under the right-most child.
 *
 * Free space management follows SQLite: freed cells become
 * freeblocks ([next u16][size u16]), kept address-sorted and
 * coalesced; allocation prefers a fitting freeblock, then the gap,
 * and defragments the page only when free space is fragmented.
 * Leftovers under 4 bytes are counted as fragmented bytes.
 *
 * These mechanics produce the dirty-byte profile the paper measures
 * (Table 2): an insert dirties the header, one pointer slot and the
 * newly placed cell; a delete dirties the pointer array and a
 * 4-byte freeblock header at the victim; a same-size update reuses
 * the victim's freeblock, dirtying roughly the record itself.
 *
 * All mutations report the bytes they touch to a DirtyRanges
 * tracker, and every mutation leaves the page byte-exact
 * reconstructible from those ranges.
 */

#ifndef NVWAL_BTREE_PAGE_VIEW_HPP
#define NVWAL_BTREE_PAGE_VIEW_HPP

#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "pager/dirty_ranges.hpp"

namespace nvwal
{

/**
 * Decoded leaf cell (bulk rebuild / split helper). @c payload is the
 * cell's stored payload: the whole value for a local cell, or the
 * local prefix followed by the 4-byte overflow page number for a
 * cell whose value spilled to overflow pages. @c totalLen is the
 * logical value length. Moving cells between pages (splits) copies
 * the payload verbatim, so overflow chains never move.
 */
struct LeafCell
{
    RowId key;
    std::uint32_t totalLen;
    ByteBuffer payload;

    /** Build a local (non-overflow) cell. */
    static LeafCell
    local(RowId key, ConstByteSpan value)
    {
        return LeafCell{key, static_cast<std::uint32_t>(value.size()),
                        ByteBuffer(value.begin(), value.end())};
    }
};

/** Decoded interior cell (bulk rebuild / split helper). */
struct InteriorCell
{
    RowId key;
    PageNo child;
};

/** Mutable view over one B-tree page buffer. */
class PageView
{
  public:
    static constexpr std::uint8_t kTypeNone = 0;
    static constexpr std::uint8_t kTypeLeaf = 1;
    static constexpr std::uint8_t kTypeInterior = 2;

    static constexpr std::uint32_t kHeaderSize = 12;
    static constexpr std::uint32_t kPtrSize = 2;
    static constexpr std::uint32_t kLeafCellOverhead = 10;
    static constexpr std::uint32_t kInteriorCellSize = 12;
    static constexpr std::uint32_t kMinFreeblockSize = 4;

    /**
     * @param page Full page buffer (only [0, usable) is touched).
     * @param usable pageSize - reservedBytes.
     * @param dirty Dirty-range tracker; may be null for read-only
     *        use (e.g. reconstructing pages during recovery).
     */
    PageView(ByteSpan page, std::uint32_t usable, DirtyRanges *dirty);

    // ---- header ---------------------------------------------------

    std::uint8_t type() const { return _data[0]; }
    bool isLeaf() const { return type() == kTypeLeaf; }
    bool isInterior() const { return type() == kTypeInterior; }

    int nCells() const { return loadU16(_data + 2); }
    std::uint32_t cellContentStart() const { return loadU16(_data + 4); }

    /** Format this page as an empty leaf. */
    void initLeaf();

    /** Format this page as an empty interior node. */
    void initInterior(PageNo right_child);

    /**
     * Total reusable bytes: the gap between the pointer array and
     * the content area, plus freeblocks and fragmented bytes (a
     * defragmentation can always consolidate them).
     */
    std::uint32_t freeBytes() const;

    /** The unallocated gap only (no freeblocks); test introspection. */
    std::uint32_t gapBytes() const;

    /** Sum of freeblock sizes; test introspection. */
    std::uint32_t freeblockBytes() const;

    /** Dead fragment bytes; test introspection. */
    std::uint32_t fragmentedBytes() const { return _data[1]; }

    /** Rewrite the page with a compact content area. */
    void defragment();

    // ---- key access ------------------------------------------------

    RowId keyAt(int idx) const;

    /** First index whose key is >= @p key (== nCells() if none). */
    int lowerBound(RowId key) const;

    // ---- leaf operations --------------------------------------------

    /**
     * Largest value stored entirely inside the leaf cell; larger
     * values keep a prefix of this size locally plus a 4-byte
     * overflow page pointer (SQLite-style overflow chains).
     */
    static std::uint32_t
    maxLocalPayload(std::uint32_t usable)
    {
        return usable / 8;
    }

    /** Stored payload bytes for a value of logical length @p len. */
    static std::uint32_t
    payloadSizeFor(std::uint32_t len, std::uint32_t usable)
    {
        return len <= maxLocalPayload(usable)
                   ? len
                   : maxLocalPayload(usable) + 4;
    }

    static std::uint32_t
    leafCellSize(std::size_t payload_len)
    {
        return kLeafCellOverhead + static_cast<std::uint32_t>(payload_len);
    }

    /** Can a leaf cell with @p payload_len stored bytes be inserted? */
    bool leafFits(std::size_t payload_len) const;

    /**
     * Insert a local (non-overflow) cell; value must fit locally.
     * Test/bootstrap convenience over leafInsertCell().
     */
    void leafInsert(int idx, RowId key, ConstByteSpan value);

    /** Insert a pre-encoded cell (possibly overflowing). */
    void leafInsertCell(int idx, const LeafCell &cell);

    void leafRemove(int idx);

    /** Logical value length of the cell (may exceed the payload). */
    std::uint32_t leafTotalLen(int idx) const;

    /** Does the cell's value continue on overflow pages? */
    bool leafHasOverflow(int idx) const;

    /** First overflow page of the cell (leafHasOverflow only). */
    PageNo leafOverflowPage(int idx) const;

    /**
     * The locally stored payload: the full value for local cells,
     * the prefix (without the page pointer) for overflow cells.
     */
    ConstByteSpan leafValueAt(int idx) const;

    /** Decode every leaf cell in key order. */
    std::vector<LeafCell> leafCells() const;

    /** Reformat as a leaf holding exactly @p cells (key order). */
    void rebuildLeaf(const std::vector<LeafCell> &cells);

    // ---- interior operations ----------------------------------------

    bool interiorFits() const;

    void interiorInsert(int idx, RowId key, PageNo child);
    void interiorRemove(int idx);

    /** Child for descent slot @p idx; idx == nCells() is rightmost. */
    PageNo childAt(int idx) const;
    void setChildAt(int idx, PageNo child);

    PageNo rightChild() const { return loadU32(_data + 8); }
    void setRightChild(PageNo child);

    std::vector<InteriorCell> interiorCells() const;
    void rebuildInterior(const std::vector<InteriorCell> &cells,
                         PageNo right_child);

    // ---- checking ---------------------------------------------------

    /** Structural validation of this single page. */
    Status validate() const;

  private:
    std::uint32_t cellOffset(int idx) const;
    std::uint32_t cellSizeAt(int idx) const;
    void setCellOffset(int idx, std::uint32_t off);
    void insertPtr(int idx, std::uint32_t off);
    void removePtr(int idx);
    void setNCells(int n);
    void setCellContentStart(std::uint32_t ccs);
    void dirtyMark(std::uint32_t lo, std::uint32_t hi);

    std::uint32_t firstFreeblock() const { return loadU16(_data + 6); }
    void setFirstFreeblock(std::uint32_t off);
    void setFragmentedBytes(std::uint32_t n);

    /**
     * Carve @p size bytes out of the page (freeblock first, then the
     * gap, then via defragment()) and return the cell offset. The
     * caller must have checked the cell fits.
     */
    std::uint32_t allocateCell(std::uint32_t size);

    /** Return a cell's bytes to the freeblock list (coalescing). */
    void freeCell(std::uint32_t off, std::uint32_t size);
    std::uint32_t ptrArrayEnd() const
    { return kHeaderSize + kPtrSize * static_cast<std::uint32_t>(nCells()); }

    std::uint8_t *_data;
    std::uint32_t _usable;
    DirtyRanges *_dirty;
};

} // namespace nvwal

#endif // NVWAL_BTREE_PAGE_VIEW_HPP
