#include "page_view.hpp"

#include <algorithm>
#include <cstring>

namespace nvwal
{

PageView::PageView(ByteSpan page, std::uint32_t usable, DirtyRanges *dirty)
    : _data(page.data()), _usable(usable), _dirty(dirty)
{
    NVWAL_ASSERT(page.size() >= usable && usable > kHeaderSize + 64,
                 "page too small");
}

void
PageView::dirtyMark(std::uint32_t lo, std::uint32_t hi)
{
    if (_dirty != nullptr)
        _dirty->mark(lo, hi);
}

void
PageView::initLeaf()
{
    std::memset(_data, 0, kHeaderSize);
    _data[0] = kTypeLeaf;
    storeU16(_data + 4, static_cast<std::uint16_t>(_usable));
    dirtyMark(0, kHeaderSize);
}

void
PageView::initInterior(PageNo right_child)
{
    std::memset(_data, 0, kHeaderSize);
    _data[0] = kTypeInterior;
    storeU16(_data + 4, static_cast<std::uint16_t>(_usable));
    storeU32(_data + 8, right_child);
    dirtyMark(0, kHeaderSize);
}

std::uint32_t
PageView::gapBytes() const
{
    const std::uint32_t ptr_end = ptrArrayEnd();
    const std::uint32_t ccs = cellContentStart();
    NVWAL_ASSERT(ccs >= ptr_end, "corrupt page: overlapping regions");
    return ccs - ptr_end;
}

std::uint32_t
PageView::freeblockBytes() const
{
    std::uint32_t total = 0;
    std::uint32_t off = firstFreeblock();
    while (off != 0) {
        total += loadU16(_data + off + 2);
        off = loadU16(_data + off);
    }
    return total;
}

std::uint32_t
PageView::freeBytes() const
{
    return gapBytes() + freeblockBytes() + fragmentedBytes();
}

void
PageView::setFirstFreeblock(std::uint32_t off)
{
    storeU16(_data + 6, static_cast<std::uint16_t>(off));
    dirtyMark(6, 8);
}

void
PageView::setFragmentedBytes(std::uint32_t n)
{
    NVWAL_ASSERT(n <= 0xff, "fragment counter overflow");
    _data[1] = static_cast<std::uint8_t>(n);
    dirtyMark(1, 2);
}

std::uint32_t
PageView::allocateCell(std::uint32_t size)
{
    NVWAL_ASSERT(size >= kMinFreeblockSize, "cell below freeblock size");

    // Freeblock first fit (SQLite's allocateSpace), provided the
    // pointer array can still grow into the gap.
    if (gapBytes() >= kPtrSize) {
        std::uint32_t prev = 0;  // 0 = the header field itself
        std::uint32_t off = firstFreeblock();
        while (off != 0) {
            const std::uint32_t next = loadU16(_data + off);
            const std::uint32_t bsize = loadU16(_data + off + 2);
            if (bsize >= size) {
                const std::uint32_t rest = bsize - size;
                if (rest < kMinFreeblockSize) {
                    // Consume the whole block; the remainder becomes
                    // fragmented bytes (dead until defragmentation).
                    if (prev == 0)
                        setFirstFreeblock(next);
                    else {
                        storeU16(_data + prev,
                                 static_cast<std::uint16_t>(next));
                        dirtyMark(prev, prev + 2);
                    }
                    if (rest > 0 && fragmentedBytes() + rest <= 0xff)
                        setFragmentedBytes(fragmentedBytes() + rest);
                    else if (rest > 0) {
                        // Counter saturated: defragment instead.
                        defragment();
                        const std::uint32_t ccs =
                            cellContentStart() - size;
                        setCellContentStart(ccs);
                        return ccs;
                    }
                    return off;
                }
                // Take the tail of the block (SQLite's choice), so
                // the freeblock header stays where it is.
                storeU16(_data + off + 2,
                         static_cast<std::uint16_t>(rest));
                dirtyMark(off + 2, off + 4);
                return off + rest;
            }
            prev = off;
            off = next;
        }
    }

    // Gap allocation at the downward frontier.
    if (gapBytes() >= size + kPtrSize) {
        const std::uint32_t ccs = cellContentStart() - size;
        setCellContentStart(ccs);
        return ccs;
    }

    // Enough space in total, but fragmented: rewrite the page.
    NVWAL_ASSERT(freeBytes() >= size + kPtrSize,
                 "allocateCell without space");
    defragment();
    const std::uint32_t ccs = cellContentStart() - size;
    setCellContentStart(ccs);
    return ccs;
}

void
PageView::freeCell(std::uint32_t off, std::uint32_t size)
{
    NVWAL_ASSERT(size >= kMinFreeblockSize &&
                 off >= cellContentStart() && off + size <= _usable,
                 "freeCell out of bounds");

    // Find the address-sorted position.
    std::uint32_t prev = 0;
    std::uint32_t cur = firstFreeblock();
    while (cur != 0 && cur < off) {
        prev = cur;
        cur = loadU16(_data + cur);
    }
    NVWAL_ASSERT(cur != off, "double free");

    std::uint32_t new_off = off;
    std::uint32_t new_size = size;
    std::uint32_t next = cur;

    // Coalesce with the following block.
    if (next != 0 && off + size == next) {
        new_size += loadU16(_data + next + 2);
        next = loadU16(_data + next);
    }
    // Coalesce with the preceding block.
    if (prev != 0) {
        const std::uint32_t prev_size = loadU16(_data + prev + 2);
        if (prev + prev_size == new_off) {
            new_off = prev;
            new_size += prev_size;
            // The predecessor of `prev` keeps pointing at prev.
            storeU16(_data + new_off,
                     static_cast<std::uint16_t>(next));
            storeU16(_data + new_off + 2,
                     static_cast<std::uint16_t>(new_size));
            dirtyMark(new_off, new_off + 4);
            return;
        }
    }

    storeU16(_data + new_off, static_cast<std::uint16_t>(next));
    storeU16(_data + new_off + 2, static_cast<std::uint16_t>(new_size));
    dirtyMark(new_off, new_off + 4);
    if (prev == 0) {
        setFirstFreeblock(new_off);
    } else {
        storeU16(_data + prev, static_cast<std::uint16_t>(new_off));
        dirtyMark(prev, prev + 2);
    }
}

void
PageView::defragment()
{
    struct Extent
    {
        int idx;
        std::uint32_t off;
        std::uint32_t size;
    };
    const int n = nCells();
    std::vector<Extent> extents;
    extents.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        extents.push_back(Extent{i, cellOffset(i), cellSizeAt(i)});
    // Pack cells to the end of the page, preserving their physical
    // order so the copy can run high-to-low without overlap issues.
    std::sort(extents.begin(), extents.end(),
              [](const Extent &a, const Extent &b) {
                  return a.off > b.off;
              });
    // Copy out (source region may be overwritten during packing).
    std::uint32_t frontier = _usable;
    std::vector<std::pair<int, std::uint32_t>> new_offsets;
    ByteBuffer copy(_data + cellContentStart(),
                    _data + _usable);
    const std::uint32_t base = cellContentStart();
    for (const Extent &e : extents) {
        frontier -= e.size;
        std::memcpy(_data + frontier, copy.data() + (e.off - base),
                    e.size);
        new_offsets.emplace_back(e.idx, frontier);
    }
    for (const auto &[idx, off] : new_offsets)
        setCellOffset(idx, off);
    // Zero the now-free region so pages stay deterministic.
    std::memset(_data + ptrArrayEnd(), 0, frontier - ptrArrayEnd());
    setCellContentStart(frontier);
    setFirstFreeblock(0);
    setFragmentedBytes(0);
    dirtyMark(0, _usable);
}

std::uint32_t
PageView::cellOffset(int idx) const
{
    NVWAL_ASSERT(idx >= 0 && idx < nCells(), "cell index %d of %d",
                 idx, nCells());
    return loadU16(_data + kHeaderSize +
                   kPtrSize * static_cast<std::uint32_t>(idx));
}

void
PageView::setCellOffset(int idx, std::uint32_t off)
{
    const std::uint32_t p =
        kHeaderSize + kPtrSize * static_cast<std::uint32_t>(idx);
    storeU16(_data + p, static_cast<std::uint16_t>(off));
    dirtyMark(p, p + kPtrSize);
}

std::uint32_t
PageView::cellSizeAt(int idx) const
{
    const std::uint32_t off = cellOffset(idx);
    if (isLeaf()) {
        return kLeafCellOverhead +
               payloadSizeFor(loadU16(_data + off + 8), _usable);
    }
    return kInteriorCellSize;
}

RowId
PageView::keyAt(int idx) const
{
    return loadI64(_data + cellOffset(idx));
}

int
PageView::lowerBound(RowId key) const
{
    int lo = 0;
    int hi = nCells();
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (keyAt(mid) < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

void
PageView::setNCells(int n)
{
    storeU16(_data + 2, static_cast<std::uint16_t>(n));
    dirtyMark(2, 4);
}

void
PageView::setCellContentStart(std::uint32_t ccs)
{
    storeU16(_data + 4, static_cast<std::uint16_t>(ccs));
    dirtyMark(4, 6);
}

void
PageView::insertPtr(int idx, std::uint32_t off)
{
    const int n = nCells();
    NVWAL_ASSERT(idx >= 0 && idx <= n);
    const std::uint32_t p =
        kHeaderSize + kPtrSize * static_cast<std::uint32_t>(idx);
    std::memmove(_data + p + kPtrSize, _data + p,
                 kPtrSize * static_cast<std::size_t>(n - idx));
    storeU16(_data + p, static_cast<std::uint16_t>(off));
    setNCells(n + 1);
    dirtyMark(p, kHeaderSize + kPtrSize * static_cast<std::uint32_t>(n + 1));
}

void
PageView::removePtr(int idx)
{
    const int n = nCells();
    NVWAL_ASSERT(idx >= 0 && idx < n);
    const std::uint32_t p =
        kHeaderSize + kPtrSize * static_cast<std::uint32_t>(idx);
    std::memmove(_data + p, _data + p + kPtrSize,
                 kPtrSize * static_cast<std::size_t>(n - idx - 1));
    // Zero the vacated slot so pages stay byte-exact reconstructible
    // from dirty ranges.
    const std::uint32_t last =
        kHeaderSize + kPtrSize * static_cast<std::uint32_t>(n - 1);
    storeU16(_data + last, 0);
    setNCells(n - 1);
    dirtyMark(p, last + kPtrSize);
}

bool
PageView::leafFits(std::size_t payload_len) const
{
    return freeBytes() >= leafCellSize(payload_len) + kPtrSize;
}

void
PageView::leafInsert(int idx, RowId key, ConstByteSpan value)
{
    NVWAL_ASSERT(value.size() <= maxLocalPayload(_usable),
                 "leafInsert is for local values; use leafInsertCell");
    leafInsertCell(idx, LeafCell::local(key, value));
}

void
PageView::leafInsertCell(int idx, const LeafCell &cell)
{
    NVWAL_ASSERT(isLeaf(), "leafInsertCell on non-leaf");
    NVWAL_ASSERT(cell.payload.size() ==
                 payloadSizeFor(cell.totalLen, _usable),
                 "cell payload/length mismatch");
    NVWAL_ASSERT(cell.totalLen <= 0xffff, "value length exceeds 64K");
    NVWAL_ASSERT(leafFits(cell.payload.size()),
                 "leafInsertCell without space");
    const std::uint32_t size = leafCellSize(cell.payload.size());
    const std::uint32_t off = allocateCell(size);

    storeI64(_data + off, cell.key);
    storeU16(_data + off + 8, static_cast<std::uint16_t>(cell.totalLen));
    std::memcpy(_data + off + kLeafCellOverhead, cell.payload.data(),
                cell.payload.size());
    dirtyMark(off, off + size);

    insertPtr(idx, off);
}

std::uint32_t
PageView::leafTotalLen(int idx) const
{
    NVWAL_ASSERT(isLeaf(), "leafTotalLen on non-leaf");
    return loadU16(_data + cellOffset(idx) + 8);
}

bool
PageView::leafHasOverflow(int idx) const
{
    return leafTotalLen(idx) > maxLocalPayload(_usable);
}

PageNo
PageView::leafOverflowPage(int idx) const
{
    NVWAL_ASSERT(leafHasOverflow(idx), "cell has no overflow chain");
    const std::uint32_t off = cellOffset(idx);
    return loadU32(_data + off + kLeafCellOverhead +
                   maxLocalPayload(_usable));
}

void
PageView::leafRemove(int idx)
{
    NVWAL_ASSERT(isLeaf(), "leafRemove on non-leaf");
    const std::uint32_t off = cellOffset(idx);
    const std::uint32_t size = cellSizeAt(idx);
    removePtr(idx);
    freeCell(off, size);
}

ConstByteSpan
PageView::leafValueAt(int idx) const
{
    NVWAL_ASSERT(isLeaf(), "leafValueAt on non-leaf");
    const std::uint32_t off = cellOffset(idx);
    const std::uint32_t len = loadU16(_data + off + 8);
    return ConstByteSpan(_data + off + kLeafCellOverhead,
                         std::min(len, maxLocalPayload(_usable)));
}

std::vector<LeafCell>
PageView::leafCells() const
{
    std::vector<LeafCell> out;
    const int n = nCells();
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const std::uint32_t off = cellOffset(i);
        const std::uint32_t len = loadU16(_data + off + 8);
        const std::uint32_t payload = payloadSizeFor(len, _usable);
        out.push_back(LeafCell{
            keyAt(i), len,
            ByteBuffer(_data + off + kLeafCellOverhead,
                       _data + off + kLeafCellOverhead + payload)});
    }
    return out;
}

void
PageView::rebuildLeaf(const std::vector<LeafCell> &cells)
{
    std::memset(_data, 0, _usable);
    dirtyMark(0, _usable);
    _data[0] = kTypeLeaf;
    storeU16(_data + 4, static_cast<std::uint16_t>(_usable));
    int idx = 0;
    for (const LeafCell &c : cells) {
        leafInsertCell(idx, c);
        ++idx;
    }
}

bool
PageView::interiorFits() const
{
    return freeBytes() >= kInteriorCellSize + kPtrSize;
}

void
PageView::interiorInsert(int idx, RowId key, PageNo child)
{
    NVWAL_ASSERT(isInterior(), "interiorInsert on non-interior");
    NVWAL_ASSERT(interiorFits(), "interiorInsert without space");
    const std::uint32_t off = allocateCell(kInteriorCellSize);

    storeI64(_data + off, key);
    storeU32(_data + off + 8, child);
    dirtyMark(off, off + kInteriorCellSize);

    insertPtr(idx, off);
}

void
PageView::interiorRemove(int idx)
{
    NVWAL_ASSERT(isInterior(), "interiorRemove on non-interior");
    const std::uint32_t off = cellOffset(idx);
    removePtr(idx);
    freeCell(off, kInteriorCellSize);
}

PageNo
PageView::childAt(int idx) const
{
    NVWAL_ASSERT(isInterior(), "childAt on non-interior");
    if (idx == nCells())
        return rightChild();
    return loadU32(_data + cellOffset(idx) + 8);
}

void
PageView::setChildAt(int idx, PageNo child)
{
    NVWAL_ASSERT(isInterior(), "setChildAt on non-interior");
    if (idx == nCells()) {
        setRightChild(child);
        return;
    }
    const std::uint32_t off = cellOffset(idx);
    storeU32(_data + off + 8, child);
    dirtyMark(off + 8, off + 12);
}

void
PageView::setRightChild(PageNo child)
{
    storeU32(_data + 8, child);
    dirtyMark(8, 12);
}

std::vector<InteriorCell>
PageView::interiorCells() const
{
    std::vector<InteriorCell> out;
    const int n = nCells();
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(InteriorCell{keyAt(i), childAt(i)});
    return out;
}

void
PageView::rebuildInterior(const std::vector<InteriorCell> &cells,
                          PageNo right_child)
{
    std::memset(_data, 0, _usable);
    dirtyMark(0, _usable);
    _data[0] = kTypeInterior;
    storeU16(_data + 4, static_cast<std::uint16_t>(_usable));
    storeU32(_data + 8, right_child);
    int idx = 0;
    for (const InteriorCell &c : cells) {
        interiorInsert(idx, c.key, c.child);
        ++idx;
    }
}

Status
PageView::validate() const
{
    if (type() == kTypeNone) {
        // Uninitialized page: must be all zero in the usable area.
        for (std::uint32_t i = 0; i < _usable; ++i) {
            if (_data[i] != 0)
                return Status::corruption("nonzero uninitialized page");
        }
        return Status::ok();
    }
    if (type() != kTypeLeaf && type() != kTypeInterior)
        return Status::corruption("bad page type");

    const int n = nCells();
    const std::uint32_t ccs = cellContentStart();
    if (ptrArrayEnd() > ccs || ccs > _usable)
        return Status::corruption("page regions overlap");

    // Cells and freeblocks must be disjoint and in-bounds, keys
    // strictly ascending, the freeblock list address-sorted with
    // coalesced (non-adjacent) entries, and cells + freeblocks +
    // fragmented bytes must exactly account for [ccs, usable).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> extents;
    extents.reserve(static_cast<std::size_t>(n) + 4);
    std::uint64_t cell_bytes = 0;
    for (int i = 0; i < n; ++i) {
        const std::uint32_t off = cellOffset(i);
        if (off < ccs || off + cellSizeAt(i) > _usable)
            return Status::corruption("cell out of bounds");
        extents.emplace_back(off, cellSizeAt(i));
        cell_bytes += cellSizeAt(i);
        if (i > 0 && keyAt(i - 1) >= keyAt(i))
            return Status::corruption("keys not strictly ascending");
    }

    std::uint64_t free_bytes = 0;
    std::uint32_t prev_end = 0;
    std::uint32_t fb = firstFreeblock();
    std::uint32_t prev_fb = 0;
    while (fb != 0) {
        if (fb < ccs || fb + kMinFreeblockSize > _usable)
            return Status::corruption("freeblock out of bounds");
        if (fb <= prev_fb)
            return Status::corruption("freeblock list not sorted");
        const std::uint32_t size = loadU16(_data + fb + 2);
        if (size < kMinFreeblockSize || fb + size > _usable)
            return Status::corruption("freeblock size invalid");
        if (prev_fb != 0 && prev_end == fb)
            return Status::corruption("adjacent freeblocks not merged");
        extents.emplace_back(fb, size);
        free_bytes += size;
        prev_fb = fb;
        prev_end = fb + size;
        fb = loadU16(_data + fb);
    }

    std::sort(extents.begin(), extents.end());
    std::uint32_t cursor = ccs;
    std::uint64_t gap_frag = 0;
    for (const auto &[off, size] : extents) {
        if (off < cursor)
            return Status::corruption("content extents overlap");
        gap_frag += off - cursor;  // dead fragment bytes
        cursor = off + size;
    }
    gap_frag += _usable - cursor;
    if (gap_frag != fragmentedBytes())
        return Status::corruption("fragment byte counter mismatch");
    if (cell_bytes + free_bytes + gap_frag !=
        static_cast<std::uint64_t>(_usable) - ccs) {
        return Status::corruption("content area accounting mismatch");
    }
    return Status::ok();
}

} // namespace nvwal
