#include "cursor.hpp"

namespace nvwal
{

Cursor::Cursor(BTree &tree)
    : _tree(tree), _version(tree.modificationCount())
{}

Status
Cursor::checkVersion() const
{
    if (_version != _tree.modificationCount())
        return Status::busy("cursor invalidated by a write");
    return Status::ok();
}

PageView
Cursor::viewAt(const Level &level, CachedPage **page_out)
{
    CachedPage *page = nullptr;
    NVWAL_CHECK_OK(_tree._pager.getPage(level.page, &page));
    if (page_out != nullptr)
        *page_out = page;
    return _tree.viewOf(*page);
}

Status
Cursor::descendToLeaf(PageNo page_no, bool leftmost)
{
    for (;;) {
        CachedPage *page;
        NVWAL_RETURN_IF_ERROR(_tree._pager.getPage(page_no, &page));
        PageView view = _tree.viewOf(*page);
        if (!view.isInterior()) {
            // Leaf (or an uninitialized empty root).
            _path.push_back(
                Level{page_no, leftmost ? 0 : view.nCells() - 1});
            return Status::ok();
        }
        const int slot = leftmost ? 0 : view.nCells();
        _path.push_back(Level{page_no, slot});
        page_no = view.childAt(slot);
    }
}

Status
Cursor::normalizeForward()
{
    for (;;) {
        if (_path.empty()) {
            _valid = false;
            return Status::ok();
        }
        Level &leaf = _path.back();
        PageView view = viewAt(leaf, nullptr);
        if (!view.isInterior() && leaf.idx >= 0 &&
            leaf.idx < view.nCells()) {
            _valid = true;
            return Status::ok();
        }
        // This leaf is exhausted (or empty): ascend to the first
        // ancestor with a next slot, then descend its leftmost leaf.
        _path.pop_back();
        bool descended = false;
        while (!_path.empty()) {
            Level &up = _path.back();
            PageView up_view = viewAt(up, nullptr);
            if (up.idx < up_view.nCells()) {
                ++up.idx;
                NVWAL_RETURN_IF_ERROR(
                    descendToLeaf(up_view.childAt(up.idx), true));
                descended = true;
                break;
            }
            _path.pop_back();
        }
        if (!descended && _path.empty()) {
            _valid = false;
            return Status::ok();
        }
    }
}

Status
Cursor::normalizeBackward()
{
    for (;;) {
        if (_path.empty()) {
            _valid = false;
            return Status::ok();
        }
        Level &leaf = _path.back();
        PageView view = viewAt(leaf, nullptr);
        if (!view.isInterior() && leaf.idx >= 0 &&
            leaf.idx < view.nCells()) {
            _valid = true;
            return Status::ok();
        }
        _path.pop_back();
        bool descended = false;
        while (!_path.empty()) {
            Level &up = _path.back();
            if (up.idx > 0) {
                --up.idx;
                PageView up_view = viewAt(up, nullptr);
                NVWAL_RETURN_IF_ERROR(
                    descendToLeaf(up_view.childAt(up.idx), false));
                descended = true;
                break;
            }
            _path.pop_back();
        }
        if (!descended && _path.empty()) {
            _valid = false;
            return Status::ok();
        }
    }
}

Status
Cursor::seekFirst()
{
    _version = _tree.modificationCount();
    _path.clear();
    _valid = false;
    NVWAL_RETURN_IF_ERROR(descendToLeaf(_tree._root, true));
    return normalizeForward();
}

Status
Cursor::seekLast()
{
    _version = _tree.modificationCount();
    _path.clear();
    _valid = false;
    NVWAL_RETURN_IF_ERROR(descendToLeaf(_tree._root, false));
    return normalizeBackward();
}

Status
Cursor::descendForKey(PageNo page_no, RowId target)
{
    for (;;) {
        CachedPage *page;
        NVWAL_RETURN_IF_ERROR(_tree._pager.getPage(page_no, &page));
        PageView view = _tree.viewOf(*page);
        if (!view.isInterior()) {
            _path.push_back(Level{page_no, view.type() == PageView::kTypeNone
                                               ? 0
                                               : view.lowerBound(target)});
            return Status::ok();
        }
        const int slot = view.lowerBound(target);
        _path.push_back(Level{page_no, slot});
        page_no = view.childAt(slot);
    }
}

Status
Cursor::seek(RowId target)
{
    _version = _tree.modificationCount();
    _path.clear();
    _valid = false;
    NVWAL_RETURN_IF_ERROR(descendForKey(_tree._root, target));
    return normalizeForward();
}

Status
Cursor::seekExact(RowId target)
{
    NVWAL_RETURN_IF_ERROR(seek(target));
    if (!_valid || key() != target) {
        _valid = false;
        return Status::notFound("key not in table");
    }
    return Status::ok();
}

Status
Cursor::next()
{
    NVWAL_RETURN_IF_ERROR(checkVersion());
    NVWAL_ASSERT(_valid, "next() on an invalid cursor");
    ++_path.back().idx;
    return normalizeForward();
}

Status
Cursor::prev()
{
    NVWAL_RETURN_IF_ERROR(checkVersion());
    NVWAL_ASSERT(_valid, "prev() on an invalid cursor");
    --_path.back().idx;
    return normalizeBackward();
}

RowId
Cursor::key() const
{
    NVWAL_ASSERT(_valid, "key() on an invalid cursor");
    NVWAL_CHECK_OK(checkVersion());
    Cursor *self = const_cast<Cursor *>(this);
    PageView view = self->viewAt(_path.back(), nullptr);
    return view.keyAt(_path.back().idx);
}

Status
Cursor::value(ByteBuffer *out)
{
    NVWAL_RETURN_IF_ERROR(checkVersion());
    NVWAL_ASSERT(_valid, "value() on an invalid cursor");
    PageView view = viewAt(_path.back(), nullptr);
    return _tree.readLeafValue(view, _path.back().idx, out);
}

} // namespace nvwal
