/**
 * @file
 * A B+-tree over the pager, keyed by 64-bit rowids with blob values
 * (the shape of a SQLite table keyed by rowid).
 *
 * Properties chosen to match the behaviour the paper measures:
 *  - the root lives at a fixed page number (2) and never moves; a
 *    root split copies the old root into a fresh page;
 *  - inserts append at the downward content frontier of a leaf
 *    (small dirty ranges), deletes compact the content area (large
 *    dirty ranges), updates are remove+insert, mirroring SQLite's
 *    cell management (Table 2's insert/update/delete asymmetry);
 *  - no merge-on-delete rebalancing (SQLite reclaims space through
 *    the freelist/vacuum; for the paper's workloads the difference
 *    is immaterial, and validate() accepts underfull pages).
 */

#ifndef NVWAL_BTREE_BTREE_HPP
#define NVWAL_BTREE_BTREE_HPP

#include <functional>
#include <optional>

#include "btree/page_view.hpp"
#include "pager/page_source.hpp"

namespace nvwal
{

/** Counters maintained by the tree (test/bench introspection). */
struct BTreeCounters
{
    std::uint64_t splits = 0;
    std::uint64_t pagesAllocated = 0;
};

/** Rowid-keyed B+-tree. */
class BTree
{
  public:
    /** Visit callback for scans; return false to stop early. */
    using ScanCallback = std::function<bool(RowId, ConstByteSpan)>;

    /**
     * @param root Root page of this tree; stays fixed for the
     *        tree's lifetime (root splits copy into fresh pages).
     *        Defaults to the source's primary root (page 2).
     *
     * The tree mutates only through the PageSource; handed a
     * read-only source (SnapshotCache) it serves lookups and scans
     * while inserts fail with Unsupported.
     */
    explicit BTree(PageSource &pager, PageNo root = kNoPage);

    PageNo rootPage() const { return _root; }

    /** Insert a new record; fails with InvalidArgument on duplicate. */
    Status insert(RowId key, ConstByteSpan value);

    /** Replace an existing record's value; NotFound if absent. */
    Status update(RowId key, ConstByteSpan value);

    /** Delete a record; NotFound if absent. */
    Status remove(RowId key);

    /** Fetch a record's value; NotFound if absent. */
    Status get(RowId key, ByteBuffer *out);

    /** Existence check without copying the value. */
    bool contains(RowId key);

    /** Visit records with lo <= key <= hi in ascending key order. */
    Status scan(RowId lo, RowId hi, const ScanCallback &visit);

    /** Number of records in the tree. */
    Status count(std::uint64_t *out);

    /** Height of the tree (1 = root leaf). */
    Status depth(std::uint32_t *out);

    /**
     * Full structural validation: per-page invariants, uniform leaf
     * depth, key-range containment at every level.
     */
    Status validate();

    /**
     * Release every page of this tree (including the root) back to
     * the pager's free list. The tree must not be used afterwards.
     * Used by Database::dropTable().
     */
    Status destroy();

    const BTreeCounters &counters() const { return _counters; }

    /** Largest value size insert() accepts for this page geometry. */
    std::uint32_t maxValueSize() const;

    /**
     * Bumped on every mutation; open cursors compare it to detect
     * invalidation.
     */
    std::uint64_t modificationCount() const { return _version; }

  private:
    friend class Cursor;

    struct SplitInfo
    {
        RowId sepKey;
        PageNo right;
    };

    PageView viewOf(CachedPage &page);

    /**
     * Encode @p value as a leaf cell, spilling anything beyond the
     * local-payload limit to a freshly allocated overflow chain.
     */
    Status encodeLeafCell(RowId key, ConstByteSpan value, LeafCell *out);

    /** Assemble a cell's full value (local payload + chain). */
    Status readLeafValue(PageView &view, int idx, ByteBuffer *out);

    /** Return a cell's overflow pages to the free list. */
    Status freeOverflowChain(PageNo first);

    Status insertRec(PageNo page_no, RowId key, const LeafCell &cell,
                     std::optional<SplitInfo> *split);
    Status splitLeaf(CachedPage &page, int insert_idx,
                     const LeafCell &cell, SplitInfo *split);
    Status splitInterior(CachedPage &page,
                         std::vector<InteriorCell> cells,
                         PageNo right_child, SplitInfo *split);
    Status removeRec(PageNo page_no, RowId key);
    Status findLeaf(RowId key, CachedPage **leaf, int *idx, bool *found);
    Status scanRec(PageNo page_no, RowId lo, RowId hi,
                   const ScanCallback &visit, bool *keep_going);
    Status countRec(PageNo page_no, std::uint64_t *out);
    Status validateRec(PageNo page_no, bool has_lo, RowId lo,
                       bool has_hi, RowId hi, std::uint32_t depth,
                       std::uint32_t *leaf_depth);
    Status destroyRec(PageNo page_no);

    PageSource &_pager;
    PageNo _root;
    BTreeCounters _counters;
    std::uint64_t _version = 0;
};

} // namespace nvwal

#endif // NVWAL_BTREE_BTREE_HPP
