#include "btree.hpp"

#include <algorithm>
#include <cstring>

namespace nvwal
{

BTree::BTree(PageSource &pager, PageNo root)
    : _pager(pager), _root(root == kNoPage ? pager.rootPage() : root)
{}

PageView
BTree::viewOf(CachedPage &page)
{
    return PageView(page.span(), _pager.usableSize(), &page.dirty);
}

std::uint32_t
BTree::maxValueSize() const
{
    // Values larger than the local-payload limit continue on
    // overflow pages; the logical length is stored in 16 bits.
    return 0xffff;
}

Status
BTree::encodeLeafCell(RowId key, ConstByteSpan value, LeafCell *out)
{
    const std::uint32_t usable = _pager.usableSize();
    const std::uint32_t max_local = PageView::maxLocalPayload(usable);
    out->key = key;
    out->totalLen = static_cast<std::uint32_t>(value.size());
    if (value.size() <= max_local) {
        out->payload.assign(value.begin(), value.end());
        return Status::ok();
    }

    // Spill the tail to an overflow chain: [next page u32][chunk].
    // Pages are allocated tail-first so each one's successor is
    // known when it is written.
    const std::uint32_t chunk_cap = usable - 4;
    std::vector<ConstByteSpan> chunks;
    std::size_t pos = max_local;
    while (pos < value.size()) {
        const std::size_t n =
            std::min<std::size_t>(chunk_cap, value.size() - pos);
        chunks.push_back(value.subspan(pos, n));
        pos += n;
    }
    PageNo next = kNoPage;
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
        CachedPage *page;
        PageNo no;
        NVWAL_RETURN_IF_ERROR(_pager.allocatePage(&page, &no));
        storeU32(page->buf.data(), next);
        std::memcpy(page->buf.data() + 4, it->data(), it->size());
        next = no;
        _counters.pagesAllocated++;
    }

    out->payload.resize(max_local + 4);
    std::memcpy(out->payload.data(), value.data(), max_local);
    storeU32(out->payload.data() + max_local, next);
    return Status::ok();
}

Status
BTree::readLeafValue(PageView &view, int idx, ByteBuffer *out)
{
    const std::uint32_t total = view.leafTotalLen(idx);
    const ConstByteSpan local = view.leafValueAt(idx);
    out->assign(local.begin(), local.end());
    if (!view.leafHasOverflow(idx))
        return Status::ok();

    const std::uint32_t chunk_cap = _pager.usableSize() - 4;
    PageNo no = view.leafOverflowPage(idx);
    while (out->size() < total) {
        if (no == kNoPage)
            return Status::corruption("overflow chain ends early");
        CachedPage *page;
        NVWAL_RETURN_IF_ERROR(_pager.getPage(no, &page));
        const std::size_t n =
            std::min<std::size_t>(chunk_cap, total - out->size());
        out->insert(out->end(), page->buf.data() + 4,
                    page->buf.data() + 4 + n);
        no = loadU32(page->buf.data());
    }
    if (no != kNoPage)
        return Status::corruption("overflow chain longer than value");
    return Status::ok();
}

Status
BTree::freeOverflowChain(PageNo first)
{
    PageNo no = first;
    while (no != kNoPage) {
        CachedPage *page;
        NVWAL_RETURN_IF_ERROR(_pager.getPage(no, &page));
        const PageNo next = loadU32(page->buf.data());
        NVWAL_RETURN_IF_ERROR(_pager.freePage(no));
        no = next;
    }
    return Status::ok();
}

Status
BTree::insert(RowId key, ConstByteSpan value)
{
    if (value.size() > maxValueSize())
        return Status::invalidArgument("value too large (64K max)");
    ++_version;

    LeafCell cell;
    NVWAL_RETURN_IF_ERROR(encodeLeafCell(key, value, &cell));
    std::optional<SplitInfo> split;
    NVWAL_RETURN_IF_ERROR(insertRec(_root, key, cell, &split));
    if (!split.has_value())
        return Status::ok();

    // Root split: the root page number is fixed, so move the old
    // root (now the left half) into a fresh page and rebuild the
    // root as an interior node over both halves.
    CachedPage *root;
    NVWAL_RETURN_IF_ERROR(_pager.getPage(_root, &root));
    CachedPage *left;
    PageNo left_no;
    NVWAL_RETURN_IF_ERROR(_pager.allocatePage(&left, &left_no));
    _counters.pagesAllocated++;
    std::memcpy(left->buf.data(), root->buf.data(), root->buf.size());
    left->dirty.mark(0, _pager.usableSize());

    PageView root_view = viewOf(*root);
    root_view.rebuildInterior({InteriorCell{split->sepKey, left_no}},
                              split->right);
    return Status::ok();
}

Status
BTree::insertRec(PageNo page_no, RowId key, const LeafCell &cell,
                 std::optional<SplitInfo> *split)
{
    CachedPage *page;
    NVWAL_RETURN_IF_ERROR(_pager.getPage(page_no, &page));
    PageView view = viewOf(*page);

    if (view.type() == PageView::kTypeNone) {
        // Lazily format the empty root created at database creation.
        NVWAL_ASSERT(page_no == _root,
                     "uninitialized non-root page");
        view.initLeaf();
    }

    if (view.isLeaf()) {
        const int idx = view.lowerBound(key);
        if (idx < view.nCells() && view.keyAt(idx) == key)
            return Status::invalidArgument("duplicate key");
        if (view.leafFits(cell.payload.size())) {
            view.leafInsertCell(idx, cell);
            return Status::ok();
        }
        SplitInfo info;
        NVWAL_RETURN_IF_ERROR(splitLeaf(*page, idx, cell, &info));
        *split = info;
        return Status::ok();
    }

    const int slot = view.lowerBound(key);
    const PageNo child = view.childAt(slot);
    std::optional<SplitInfo> child_split;
    NVWAL_RETURN_IF_ERROR(insertRec(child, key, cell, &child_split));
    if (!child_split.has_value())
        return Status::ok();

    // The child C at descent slot was split: C keeps keys <= sepKey,
    // the new page holds the rest. Insert (sepKey, C) at the slot
    // and repoint the old entry at the new right sibling.
    // (Re-fetch the view: the recursive call may have grown the
    // cache, but the buffer address of *page* is stable since
    // CachedPage owns its buffer; the view itself is still valid.)
    if (view.interiorFits()) {
        view.interiorInsert(slot, child_split->sepKey, child);
        view.setChildAt(slot + 1, child_split->right);
        return Status::ok();
    }

    // No room: rebuild from the logical cell list and split.
    std::vector<InteriorCell> cells = view.interiorCells();
    PageNo right_child = view.rightChild();
    cells.insert(cells.begin() + slot,
                 InteriorCell{child_split->sepKey, child});
    if (static_cast<std::size_t>(slot) + 1 < cells.size())
        cells[static_cast<std::size_t>(slot) + 1].child =
            child_split->right;
    else
        right_child = child_split->right;

    SplitInfo info;
    NVWAL_RETURN_IF_ERROR(
        splitInterior(*page, std::move(cells), right_child, &info));
    *split = info;
    return Status::ok();
}

Status
BTree::splitLeaf(CachedPage &page, int insert_idx,
                 const LeafCell &cell, SplitInfo *split)
{
    PageView view = viewOf(page);
    std::vector<LeafCell> cells = view.leafCells();
    cells.insert(cells.begin() + insert_idx, cell);

    // Split by bytes so variable-sized values balance evenly.
    std::uint64_t total = 0;
    for (const LeafCell &c : cells)
        total += PageView::leafCellSize(c.payload.size()) +
                 PageView::kPtrSize;
    std::uint64_t acc = 0;
    std::size_t cut = 0;
    while (cut + 1 < cells.size() && acc < total / 2) {
        acc += PageView::leafCellSize(cells[cut].payload.size()) +
               PageView::kPtrSize;
        ++cut;
    }
    NVWAL_ASSERT(cut > 0 && cut < cells.size(), "degenerate leaf split");

    CachedPage *right;
    PageNo right_no;
    NVWAL_RETURN_IF_ERROR(_pager.allocatePage(&right, &right_no));
    _counters.pagesAllocated++;
    _counters.splits++;

    std::vector<LeafCell> left_cells(cells.begin(),
                                     cells.begin() +
                                         static_cast<std::ptrdiff_t>(cut));
    std::vector<LeafCell> right_cells(cells.begin() +
                                          static_cast<std::ptrdiff_t>(cut),
                                      cells.end());
    view.rebuildLeaf(left_cells);
    PageView right_view = viewOf(*right);
    right_view.rebuildLeaf(right_cells);

    split->sepKey = left_cells.back().key;
    split->right = right_no;
    return Status::ok();
}

Status
BTree::splitInterior(CachedPage &page, std::vector<InteriorCell> cells,
                     PageNo right_child, SplitInfo *split)
{
    NVWAL_ASSERT(cells.size() >= 3, "interior split needs >= 3 cells");
    const std::size_t mid = cells.size() / 2;

    CachedPage *right;
    PageNo right_no;
    NVWAL_RETURN_IF_ERROR(_pager.allocatePage(&right, &right_no));
    _counters.pagesAllocated++;
    _counters.splits++;

    // cells[mid] is pushed up: its key becomes the separator and its
    // child becomes the left node's right-most child.
    std::vector<InteriorCell> left_cells(
        cells.begin(), cells.begin() + static_cast<std::ptrdiff_t>(mid));
    std::vector<InteriorCell> right_cells(
        cells.begin() + static_cast<std::ptrdiff_t>(mid) + 1, cells.end());

    PageView view = viewOf(page);
    view.rebuildInterior(left_cells, cells[mid].child);
    PageView right_view = viewOf(*right);
    right_view.rebuildInterior(right_cells, right_child);

    split->sepKey = cells[mid].key;
    split->right = right_no;
    return Status::ok();
}

Status
BTree::findLeaf(RowId key, CachedPage **leaf, int *idx, bool *found)
{
    PageNo page_no = _root;
    for (;;) {
        CachedPage *page;
        NVWAL_RETURN_IF_ERROR(_pager.getPage(page_no, &page));
        PageView view = viewOf(*page);
        if (view.type() == PageView::kTypeNone) {
            *leaf = page;
            *idx = 0;
            *found = false;
            return Status::ok();
        }
        if (view.isLeaf()) {
            const int i = view.lowerBound(key);
            *leaf = page;
            *idx = i;
            *found = i < view.nCells() && view.keyAt(i) == key;
            return Status::ok();
        }
        page_no = view.childAt(view.lowerBound(key));
    }
}

Status
BTree::get(RowId key, ByteBuffer *out)
{
    CachedPage *leaf;
    int idx;
    bool found;
    NVWAL_RETURN_IF_ERROR(findLeaf(key, &leaf, &idx, &found));
    if (!found)
        return Status::notFound("key not in table");
    PageView view = viewOf(*leaf);
    return readLeafValue(view, idx, out);
}

bool
BTree::contains(RowId key)
{
    CachedPage *leaf;
    int idx;
    bool found = false;
    const Status s = findLeaf(key, &leaf, &idx, &found);
    return s.isOk() && found;
}

Status
BTree::update(RowId key, ConstByteSpan value)
{
    if (value.size() > maxValueSize())
        return Status::invalidArgument("value too large for page size");
    // SQLite rewrites the cell (drop + insert); do the same so the
    // dirty-byte profile matches the paper's update workload.
    NVWAL_RETURN_IF_ERROR(remove(key));
    return insert(key, value);
}

Status
BTree::remove(RowId key)
{
    ++_version;
    CachedPage *leaf;
    int idx;
    bool found;
    NVWAL_RETURN_IF_ERROR(findLeaf(key, &leaf, &idx, &found));
    if (!found)
        return Status::notFound("key not in table");
    PageView view = viewOf(*leaf);
    if (view.leafHasOverflow(idx))
        NVWAL_RETURN_IF_ERROR(freeOverflowChain(view.leafOverflowPage(idx)));
    view.leafRemove(idx);
    return Status::ok();
}

Status
BTree::scan(RowId lo, RowId hi, const ScanCallback &visit)
{
    bool keep_going = true;
    return scanRec(_root, lo, hi, visit, &keep_going);
}

Status
BTree::scanRec(PageNo page_no, RowId lo, RowId hi,
               const ScanCallback &visit, bool *keep_going)
{
    CachedPage *page;
    NVWAL_RETURN_IF_ERROR(_pager.getPage(page_no, &page));
    PageView view = viewOf(*page);
    if (view.type() == PageView::kTypeNone)
        return Status::ok();

    if (view.isLeaf()) {
        ByteBuffer assembled;
        for (int i = view.lowerBound(lo);
             i < view.nCells() && *keep_going; ++i) {
            if (view.keyAt(i) > hi)
                break;
            ConstByteSpan value;
            if (view.leafHasOverflow(i)) {
                NVWAL_RETURN_IF_ERROR(
                    readLeafValue(view, i, &assembled));
                value = ConstByteSpan(assembled.data(), assembled.size());
            } else {
                value = view.leafValueAt(i);
            }
            if (!visit(view.keyAt(i), value))
                *keep_going = false;
        }
        return Status::ok();
    }

    for (int slot = view.lowerBound(lo);
         slot <= view.nCells() && *keep_going; ++slot) {
        if (slot > 0 && view.keyAt(slot - 1) > hi)
            break;
        NVWAL_RETURN_IF_ERROR(
            scanRec(view.childAt(slot), lo, hi, visit, keep_going));
    }
    return Status::ok();
}

Status
BTree::count(std::uint64_t *out)
{
    *out = 0;
    return countRec(_root, out);
}

Status
BTree::countRec(PageNo page_no, std::uint64_t *out)
{
    CachedPage *page;
    NVWAL_RETURN_IF_ERROR(_pager.getPage(page_no, &page));
    PageView view = viewOf(*page);
    if (view.type() == PageView::kTypeNone)
        return Status::ok();
    if (view.isLeaf()) {
        *out += static_cast<std::uint64_t>(view.nCells());
        return Status::ok();
    }
    for (int slot = 0; slot <= view.nCells(); ++slot)
        NVWAL_RETURN_IF_ERROR(countRec(view.childAt(slot), out));
    return Status::ok();
}

Status
BTree::depth(std::uint32_t *out)
{
    std::uint32_t d = 1;
    PageNo page_no = _root;
    for (;;) {
        CachedPage *page;
        NVWAL_RETURN_IF_ERROR(_pager.getPage(page_no, &page));
        PageView view = viewOf(*page);
        if (!view.isInterior()) {
            *out = d;
            return Status::ok();
        }
        page_no = view.childAt(0);
        ++d;
    }
}

Status
BTree::validate()
{
    std::uint32_t leaf_depth = 0;
    return validateRec(_root, false, 0, false, 0, 1,
                       &leaf_depth);
}

Status
BTree::validateRec(PageNo page_no, bool has_lo, RowId lo, bool has_hi,
                   RowId hi, std::uint32_t depth,
                   std::uint32_t *leaf_depth)
{
    CachedPage *page;
    NVWAL_RETURN_IF_ERROR(_pager.getPage(page_no, &page));
    PageView view = viewOf(*page);
    NVWAL_RETURN_IF_ERROR(view.validate());
    if (view.type() == PageView::kTypeNone) {
        return page_no == _root
                   ? Status::ok()
                   : Status::corruption("uninitialized interior child");
    }

    const int n = view.nCells();
    for (int i = 0; i < n; ++i) {
        const RowId k = view.keyAt(i);
        if (has_lo && k <= lo)
            return Status::corruption("key below subtree lower bound");
        if (has_hi && k > hi)
            return Status::corruption("key above subtree upper bound");
    }

    if (view.isLeaf()) {
        if (*leaf_depth == 0)
            *leaf_depth = depth;
        else if (*leaf_depth != depth)
            return Status::corruption("leaves at different depths");
        // Overflow chains must be walkable and length-consistent.
        ByteBuffer assembled;
        for (int i = 0; i < n; ++i) {
            if (!view.leafHasOverflow(i))
                continue;
            NVWAL_RETURN_IF_ERROR(readLeafValue(view, i, &assembled));
            if (assembled.size() != view.leafTotalLen(i))
                return Status::corruption("overflow length mismatch");
        }
        return Status::ok();
    }

    if (n == 0)
        return Status::corruption("interior page with no cells");
    for (int slot = 0; slot <= n; ++slot) {
        const bool child_has_lo = has_lo || slot > 0;
        const RowId child_lo = slot > 0 ? view.keyAt(slot - 1) : lo;
        const bool child_has_hi = has_hi || slot < n;
        const RowId child_hi = slot < n ? view.keyAt(slot) : hi;
        NVWAL_RETURN_IF_ERROR(
            validateRec(view.childAt(slot), child_has_lo, child_lo,
                        child_has_hi, child_hi, depth + 1, leaf_depth));
    }
    return Status::ok();
}

Status
BTree::destroy()
{
    ++_version;
    return destroyRec(_root);
}

Status
BTree::destroyRec(PageNo page_no)
{
    CachedPage *page;
    NVWAL_RETURN_IF_ERROR(_pager.getPage(page_no, &page));
    PageView view = viewOf(*page);
    if (view.isInterior()) {
        for (int slot = 0; slot <= view.nCells(); ++slot)
            NVWAL_RETURN_IF_ERROR(destroyRec(view.childAt(slot)));
    } else if (view.isLeaf()) {
        for (int i = 0; i < view.nCells(); ++i) {
            if (view.leafHasOverflow(i)) {
                NVWAL_RETURN_IF_ERROR(
                    freeOverflowChain(view.leafOverflowPage(i)));
            }
        }
    }
    return _pager.freePage(page_no);
}

} // namespace nvwal
