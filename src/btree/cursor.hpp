/**
 * @file
 * Ordered, bidirectional cursor over a B+-tree (the sqlite3_step
 * analogue for range queries that need more control than scan()).
 *
 * A cursor holds the descent path from the root to its current leaf
 * cell. It is a read-only view: any mutation of the tree (insert,
 * update, remove, destroy) invalidates every open cursor, which is
 * detected via the tree's modification counter -- using a stale
 * cursor returns Busy instead of undefined behaviour.
 */

#ifndef NVWAL_BTREE_CURSOR_HPP
#define NVWAL_BTREE_CURSOR_HPP

#include "btree/btree.hpp"

namespace nvwal
{

/** Bidirectional iterator over the keys of one BTree. */
class Cursor
{
  public:
    explicit Cursor(BTree &tree);

    /** Position on the smallest key; invalid if the tree is empty. */
    Status seekFirst();

    /** Position on the largest key; invalid if the tree is empty. */
    Status seekLast();

    /**
     * Position on the smallest key >= @p target (invalid when all
     * keys are smaller).
     */
    Status seek(RowId target);

    /** Position on @p target exactly; NotFound leaves it invalid. */
    Status seekExact(RowId target);

    /** Advance to the next key; invalid past the largest. */
    Status next();

    /** Step back to the previous key; invalid before the smallest. */
    Status prev();

    /** Does the cursor point at a record? */
    bool valid() const { return _valid; }

    /** Key under the cursor (valid() required). */
    RowId key() const;

    /** Assemble the value under the cursor (valid() required). */
    Status value(ByteBuffer *out);

  private:
    struct Level
    {
        PageNo page;
        int idx;  //!< descent slot (interior) / cell index (leaf)
    };

    Status checkVersion() const;
    Status descendToLeaf(PageNo page_no, bool leftmost);
    Status descendForKey(PageNo page_no, RowId target);
    /** After positioning, skip forward past empty leaves / ends. */
    Status normalizeForward();
    Status normalizeBackward();
    PageView viewAt(const Level &level, CachedPage **page_out);

    BTree &_tree;
    std::uint64_t _version;
    std::vector<Level> _path;
    bool _valid = false;
};

} // namespace nvwal

#endif // NVWAL_BTREE_CURSOR_HPP
