/**
 * @file
 * Minimal JSON writer + parser for the observability exports.
 *
 * The writer streams into a std::string with correct escaping and
 * locale-independent number formatting; the parser is a small strict
 * recursive-descent implementation used by tests and the CI schema
 * validator to prove every emitted document parses back. Neither
 * aims to be a general JSON library -- they exist so the repo's
 * machine-readable output (metrics dumps, Chrome traces, BENCH_*
 * records) is self-checking without external dependencies.
 */

#ifndef NVWAL_OBS_JSON_HPP
#define NVWAL_OBS_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace nvwal
{

/** Streaming JSON writer (objects/arrays open and close in order). */
class JsonWriter
{
  public:
    void beginObject() { punctuate(); _out += '{'; push(true); }
    void endObject() { pop(); _out += '}'; }
    void beginArray() { punctuate(); _out += '['; push(false); }
    void endArray() { pop(); _out += ']'; }

    /** Object member key; must be followed by exactly one value. */
    void key(std::string_view name);

    void value(std::string_view text);
    void value(const char *text) { value(std::string_view(text)); }
    void value(double number);
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    void value(bool boolean);
    void null();

    /** Convenience: key + value in one call. */
    template <typename T>
    void
    member(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    const std::string &str() const { return _out; }
    std::string take() { return std::move(_out); }

  private:
    struct Frame
    {
        bool isObject;
        bool first = true;
        bool expectValue = false;  //!< a key was just written
    };

    void punctuate();
    void push(bool is_object) { _stack.push_back(Frame{is_object}); }
    void pop() { _stack.pop_back(); }
    void appendEscaped(std::string_view text);

    std::string _out;
    std::vector<Frame> _stack;
};

/** Parsed JSON value (tree form). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion order preserved separately for round-trip checks. */
    std::map<std::string, JsonValue> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage is an error). Strict: no comments, no trailing
 * commas, no NaN/Infinity.
 */
Status parseJson(std::string_view text, JsonValue *out);

} // namespace nvwal

#endif // NVWAL_OBS_JSON_HPP
