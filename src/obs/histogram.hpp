/**
 * @file
 * Log-bucketed latency histogram (HdrHistogram-style layout).
 *
 * Values bucket into powers of two subdivided linearly into
 * 2^kSubBucketBits sub-buckets, so the relative quantization error of
 * any recorded value is bounded by 1 / 2^(kSubBucketBits+1) (~1.6%
 * with the default 5 bits) while the whole 64-bit range fits in a few
 * kilobytes of counters. Histograms are mergeable (per-scheme workers
 * can aggregate into one distribution) and exportable bucket by
 * bucket, which is what the metrics JSON dump and the bench `--json`
 * records are built from.
 */

#ifndef NVWAL_OBS_HISTOGRAM_HPP
#define NVWAL_OBS_HISTOGRAM_HPP

#include <algorithm>
#include <bit>
#include <cstdint>
#include <mutex>
#include <vector>

namespace nvwal
{

/**
 * Mergeable log-bucketed histogram of unsigned 64-bit samples.
 *
 * Internally synchronized: components cache `Histogram&` references
 * from a registry and record into them from whatever thread holds
 * their own engine lock, and with several sharded engines over one
 * platform registry those engines are *different* threads. The
 * per-record mutex is uncontended in the single-database case and
 * never charges the simulated clock.
 */
class Histogram
{
  public:
    /** Linear sub-buckets per power-of-two octave: 2^5 = 32. */
    static constexpr unsigned kSubBucketBits = 5;
    static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;

    /** Bucket index of @p value (exact below 2 * kSubBuckets). */
    static std::size_t
    bucketIndexOf(std::uint64_t value)
    {
        if (value < 2 * kSubBuckets)
            return static_cast<std::size_t>(value);
        // 2^e <= value < 2^(e+1) with e > kSubBucketBits: keep the
        // top kSubBucketBits+1 significant bits.
        const unsigned e = std::bit_width(value) - 1;
        const unsigned shift = e - kSubBucketBits;
        const std::uint64_t sub = value >> shift;  // in [S, 2S)
        return static_cast<std::size_t>((shift + 1) * kSubBuckets +
                                        (sub - kSubBuckets));
    }

    /** Smallest value mapping to bucket @p index. */
    static std::uint64_t
    bucketLowerBound(std::size_t index)
    {
        if (index < 2 * kSubBuckets)
            return index;
        const std::uint64_t shift = index / kSubBuckets - 1;
        const std::uint64_t sub = kSubBuckets + index % kSubBuckets;
        return sub << shift;
    }

    /** Largest value mapping to bucket @p index. */
    static std::uint64_t
    bucketUpperBound(std::size_t index)
    {
        if (index < 2 * kSubBuckets)
            return index;
        const std::uint64_t shift = index / kSubBuckets - 1;
        const std::uint64_t sub = kSubBuckets + index % kSubBuckets;
        return (((sub + 1) << shift) - 1);
    }

    Histogram() = default;

    Histogram(const Histogram &other)
    {
        std::lock_guard<std::mutex> theirs(other._mu);
        copyFrom(other);
    }

    Histogram &
    operator=(const Histogram &other)
    {
        if (this != &other) {
            std::scoped_lock both(_mu, other._mu);
            copyFrom(other);
        }
        return *this;
    }

    void
    record(std::uint64_t value, std::uint64_t count = 1)
    {
        if (count == 0)
            return;
        std::lock_guard<std::mutex> g(_mu);
        const std::size_t idx = bucketIndexOf(value);
        if (idx >= _buckets.size())
            _buckets.resize(idx + 1, 0);
        _buckets[idx] += count;
        _count += count;
        _sum += value * count;
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }

    std::uint64_t count() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _count;
    }

    std::uint64_t sum() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _sum;
    }

    std::uint64_t min() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _count == 0 ? 0 : _min;
    }

    std::uint64_t max() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _max;
    }

    double
    mean() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _count == 0 ? 0.0
                           : static_cast<double>(_sum) /
                                 static_cast<double>(_count);
    }

    /**
     * Value at quantile @p q in [0, 1] (0.5 = median). Returns the
     * bucket midpoint clamped to the exact recorded [min, max], so
     * quantiles of single-valued distributions are exact.
     */
    std::uint64_t
    percentile(double q) const
    {
        std::lock_guard<std::mutex> g(_mu);
        if (_count == 0)
            return 0;
        q = std::clamp(q, 0.0, 1.0);
        // Rank of the target sample, 1-based; ceil so p100 = max.
        std::uint64_t rank = static_cast<std::uint64_t>(
            q * static_cast<double>(_count) + 0.9999999999);
        rank = std::clamp<std::uint64_t>(rank, 1, _count);
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < _buckets.size(); ++i) {
            seen += _buckets[i];
            if (seen >= rank) {
                const std::uint64_t mid =
                    bucketLowerBound(i) +
                    (bucketUpperBound(i) - bucketLowerBound(i)) / 2;
                return std::clamp(mid, _min, _max);
            }
        }
        return _max;
    }

    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }

    /** Add every sample of @p other into this histogram. */
    void
    merge(const Histogram &other)
    {
        if (this == &other)
            return;
        std::scoped_lock both(_mu, other._mu);
        if (other._count == 0)
            return;
        if (other._buckets.size() > _buckets.size())
            _buckets.resize(other._buckets.size(), 0);
        for (std::size_t i = 0; i < other._buckets.size(); ++i)
            _buckets[i] += other._buckets[i];
        _count += other._count;
        _sum += other._sum;
        _min = std::min(_min, other._min);
        _max = std::max(_max, other._max);
    }

    /** Drop all samples (the object stays usable). */
    void
    clear()
    {
        std::lock_guard<std::mutex> g(_mu);
        _buckets.clear();
        _count = 0;
        _sum = 0;
        _min = ~static_cast<std::uint64_t>(0);
        _max = 0;
    }

    /** One non-empty bucket, for export. */
    struct Bucket
    {
        std::uint64_t lo;
        std::uint64_t hi;
        std::uint64_t count;
    };

    /** Non-empty buckets in ascending value order. */
    std::vector<Bucket>
    buckets() const
    {
        std::lock_guard<std::mutex> g(_mu);
        std::vector<Bucket> out;
        for (std::size_t i = 0; i < _buckets.size(); ++i) {
            if (_buckets[i] != 0)
                out.push_back(Bucket{bucketLowerBound(i),
                                     bucketUpperBound(i), _buckets[i]});
        }
        return out;
    }

  private:
    /** Caller must hold both locks (copy/assign paths). */
    void
    copyFrom(const Histogram &other)
    {
        _buckets = other._buckets;
        _count = other._count;
        _sum = other._sum;
        _min = other._min;
        _max = other._max;
    }

    mutable std::mutex _mu;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = ~static_cast<std::uint64_t>(0);
    std::uint64_t _max = 0;
};

} // namespace nvwal

#endif // NVWAL_OBS_HISTOGRAM_HPP
