/**
 * @file
 * Low-overhead per-transaction event tracer.
 *
 * Components record begin/frame-append/flush/barrier/commit-mark/
 * checkpoint/recovery events with sim-clock timestamps into a fixed
 * ring buffer; the exporter renders them as Chrome `trace_event`
 * JSON, so a transaction's phase timeline opens directly in
 * about:tracing or https://ui.perfetto.dev. Each event carries the
 * id of the transaction it ran under (the Chrome `tid`), which makes
 * Perfetto lay the trace out as one swimlane per transaction.
 *
 * Overhead discipline: the tracer is disabled by default and every
 * record path starts with one branch on `enabled()`; TraceSpan
 * resolves that branch once at construction. Defining
 * NVWAL_OBS_NO_TRACING compiles all record paths to nothing (the
 * belt-and-braces gate for latency-critical builds); the runtime
 * gate alone is already within measurement noise (see
 * EXPERIMENTS.md's tracing-overhead guard).
 *
 * Events never feed back into the simulation: recording touches
 * neither the SimClock nor any device state, so enabling tracing can
 * never change what a benchmark measures or what a crash-sweep
 * replay recovers (tests/obs_test.cpp proves this).
 */

#ifndef NVWAL_OBS_TRACE_HPP
#define NVWAL_OBS_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/clock.hpp"

namespace nvwal
{

/** One trace event. Name/category point at string literals. */
struct TraceEvent
{
    const char *name = "";
    const char *category = "";
    /** Chrome phase: 'X' = complete (has dur), 'i' = instant. */
    char phase = 'i';
    SimTime ts = 0;          //!< sim-clock nanoseconds
    SimTime dur = 0;         //!< duration in ns ('X' events)
    std::uint64_t txn = 0;   //!< transaction id (0 = background)
    /** Optional numeric argument (bytes, page no, ...). */
    const char *argName = nullptr;
    std::uint64_t arg = 0;
};

/**
 * Ring-buffered, runtime-gated event recorder.
 *
 * Thread-safety: the enabled gate and current-txn id are relaxed
 * atomics (the hot disabled path stays one load + branch) and the
 * ring itself is mutex-guarded, because a platform-level tracer may
 * be shared by several sharded engines committing concurrently.
 */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    /** Timestamps read this clock; unbound tracers stamp 0. */
    void bindClock(const SimClock *clock) { _clock = clock; }

    bool enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }
    void setEnabled(bool on)
    {
        _enabled.store(on, std::memory_order_relaxed);
    }

    /** Resize the ring (drops recorded events). */
    void
    setCapacity(std::size_t capacity)
    {
        std::lock_guard<std::mutex> g(_mu);
        _capacity = capacity == 0 ? 1 : capacity;
        _events.clear();
        _head = 0;
        _recorded = 0;
    }

    std::size_t capacity() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _capacity;
    }

    /** Transaction id subsequent events are attributed to. */
    void setCurrentTxn(std::uint64_t id)
    {
        _currentTxn.store(id, std::memory_order_relaxed);
    }
    std::uint64_t currentTxn() const
    {
        return _currentTxn.load(std::memory_order_relaxed);
    }

    /** Current sim time (0 when no clock is bound). */
    SimTime now() const { return _clock == nullptr ? 0 : _clock->now(); }

    /** Record an instant event. */
    void
    instant(const char *name, const char *category,
            const char *arg_name = nullptr, std::uint64_t arg = 0)
    {
#ifndef NVWAL_OBS_NO_TRACING
        if (!enabled())
            return;
        push(TraceEvent{name, category, 'i', now(), 0, currentTxn(),
                        arg_name, arg});
#else
        (void)name; (void)category; (void)arg_name; (void)arg;
#endif
    }

    /** Record a complete event spanning [start_ts, now]. */
    void
    complete(const char *name, const char *category, SimTime start_ts,
             const char *arg_name = nullptr, std::uint64_t arg = 0)
    {
#ifndef NVWAL_OBS_NO_TRACING
        if (!enabled())
            return;
        const SimTime end = now();
        push(TraceEvent{name, category, 'X', start_ts,
                        end >= start_ts ? end - start_ts : 0,
                        currentTxn(), arg_name, arg});
#else
        (void)name; (void)category; (void)start_ts; (void)arg_name;
        (void)arg;
#endif
    }

    /** Events currently held (<= capacity). */
    std::size_t size() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _events.size();
    }

    /** Events overwritten because the ring wrapped. */
    std::uint64_t dropped() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _recorded - static_cast<std::uint64_t>(_events.size());
    }

    /** Events recorded since the last clear (including dropped). */
    std::uint64_t recorded() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _recorded;
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> g(_mu);
        _events.clear();
        _head = 0;
        _recorded = 0;
    }

    /** Held events, oldest first. */
    std::vector<TraceEvent>
    events() const
    {
        std::lock_guard<std::mutex> g(_mu);
        std::vector<TraceEvent> out;
        out.reserve(_events.size());
        for (std::size_t i = 0; i < _events.size(); ++i)
            out.push_back(_events[(_head + i) % _events.size()]);
        return out;
    }

  private:
    void
    push(const TraceEvent &event)
    {
        std::lock_guard<std::mutex> g(_mu);
        ++_recorded;
        if (_events.size() < _capacity) {
            _events.push_back(event);
            return;
        }
        _events[_head] = event;  // overwrite the oldest
        _head = (_head + 1) % _events.size();
    }

    const SimClock *_clock = nullptr;
    std::atomic<bool> _enabled{false};
    mutable std::mutex _mu;
    std::size_t _capacity = kDefaultCapacity;
    std::vector<TraceEvent> _events;
    std::size_t _head = 0;
    std::uint64_t _recorded = 0;
    std::atomic<std::uint64_t> _currentTxn{0};
};

/**
 * RAII span: records one complete event covering its scope. The
 * enabled check happens once, at construction; a span on a disabled
 * tracer is a null pointer and two dead stores.
 */
class TraceSpan
{
  public:
    TraceSpan(Tracer &tracer, const char *name, const char *category,
              const char *arg_name = nullptr, std::uint64_t arg = 0)
    {
#ifndef NVWAL_OBS_NO_TRACING
        if (tracer.enabled()) {
            _tracer = &tracer;
            _name = name;
            _category = category;
            _argName = arg_name;
            _arg = arg;
            _start = tracer.now();
        }
#else
        (void)tracer; (void)name; (void)category; (void)arg_name;
        (void)arg;
#endif
    }

    /** Attach/update the numeric argument before the span closes. */
    void
    setArg(const char *arg_name, std::uint64_t arg)
    {
        if (_tracer != nullptr) {
            _argName = arg_name;
            _arg = arg;
        }
    }

    ~TraceSpan()
    {
        if (_tracer != nullptr)
            _tracer->complete(_name, _category, _start, _argName, _arg);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    Tracer *_tracer = nullptr;
    const char *_name = nullptr;
    const char *_category = nullptr;
    const char *_argName = nullptr;
    std::uint64_t _arg = 0;
    SimTime _start = 0;
};

/**
 * Render the tracer's events as a Chrome trace_event JSON document
 * ({"traceEvents": [...]}) with one metadata-named thread per
 * transaction id. Load the result in about:tracing or Perfetto.
 */
std::string chromeTraceJson(const Tracer &tracer);

/** Write chromeTraceJson() to @p path via the host file system. */
Status writeChromeTrace(const Tracer &tracer, const std::string &path);

} // namespace nvwal

#endif // NVWAL_OBS_TRACE_HPP
