#include "trace.hpp"

#include <cstdio>
#include <map>
#include <set>

#include "obs/json.hpp"

namespace nvwal
{

std::string
chromeTraceJson(const Tracer &tracer)
{
    const std::vector<TraceEvent> events = tracer.events();

    JsonWriter w;
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();

    // Metadata first: name each Chrome "thread" (= transaction id) so
    // Perfetto labels the swimlanes. Sorted set -> deterministic output.
    std::set<std::uint64_t> txns;
    for (const TraceEvent &e : events)
        txns.insert(e.txn);
    for (const std::uint64_t txn : txns) {
        w.beginObject();
        w.member("name", "thread_name");
        w.member("ph", "M");
        w.member("pid", 1);
        w.member("tid", txn);
        w.key("args");
        w.beginObject();
        if (txn == 0) {
            w.member("name", "background");
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "txn %llu",
                          static_cast<unsigned long long>(txn));
            w.member("name", buf);
        }
        w.endObject();
        w.endObject();
    }
    // Keep swimlane order = transaction order, not alphabetical.
    for (const std::uint64_t txn : txns) {
        w.beginObject();
        w.member("name", "thread_sort_index");
        w.member("ph", "M");
        w.member("pid", 1);
        w.member("tid", txn);
        w.key("args");
        w.beginObject();
        w.member("sort_index", txn);
        w.endObject();
        w.endObject();
    }

    for (const TraceEvent &e : events) {
        w.beginObject();
        w.member("name", e.name);
        w.member("cat", e.category);
        const char ph[2] = {e.phase, '\0'};
        w.member("ph", ph);
        // Chrome wants microseconds; doubles keep sub-us precision.
        w.member("ts", static_cast<double>(e.ts) / 1000.0);
        if (e.phase == 'X')
            w.member("dur", static_cast<double>(e.dur) / 1000.0);
        if (e.phase == 'i')
            w.member("s", "t");  // instant scope: thread
        w.member("pid", 1);
        w.member("tid", e.txn);
        if (e.argName != nullptr) {
            w.key("args");
            w.beginObject();
            w.member(e.argName, e.arg);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.member("displayTimeUnit", "ns");
    w.key("otherData");
    w.beginObject();
    w.member("droppedEvents", tracer.dropped());
    w.endObject();
    w.endObject();
    return w.take();
}

Status
writeChromeTrace(const Tracer &tracer, const std::string &path)
{
    const std::string doc = chromeTraceJson(tracer);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return Status::ioError("cannot open trace file: " + path);
    const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (n != doc.size())
        return Status::ioError("short write to trace file: " + path);
    return Status::ok();
}

} // namespace nvwal
