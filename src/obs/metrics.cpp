#include "metrics.hpp"

#include "obs/json.hpp"

namespace nvwal
{

std::string
metricsJson(const MetricsRegistry &metrics)
{
    JsonWriter w;
    w.beginObject();

    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : metrics.snapshot())
        w.member(name, value);
    w.endObject();

    w.key("gauges");
    w.beginObject();
    for (const auto &[name, value] : metrics.gaugesSnapshot())
        w.member(name, value);
    w.endObject();

    w.key("histograms");
    w.beginObject();
    for (const auto &[name, hist] : metrics.histogramsSnapshot()) {
        if (hist.count() == 0)
            continue;
        w.key(name);
        w.beginObject();
        w.member("count", hist.count());
        w.member("sum", hist.sum());
        w.member("min", hist.min());
        w.member("max", hist.max());
        w.member("mean", hist.mean());
        w.member("p50", hist.p50());
        w.member("p95", hist.p95());
        w.member("p99", hist.p99());
        w.key("buckets");
        w.beginArray();
        for (const Histogram::Bucket &b : hist.buckets()) {
            w.beginObject();
            w.member("lo", b.lo);
            w.member("hi", b.hi);
            w.member("count", b.count);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
    return w.take();
}

} // namespace nvwal
