#include "json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nvwal
{

// ---- writer --------------------------------------------------------

void
JsonWriter::punctuate()
{
    if (_stack.empty())
        return;
    Frame &top = _stack.back();
    if (top.expectValue) {
        top.expectValue = false;  // the value following a key
        return;
    }
    if (!top.first)
        _out += ',';
    top.first = false;
}

void
JsonWriter::key(std::string_view name)
{
    punctuate();
    appendEscaped(name);
    _out += ':';
    _stack.back().expectValue = true;
}

void
JsonWriter::appendEscaped(std::string_view text)
{
    _out += '"';
    for (const char c : text) {
        switch (c) {
          case '"': _out += "\\\""; break;
          case '\\': _out += "\\\\"; break;
          case '\n': _out += "\\n"; break;
          case '\r': _out += "\\r"; break;
          case '\t': _out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                _out += buf;
            } else {
                _out += c;
            }
        }
    }
    _out += '"';
}

void
JsonWriter::value(std::string_view text)
{
    punctuate();
    appendEscaped(text);
}

void
JsonWriter::value(double number)
{
    punctuate();
    if (!std::isfinite(number)) {
        _out += "null";  // JSON has no NaN/Infinity
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", number);
    _out += buf;
}

void
JsonWriter::value(std::uint64_t number)
{
    punctuate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(number));
    _out += buf;
}

void
JsonWriter::value(std::int64_t number)
{
    punctuate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(number));
    _out += buf;
}

void
JsonWriter::value(bool boolean)
{
    punctuate();
    _out += boolean ? "true" : "false";
}

void
JsonWriter::null()
{
    punctuate();
    _out += "null";
}

// ---- parser --------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (type != Type::Object)
        return nullptr;
    auto it = object.find(name);
    return it == object.end() ? nullptr : &it->second;
}

namespace
{

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;
    static constexpr int kMaxDepth = 64;

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void
    skipWs()
    {
        while (!atEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                            text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    Status
    fail(const std::string &what) const
    {
        return Status::invalidArgument(
            "JSON parse error at byte " + std::to_string(pos) + ": " +
            what);
    }

    Status
    expect(char c)
    {
        skipWs();
        if (atEnd() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return Status::ok();
    }

    Status
    parseString(std::string *out)
    {
        NVWAL_RETURN_IF_ERROR(expect('"'));
        out->clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return Status::ok();
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (atEnd())
                return fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += 10 + h - 'a';
                    else if (h >= 'A' && h <= 'F')
                        code += 10 + h - 'A';
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode (surrogate pairs unsupported: the
                // writer never emits them for our ASCII key space).
                if (code < 0x80) {
                    *out += static_cast<char>(code);
                } else if (code < 0x800) {
                    *out += static_cast<char>(0xC0 | (code >> 6));
                    *out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    *out += static_cast<char>(0xE0 | (code >> 12));
                    *out += static_cast<char>(0x80 |
                                              ((code >> 6) & 0x3F));
                    *out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    Status
    parseValue(JsonValue *out)
    {
        if (++depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (atEnd())
            return fail("unexpected end of input");
        Status s = Status::ok();
        const char c = peek();
        if (c == '{') {
            ++pos;
            out->type = JsonValue::Type::Object;
            skipWs();
            if (!atEnd() && peek() == '}') {
                ++pos;
            } else {
                while (true) {
                    std::string name;
                    NVWAL_RETURN_IF_ERROR(parseString(&name));
                    NVWAL_RETURN_IF_ERROR(expect(':'));
                    JsonValue member;
                    NVWAL_RETURN_IF_ERROR(parseValue(&member));
                    out->object[name] = std::move(member);
                    skipWs();
                    if (atEnd())
                        return fail("unterminated object");
                    if (peek() == ',') {
                        ++pos;
                        skipWs();
                        continue;
                    }
                    if (peek() == '}') {
                        ++pos;
                        break;
                    }
                    return fail("expected ',' or '}'");
                }
            }
        } else if (c == '[') {
            ++pos;
            out->type = JsonValue::Type::Array;
            skipWs();
            if (!atEnd() && peek() == ']') {
                ++pos;
            } else {
                while (true) {
                    JsonValue element;
                    NVWAL_RETURN_IF_ERROR(parseValue(&element));
                    out->array.push_back(std::move(element));
                    skipWs();
                    if (atEnd())
                        return fail("unterminated array");
                    if (peek() == ',') {
                        ++pos;
                        continue;
                    }
                    if (peek() == ']') {
                        ++pos;
                        break;
                    }
                    return fail("expected ',' or ']'");
                }
            }
        } else if (c == '"') {
            out->type = JsonValue::Type::String;
            s = parseString(&out->string);
        } else if (c == 't' || c == 'f') {
            const std::string_view word = c == 't' ? "true" : "false";
            if (text.substr(pos, word.size()) != word)
                return fail("bad literal");
            pos += word.size();
            out->type = JsonValue::Type::Bool;
            out->boolean = c == 't';
        } else if (c == 'n') {
            if (text.substr(pos, 4) != "null")
                return fail("bad literal");
            pos += 4;
            out->type = JsonValue::Type::Null;
        } else if (c == '-' || (c >= '0' && c <= '9')) {
            const std::size_t start = pos;
            if (peek() == '-')
                ++pos;
            while (!atEnd() && std::isdigit(
                                   static_cast<unsigned char>(peek())))
                ++pos;
            if (!atEnd() && peek() == '.') {
                ++pos;
                while (!atEnd() &&
                       std::isdigit(static_cast<unsigned char>(peek())))
                    ++pos;
            }
            if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
                ++pos;
                if (!atEnd() && (peek() == '+' || peek() == '-'))
                    ++pos;
                while (!atEnd() &&
                       std::isdigit(static_cast<unsigned char>(peek())))
                    ++pos;
            }
            const std::string token(text.substr(start, pos - start));
            char *end = nullptr;
            out->number = std::strtod(token.c_str(), &end);
            if (end == nullptr || *end != '\0')
                return fail("bad number");
            out->type = JsonValue::Type::Number;
        } else {
            return fail("unexpected character");
        }
        --depth;
        return s;
    }
};

} // namespace

Status
parseJson(std::string_view text, JsonValue *out)
{
    *out = JsonValue{};
    Parser parser{text};
    NVWAL_RETURN_IF_ERROR(parser.parseValue(out));
    parser.skipWs();
    if (!parser.atEnd())
        return parser.fail("trailing garbage after document");
    return Status::ok();
}

} // namespace nvwal
