/**
 * @file
 * MetricsRegistry: counters + histograms + gauges + the event tracer.
 *
 * This absorbs the original PR-2 stats registry (named monotonic
 * counters, snapshot/delta) and extends it with log-bucketed latency
 * histograms (Histogram), point-in-time gauges, and an owned
 * per-transaction Tracer. Every component takes a `MetricsRegistry&`
 * directly; the canonical counter names live in `src/sim/stats.hpp`.
 *
 * Thread-safety: the registry's map structure is mutex-guarded and
 * Histogram objects are internally synchronized, because the sharded
 * engine shares one platform registry (Env::stats) across shards
 * whose engine locks are independent. Per-database registries still
 * see every mutation under that database's engine lock, so the mutex
 * is uncontended there. Export paths read through the by-value
 * snapshot accessors (snapshot(), histogramsSnapshot(),
 * gaugesSnapshot()), which copy under the registry mutex and are
 * therefore safe while background threads are actively recording —
 * there is no quiescence requirement anywhere in the export API.
 *
 * Reference stability contract: `histogram(name)` returns a reference
 * that stays valid for the registry's lifetime — components cache it
 * at construction for hot paths. `clear()` therefore resets histogram
 * objects in place instead of erasing map entries.
 */

#ifndef NVWAL_OBS_METRICS_HPP
#define NVWAL_OBS_METRICS_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace nvwal
{

/** Snapshot of all counters at a point in time. */
using StatsSnapshot = std::map<std::string, std::uint64_t>;

/** Counters, histograms, gauges, and the transaction tracer. */
class MetricsRegistry
{
  public:
    // ---- counters ------------------------------------------------

    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        std::lock_guard<std::mutex> g(_mu);
        _counters[name] += delta;
    }

    /** Current value of @p name (zero if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        std::lock_guard<std::mutex> g(_mu);
        auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second;
    }

    /**
     * Copy of every counter. When the tracer ring has wrapped the
     * result also carries the derived counter "trace.events_dropped"
     * (stats::kTraceEventsDropped — the literal is repeated here
     * because stats.hpp includes this header), so ring overflow is
     * visible in every metrics export without a tracer query. The
     * key is omitted while zero to keep exact-counter expectations
     * in existing tests and deltas untouched.
     */
    StatsSnapshot snapshot() const
    {
        StatsSnapshot out;
        {
            std::lock_guard<std::mutex> g(_mu);
            out = _counters;
        }
        const std::uint64_t dropped = _tracer.dropped();
        if (dropped > 0)
            out["trace.events_dropped"] = dropped;
        return out;
    }

    /**
     * Per-counter difference @p now - @p before. Keys present on only
     * one side are handled explicitly: a counter absent from @p now
     * (registry cleared in between) yields 0, never an underflowed
     * wrap; a counter absent from @p before contributes its full
     * @p now value. Every key from either snapshot appears in the
     * result.
     */
    static StatsSnapshot
    delta(const StatsSnapshot &before, const StatsSnapshot &now)
    {
        StatsSnapshot d;
        for (const auto &[name, value] : now) {
            auto it = before.find(name);
            const std::uint64_t base =
                it == before.end() ? 0 : it->second;
            d[name] = value >= base ? value - base : 0;
        }
        for (const auto &[name, value] : before) {
            if (now.find(name) == now.end())
                d[name] = 0;
        }
        return d;
    }

    // ---- histograms ------------------------------------------------

    /**
     * Histogram named @p name, created empty on first use. The
     * returned reference stays valid for the registry's lifetime.
     */
    Histogram &histogram(const std::string &name)
    {
        std::lock_guard<std::mutex> g(_mu);
        return _histograms[name];
    }

    /** Existing histogram or nullptr (read-side lookup). */
    const Histogram *
    findHistogram(const std::string &name) const
    {
        std::lock_guard<std::mutex> g(_mu);
        auto it = _histograms.find(name);
        return it == _histograms.end() ? nullptr : &it->second;
    }

    /** One-shot sample into histogram @p name. */
    void
    recordNs(const std::string &name, std::uint64_t ns)
    {
        histogram(name).record(ns);
    }

    /**
     * Copy of every histogram, taken under the registry mutex (each
     * Histogram's copy constructor locks that histogram in turn), so
     * exporting is safe mid-recording. Replaces the former unlocked
     * const-reference accessor, which silently required a quiescent
     * registry — a contract the background checkpointer and
     * durability threads violate.
     */
    std::map<std::string, Histogram>
    histogramsSnapshot() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _histograms;
    }

    // ---- gauges ----------------------------------------------------

    /** Set gauge @p name to @p value (last-write-wins, not a sum). */
    void
    setGauge(const std::string &name, std::uint64_t value)
    {
        std::lock_guard<std::mutex> g(_mu);
        _gauges[name] = value;
    }

    std::uint64_t
    gauge(const std::string &name) const
    {
        std::lock_guard<std::mutex> g(_mu);
        auto it = _gauges.find(name);
        return it == _gauges.end() ? 0 : it->second;
    }

    /** Copy of every gauge, taken under the registry mutex. */
    std::map<std::string, std::uint64_t>
    gaugesSnapshot() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _gauges;
    }

    // ---- tracer ----------------------------------------------------

    Tracer &tracer() { return _tracer; }
    const Tracer &tracer() const { return _tracer; }

    /**
     * Reset counters and gauges, and empty every histogram in place
     * (histogram references handed out earlier remain valid). The
     * tracer is left alone; clear it explicitly via tracer().clear().
     */
    void
    clear()
    {
        std::lock_guard<std::mutex> g(_mu);
        _counters.clear();
        _gauges.clear();
        for (auto &[name, hist] : _histograms)
            hist.clear();
    }

  private:
    mutable std::mutex _mu;
    StatsSnapshot _counters;
    std::map<std::string, Histogram> _histograms;
    std::map<std::string, std::uint64_t> _gauges;
    Tracer _tracer;
};

/**
 * Scoped timer: records the sim-time spent in its scope into a
 * histogram (and optionally mirrors it as a trace span). The clock is
 * read through the registry's tracer binding, so components need no
 * extra clock reference.
 */
class ScopedHistTimer
{
  public:
    ScopedHistTimer(MetricsRegistry &metrics, Histogram &hist)
        : _metrics(metrics), _hist(hist),
          _start(metrics.tracer().now())
    {
    }

    ~ScopedHistTimer()
    {
        const std::uint64_t end = _metrics.tracer().now();
        _hist.record(end >= _start ? end - _start : 0);
    }

    ScopedHistTimer(const ScopedHistTimer &) = delete;
    ScopedHistTimer &operator=(const ScopedHistTimer &) = delete;

  private:
    MetricsRegistry &_metrics;
    Histogram &_hist;
    std::uint64_t _start;
};

/**
 * Full registry dump as a JSON document:
 * {"counters": {...}, "gauges": {...},
 *  "histograms": {name: {count,sum,min,max,mean,p50,p95,p99,
 *                        buckets:[{lo,hi,count},...]}}}
 * Keys are emitted in sorted order (std::map), so output is stable.
 */
std::string metricsJson(const MetricsRegistry &metrics);

} // namespace nvwal

#endif // NVWAL_OBS_METRICS_HPP
