/**
 * @file
 * Block-device (eMMC flash) model with latency accounting and an
 * I/O trace recorder.
 *
 * The trace — (simulated time, block address, tag) per write — is
 * what regenerates the paper's Figure 8 block trace of SQLite WAL
 * vs. optimized WAL. Tags identify the traffic stream (.db file,
 * .db-wal file, EXT4 journal) the same way the figure's legend does.
 */

#ifndef NVWAL_BLOCKDEV_BLOCK_DEVICE_HPP
#define NVWAL_BLOCKDEV_BLOCK_DEVICE_HPP

#include <mutex>
#include <vector>

#include "common/bytes.hpp"
#include "common/logging.hpp"
#include "common/types.hpp"
#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "sim/stats.hpp"

namespace nvwal
{

/** Traffic stream labels for the I/O trace (Figure 8 legend). */
enum class IoTag
{
    DbFile,    //!< .db main database file
    WalFile,   //!< .db-wal write-ahead log file
    Journal,   //!< EXT4 journal
    Meta,      //!< file-system metadata in place (rare)
    Other,
};

const char *ioTagName(IoTag tag);

/** One recorded block write. */
struct TraceEntry
{
    SimTime timeNs;
    BlockNo block;
    IoTag tag;
};

/**
 * Flash block device with per-block program/read latencies.
 *
 * Thread-safety: shards of a sharded engine checkpoint through one
 * shared device concurrently, so the media, trace, and per-tag byte
 * counters are mutex-guarded. trace() hands out a reference and
 * requires a quiescent device (report paths only).
 */
class BlockDevice
{
  public:
    BlockDevice(std::uint64_t num_blocks, std::uint32_t block_size,
                SimClock &clock, const CostModel &cost,
                MetricsRegistry &stats);

    std::uint32_t blockSize() const { return _blockSize; }
    std::uint64_t numBlocks() const { return _numBlocks; }

    /** Program one block. @p data must be exactly blockSize bytes. */
    void writeBlock(BlockNo block, ConstByteSpan data, IoTag tag);

    /** Read one block. */
    void readBlock(BlockNo block, ByteSpan out);

    /** Enable/disable trace recording (off by default). */
    void
    setTracing(bool enabled)
    {
        std::lock_guard<std::mutex> g(_mu);
        _tracing = enabled;
    }

    /** Recorded trace; the device must be quiescent while read. */
    const std::vector<TraceEntry> &trace() const { return _trace; }

    void
    clearTrace()
    {
        std::lock_guard<std::mutex> g(_mu);
        _trace.clear();
    }

    /** Total bytes written per tag since construction. */
    std::uint64_t
    bytesWritten(IoTag tag) const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _bytesPerTag[static_cast<std::size_t>(tag)];
    }

    // ---- image snapshot / restore (crash-sweep harness) ------------

    /** Raw media image. Traces and byte counters are not captured. */
    struct Snapshot
    {
        ByteBuffer data;
    };

    Snapshot
    snapshot() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return Snapshot{_data};
    }

    void
    restore(const Snapshot &snap)
    {
        std::lock_guard<std::mutex> g(_mu);
        NVWAL_ASSERT(snap.data.size() == _data.size(),
                     "snapshot is for a different device size");
        _data = snap.data;
    }

  private:
    std::uint64_t _numBlocks;
    std::uint32_t _blockSize;
    SimClock &_clock;
    const CostModel &_cost;
    MetricsRegistry &_stats;

    mutable std::mutex _mu;
    ByteBuffer _data;
    bool _tracing = false;
    std::vector<TraceEntry> _trace;
    std::uint64_t _bytesPerTag[5] = {0, 0, 0, 0, 0};
};

} // namespace nvwal

#endif // NVWAL_BLOCKDEV_BLOCK_DEVICE_HPP
