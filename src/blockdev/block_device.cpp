#include "block_device.hpp"

#include <cstring>

namespace nvwal
{

const char *
ioTagName(IoTag tag)
{
    switch (tag) {
      case IoTag::DbFile: return ".db";
      case IoTag::WalFile: return ".db-wal";
      case IoTag::Journal: return "ext4-journal";
      case IoTag::Meta: return "fs-meta";
      case IoTag::Other: return "other";
    }
    return "?";
}

BlockDevice::BlockDevice(std::uint64_t num_blocks, std::uint32_t block_size,
                         SimClock &clock, const CostModel &cost,
                         MetricsRegistry &stats)
    : _numBlocks(num_blocks), _blockSize(block_size), _clock(clock),
      _cost(cost), _stats(stats),
      _data(num_blocks * block_size, 0)
{
    NVWAL_ASSERT(block_size > 0 && num_blocks > 0);
}

void
BlockDevice::writeBlock(BlockNo block, ConstByteSpan data, IoTag tag)
{
    std::lock_guard<std::mutex> g(_mu);
    NVWAL_ASSERT(block < _numBlocks, "block write out of range: %llu",
                 static_cast<unsigned long long>(block));
    NVWAL_ASSERT(data.size() == _blockSize,
                 "block write must be exactly one block");
    _clock.advance(_cost.blockProgramNs);
    std::memcpy(_data.data() + block * _blockSize, data.data(), _blockSize);
    _stats.add(stats::kBlocksWritten);
    _bytesPerTag[static_cast<std::size_t>(tag)] += _blockSize;
    if (tag == IoTag::Journal)
        _stats.add(stats::kJournalBlocksWritten);
    if (_tracing)
        _trace.push_back(TraceEntry{_clock.now(), block, tag});
}

void
BlockDevice::readBlock(BlockNo block, ByteSpan out)
{
    std::lock_guard<std::mutex> g(_mu);
    NVWAL_ASSERT(block < _numBlocks, "block read out of range");
    NVWAL_ASSERT(out.size() == _blockSize,
                 "block read must be exactly one block");
    _clock.advance(_cost.blockReadNs);
    _stats.add(stats::kBlocksRead);
    std::memcpy(out.data(), _data.data() + block * _blockSize, _blockSize);
}

} // namespace nvwal
