/**
 * @file
 * A small journaling file system model in the style of EXT4 ordered
 * mode, sufficient to reproduce the I/O behaviour the paper measures
 * for file-based SQLite WAL (sections 1, 5.4, Figure 8):
 *
 *  - data is buffered in a volatile page cache until fsync();
 *  - fsync() writes the file's dirty data blocks, then commits a
 *    journal transaction for the dirty metadata: a descriptor block,
 *    the inode-table block (size/mtime always change), block-bitmap
 *    and group-descriptor blocks when the file grew, and a commit
 *    block. This is the "16 KB + 4 KB of journal traffic per 4 KB
 *    WAL append" pathology of stock SQLite WAL, and the traffic
 *    that log-page pre-allocation (fallocate) reduces by ~40%;
 *  - crash() drops everything not yet made durable by fsync().
 *
 * Files are flat names; there are no directories. Blocks are
 * allocated from a simple free list. The journal occupies a
 * dedicated block range so traces show it as a separate band.
 */

#ifndef NVWAL_FS_JOURNALING_FS_HPP
#define NVWAL_FS_JOURNALING_FS_HPP

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/status.hpp"

namespace nvwal
{

/**
 * EXT4-ordered-mode-like file system over a BlockDevice.
 *
 * Thread-safety: every public method takes an internal recursive
 * mutex; shards of a sharded engine write their .db files through
 * one shared file system. The fs locks before calling down into the
 * BlockDevice, never the reverse.
 */
class JournalingFs
{
  public:
    /**
     * @param journal_blocks Size of the journal region; journal
     *        writes cycle through it (like a real EXT4 journal).
     */
    JournalingFs(BlockDevice &device, SimClock &clock,
                 const CostModel &cost, MetricsRegistry &stats,
                 std::uint64_t journal_blocks = 256);

    /** Create an empty file. Fails if it already exists. */
    Status create(const std::string &name);

    bool exists(const std::string &name) const;

    /** Size in bytes (0 for missing files). */
    std::uint64_t fileSize(const std::string &name) const;

    /** Allocated size in bytes (>= fileSize after fallocate). */
    std::uint64_t allocatedSize(const std::string &name) const;

    /**
     * Write @p data at byte offset @p off, extending the file and
     * allocating blocks as needed. Buffered until fsync().
     */
    Status pwrite(const std::string &name, std::uint64_t off,
                  ConstByteSpan data);

    /** Read @p out.size() bytes at @p off (short reads are errors). */
    Status pread(const std::string &name, std::uint64_t off,
                 ByteSpan out);

    /**
     * Pre-allocate blocks up to @p size bytes without changing the
     * file size (the WALDIO-style optimization of section 5.4).
     */
    Status fallocate(const std::string &name, std::uint64_t size);

    /** Flush data and journal the metadata (ordered mode). */
    Status fsync(const std::string &name);

    /** Shrink or grow the file size (grow leaves a hole of zeros). */
    Status truncate(const std::string &name, std::uint64_t size);

    Status remove(const std::string &name);

    /**
     * Atomically rename @p from to @p to, replacing any existing
     * @p to (POSIX rename semantics). The rename is journaled and
     * durable on return; the file's *data* durability still follows
     * its last fsync.
     */
    Status rename(const std::string &from, const std::string &to);

    /** Drop all volatile state, as if power was lost. */
    void crash();

    /**
     * Fault injection (tests only): fail the next @p count pread()
     * calls with an I/O error before touching the device. Pass 0 to
     * clear a pending injection.
     */
    void injectReadFaults(std::uint64_t count);

    /** Tag used for a file's data writes, derived from its suffix. */
    static IoTag tagForFile(const std::string &name);

    // ---- state snapshot / restore (crash-sweep harness) ------------

    struct Snapshot;

    /** Capture all file-system state, volatile and durable. */
    Snapshot snapshot() const;

    /** Restore a snapshot taken on this file system. */
    void restore(const Snapshot &snap);

  private:
    struct Inode
    {
        std::uint64_t size = 0;
        std::vector<BlockNo> blocks;     //!< one entry per file block
        std::map<std::uint64_t, ByteBuffer> dirtyData;  //!< file-block idx
        bool metaDirty = false;          //!< size/mtime changed
        bool allocDirty = false;         //!< blocks allocated/freed
    };

    Status ensureBlocks(Inode &inode, std::uint64_t file_blocks);
    BlockNo allocBlock();
    void journalCommit(bool alloc_dirty);
    Inode *find(const std::string &name);
    const Inode *find(const std::string &name) const;

    BlockDevice &_device;
    SimClock &_clock;
    const CostModel &_cost;
    MetricsRegistry &_stats;

    /** Guards all fs state; recursive for nested public calls. */
    mutable std::recursive_mutex _mu;

    std::uint64_t _journalBlocks;
    std::uint64_t _journalHead = 0;  //!< next journal block (cycled)
    BlockNo _nextDataBlock;          //!< bump allocator frontier
    std::vector<BlockNo> _freeList;

    std::uint64_t _readFaultsLeft = 0;  //!< injected pread failures

    std::map<std::string, Inode> _files;
    /** Durable image, replaced at each fsync; crash() restores it. */
    struct DurableInode
    {
        std::uint64_t size = 0;
        std::vector<BlockNo> blocks;
    };
    std::map<std::string, DurableInode> _durableFiles;
};

/**
 * Complete JournalingFs state: inodes with their buffered dirty data,
 * the durable inode images, and the allocator frontier. Paired with a
 * BlockDevice snapshot this reproduces the exact on-media + in-cache
 * file-system state of the capture point.
 */
struct JournalingFs::Snapshot
{
    std::uint64_t journalHead = 0;
    BlockNo nextDataBlock = 0;
    std::vector<BlockNo> freeList;
    std::map<std::string, Inode> files;
    std::map<std::string, DurableInode> durableFiles;
};

} // namespace nvwal

#endif // NVWAL_FS_JOURNALING_FS_HPP
