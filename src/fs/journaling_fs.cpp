#include "journaling_fs.hpp"

#include <algorithm>
#include <cstring>

namespace nvwal
{

JournalingFs::JournalingFs(BlockDevice &device, SimClock &clock,
                           const CostModel &cost, MetricsRegistry &stats,
                           std::uint64_t journal_blocks)
    : _device(device), _clock(clock), _cost(cost), _stats(stats),
      _journalBlocks(journal_blocks), _nextDataBlock(journal_blocks)
{
    NVWAL_ASSERT(journal_blocks < device.numBlocks(),
                 "journal larger than device");
}

IoTag
JournalingFs::tagForFile(const std::string &name)
{
    auto ends_with = [&](const char *suffix) {
        const std::size_t n = std::strlen(suffix);
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    if (ends_with("-wal") || ends_with(".wal"))
        return IoTag::WalFile;
    if (ends_with(".db"))
        return IoTag::DbFile;
    return IoTag::Other;
}

JournalingFs::Inode *
JournalingFs::find(const std::string &name)
{
    auto it = _files.find(name);
    return it == _files.end() ? nullptr : &it->second;
}

const JournalingFs::Inode *
JournalingFs::find(const std::string &name) const
{
    auto it = _files.find(name);
    return it == _files.end() ? nullptr : &it->second;
}

Status
JournalingFs::create(const std::string &name)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    if (find(name) != nullptr)
        return Status::invalidArgument("file exists: " + name);
    _files[name] = Inode{};
    _files[name].metaDirty = true;
    return Status::ok();
}

bool
JournalingFs::exists(const std::string &name) const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    return find(name) != nullptr;
}

std::uint64_t
JournalingFs::fileSize(const std::string &name) const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    const Inode *inode = find(name);
    return inode == nullptr ? 0 : inode->size;
}

std::uint64_t
JournalingFs::allocatedSize(const std::string &name) const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    const Inode *inode = find(name);
    return inode == nullptr
               ? 0
               : inode->blocks.size() *
                     static_cast<std::uint64_t>(_device.blockSize());
}

BlockNo
JournalingFs::allocBlock()
{
    if (!_freeList.empty()) {
        const BlockNo b = _freeList.back();
        _freeList.pop_back();
        return b;
    }
    NVWAL_ASSERT(_nextDataBlock < _device.numBlocks(),
                 "file system full");
    return _nextDataBlock++;
}

Status
JournalingFs::ensureBlocks(Inode &inode, std::uint64_t file_blocks)
{
    while (inode.blocks.size() < file_blocks) {
        inode.blocks.push_back(allocBlock());
        inode.allocDirty = true;
    }
    return Status::ok();
}

Status
JournalingFs::pwrite(const std::string &name, std::uint64_t off,
                     ConstByteSpan data)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    Inode *inode = find(name);
    if (inode == nullptr) {
        NVWAL_RETURN_IF_ERROR(create(name));
        inode = find(name);
    }
    const std::uint32_t bs = _device.blockSize();
    const std::uint64_t end = off + data.size();
    NVWAL_RETURN_IF_ERROR(ensureBlocks(*inode, (end + bs - 1) / bs));

    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::uint64_t file_off = off + pos;
        const std::uint64_t blk = file_off / bs;
        const std::uint32_t in_blk =
            static_cast<std::uint32_t>(file_off % bs);
        const std::size_t chunk =
            std::min<std::size_t>(bs - in_blk, data.size() - pos);

        auto [it, inserted] = inode->dirtyData.try_emplace(blk);
        if (inserted) {
            it->second.resize(bs);
            // Read-modify-write of a partially overwritten block.
            if (chunk < bs) {
                _device.readBlock(inode->blocks[blk],
                                  ByteSpan(it->second.data(), bs));
            }
        }
        std::memcpy(it->second.data() + in_blk, data.data() + pos, chunk);
        pos += chunk;
    }
    if (end > inode->size) {
        inode->size = end;
        inode->metaDirty = true;
    } else {
        // mtime still changes; EXT4 dirties the inode either way.
        inode->metaDirty = true;
    }
    return Status::ok();
}

Status
JournalingFs::pread(const std::string &name, std::uint64_t off,
                    ByteSpan out)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    if (_readFaultsLeft > 0) {
        _readFaultsLeft--;
        return Status::ioError("injected read fault: " + name);
    }
    const Inode *inode = find(name);
    if (inode == nullptr)
        return Status::notFound("no such file: " + name);
    if (off + out.size() > inode->size)
        return Status::invalidArgument("read past end of file");

    const std::uint32_t bs = _device.blockSize();
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::uint64_t file_off = off + pos;
        const std::uint64_t blk = file_off / bs;
        const std::uint32_t in_blk =
            static_cast<std::uint32_t>(file_off % bs);
        const std::size_t chunk =
            std::min<std::size_t>(bs - in_blk, out.size() - pos);

        auto it = inode->dirtyData.find(blk);
        if (it != inode->dirtyData.end()) {
            std::memcpy(out.data() + pos, it->second.data() + in_blk,
                        chunk);
        } else {
            ByteBuffer buf(bs);
            _device.readBlock(inode->blocks[blk], ByteSpan(buf.data(), bs));
            std::memcpy(out.data() + pos, buf.data() + in_blk, chunk);
        }
        pos += chunk;
    }
    return Status::ok();
}

Status
JournalingFs::fallocate(const std::string &name, std::uint64_t size)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    Inode *inode = find(name);
    if (inode == nullptr)
        return Status::notFound("no such file: " + name);
    const std::uint32_t bs = _device.blockSize();
    return ensureBlocks(*inode, (size + bs - 1) / bs);
}

void
JournalingFs::journalCommit(bool alloc_dirty)
{
    // Ordered-mode journal transaction: descriptor, the dirtied
    // metadata blocks, then the commit block. The inode table block
    // is always dirty (size/mtime); allocation additionally dirties
    // the block bitmap and the group descriptor.
    std::uint64_t meta_blocks = 1;  // inode table
    if (alloc_dirty)
        meta_blocks += 2;           // block bitmap + group descriptor

    const std::uint32_t bs = _device.blockSize();
    ByteBuffer block(bs, 0);
    const std::uint64_t total = 1 + meta_blocks + 1;  // desc + meta + commit
    for (std::uint64_t i = 0; i < total; ++i) {
        const BlockNo jb = _journalHead % _journalBlocks;
        _journalHead++;
        _device.writeBlock(jb, ConstByteSpan(block.data(), bs),
                           IoTag::Journal);
    }
}

Status
JournalingFs::fsync(const std::string &name)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    Inode *inode = find(name);
    if (inode == nullptr)
        return Status::notFound("no such file: " + name);

    const IoTag tag = tagForFile(name);
    const std::uint32_t bs = _device.blockSize();

    // Ordered mode: data first...
    for (auto &[blk, buf] : inode->dirtyData) {
        _device.writeBlock(inode->blocks[blk],
                           ConstByteSpan(buf.data(), bs), tag);
    }
    inode->dirtyData.clear();

    // ... then the journaled metadata transaction.
    if (inode->metaDirty || inode->allocDirty)
        journalCommit(inode->allocDirty);
    inode->metaDirty = false;
    inode->allocDirty = false;

    // Device cache flush barrier.
    _clock.advance(_cost.fsyncBaseNs);
    _stats.add(stats::kFsyncs);

    _durableFiles[name] = DurableInode{inode->size, inode->blocks};
    return Status::ok();
}

Status
JournalingFs::truncate(const std::string &name, std::uint64_t size)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    Inode *inode = find(name);
    if (inode == nullptr)
        return Status::notFound("no such file: " + name);
    const std::uint32_t bs = _device.blockSize();
    const std::uint64_t keep_blocks = (size + bs - 1) / bs;
    while (inode->blocks.size() > keep_blocks) {
        _freeList.push_back(inode->blocks.back());
        inode->blocks.pop_back();
        inode->allocDirty = true;
    }
    for (auto it = inode->dirtyData.begin(); it != inode->dirtyData.end();) {
        if (it->first >= keep_blocks)
            it = inode->dirtyData.erase(it);
        else
            ++it;
    }
    inode->size = size;
    inode->metaDirty = true;
    return Status::ok();
}

Status
JournalingFs::remove(const std::string &name)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    Inode *inode = find(name);
    if (inode == nullptr)
        return Status::notFound("no such file: " + name);
    for (BlockNo b : inode->blocks)
        _freeList.push_back(b);
    _files.erase(name);
    _durableFiles.erase(name);
    journalCommit(true);
    return Status::ok();
}

Status
JournalingFs::rename(const std::string &from, const std::string &to)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    Inode *src = find(from);
    if (src == nullptr)
        return Status::notFound("no such file: " + from);
    if (from == to)
        return Status::ok();
    Inode *dst = find(to);
    if (dst != nullptr) {
        for (BlockNo b : dst->blocks)
            _freeList.push_back(b);
        _files.erase(to);
    }
    _files[to] = std::move(*find(from));
    _files.erase(from);
    journalCommit(true);

    // The directory update is durable once the journal commits; the
    // file's durable *content* carries over from its last fsync.
    _durableFiles.erase(to);
    auto dit = _durableFiles.find(from);
    if (dit != _durableFiles.end()) {
        _durableFiles[to] = std::move(dit->second);
        _durableFiles.erase(dit);
    }
    return Status::ok();
}

void
JournalingFs::injectReadFaults(std::uint64_t count)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    _readFaultsLeft = count;
}

void
JournalingFs::crash()
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    _files.clear();
    for (const auto &[name, dur] : _durableFiles) {
        Inode inode;
        inode.size = dur.size;
        inode.blocks = dur.blocks;
        _files[name] = std::move(inode);
    }
}

JournalingFs::Snapshot
JournalingFs::snapshot() const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    Snapshot snap;
    snap.journalHead = _journalHead;
    snap.nextDataBlock = _nextDataBlock;
    snap.freeList = _freeList;
    snap.files = _files;
    snap.durableFiles = _durableFiles;
    return snap;
}

void
JournalingFs::restore(const Snapshot &snap)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    _journalHead = snap.journalHead;
    _nextDataBlock = snap.nextDataBlock;
    _freeList = snap.freeList;
    _files = snap.files;
    _durableFiles = snap.durableFiles;
}

} // namespace nvwal
