/**
 * @file
 * Persistent NVRAM heap manager, modelled on Heapo (section 3.3).
 *
 * The heap owns the whole NVRAM device and provides:
 *  - a persistent namespace: name -> root offset, so an application
 *    can find its data again after a reboot;
 *  - block allocation with the tri-state flag protocol the paper
 *    builds NVWAL's user-level heap on: @c free, @c pending
 *    (allocated but not yet linked by the application) and
 *    @c in-use;
 *  - crash recovery that reclaims @c pending blocks, preventing
 *    NVRAM leaks when the system dies between allocation and
 *    linking (section 4.3, failure case 1).
 *
 * Every public call charges the cost model's heap-manager call cost
 * (kernel crossing + failure-safe metadata update), which is exactly
 * the overhead NVWAL's user-level heap amortizes away.
 *
 * On-media layout (all fields little-endian):
 *
 *   [0, 4096)              superblock
 *   [descOff, descOff+N)   1 byte per block: 2 state bits + head bit
 *   [nsOff, nsOff+2048)    64 namespace slots x 32 bytes
 *   [dataOff, ...)         block-aligned data region
 */

#ifndef NVWAL_HEAP_NV_HEAP_HPP
#define NVWAL_HEAP_NV_HEAP_HPP

#include <mutex>
#include <string_view>

#include "common/status.hpp"
#include "common/types.hpp"
#include "pmem/pmem.hpp"

namespace nvwal
{

/** Allocation state of one heap block. */
enum class BlockState : std::uint8_t
{
    Free = 0,
    Pending = 1,
    InUse = 2,
};

/**
 * Persistent heap manager over an NvramDevice.
 *
 * Thread-safety: sharded engines allocate log nodes from one shared
 * heap concurrently, so every public method takes an internal
 * recursive mutex (recover() nests attach()). The heap calls only
 * downward (Pmem, then the device), never back up, keeping the lock
 * order acyclic.
 */
class NvHeap
{
  public:
    static constexpr std::uint64_t kMagic = 0x314f504145'48564eULL;
    static constexpr std::uint32_t kSuperblockSize = 4096;
    static constexpr std::uint32_t kNamespaceSlots = 64;
    static constexpr std::uint32_t kNamespaceNameLen = 24;
    static constexpr std::uint32_t kNamespaceSlotSize = 32;

    explicit NvHeap(Pmem &pmem, MetricsRegistry &stats);

    /** Initialize a fresh heap with the given block size. */
    Status format(std::uint32_t block_size);

    /** Attach to an existing heap (after simulated reboot). */
    Status attach();

    /**
     * Post-crash recovery: reclaim every block left in @c pending
     * state (and orphaned extent continuations). Returns the number
     * of blocks reclaimed through @p reclaimed if non-null.
     */
    Status recover(std::uint64_t *reclaimed = nullptr);

    // ---- allocation ----------------------------------------------

    /** Allocate and mark @c in-use immediately (classic nvmalloc). */
    Status nvMalloc(std::size_t bytes, NvOffset *out);

    /**
     * Allocate in @c pending state; the caller must link the block
     * into its own persistent structure and then call
     * nvSetUsedFlag() (Algorithm 1 lines 5-13).
     */
    Status nvPreMalloc(std::size_t bytes, NvOffset *out);

    /** Transition a @c pending block to @c in-use. */
    Status nvSetUsedFlag(NvOffset off);

    /** Release an allocation (head offset). */
    Status nvFree(NvOffset off);

    // ---- namespace roots ------------------------------------------

    /**
     * Bind @p name to @p off (creating the slot if needed).
     * @p off must be non-zero: offset 0 is the superblock, and a zero
     * root is the "never bound" sentinel getRoot() reports NotFound
     * for (so a torn slot write heals instead of corrupting).
     */
    Status setRoot(std::string_view name, NvOffset off);

    /** Look up @p name; NotFound if it was never (fully) bound. */
    Status getRoot(std::string_view name, NvOffset *out) const;

    // ---- introspection --------------------------------------------

    std::uint32_t blockSize() const { return _blockSize; }
    std::uint32_t numBlocks() const { return _numBlocks; }

    std::uint64_t countBlocks(BlockState state) const;

    /** State of the block containing data offset @p off. */
    BlockState blockStateAt(NvOffset off) const;

    /** Extent size in blocks for the allocation headed at @p off. */
    std::uint32_t extentBlocksAt(NvOffset off) const;

    /** First data offset (for tests asserting layout stability). */
    NvOffset dataOffset() const { return _dataOff; }

  private:
    static constexpr std::uint8_t kStateMask = 0x3;
    static constexpr std::uint8_t kHeadBit = 0x4;

    std::uint32_t blockIndexOf(NvOffset off) const;
    NvOffset blockDataOffset(std::uint32_t idx) const;
    std::uint8_t descByte(std::uint32_t idx) const;
    void writeDescByte(std::uint32_t idx, std::uint8_t value);
    void persistDescRange(std::uint32_t first_idx, std::uint32_t count);
    Status allocate(std::size_t bytes, BlockState state, NvOffset *out);
    void chargeCall();

    Status findNamespaceSlot(std::string_view name,
                             std::uint32_t *slot_out,
                             bool *exists_out) const;

    Pmem &_pmem;
    MetricsRegistry &_stats;
    /** Heap-manager allocation latency (sim ns); registry-owned. */
    Histogram &_allocHist;

    /** Guards all heap state; recursive so recover() can attach(). */
    mutable std::recursive_mutex _mu;

    // Volatile mirror of superblock geometry (rebuilt by attach()).
    std::uint32_t _blockSize = 0;
    std::uint32_t _numBlocks = 0;
    NvOffset _descOff = 0;
    NvOffset _nsOff = 0;
    NvOffset _dataOff = 0;
    std::uint32_t _nextFreeHint = 0;
    bool _attached = false;
};

} // namespace nvwal

#endif // NVWAL_HEAP_NV_HEAP_HPP
