#include "nv_heap.hpp"

#include <cstring>

namespace nvwal
{

namespace
{

// Superblock field offsets.
constexpr NvOffset kMagicOff = 0;
constexpr NvOffset kBlockSizeOff = 8;
constexpr NvOffset kNumBlocksOff = 16;
constexpr NvOffset kDescOffOff = 24;
constexpr NvOffset kNsOffOff = 32;
constexpr NvOffset kDataOffOff = 40;

} // namespace

NvHeap::NvHeap(Pmem &pmem, MetricsRegistry &stats)
    : _pmem(pmem), _stats(stats),
      _allocHist(stats.histogram(stats::kHistHeapAllocNs))
{}

void
NvHeap::chargeCall()
{
    // Kernel crossing + failure-safe bookkeeping inside the manager.
    // The metadata flush traffic is charged on top through the Pmem
    // primitives in the individual operations.
    _stats.add(stats::kHeapCalls);
    _stats.add(stats::kTimeHeapNs, _pmem.cost().heapCallNs);
    _pmem.clock().advance(_pmem.cost().heapCallNs);
}

Status
NvHeap::format(std::uint32_t block_size)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    if (block_size == 0 || (block_size & (block_size - 1)) != 0)
        return Status::invalidArgument("block size must be a power of two");

    NvramDevice &dev = _pmem.device();
    const std::size_t dev_size = dev.size();
    if (dev_size < 64 * 1024)
        return Status::invalidArgument("device too small for a heap");

    // Geometry: superblock, descriptor table, namespace table, data.
    const NvOffset desc_off = kSuperblockSize;
    // Upper bound on block count ignoring metadata, then shrink.
    std::uint64_t blocks = dev_size / block_size;
    NvOffset ns_off = 0;
    NvOffset data_off = 0;
    while (blocks > 0) {
        ns_off = alignUp(desc_off + blocks, 64);
        data_off = alignUp(ns_off + kNamespaceSlots * kNamespaceSlotSize,
                           block_size);
        if (data_off + blocks * block_size <= dev_size)
            break;
        --blocks;
    }
    if (blocks == 0)
        return Status::invalidArgument("device too small for a heap");

    _blockSize = block_size;
    _numBlocks = static_cast<std::uint32_t>(blocks);
    _descOff = desc_off;
    _nsOff = ns_off;
    _dataOff = data_off;
    _nextFreeHint = 0;

    // Zero descriptor + namespace tables, then publish the
    // superblock; ordering matters so a torn format is detectable
    // (the magic is written and persisted last).
    const ByteBuffer zeros(_numBlocks, 0);
    _pmem.memcpyToNvram(_descOff, ConstByteSpan(zeros.data(), zeros.size()));
    const ByteBuffer ns_zeros(kNamespaceSlots * kNamespaceSlotSize, 0);
    _pmem.memcpyToNvram(_nsOff,
                        ConstByteSpan(ns_zeros.data(), ns_zeros.size()));

    std::uint8_t super[48];
    std::memset(super, 0, sizeof(super));
    storeU64(super + kBlockSizeOff, _blockSize);
    storeU64(super + kNumBlocksOff, _numBlocks);
    storeU64(super + kDescOffOff, _descOff);
    storeU64(super + kNsOffOff, _nsOff);
    storeU64(super + kDataOffOff, _dataOff);
    _pmem.memcpyToNvram(0, ConstByteSpan(super, sizeof(super)));

    _pmem.memoryBarrier();
    _pmem.cacheLineFlush(0, _nsOff + ns_zeros.size());
    _pmem.memoryBarrier();
    _pmem.persistBarrier();

    _pmem.storeU64(kMagicOff, kMagic);
    _pmem.memoryBarrier();
    _pmem.cacheLineFlush(kMagicOff, kMagicOff + 8);
    _pmem.memoryBarrier();
    _pmem.persistBarrier();

    _attached = true;
    return Status::ok();
}

Status
NvHeap::attach()
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    NvramDevice &dev = _pmem.device();
    if (dev.size() < kSuperblockSize)
        return Status::corruption("device smaller than a superblock");
    if (dev.readU64(kMagicOff) != kMagic)
        return Status::corruption("heap magic mismatch");

    _blockSize = static_cast<std::uint32_t>(dev.readU64(kBlockSizeOff));
    _numBlocks = static_cast<std::uint32_t>(dev.readU64(kNumBlocksOff));
    _descOff = dev.readU64(kDescOffOff);
    _nsOff = dev.readU64(kNsOffOff);
    _dataOff = dev.readU64(kDataOffOff);

    if (_blockSize == 0 || (_blockSize & (_blockSize - 1)) != 0 ||
        _numBlocks == 0 ||
        _dataOff + static_cast<NvOffset>(_numBlocks) * _blockSize >
            dev.size()) {
        return Status::corruption("heap superblock geometry invalid");
    }
    _nextFreeHint = 0;
    _attached = true;
    return Status::ok();
}

Status
NvHeap::recover(std::uint64_t *reclaimed)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    if (!_attached)
        NVWAL_RETURN_IF_ERROR(attach());

    std::uint64_t count = 0;
    std::uint32_t idx = 0;
    while (idx < _numBlocks) {
        const std::uint8_t d = descByte(idx);
        const auto state = static_cast<BlockState>(d & kStateMask);
        const bool head = (d & kHeadBit) != 0;

        // Orphaned continuation: a non-free block that is not a head
        // and does not continue a live extent (can only appear if a
        // crash hit the middle of an allocation's metadata update).
        const bool orphan_continuation =
            state != BlockState::Free && !head &&
            (idx == 0 ||
             (descByte(idx - 1) & kStateMask) ==
                 static_cast<std::uint8_t>(BlockState::Free));

        if ((head && state == BlockState::Pending) || orphan_continuation) {
            // Reclaim the whole extent starting here.
            std::uint32_t extent = 1;
            while (idx + extent < _numBlocks) {
                const std::uint8_t n = descByte(idx + extent);
                if ((n & kStateMask) ==
                        static_cast<std::uint8_t>(BlockState::Free) ||
                    (n & kHeadBit) != 0) {
                    break;
                }
                ++extent;
            }
            for (std::uint32_t i = 0; i < extent; ++i)
                writeDescByte(idx + i, 0);
            persistDescRange(idx, extent);
            count += extent;
            idx += extent;
        } else {
            ++idx;
        }
    }
    if (reclaimed != nullptr)
        *reclaimed = count;
    return Status::ok();
}

std::uint32_t
NvHeap::blockIndexOf(NvOffset off) const
{
    NVWAL_ASSERT(off >= _dataOff && (off - _dataOff) % _blockSize == 0,
                 "offset %llu is not a block data offset",
                 static_cast<unsigned long long>(off));
    const std::uint64_t idx = (off - _dataOff) / _blockSize;
    NVWAL_ASSERT(idx < _numBlocks, "block index out of range");
    return static_cast<std::uint32_t>(idx);
}

NvOffset
NvHeap::blockDataOffset(std::uint32_t idx) const
{
    return _dataOff + static_cast<NvOffset>(idx) * _blockSize;
}

std::uint8_t
NvHeap::descByte(std::uint32_t idx) const
{
    std::uint8_t b;
    _pmem.device().read(_descOff + idx, ByteSpan(&b, 1));
    return b;
}

void
NvHeap::writeDescByte(std::uint32_t idx, std::uint8_t value)
{
    // Through Pmem, not the raw device: hardware persistency models
    // (section 4.4) must see this store, since the explicit flush in
    // persistDescRange() compiles away under them.
    _pmem.memcpyToNvram(_descOff + idx, ConstByteSpan(&value, 1));
}

void
NvHeap::persistDescRange(std::uint32_t first_idx, std::uint32_t count)
{
    _pmem.memoryBarrier();
    _pmem.cacheLineFlush(_descOff + first_idx,
                         _descOff + first_idx + count);
    _pmem.memoryBarrier();
    _pmem.persistBarrier();
}

Status
NvHeap::allocate(std::size_t bytes, BlockState state, NvOffset *out)
{
    NVWAL_ASSERT(_attached, "heap not attached");
    if (bytes == 0)
        return Status::invalidArgument("zero-byte allocation");
    const std::uint32_t want = static_cast<std::uint32_t>(
        (bytes + _blockSize - 1) / _blockSize);

    // First-fit scan from the hint, wrapping once.
    std::uint32_t run = 0;
    std::uint32_t run_start = 0;
    bool found = false;
    for (std::uint32_t probe = 0; probe < 2 * _numBlocks; ++probe) {
        const std::uint32_t idx =
            (_nextFreeHint + probe) % _numBlocks;
        if (idx == 0 && run > 0 && probe > 0) {
            // Extents must be physically contiguous; reset at wrap.
            run = 0;
        }
        if ((descByte(idx) & kStateMask) ==
            static_cast<std::uint8_t>(BlockState::Free)) {
            if (run == 0)
                run_start = idx;
            if (++run == want) {
                found = true;
                break;
            }
        } else {
            run = 0;
        }
    }
    if (!found)
        return Status::noSpace("NVRAM heap exhausted");

    // Crash-safe ordering: publish continuation bytes first, persist,
    // then the head byte, persist. A crash in between leaves
    // head-less continuations that recover() reclaims.
    const std::uint8_t state_bits = static_cast<std::uint8_t>(state);
    if (want > 1) {
        for (std::uint32_t i = 1; i < want; ++i)
            writeDescByte(run_start + i, state_bits);
        persistDescRange(run_start + 1, want - 1);
    }
    writeDescByte(run_start, state_bits | kHeadBit);
    persistDescRange(run_start, 1);

    _nextFreeHint = (run_start + want) % _numBlocks;
    _stats.add(stats::kHeapBlocksAllocated, want);
    *out = blockDataOffset(run_start);
    return Status::ok();
}

Status
NvHeap::nvMalloc(std::size_t bytes, NvOffset *out)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    TraceSpan span(_stats.tracer(), "heap.nvmalloc", "heap", "bytes",
                   bytes);
    const SimTime begin = _pmem.clock().now();
    chargeCall();
    Status s = allocate(bytes, BlockState::InUse, out);
    _allocHist.record(_pmem.clock().now() - begin);
    return s;
}

Status
NvHeap::nvPreMalloc(std::size_t bytes, NvOffset *out)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    TraceSpan span(_stats.tracer(), "heap.nvpremalloc", "heap", "bytes",
                   bytes);
    const SimTime begin = _pmem.clock().now();
    chargeCall();
    Status s = allocate(bytes, BlockState::Pending, out);
    _allocHist.record(_pmem.clock().now() - begin);
    return s;
}

Status
NvHeap::nvSetUsedFlag(NvOffset off)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    TraceSpan span(_stats.tracer(), "heap.set_used_flag", "heap");
    chargeCall();
    const std::uint32_t idx = blockIndexOf(off);
    const std::uint8_t d = descByte(idx);
    if ((d & kHeadBit) == 0)
        return Status::invalidArgument("not an allocation head");
    if ((d & kStateMask) != static_cast<std::uint8_t>(BlockState::Pending))
        return Status::invalidArgument("block is not pending");

    const std::uint32_t extent = extentBlocksAt(off);
    for (std::uint32_t i = 1; i < extent; ++i) {
        writeDescByte(idx + i,
                      static_cast<std::uint8_t>(BlockState::InUse));
    }
    writeDescByte(idx,
                  static_cast<std::uint8_t>(BlockState::InUse) | kHeadBit);
    persistDescRange(idx, extent);
    return Status::ok();
}

Status
NvHeap::nvFree(NvOffset off)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    TraceSpan span(_stats.tracer(), "heap.nvfree", "heap");
    chargeCall();
    const std::uint32_t idx = blockIndexOf(off);
    const std::uint8_t d = descByte(idx);
    if ((d & kHeadBit) == 0 ||
        (d & kStateMask) == static_cast<std::uint8_t>(BlockState::Free)) {
        return Status::invalidArgument("not a live allocation head");
    }
    const std::uint32_t extent = extentBlocksAt(off);
    // Clear the head first so a crash mid-free leaves head-less
    // continuations (reclaimed by recover()) rather than a live
    // extent with freed continuations.
    writeDescByte(idx, 0);
    persistDescRange(idx, 1);
    for (std::uint32_t i = 1; i < extent; ++i)
        writeDescByte(idx + i, 0);
    if (extent > 1)
        persistDescRange(idx + 1, extent - 1);
    if (idx < _nextFreeHint)
        _nextFreeHint = idx;
    return Status::ok();
}

std::uint64_t
NvHeap::countBlocks(BlockState state) const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < _numBlocks; ++i) {
        if ((descByte(i) & kStateMask) == static_cast<std::uint8_t>(state))
            ++n;
    }
    return n;
}

BlockState
NvHeap::blockStateAt(NvOffset off) const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    const std::uint32_t idx = blockIndexOf(off);
    return static_cast<BlockState>(descByte(idx) & kStateMask);
}

std::uint32_t
NvHeap::extentBlocksAt(NvOffset off) const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    const std::uint32_t idx = blockIndexOf(off);
    NVWAL_ASSERT((descByte(idx) & kHeadBit) != 0,
                 "extent query on non-head block");
    std::uint32_t extent = 1;
    while (idx + extent < _numBlocks) {
        const std::uint8_t d = descByte(idx + extent);
        if ((d & kStateMask) ==
                static_cast<std::uint8_t>(BlockState::Free) ||
            (d & kHeadBit) != 0) {
            break;
        }
        ++extent;
    }
    return extent;
}

Status
NvHeap::findNamespaceSlot(std::string_view name, std::uint32_t *slot_out,
                          bool *exists_out) const
{
    if (name.empty() || name.size() >= kNamespaceNameLen)
        return Status::invalidArgument("namespace name length");

    std::uint32_t free_slot = kNamespaceSlots;
    for (std::uint32_t slot = 0; slot < kNamespaceSlots; ++slot) {
        std::uint8_t entry[kNamespaceSlotSize];
        _pmem.device().read(_nsOff + slot * kNamespaceSlotSize,
                            ByteSpan(entry, sizeof(entry)));
        if (entry[0] == 0) {
            if (free_slot == kNamespaceSlots)
                free_slot = slot;
            continue;
        }
        const std::size_t len =
            strnlen(reinterpret_cast<const char *>(entry),
                    kNamespaceNameLen);
        if (len == name.size() &&
            std::memcmp(entry, name.data(), len) == 0) {
            *slot_out = slot;
            *exists_out = true;
            return Status::ok();
        }
    }
    if (free_slot == kNamespaceSlots)
        return Status::noSpace("namespace table full");
    *slot_out = free_slot;
    *exists_out = false;
    return Status::ok();
}

Status
NvHeap::setRoot(std::string_view name, NvOffset off)
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    NVWAL_ASSERT(_attached, "heap not attached");
    if (off == 0)
        return Status::invalidArgument("root offset 0 is reserved");
    chargeCall();
    std::uint32_t slot;
    bool exists;
    NVWAL_RETURN_IF_ERROR(findNamespaceSlot(name, &slot, &exists));

    const NvOffset entry_off = _nsOff + slot * kNamespaceSlotSize;
    if (!exists) {
        // Fresh slot: publish the root offset *before* the name. The
        // slot only becomes visible once the name's first byte lands
        // (findNamespaceSlot treats entry[0] == 0 as free), so a
        // crash between the two barriers leaves an unbound slot
        // instead of a bound name whose root still reads 0 -- a state
        // that used to make the next recovery read offset 0 (the heap
        // superblock) as application data and fail with corruption.
        _pmem.storeU64(entry_off + kNamespaceNameLen, off);
        _pmem.memoryBarrier();
        _pmem.cacheLineFlush(entry_off + kNamespaceNameLen,
                             entry_off + kNamespaceSlotSize);
        _pmem.memoryBarrier();
        _pmem.persistBarrier();

        std::uint8_t name_buf[kNamespaceNameLen];
        std::memset(name_buf, 0, sizeof(name_buf));
        std::memcpy(name_buf, name.data(), name.size());
        _pmem.memcpyToNvram(entry_off,
                            ConstByteSpan(name_buf, sizeof(name_buf)));
        _pmem.memoryBarrier();
        _pmem.cacheLineFlush(entry_off, entry_off + kNamespaceNameLen);
        _pmem.memoryBarrier();
        _pmem.persistBarrier();
        return Status::ok();
    }
    // Existing slot: the root offset is a single 8-byte atomic store.
    _pmem.storeU64(entry_off + kNamespaceNameLen, off);
    _pmem.memoryBarrier();
    _pmem.cacheLineFlush(entry_off + kNamespaceNameLen,
                         entry_off + kNamespaceSlotSize);
    _pmem.memoryBarrier();
    _pmem.persistBarrier();
    return Status::ok();
}

Status
NvHeap::getRoot(std::string_view name, NvOffset *out) const
{
    std::lock_guard<std::recursive_mutex> g(_mu);
    NVWAL_ASSERT(_attached, "heap not attached");
    std::uint32_t slot;
    bool exists;
    NVWAL_RETURN_IF_ERROR(findNamespaceSlot(name, &slot, &exists));
    if (!exists)
        return Status::notFound("namespace not bound");
    std::uint8_t buf[8];
    _pmem.device().read(
        _nsOff + slot * kNamespaceSlotSize + kNamespaceNameLen,
        ByteSpan(buf, 8));
    *out = loadU64(buf);
    // Offset 0 is the heap superblock and can never be a legal root:
    // a zero here means the slot's name landed but its root did not
    // (an adversarial crash can persist the two 8-byte units of the
    // slot independently even with the offset published first).
    // Report the binding as absent so the caller re-initializes.
    if (*out == 0)
        return Status::notFound("namespace root unset");
    return Status::ok();
}

} // namespace nvwal
