#include "rollback_journal.hpp"

#include <cstring>

namespace nvwal
{

RollbackJournal::RollbackJournal(JournalingFs &fs, std::string journal_name,
                                 DbFile &db_file, std::uint32_t page_size,
                                 MetricsRegistry &stats)
    : _fs(fs), _journalName(std::move(journal_name)), _dbFile(db_file),
      _pageSize(page_size), _stats(stats)
{}

std::uint64_t
RollbackJournal::recordOffset(std::uint64_t idx) const
{
    return kHeaderSize + idx * (4 + _pageSize);
}

Status
RollbackJournal::writeFrames(const std::vector<FrameWrite> &frames,
                             bool commit, std::uint32_t db_size_pages)
{
    if (frames.empty())
        return Status::ok();
    NVWAL_ASSERT(commit, "rollback journal only supports full commits");

    // Phase 1 -- journal the pre-images of every page this
    // transaction will overwrite, plus the old database size, then
    // fsync the journal. Only pages that exist in the file need a
    // pre-image; growth is undone by truncation.
    const std::uint32_t old_pages = _dbFile.pageCount();
    std::uint8_t header[kHeaderSize];
    std::memset(header, 0, sizeof(header));
    storeU64(header, kMagic);
    storeU32(header + 8, old_pages);
    std::uint32_t n_records = 0;
    for (const FrameWrite &fw : frames) {
        if (fw.pageNo <= old_pages)
            ++n_records;
    }
    storeU32(header + 12, n_records);
    NVWAL_RETURN_IF_ERROR(
        _fs.pwrite(_journalName, 0, ConstByteSpan(header, sizeof(header))));

    ByteBuffer record(4 + _pageSize);
    std::uint64_t idx = 0;
    for (const FrameWrite &fw : frames) {
        if (fw.pageNo > old_pages)
            continue;
        storeU32(record.data(), fw.pageNo);
        NVWAL_RETURN_IF_ERROR(_dbFile.readPage(
            fw.pageNo, ByteSpan(record.data() + 4, _pageSize)));
        NVWAL_RETURN_IF_ERROR(
            _fs.pwrite(_journalName, recordOffset(idx),
                       ConstByteSpan(record.data(), record.size())));
        ++idx;
    }
    NVWAL_RETURN_IF_ERROR(_fs.fsync(_journalName));

    // Phase 2 -- write the new page images into the database file
    // and fsync it ("the EXT4 filesystem journals the database
    // journaling operation", section 1: both fsyncs pay EXT4
    // ordered-journal traffic on top).
    for (const FrameWrite &fw : frames) {
        NVWAL_ASSERT(fw.page.size() == _pageSize);
        NVWAL_RETURN_IF_ERROR(_dbFile.writePage(fw.pageNo, fw.page));
    }
    NVWAL_RETURN_IF_ERROR(_dbFile.sync());
    (void)db_size_pages;

    // Phase 3 -- invalidate the journal (DELETE mode removes it).
    return _fs.remove(_journalName);
}

Status
RollbackJournal::readPage(PageNo, ByteSpan)
{
    // The database file is always current in rollback-journal mode.
    return Status::notFound("rollback journal holds no page images");
}

Status
RollbackJournal::checkpoint()
{
    // Nothing to do: pages are written in place at commit.
    return Status::ok();
}

Status
RollbackJournal::recover(std::uint32_t *db_size_pages)
{
    *db_size_pages = 0;
    if (!_fs.exists(_journalName))
        return Status::ok();

    // A journal file exists: the last transaction did not complete.
    // If the journal is intact, roll the pre-images back; a torn
    // journal (fsync never finished) means the database file was
    // never touched, so it can simply be discarded.
    const std::uint64_t size = _fs.fileSize(_journalName);
    if (size < kHeaderSize)
        return _fs.remove(_journalName);
    std::uint8_t header[kHeaderSize];
    NVWAL_RETURN_IF_ERROR(
        _fs.pread(_journalName, 0, ByteSpan(header, sizeof(header))));
    if (loadU64(header) != kMagic)
        return _fs.remove(_journalName);
    const std::uint32_t old_pages = loadU32(header + 8);
    const std::uint32_t n_records = loadU32(header + 12);
    if (size < recordOffset(n_records))
        return _fs.remove(_journalName);  // torn journal

    ByteBuffer record(4 + _pageSize);
    for (std::uint32_t i = 0; i < n_records; ++i) {
        NVWAL_RETURN_IF_ERROR(
            _fs.pread(_journalName, recordOffset(i),
                      ByteSpan(record.data(), record.size())));
        const PageNo page_no = loadU32(record.data());
        if (page_no == kNoPage || page_no > _dbFile.pageCount())
            return Status::corruption("bad journal record");
        NVWAL_RETURN_IF_ERROR(_dbFile.writePage(
            page_no, ConstByteSpan(record.data() + 4, _pageSize)));
    }
    // Undo any growth the aborted transaction caused.
    NVWAL_RETURN_IF_ERROR(_fs.truncate(
        _dbFile.name(),
        static_cast<std::uint64_t>(old_pages) * _pageSize));
    NVWAL_RETURN_IF_ERROR(_dbFile.sync());
    return _fs.remove(_journalName);
}

} // namespace nvwal
