/**
 * @file
 * SQLite-style file-based write-ahead log on the journaling file
 * system -- the flash baselines of the paper's evaluation.
 *
 * Two flavors (section 5.4):
 *
 *  - *Stock*: each frame is a 24-byte header plus the full page, so
 *    frames are not block-aligned (4120 bytes for 4 KB pages) and a
 *    single-page commit dirties two file blocks; every append grows
 *    the file, so each fsync() journals an EXT4 allocation
 *    transaction (~20 KB) -- the "16 KB I/O per transaction"
 *    pathology of section 1.
 *
 *  - *Optimized*: the paper's two fixes. (1) The B-tree reserves the
 *    last 24 bytes of every page (Pager reservedBytes = 24), so a
 *    frame header plus the page's usable bytes is exactly one file
 *    block. (2) Log pages are pre-allocated with doubling (8 blocks
 *    initially), so most fsyncs only journal the inode update, not
 *    an allocation (the WALDIO-style optimization, Figure 8).
 */

#ifndef NVWAL_WAL_FILE_WAL_HPP
#define NVWAL_WAL_FILE_WAL_HPP

#include <map>
#include <string>

#include "common/checksum.hpp"
#include "pager/db_file.hpp"
#include "sim/stats.hpp"
#include "wal/write_ahead_log.hpp"

namespace nvwal
{

/** Configuration for the file-based WAL. */
struct FileWalConfig
{
    /** Aligned frames + pre-allocation when true. */
    bool optimized = false;
    /** Initial pre-allocation in frames (doubles when exhausted). */
    std::uint32_t preallocFrames = 8;
};

/** SQLite-style WAL file over JournalingFs. */
class FileWal : public WriteAheadLog
{
  public:
    static constexpr std::uint32_t kFileHeaderSize = 32;
    static constexpr std::uint32_t kFrameHeaderSize = 24;
    static constexpr std::uint64_t kMagic = 0x314c41574c4946ULL;

    FileWal(JournalingFs &fs, std::string wal_name, DbFile &db_file,
            std::uint32_t page_size, std::uint32_t reserved_bytes,
            FileWalConfig config, StatsRegistry &stats);

    Status writeFrames(const std::vector<FrameWrite> &frames, bool commit,
                       std::uint32_t db_size_pages) override;
    bool readPage(PageNo page_no, ByteSpan out) override;
    Status checkpoint() override;
    Status recover(std::uint32_t *db_size_pages) override;
    std::uint64_t framesSinceCheckpoint() const override
    { return _frameCount; }
    const char *
    name() const override
    {
        return _config.optimized ? "Optimized WAL" : "WAL";
    }

  private:
    /** Bytes of page content stored per frame. */
    std::uint32_t contentSize() const;
    /** Total frame size in the file. */
    std::uint32_t frameSize() const
    { return kFrameHeaderSize + contentSize(); }
    /**
     * Bytes reserved for the file header. Optimized mode pads it to
     * a whole block so that aligned frames actually land on block
     * boundaries.
     */
    std::uint64_t headerRegionSize() const
    { return _config.optimized ? _pageSize : kFileHeaderSize; }
    std::uint64_t frameOffset(std::uint64_t frame_idx) const
    { return headerRegionSize() + frame_idx * frameSize(); }
    Status ensureHeader();
    Status ensurePrealloc(std::uint64_t frames_needed);
    std::uint64_t recoveredPreallocFrames() const;

    JournalingFs &_fs;
    std::string _walName;
    DbFile &_dbFile;
    std::uint32_t _pageSize;
    std::uint32_t _reservedBytes;
    FileWalConfig _config;
    StatsRegistry &_stats;

    bool _headerWritten = false;
    std::uint64_t _frameCount = 0;           //!< committed+pending frames
    std::uint64_t _preallocFrames;
    CumulativeChecksum _checksum;
    std::uint32_t _dbSizePages = 0;          //!< last committed size
    /** page -> latest committed frame index. */
    std::map<PageNo, std::uint64_t> _pageIndex;
};

} // namespace nvwal

#endif // NVWAL_WAL_FILE_WAL_HPP
