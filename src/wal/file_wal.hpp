/**
 * @file
 * SQLite-style file-based write-ahead log on the journaling file
 * system -- the flash baselines of the paper's evaluation.
 *
 * Two flavors (section 5.4):
 *
 *  - *Stock*: each frame is a 24-byte header plus the full page, so
 *    frames are not block-aligned (4120 bytes for 4 KB pages) and a
 *    single-page commit dirties two file blocks; every append grows
 *    the file, so each fsync() journals an EXT4 allocation
 *    transaction (~20 KB) -- the "16 KB I/O per transaction"
 *    pathology of section 1.
 *
 *  - *Optimized*: the paper's two fixes. (1) The B-tree reserves the
 *    last 24 bytes of every page (Pager reservedBytes = 24), so a
 *    frame header plus the page's usable bytes is exactly one file
 *    block. (2) Log pages are pre-allocated with doubling (8 blocks
 *    initially), so most fsyncs only journal the inode update, not
 *    an allocation (the WALDIO-style optimization, Figure 8).
 */

#ifndef NVWAL_WAL_FILE_WAL_HPP
#define NVWAL_WAL_FILE_WAL_HPP

#include <map>
#include <string>

#include "common/checksum.hpp"
#include "pager/db_file.hpp"
#include "sim/stats.hpp"
#include "wal/write_ahead_log.hpp"

namespace nvwal
{

/** Configuration for the file-based WAL. */
struct FileWalConfig
{
    /** Aligned frames + pre-allocation when true. */
    bool optimized = false;
    /** Initial pre-allocation in frames (doubles when exhausted). */
    std::uint32_t preallocFrames = 8;
};

/** SQLite-style WAL file over JournalingFs. */
class FileWal : public WriteAheadLog
{
  public:
    static constexpr std::uint32_t kFileHeaderSize = 32;
    static constexpr std::uint32_t kFrameHeaderSize = 24;
    static constexpr std::uint64_t kMagic = 0x314c41574c4946ULL;

    FileWal(JournalingFs &fs, std::string wal_name, DbFile &db_file,
            std::uint32_t page_size, std::uint32_t reserved_bytes,
            FileWalConfig config, MetricsRegistry &stats);

    Status writeFrames(const std::vector<FrameWrite> &frames, bool commit,
                       std::uint32_t db_size_pages) override;
    Status readPage(PageNo page_no, ByteSpan out) override;
    Status readPageAt(PageNo page_no, ByteSpan out,
                      CommitSeq horizon) override;
    CommitSeq commitSeq() const override { return _commitSeq; }
    std::uint32_t committedDbSize() const override { return _dbSizePages; }
    bool supportsSnapshots() const override { return true; }
    Status checkpoint() override;
    Status recover(std::uint32_t *db_size_pages) override;
    std::uint64_t framesSinceCheckpoint() const override
    { return _frameCount; }
    const char *
    name() const override
    {
        return _config.optimized ? "Optimized WAL" : "WAL";
    }

  private:
    /** One committed frame of a page (full content, no diffs). */
    struct Version
    {
        CommitSeq seq;
        std::uint64_t frameIdx;
    };

    /** Read the content of frame @p frame_idx into @p out. */
    Status readFrameContent(std::uint64_t frame_idx, ByteSpan out);
    /** Bytes of page content stored per frame. */
    std::uint32_t contentSize() const;
    /** Total frame size in the file. */
    std::uint32_t frameSize() const
    { return kFrameHeaderSize + contentSize(); }
    /**
     * Bytes reserved for the file header. Optimized mode pads it to
     * a whole block so that aligned frames actually land on block
     * boundaries.
     */
    std::uint64_t headerRegionSize() const
    { return _config.optimized ? _pageSize : kFileHeaderSize; }
    std::uint64_t frameOffset(std::uint64_t frame_idx) const
    { return headerRegionSize() + frame_idx * frameSize(); }
    Status ensureHeader();
    Status ensurePrealloc(std::uint64_t frames_needed);
    std::uint64_t recoveredPreallocFrames() const;

    JournalingFs &_fs;
    std::string _walName;
    DbFile &_dbFile;
    std::uint32_t _pageSize;
    std::uint32_t _reservedBytes;
    FileWalConfig _config;
    MetricsRegistry &_stats;

    bool _headerWritten = false;
    std::uint64_t _frameCount = 0;           //!< committed+pending frames
    std::uint64_t _preallocFrames;
    CumulativeChecksum _checksum;
    std::uint32_t _dbSizePages = 0;          //!< last committed size
    CommitSeq _commitSeq = 0;                //!< newest committed seq
    /**
     * page -> committed frame versions in commit order. The newest
     * (back) serves current reads; earlier entries serve pinned
     * snapshots via readPageAt and are dropped at checkpoint.
     */
    std::map<PageNo, std::vector<Version>> _pageIndex;
    /** Frames appended with commit=false, published at the commit. */
    std::vector<std::pair<PageNo, std::uint64_t>> _pendingPublish;
};

} // namespace nvwal

#endif // NVWAL_WAL_FILE_WAL_HPP
