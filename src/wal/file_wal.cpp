#include "file_wal.hpp"

#include <algorithm>
#include <cstring>

namespace nvwal
{

FileWal::FileWal(JournalingFs &fs, std::string wal_name, DbFile &db_file,
                 std::uint32_t page_size, std::uint32_t reserved_bytes,
                 FileWalConfig config, MetricsRegistry &stats)
    : _fs(fs), _walName(std::move(wal_name)), _dbFile(db_file),
      _pageSize(page_size), _reservedBytes(reserved_bytes),
      _config(config), _stats(stats),
      _preallocFrames(config.preallocFrames)
{
    if (_config.optimized) {
        NVWAL_ASSERT(_reservedBytes >= kFrameHeaderSize,
                     "optimized WAL needs >= 24 reserved bytes per page");
    }
}

std::uint32_t
FileWal::contentSize() const
{
    // Optimized mode stores only the usable page bytes so that
    // header + content is exactly the page size (block aligned).
    return _config.optimized ? _pageSize - _reservedBytes : _pageSize;
}

Status
FileWal::ensureHeader()
{
    if (_headerWritten)
        return Status::ok();
    std::uint8_t header[kFileHeaderSize];
    std::memset(header, 0, sizeof(header));
    storeU64(header, kMagic);
    storeU32(header + 8, _pageSize);
    storeU32(header + 12, _reservedBytes);
    storeU32(header + 16, _config.optimized ? 1 : 0);
    NVWAL_RETURN_IF_ERROR(
        _fs.pwrite(_walName, 0, ConstByteSpan(header, sizeof(header))));
    _headerWritten = true;
    return Status::ok();
}

Status
FileWal::ensurePrealloc(std::uint64_t frames_needed)
{
    if (!_config.optimized)
        return Status::ok();
    const std::uint64_t bytes_needed = frameOffset(frames_needed);
    std::uint64_t target = _preallocFrames;
    while (frameOffset(target) < bytes_needed)
        target *= 2;  // double each time the pre-allocation fills up
    if (frameOffset(target) > _fs.allocatedSize(_walName)) {
        NVWAL_RETURN_IF_ERROR(_fs.fallocate(_walName, frameOffset(target)));
        _preallocFrames = target;
    }
    return Status::ok();
}

std::uint64_t
FileWal::recoveredPreallocFrames() const
{
    const std::uint64_t allocated = _fs.allocatedSize(_walName);
    if (allocated <= headerRegionSize())
        return _config.preallocFrames;
    return std::max<std::uint64_t>(
        _config.preallocFrames,
        (allocated - headerRegionSize()) / frameSize());
}

Status
FileWal::writeFrames(const std::vector<FrameWrite> &frames, bool commit,
                     std::uint32_t db_size_pages)
{
    if (frames.empty())
        return Status::ok();
    if (!_fs.exists(_walName))
        NVWAL_RETURN_IF_ERROR(_fs.create(_walName));
    NVWAL_RETURN_IF_ERROR(ensureHeader());
    NVWAL_RETURN_IF_ERROR(ensurePrealloc(_frameCount + frames.size()));

    ByteBuffer frame(frameSize());
    const std::uint64_t first_frame = _frameCount;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const FrameWrite &fw = frames[i];
        NVWAL_ASSERT(fw.page.size() == _pageSize);
        const bool is_commit_frame = commit && i + 1 == frames.size();

        std::memset(frame.data(), 0, kFrameHeaderSize);
        storeU32(frame.data(), fw.pageNo);
        storeU32(frame.data() + 4, is_commit_frame ? db_size_pages : 0);
        std::memcpy(frame.data() + kFrameHeaderSize, fw.page.data(),
                    contentSize());
        _checksum.update(ConstByteSpan(frame.data(), 16));
        _checksum.update(
            ConstByteSpan(frame.data() + kFrameHeaderSize, contentSize()));
        storeU64(frame.data() + 16, _checksum.value());

        NVWAL_RETURN_IF_ERROR(
            _fs.pwrite(_walName, frameOffset(_frameCount),
                       ConstByteSpan(frame.data(), frame.size())));
        _frameCount++;
        _stats.add(stats::kWalFullPageFrames);
    }

    for (std::size_t i = 0; i < frames.size(); ++i)
        _pendingPublish.emplace_back(frames[i].pageNo, first_frame + i);
    if (!commit)
        return Status::ok();
    NVWAL_RETURN_IF_ERROR(_fs.fsync(_walName));

    // Publish the transaction (including frames queued by earlier
    // commit=false appends) in the volatile index under a fresh
    // commit sequence.
    const CommitSeq seq = ++_commitSeq;
    for (const auto &[page_no, frame_idx] : _pendingPublish)
        _pageIndex[page_no].push_back(Version{seq, frame_idx});
    _pendingPublish.clear();
    _dbSizePages = db_size_pages;
    return Status::ok();
}

Status
FileWal::readFrameContent(std::uint64_t frame_idx, ByteSpan out)
{
    NVWAL_ASSERT(out.size() == _pageSize);
    std::memset(out.data(), 0, out.size());
    return _fs.pread(_walName, frameOffset(frame_idx) + kFrameHeaderSize,
                     out.subspan(0, contentSize()));
}

Status
FileWal::readPage(PageNo page_no, ByteSpan out)
{
    auto it = _pageIndex.find(page_no);
    if (it == _pageIndex.end())
        return Status::notFound("page not in WAL index");
    return readFrameContent(it->second.back().frameIdx, out);
}

Status
FileWal::readPageAt(PageNo page_no, ByteSpan out, CommitSeq horizon)
{
    auto it = _pageIndex.find(page_no);
    if (it == _pageIndex.end())
        return Status::notFound("page not in WAL index");
    // Frames are full page images, so the newest version at or below
    // the horizon is the page at the horizon (versions are stored in
    // commit order).
    const std::vector<Version> &versions = it->second;
    const Version *best = nullptr;
    for (const Version &v : versions) {
        if (v.seq > horizon)
            break;
        best = &v;
    }
    if (best == nullptr)
        return Status::notFound("no committed frame at snapshot horizon");
    return readFrameContent(best->frameIdx, out);
}

Status
FileWal::checkpoint()
{
    if (_pageIndex.empty())
        return Status::ok();

    // Write-back horizon: clamp to the oldest pinned snapshot so the
    // .db base image a pinned reader falls back to never gets ahead
    // of its horizon.
    const CommitSeq target = std::min(oldestPin(), _commitSeq);

    ByteBuffer page(_pageSize);
    for (const auto &[page_no, versions] : _pageIndex) {
        const Version *best = nullptr;
        for (const Version &v : versions) {
            if (v.seq > target)
                break;
            best = &v;
        }
        if (best == nullptr)
            continue;  // page born after the clamped horizon
        NVWAL_RETURN_IF_ERROR(readFrameContent(
            best->frameIdx, ByteSpan(page.data(), _pageSize)));
        NVWAL_RETURN_IF_ERROR(_dbFile.writePage(
            page_no, ConstByteSpan(page.data(), _pageSize)));
    }
    NVWAL_RETURN_IF_ERROR(_dbFile.sync());

    if (target < _commitSeq) {
        // A pinned snapshot sits below the newest commit; frames past
        // the target must survive, so the log is retained and a later
        // checkpoint truncates once the pin releases.
        _stats.add(stats::kCheckpointsPinBlocked);
        return Status::ok();
    }

    // All dirty pages are durable in the database file; the log can
    // be truncated. Snapshots still pinned at the newest commit keep
    // reading correctly: readPageAt turns NotFound and the base file
    // holds exactly their horizon's image.
    NVWAL_RETURN_IF_ERROR(_fs.truncate(_walName, 0));
    NVWAL_RETURN_IF_ERROR(_fs.fsync(_walName));
    _headerWritten = false;
    _frameCount = 0;
    _preallocFrames = _config.preallocFrames;
    _checksum.reset();
    _pageIndex.clear();
    _stats.add(stats::kCheckpoints);
    return Status::ok();
}

Status
FileWal::recover(std::uint32_t *db_size_pages)
{
    _headerWritten = false;
    _frameCount = 0;
    _checksum.reset();
    _pageIndex.clear();
    _pendingPublish.clear();
    _dbSizePages = 0;
    NVWAL_ASSERT(!hasPins(), "recovery with an open snapshot");
    _commitSeq = 0;
    *db_size_pages = 0;

    if (!_fs.exists(_walName) ||
        _fs.fileSize(_walName) < kFileHeaderSize) {
        return Status::ok();
    }
    std::uint8_t header[kFileHeaderSize];
    NVWAL_RETURN_IF_ERROR(
        _fs.pread(_walName, 0, ByteSpan(header, sizeof(header))));
    if (loadU64(header) != kMagic)
        return Status::corruption("WAL file magic mismatch");
    if (loadU32(header + 8) != _pageSize ||
        loadU32(header + 16) != (_config.optimized ? 1u : 0u)) {
        return Status::corruption("WAL file geometry mismatch");
    }
    _headerWritten = true;

    // Scan frames, verifying the cumulative checksum chain; the log
    // is valid up to the last commit frame whose chain verifies.
    const std::uint64_t file_size = _fs.fileSize(_walName);
    ByteBuffer frame(frameSize());
    CumulativeChecksum chain;
    std::map<PageNo, std::vector<Version>> index;
    std::vector<std::pair<PageNo, std::uint64_t>> pending;
    CommitSeq seq = 0;
    std::uint64_t idx = 0;
    std::uint64_t committed_frames = 0;
    while (frameOffset(idx + 1) <= file_size) {
        NVWAL_RETURN_IF_ERROR(
            _fs.pread(_walName, frameOffset(idx),
                      ByteSpan(frame.data(), frame.size())));
        chain.update(ConstByteSpan(frame.data(), 16));
        chain.update(
            ConstByteSpan(frame.data() + kFrameHeaderSize, contentSize()));
        if (chain.value() != loadU64(frame.data() + 16))
            break;  // torn tail
        pending.emplace_back(loadU32(frame.data()), idx);
        const std::uint32_t db_size = loadU32(frame.data() + 4);
        ++idx;
        if (db_size != 0) {
            // Commit frame: everything up to here is durable.
            ++seq;
            for (const auto &[page_no, frame_idx] : pending)
                index[page_no].push_back(Version{seq, frame_idx});
            pending.clear();
            committed_frames = idx;
            _pageIndex = index;
            _dbSizePages = db_size;
            _checksum = chain;
            _commitSeq = seq;
        }
    }
    _frameCount = committed_frames;
    if (_config.optimized)
        _preallocFrames = recoveredPreallocFrames();
    *db_size_pages = _dbSizePages;
    return Status::ok();
}

} // namespace nvwal
