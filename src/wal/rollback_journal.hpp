/**
 * @file
 * SQLite's classic rollback journal (DELETE mode) as a third
 * baseline.
 *
 * The paper motivates write-ahead logging by contrast with the
 * rollback-journal modes (sections 1-2): a journal-mode commit
 * writes *two* files -- pre-images to the journal, then the new
 * pages into the database file -- with an fsync after each, and the
 * EXT4 journal amplifies both ("journaling of journal"). WAL needs
 * one fsync on one file; NVWAL needs none.
 *
 * Commit protocol:
 *  1. write the pre-image of every to-be-modified page (and the old
 *     database size) to the journal file; fsync;
 *  2. write the new pages into the .db file in place; fsync;
 *  3. delete the journal (the commit point).
 *
 * Recovery: a surviving journal marks an incomplete transaction --
 * restore the pre-images and truncate the file back; a torn journal
 * means phase 2 never started and is simply discarded.
 */

#ifndef NVWAL_WAL_ROLLBACK_JOURNAL_HPP
#define NVWAL_WAL_ROLLBACK_JOURNAL_HPP

#include <string>

#include "pager/db_file.hpp"
#include "sim/stats.hpp"
#include "wal/write_ahead_log.hpp"

namespace nvwal
{

/** DELETE-mode rollback journal behind the WriteAheadLog interface. */
class RollbackJournal : public WriteAheadLog
{
  public:
    static constexpr std::uint64_t kMagic = 0x4c414e52554f4a52ULL;
    static constexpr std::uint32_t kHeaderSize = 16;

    RollbackJournal(JournalingFs &fs, std::string journal_name,
                    DbFile &db_file, std::uint32_t page_size,
                    MetricsRegistry &stats);

    Status writeFrames(const std::vector<FrameWrite> &frames, bool commit,
                       std::uint32_t db_size_pages) override;
    Status readPage(PageNo page_no, ByteSpan out) override;
    Status checkpoint() override;
    Status recover(std::uint32_t *db_size_pages) override;
    std::uint64_t framesSinceCheckpoint() const override { return 0; }
    const char *name() const override { return "Rollback journal"; }

  private:
    std::uint64_t recordOffset(std::uint64_t idx) const;

    JournalingFs &_fs;
    std::string _journalName;
    DbFile &_dbFile;
    std::uint32_t _pageSize;
    MetricsRegistry &_stats;
};

} // namespace nvwal

#endif // NVWAL_WAL_ROLLBACK_JOURNAL_HPP
