/**
 * @file
 * The write-ahead-log abstraction the database commits through.
 *
 * Implementations:
 *  - FileWal (src/wal): SQLite-style WAL file on the journaling file
 *    system, in stock or optimized (aligned frames + pre-allocation)
 *    flavors -- the paper's baselines.
 *  - NvwalLog (src/core): the paper's NVRAM write-ahead log.
 */

#ifndef NVWAL_WAL_WRITE_AHEAD_LOG_HPP
#define NVWAL_WAL_WRITE_AHEAD_LOG_HPP

#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "pager/dirty_ranges.hpp"

namespace nvwal
{

/** One dirty page handed to the log at commit. */
struct FrameWrite
{
    PageNo pageNo;
    ConstByteSpan page;          //!< full page buffer
    const DirtyRanges *ranges;   //!< dirty byte ranges within the page
};

/** Interface every WAL implementation provides. */
class WriteAheadLog
{
  public:
    virtual ~WriteAheadLog() = default;

    /**
     * Append frames for @p frames and, if @p commit, a commit mark
     * carrying @p db_size_pages (the database size in pages after
     * this transaction), then make everything durable.
     */
    virtual Status writeFrames(const std::vector<FrameWrite> &frames,
                               bool commit,
                               std::uint32_t db_size_pages) = 0;

    /**
     * Materialize the latest committed version of @p page_no into
     * @p out (a full page buffer). Returns false when the log holds
     * no committed frame for that page.
     */
    virtual bool readPage(PageNo page_no, ByteSpan out) = 0;

    /** Write committed pages back to the .db file and reset the log. */
    virtual Status checkpoint() = 0;

    /**
     * Incremental checkpoint: write back at most @p max_pages pages,
     * finishing (fsync + log truncation) only when every dirty page
     * has been written. Sets @p done when the log is truncated.
     * Spreading the write-back over many commits caps the latency
     * spike a full checkpoint causes (the paper amortizes that spike
     * over 1000 transactions; this bounds it instead). The default
     * implementation simply runs a full checkpoint.
     */
    virtual Status
    checkpointStep(std::uint32_t max_pages, bool *done)
    {
        (void)max_pages;
        *done = true;
        return checkpoint();
    }

    /**
     * Rebuild volatile state from the persistent log after a crash
     * or reopen. @p db_size_pages receives the last committed
     * database size (0 when the log holds no committed transaction).
     */
    virtual Status recover(std::uint32_t *db_size_pages) = 0;

    /** Committed frames appended since the last checkpoint. */
    virtual std::uint64_t framesSinceCheckpoint() const = 0;

    /** Scheme name for reports (e.g. "WAL", "NVWAL UH+LS+Diff"). */
    virtual const char *name() const = 0;
};

} // namespace nvwal

#endif // NVWAL_WAL_WRITE_AHEAD_LOG_HPP
