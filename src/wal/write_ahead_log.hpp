/**
 * @file
 * The write-ahead-log abstraction the database commits through.
 *
 * Implementations:
 *  - FileWal (src/wal): SQLite-style WAL file on the journaling file
 *    system, in stock or optimized (aligned frames + pre-allocation)
 *    flavors -- the paper's baselines.
 *  - NvwalLog (src/core): the paper's NVRAM write-ahead log.
 *
 * Snapshot reads: every committed transaction is assigned a
 * monotonically increasing CommitSeq. A reader opens a snapshot by
 * pinning the log's current commitSeq() and resolving pages through
 * readPageAt(), which ignores frames committed after that horizon.
 * While any pin at or below a frame's sequence is open the log must
 * neither supersede nor truncate that frame, so checkpointing is
 * bounded by oldestPin().
 */

#ifndef NVWAL_WAL_WRITE_AHEAD_LOG_HPP
#define NVWAL_WAL_WRITE_AHEAD_LOG_HPP

#include <set>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "pager/dirty_ranges.hpp"

namespace nvwal
{

/**
 * Monotonic sequence number assigned to each committed transaction.
 * 0 means "before any commit in this log's lifetime".
 */
using CommitSeq = std::uint64_t;

/** Horizon value meaning "no snapshot is pinned". */
inline constexpr CommitSeq kNoPin = ~static_cast<CommitSeq>(0);

/** One dirty page handed to the log at commit. */
struct FrameWrite
{
    PageNo pageNo;
    ConstByteSpan page;          //!< full page buffer
    const DirtyRanges *ranges;   //!< dirty byte ranges within the page
    /**
     * Observed dirty ratio of the page (percent, EWMA across
     * commits), tracked by the pager/workspace layer; 0 = unknown,
     * in which case the WAL judges by this commit's ranges alone.
     * Drives the adaptive diff-vs-full-page frame decision
     * (NvwalConfig::adaptiveFullFrameThresholdPct).
     */
    std::uint8_t observedDirtyPct = 0;
};

/** One transaction's frames inside a group commit. */
struct TxnFrames
{
    std::vector<FrameWrite> frames;
    std::uint32_t dbSizePages = 0;  //!< db size after this transaction
};

/** Interface every WAL implementation provides. */
class WriteAheadLog
{
  public:
    virtual ~WriteAheadLog() = default;

    /**
     * Append frames for @p frames and, if @p commit, a commit mark
     * carrying @p db_size_pages (the database size in pages after
     * this transaction), then make everything durable.
     */
    virtual Status writeFrames(const std::vector<FrameWrite> &frames,
                               bool commit,
                               std::uint32_t db_size_pages) = 0;

    /**
     * Group commit: append every transaction in @p txns, in order,
     * and make the whole batch durable at once. Implementations that
     * can amortize the persist barriers over the batch (the paper's
     * lazy sync stretched across transactions) override this; the
     * default commits each transaction separately.
     */
    virtual Status
    writeFrameGroup(const std::vector<TxnFrames> &txns)
    {
        for (const TxnFrames &txn : txns) {
            NVWAL_RETURN_IF_ERROR(
                writeFrames(txn.frames, true, txn.dbSizePages));
        }
        return Status::ok();
    }

    /** Whether writeFrameGroupAsync()/harden() are usable. */
    virtual bool supportsAsyncCommits() const { return false; }

    /**
     * Asynchronous append (paper §3.2 checksum commit): append every
     * transaction in @p txns with its commit mark, but issue NO
     * flushes or persist barriers. The batch becomes visible to
     * readers immediately yet is guaranteed durable only after a
     * later harden(). Implementations track the unflushed ranges so
     * harden() can flush them in one coalesced barrier pair.
     */
    virtual Status
    writeFrameGroupAsync(const std::vector<TxnFrames> &txns)
    {
        (void)txns;
        return Status::unsupported("WAL does not support async commits");
    }

    /**
     * Flush every range appended by writeFrameGroupAsync() since the
     * last harden and issue one persist barrier, after which
     * hardenedSeq() == commitSeq(). No-op when nothing is pending.
     */
    virtual Status harden() { return Status::ok(); }

    /**
     * Newest commit sequence guaranteed durable. Equal to commitSeq()
     * except between an async append and the next harden().
     */
    virtual CommitSeq hardenedSeq() const { return commitSeq(); }

    /**
     * Materialize the latest committed version of @p page_no into
     * @p out (a full page buffer). Returns NotFound when the log
     * holds no committed frame for that page.
     */
    virtual Status readPage(PageNo page_no, ByteSpan out) = 0;

    /**
     * Materialize @p page_no as of snapshot horizon @p horizon,
     * ignoring frames with a later commit sequence. Only meaningful
     * between pinSnapshot(horizon) and the matching unpinSnapshot().
     * Returns NotFound when no committed frame at or below the
     * horizon covers the page, Unsupported when the implementation
     * has no snapshot support (see supportsSnapshots()).
     */
    virtual Status
    readPageAt(PageNo page_no, ByteSpan out, CommitSeq horizon)
    {
        (void)page_no;
        (void)out;
        (void)horizon;
        return Status::unsupported("WAL does not support snapshots");
    }

    /** Sequence of the newest committed transaction (0 = none yet). */
    virtual CommitSeq commitSeq() const { return 0; }

    /**
     * Database size in pages as of the newest committed transaction
     * (0 when the log holds none; callers fall back to the .db file).
     */
    virtual std::uint32_t committedDbSize() const { return 0; }

    /** Whether readPageAt()/pinSnapshot() are usable. */
    virtual bool supportsSnapshots() const { return false; }

    /** Write committed pages back to the .db file and reset the log. */
    virtual Status checkpoint() = 0;

    /**
     * Incremental checkpoint: write back at most @p max_pages pages,
     * finishing (fsync + log truncation) only when every dirty page
     * has been written. Sets @p done when the log is truncated.
     * Spreading the write-back over many commits caps the latency
     * spike a full checkpoint causes (the paper amortizes that spike
     * over 1000 transactions; this bounds it instead). The default
     * implementation simply runs a full checkpoint.
     *
     * With snapshots pinned the implementation must not advance the
     * .db file past oldestPin() nor truncate frames a pin can still
     * reach; such a round reports done=true with the log retained.
     */
    virtual Status
    checkpointStep(std::uint32_t max_pages, bool *done)
    {
        (void)max_pages;
        *done = true;
        return checkpoint();
    }

    /**
     * Rebuild volatile state from the persistent log after a crash
     * or reopen. @p db_size_pages receives the last committed
     * database size (0 when the log holds no committed transaction).
     */
    virtual Status recover(std::uint32_t *db_size_pages) = 0;

    /** Committed frames appended since the last checkpoint. */
    virtual std::uint64_t framesSinceCheckpoint() const = 0;

    /** Scheme name for reports (e.g. "WAL", "NVWAL UH+LS+Diff"). */
    virtual const char *name() const = 0;

    // ----- two-phase commit (cross-shard transactions) ---------------
    //
    // A participant shard persists its slice of a cross-shard
    // transaction as a PREPARE record (data frames + a control frame
    // carrying the global transaction id), durable but invisible: the
    // frames are staged, not applied. The coordinator then persists a
    // COMMIT or ABORT DECISION record in every participant, which
    // applies or discards the staged frames. Recovery re-stages any
    // PREPARE whose DECISION did not survive; the shard router
    // resolves those by scanning the other participants' logs
    // (presumed-abort when no decision record exists anywhere).
    // Only NvwalLog implements this; file WALs report Unsupported.

    /** Whether writePrepare()/writeDecision() are usable. */
    virtual bool supportsTwoPhase() const { return false; }

    /**
     * Phase 1: persist @p txn's frames plus a PREPARE record for
     * @p gtid, atomically (all durable or none recoverable). The
     * frames stay invisible to readers until the decision.
     */
    virtual Status
    writePrepare(std::uint64_t gtid, const TxnFrames &txn)
    {
        (void)gtid;
        (void)txn;
        return Status::unsupported("WAL has no two-phase commit");
    }

    /**
     * Phase 2: persist the DECISION record for @p gtid, then apply
     * (@p commit) or discard the staged frames.
     */
    virtual Status
    writeDecision(std::uint64_t gtid, bool commit)
    {
        (void)gtid;
        (void)commit;
        return Status::unsupported("WAL has no two-phase commit");
    }

    /**
     * Resolve a transaction left in doubt by recovery: persist the
     * decision in this log, then apply or discard its staged frames.
     * NotFound when @p gtid is not in doubt here.
     */
    virtual Status
    resolveInDoubt(std::uint64_t gtid, bool commit)
    {
        (void)gtid;
        (void)commit;
        return Status::unsupported("WAL has no two-phase commit");
    }

    /** Gtids of recovered PREPAREs still awaiting a decision. */
    virtual std::vector<std::uint64_t> inDoubtTransactions() const
    { return {}; }

    /**
     * Look up a persisted decision for @p gtid in this log; true
     * (with @p commit set) when one exists.
     */
    virtual bool
    lookupDecision(std::uint64_t gtid, bool *commit) const
    {
        (void)gtid;
        (void)commit;
        return false;
    }

    /** Largest gtid in any surviving PREPARE/DECISION record. */
    virtual std::uint64_t maxSeenGtid() const { return 0; }

    /**
     * Hold/release a truncation guard: while any hold is open the
     * log must not truncate (checkpoint rounds finish write-back but
     * retain the records). The coordinator holds every participant
     * from before the first PREPARE until all DECISIONs are durable,
     * so an in-doubt shard can always find the others' decision
     * records after a crash. Balanced; holds are volatile.
     */
    virtual void acquireTwoPhaseHold() {}
    virtual void releaseTwoPhaseHold() {}

    // ----- snapshot pin bookkeeping (shared by implementations) -----

    /**
     * Register an open snapshot at @p horizon. The caller obtains the
     * horizon from commitSeq() and must balance with unpinSnapshot().
     */
    void pinSnapshot(CommitSeq horizon) { _pins.insert(horizon); }

    /** Release one pin previously taken at @p horizon. */
    void
    unpinSnapshot(CommitSeq horizon)
    {
        auto it = _pins.find(horizon);
        if (it != _pins.end()) {
            _pins.erase(it);
        }
    }

    /** The lowest pinned horizon, or kNoPin when none is open. */
    CommitSeq
    oldestPin() const
    {
        return _pins.empty() ? kNoPin : *_pins.begin();
    }

    /** Whether any snapshot is currently pinned. */
    bool hasPins() const { return !_pins.empty(); }

    /** Number of currently pinned snapshots. */
    std::size_t pinCount() const { return _pins.size(); }

  private:
    std::multiset<CommitSeq> _pins;
};

} // namespace nvwal

#endif // NVWAL_WAL_WRITE_AHEAD_LOG_HPP
