#include "dirty_ranges.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nvwal
{

void
DirtyRanges::mark(std::uint32_t lo, std::uint32_t hi)
{
    if (lo >= hi)
        return;

    // Find the insertion window: every existing range that overlaps
    // or sits within the merge gap of [lo, hi) gets absorbed.
    auto first = _ranges.begin();
    while (first != _ranges.end() &&
           first->hi + _mergeGap < lo) {
        ++first;
    }
    auto last = first;
    while (last != _ranges.end() && last->lo <= hi + _mergeGap) {
        lo = std::min(lo, last->lo);
        hi = std::max(hi, last->hi);
        ++last;
    }
    if (first == last) {
        _ranges.insert(first, ByteRange{lo, hi});
    } else {
        first->lo = lo;
        first->hi = hi;
        _ranges.erase(first + 1, last);
    }
    enforceCap();
}

void
DirtyRanges::enforceCap()
{
    while (_ranges.size() > _maxRanges) {
        // Merge the pair with the smallest gap.
        std::size_t best = 0;
        std::uint32_t best_gap = ~0u;
        for (std::size_t i = 0; i + 1 < _ranges.size(); ++i) {
            const std::uint32_t gap = _ranges[i + 1].lo - _ranges[i].hi;
            if (gap < best_gap) {
                best_gap = gap;
                best = i;
            }
        }
        _ranges[best].hi = _ranges[best + 1].hi;
        _ranges.erase(_ranges.begin() +
                      static_cast<std::ptrdiff_t>(best) + 1);
    }
}

std::uint32_t
DirtyRanges::totalBytes() const
{
    std::uint32_t total = 0;
    for (const ByteRange &r : _ranges)
        total += r.size();
    return total;
}

ByteRange
DirtyRanges::bounding() const
{
    if (_ranges.empty())
        return ByteRange{};
    return ByteRange{_ranges.front().lo, _ranges.back().hi};
}

} // namespace nvwal
