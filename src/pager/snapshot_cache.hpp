/**
 * @file
 * SnapshotCache: a private, read-only page cache for one pinned WAL
 * snapshot.
 *
 * Every read transaction (Connection::beginRead) owns one. Pages are
 * resolved through a fetch callback that materializes the page as of
 * the snapshot's commit horizon (WAL readPageAt, falling back to the
 * .db base image); the callback is the only part of a snapshot read
 * that touches shared engine state, so the Database wraps it in the
 * engine lock while cache hits proceed with no synchronization at
 * all -- that private-cache hit path is what lets aggregate read
 * throughput scale with reader threads.
 *
 * The cache is thread-confined to the reader that owns the
 * transaction; it tallies its reads/hits locally and the Database
 * folds them into the shared MetricsRegistry (under the engine lock)
 * when the transaction ends.
 */

#ifndef NVWAL_PAGER_SNAPSHOT_CACHE_HPP
#define NVWAL_PAGER_SNAPSHOT_CACHE_HPP

#include <functional>
#include <map>
#include <memory>

#include "pager/page_source.hpp"

namespace nvwal
{

/** Read-only PageSource over one snapshot horizon. */
class SnapshotCache : public PageSource
{
  public:
    /** Materializes a page as of the snapshot's horizon. */
    using Fetcher = std::function<Status(PageNo, ByteSpan)>;

    SnapshotCache(std::uint32_t page_size, std::uint32_t reserved_bytes,
                  std::uint32_t page_count, PageNo root_page,
                  Fetcher fetch)
        : _pageSize(page_size), _reservedBytes(reserved_bytes),
          _pageCount(page_count), _rootPage(root_page),
          _fetch(std::move(fetch))
    {
    }

    Status
    getPage(PageNo page_no, CachedPage **out) override
    {
        NVWAL_ASSERT(page_no != kNoPage);
        auto it = _cache.find(page_no);
        if (it != _cache.end()) {
            ++_cacheHits;
            *out = it->second.get();
            return Status::ok();
        }
        if (page_no > _pageCount)
            return Status::invalidArgument("page beyond snapshot size");
        auto page = std::make_unique<CachedPage>();
        page->buf.resize(_pageSize);
        NVWAL_RETURN_IF_ERROR(_fetch(page_no, page->span()));
        ++_fetches;
        *out = page.get();
        _cache[page_no] = std::move(page);
        return Status::ok();
    }

    std::uint32_t pageSize() const override { return _pageSize; }
    std::uint32_t usableSize() const override
    { return _pageSize - _reservedBytes; }
    PageNo rootPage() const override { return _rootPage; }

    /** Database size in pages as of the snapshot. */
    std::uint32_t pageCount() const { return _pageCount; }

    // Thread-local tallies, folded into the shared registry when the
    // read transaction ends.
    std::uint64_t cacheHits() const { return _cacheHits; }
    std::uint64_t fetches() const { return _fetches; }

  private:
    std::uint32_t _pageSize;
    std::uint32_t _reservedBytes;
    std::uint32_t _pageCount;
    PageNo _rootPage;
    Fetcher _fetch;
    std::map<PageNo, std::unique_ptr<CachedPage>> _cache;
    std::uint64_t _cacheHits = 0;
    std::uint64_t _fetches = 0;
};

} // namespace nvwal

#endif // NVWAL_PAGER_SNAPSHOT_CACHE_HPP
