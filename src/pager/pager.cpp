#include "pager.hpp"

#include <cstring>

namespace nvwal
{

Pager::Pager(DbFile &db_file, std::uint32_t page_size,
             std::uint32_t reserved_bytes, MetricsRegistry *stats)
    : _dbFile(db_file), _pageSize(page_size),
      _reservedBytes(reserved_bytes), _stats(stats)
{
    NVWAL_ASSERT(page_size >= 512 && reserved_bytes < page_size / 2);
}

Status
Pager::open()
{
    NVWAL_RETURN_IF_ERROR(_dbFile.open());
    if (_dbFile.pageCount() == 0) {
        // Fresh database: header page (1) plus an all-zero root page
        // (2); the B-tree treats a zero-typed root as an empty leaf,
        // so no transactional machinery is needed at creation time.
        ByteBuffer page(_pageSize, 0);
        std::memcpy(page.data(), DbHeader::kMagic, DbHeader::kMagicLen);
        storeU32(page.data() + DbHeader::kPageSizeOff, _pageSize);
        storeU32(page.data() + DbHeader::kReservedOff, _reservedBytes);
        storeU32(page.data() + DbHeader::kPageCountOff, 2);
        storeU32(page.data() + DbHeader::kRootPageOff, rootPage());
        NVWAL_RETURN_IF_ERROR(
            _dbFile.writePage(1, ConstByteSpan(page.data(), _pageSize)));
        std::memset(page.data(), 0, _pageSize);
        NVWAL_RETURN_IF_ERROR(
            _dbFile.writePage(2, ConstByteSpan(page.data(), _pageSize)));
        NVWAL_RETURN_IF_ERROR(_dbFile.sync());
        _pageCount = 2;
        return Status::ok();
    }

    // Existing database: validate the header. The header page itself
    // may have a newer committed copy in the WAL, so go through
    // getPage() (caller must have installed the WAL reader first).
    _pageCount = _dbFile.pageCount();
    CachedPage *header;
    NVWAL_RETURN_IF_ERROR(getPage(1, &header));
    if (std::memcmp(header->buf.data(), DbHeader::kMagic,
                    DbHeader::kMagicLen) != 0) {
        return Status::corruption("database header magic mismatch");
    }
    const std::uint32_t file_page_size =
        loadU32(header->buf.data() + DbHeader::kPageSizeOff);
    const std::uint32_t file_reserved =
        loadU32(header->buf.data() + DbHeader::kReservedOff);
    if (file_page_size != _pageSize || file_reserved != _reservedBytes) {
        return Status::invalidArgument(
            "database was created with different page geometry");
    }
    return Status::ok();
}

Status
Pager::getPage(PageNo page_no, CachedPage **out)
{
    NVWAL_ASSERT(page_no != kNoPage);
    auto it = _cache.find(page_no);
    if (it != _cache.end()) {
        if (_stats != nullptr)
            _stats->add(stats::kPagerCacheHits);
        *out = it->second.get();
        return Status::ok();
    }
    if (page_no > _pageCount) {
        return Status::invalidArgument("page beyond end of database");
    }

    auto page = std::make_unique<CachedPage>();
    page->buf.resize(_pageSize);
    bool from_wal = false;
    if (_walReader) {
        const Status wal = _walReader(page_no, page->span());
        if (wal.isOk())
            from_wal = true;
        else if (!wal.isNotFound())
            return wal;
    }
    if (_stats != nullptr) {
        _stats->add(stats::kPagerReads);
        if (from_wal)
            _stats->add(stats::kPagerWalReads);
        _stats->tracer().instant("pager.page_read", "pager", "page",
                                 page_no);
    }
    if (!from_wal) {
        if (page_no <= _dbFile.pageCount()) {
            NVWAL_RETURN_IF_ERROR(_dbFile.readPage(page_no, page->span()));
        } else {
            // Allocated past EOF and committed to the WAL only; the
            // WAL reader must have served it. Reaching here means
            // the log lost frames.
            return Status::corruption("page missing from WAL and file");
        }
    }
    *out = page.get();
    _cache[page_no] = std::move(page);
    return Status::ok();
}

Status
Pager::popFreePage(CachedPage *header, PageNo *page_no, bool *found)
{
    *found = false;
    const PageNo head =
        loadU32(header->buf.data() + DbHeader::kFreelistHeadOff);
    if (head == kNoPage)
        return Status::ok();

    CachedPage *trunk;
    NVWAL_RETURN_IF_ERROR(getPage(head, &trunk));
    const std::uint32_t n = loadU32(trunk->buf.data() + 4);
    if (n > 0) {
        // Pop the last leaf entry of the trunk.
        const std::uint32_t slot = 8 + 4 * (n - 1);
        *page_no = loadU32(trunk->buf.data() + slot);
        storeU32(trunk->buf.data() + slot, 0);
        storeU32(trunk->buf.data() + 4, n - 1);
        trunk->dirty.mark(4, 8);
        trunk->dirty.mark(slot, slot + 4);
    } else {
        // The trunk itself becomes the allocated page.
        *page_no = head;
        const std::uint32_t next = loadU32(trunk->buf.data());
        storeU32(header->buf.data() + DbHeader::kFreelistHeadOff, next);
        header->dirty.mark(DbHeader::kFreelistHeadOff,
                           DbHeader::kFreelistHeadOff + 4);
    }
    const std::uint32_t count =
        loadU32(header->buf.data() + DbHeader::kFreelistCountOff);
    NVWAL_ASSERT(count > 0, "free-list count underflow");
    storeU32(header->buf.data() + DbHeader::kFreelistCountOff, count - 1);
    header->dirty.mark(DbHeader::kFreelistCountOff,
                       DbHeader::kFreelistCountOff + 4);
    *found = true;
    return Status::ok();
}

Status
Pager::allocatePage(CachedPage **out, PageNo *page_no)
{
    // Prefer the persistent free list.
    CachedPage *header;
    NVWAL_RETURN_IF_ERROR(getPage(1, &header));
    bool reused = false;
    PageNo no = kNoPage;
    NVWAL_RETURN_IF_ERROR(popFreePage(header, &no, &reused));
    if (reused) {
        CachedPage *page;
        NVWAL_RETURN_IF_ERROR(getPage(no, &page));
        std::memset(page->buf.data(), 0, page->buf.size());
        page->dirty.mark(0, _pageSize - _reservedBytes);
        *out = page;
        *page_no = no;
        return Status::ok();
    }

    no = ++_pageCount;
    auto page = std::make_unique<CachedPage>();
    page->buf.resize(_pageSize, 0);
    // A fresh page is logically all-dirty: its first WAL frame must
    // carry the full content.
    page->dirty.mark(0, _pageSize - _reservedBytes);
    *out = page.get();
    *page_no = no;
    _cache[no] = std::move(page);
    return Status::ok();
}

Status
Pager::freePage(PageNo page_no)
{
    NVWAL_ASSERT(page_no > 1, "cannot free the header page");
    CachedPage *header;
    NVWAL_RETURN_IF_ERROR(getPage(1, &header));
    const PageNo head =
        loadU32(header->buf.data() + DbHeader::kFreelistHeadOff);

    CachedPage *page;
    NVWAL_RETURN_IF_ERROR(getPage(page_no, &page));

    bool appended = false;
    if (head != kNoPage) {
        CachedPage *trunk;
        NVWAL_RETURN_IF_ERROR(getPage(head, &trunk));
        const std::uint32_t n = loadU32(trunk->buf.data() + 4);
        if (n < trunkCapacity()) {
            const std::uint32_t slot = 8 + 4 * n;
            storeU32(trunk->buf.data() + slot, page_no);
            storeU32(trunk->buf.data() + 4, n + 1);
            trunk->dirty.mark(4, 8);
            trunk->dirty.mark(slot, slot + 4);
            appended = true;
        }
    }
    if (!appended) {
        // The freed page becomes a new trunk heading the list.
        std::memset(page->buf.data(), 0, page->buf.size());
        storeU32(page->buf.data(), head);
        page->dirty.mark(0, _pageSize - _reservedBytes);
        storeU32(header->buf.data() + DbHeader::kFreelistHeadOff,
                 page_no);
        header->dirty.mark(DbHeader::kFreelistHeadOff,
                           DbHeader::kFreelistHeadOff + 4);
    }
    const std::uint32_t count =
        loadU32(header->buf.data() + DbHeader::kFreelistCountOff);
    storeU32(header->buf.data() + DbHeader::kFreelistCountOff, count + 1);
    header->dirty.mark(DbHeader::kFreelistCountOff,
                       DbHeader::kFreelistCountOff + 4);
    return Status::ok();
}

std::uint32_t
Pager::freePageCount()
{
    CachedPage *header;
    NVWAL_CHECK_OK(getPage(1, &header));
    return loadU32(header->buf.data() + DbHeader::kFreelistCountOff);
}

CachedPage *
Pager::cached(PageNo page_no)
{
    auto it = _cache.find(page_no);
    return it == _cache.end() ? nullptr : it->second.get();
}

std::vector<PageNo>
Pager::dirtyPageNos() const
{
    std::vector<PageNo> out;
    for (const auto &[no, page] : _cache) {
        if (page->isDirty())
            out.push_back(no);
    }
    return out;  // std::map iteration is already ascending
}

void
Pager::markAllClean()
{
    for (auto &[no, page] : _cache)
        page->dirty.clear();
}

void
Pager::discardDirty(std::uint32_t restore_page_count)
{
    for (auto it = _cache.begin(); it != _cache.end();) {
        if (it->second->isDirty())
            it = _cache.erase(it);
        else
            ++it;
    }
    _pageCount = restore_page_count;
}

void
Pager::dropCleanPages()
{
    for (auto it = _cache.begin(); it != _cache.end();) {
        if (!it->second->isDirty())
            it = _cache.erase(it);
        else
            ++it;
    }
}

void
Pager::reset()
{
    NVWAL_ASSERT(dirtyPageNos().empty(),
                 "reset with dirty pages would lose data");
    _cache.clear();
}

Status
Pager::flushAllToFile()
{
    for (auto &[no, page] : _cache) {
        if (!page->isDirty())
            continue;
        NVWAL_RETURN_IF_ERROR(_dbFile.writePage(no, page->cspan()));
        if (_stats != nullptr)
            _stats->add(stats::kPagerWrites);
        page->dirty.clear();
    }
    return Status::ok();
}

} // namespace nvwal
