/**
 * @file
 * Page-granular access to the main database file (.db) stored on the
 * journaling file system. Shared by the pager (reads) and the WAL
 * implementations (checkpoint write-back).
 */

#ifndef NVWAL_PAGER_DB_FILE_HPP
#define NVWAL_PAGER_DB_FILE_HPP

#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "fs/journaling_fs.hpp"

namespace nvwal
{

/** The .db file as an array of fixed-size pages (1-based numbers). */
class DbFile
{
  public:
    DbFile(JournalingFs &fs, std::string name, std::uint32_t page_size)
        : _fs(fs), _name(std::move(name)), _pageSize(page_size)
    {}

    /** Create the file if missing. */
    Status
    open()
    {
        if (!_fs.exists(_name))
            return _fs.create(_name);
        return Status::ok();
    }

    const std::string &name() const { return _name; }
    std::uint32_t pageSize() const { return _pageSize; }

    /** Number of whole pages currently in the file. */
    std::uint32_t
    pageCount() const
    {
        return static_cast<std::uint32_t>(_fs.fileSize(_name) / _pageSize);
    }

    /** Read page @p page_no into @p out (exactly one page). */
    Status
    readPage(PageNo page_no, ByteSpan out)
    {
        NVWAL_ASSERT(page_no != kNoPage && out.size() == _pageSize);
        return _fs.pread(_name, offsetOf(page_no), out);
    }

    /** Write page @p page_no (buffered until sync()). */
    Status
    writePage(PageNo page_no, ConstByteSpan data)
    {
        NVWAL_ASSERT(page_no != kNoPage && data.size() == _pageSize);
        return _fs.pwrite(_name, offsetOf(page_no), data);
    }

    /** fsync the database file. */
    Status sync() { return _fs.fsync(_name); }

  private:
    std::uint64_t
    offsetOf(PageNo page_no) const
    {
        return static_cast<std::uint64_t>(page_no - 1) * _pageSize;
    }

    JournalingFs &_fs;
    std::string _name;
    std::uint32_t _pageSize;
};

} // namespace nvwal

#endif // NVWAL_PAGER_DB_FILE_HPP
