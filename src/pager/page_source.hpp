/**
 * @file
 * PageSource: the page-access surface the B-tree runs on.
 *
 * Two implementations exist:
 *  - Pager: the shared read-write DRAM cache over the database file
 *    and the WAL (the single writer and everything engine-internal
 *    run on it);
 *  - SnapshotCache: a private read-only cache that resolves pages as
 *    of one pinned WAL snapshot (each open read transaction owns
 *    one, so concurrent readers never contend on shared cache
 *    state).
 *
 * Mutating calls (allocatePage/freePage) default to Unsupported so
 * read-only sources only implement the lookup path; a B-tree given a
 * read-only source can serve get/scan/count/validate but any insert
 * surfaces the error as a Status, not a crash.
 */

#ifndef NVWAL_PAGER_PAGE_SOURCE_HPP
#define NVWAL_PAGER_PAGE_SOURCE_HPP

#include "common/status.hpp"
#include "common/types.hpp"
#include "pager/dirty_ranges.hpp"

namespace nvwal
{

/** One page resident in a page cache. */
struct CachedPage
{
    ByteBuffer buf;
    DirtyRanges dirty;
    /**
     * Observed dirty ratio (percent) smoothed across this page's
     * commits; 0 until the first commit. Feeds the WAL's adaptive
     * diff-vs-full-page frame decision via
     * FrameWrite::observedDirtyPct.
     */
    std::uint8_t dirtyPctEwma = 0;

    bool isDirty() const { return !dirty.empty(); }

    /**
     * Fold the current dirty ranges into the EWMA (half old, half
     * current; seeded by the first observation) and return it.
     * Called once per commit while the ranges are still populated.
     */
    std::uint8_t
    noteDirtyRatio()
    {
        if (buf.empty() || dirty.empty())
            return dirtyPctEwma;
        std::uint64_t pct =
            (100 * dirty.totalBytes() + buf.size() - 1) / buf.size();
        if (pct > 100)
            pct = 100;
        dirtyPctEwma = static_cast<std::uint8_t>(
            dirtyPctEwma == 0 ? pct : (dirtyPctEwma + pct + 1) / 2);
        return dirtyPctEwma;
    }

    ByteSpan span() { return ByteSpan(buf.data(), buf.size()); }
    ConstByteSpan cspan() const
    { return ConstByteSpan(buf.data(), buf.size()); }
};

/** Interface the B-tree (and its cursors) reads and writes through. */
class PageSource
{
  public:
    virtual ~PageSource() = default;

    /** Fetch a page into the cache and return the cached entry. */
    virtual Status getPage(PageNo page_no, CachedPage **out) = 0;

    virtual std::uint32_t pageSize() const = 0;

    /** Bytes of a page usable by the B-tree (pageSize - reserved). */
    virtual std::uint32_t usableSize() const = 0;

    /** Root page of the default table's tree. */
    virtual PageNo rootPage() const = 0;

    /**
     * Allocate a zeroed, fully-dirty page. Read-only sources reject
     * with Unsupported.
     */
    virtual Status
    allocatePage(CachedPage **out, PageNo *page_no)
    {
        (void)out;
        (void)page_no;
        return Status::unsupported("read-only page source");
    }

    /** Return @p page_no to the free list. Read-only sources reject. */
    virtual Status
    freePage(PageNo page_no)
    {
        (void)page_no;
        return Status::unsupported("read-only page source");
    }
};

} // namespace nvwal

#endif // NVWAL_PAGER_PAGE_SOURCE_HPP
