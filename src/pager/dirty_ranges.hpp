/**
 * @file
 * Per-page dirty byte-range tracking for differential logging.
 *
 * The paper's byte-granularity differential logging (section 3.2)
 * "truncates the preceding and trailing clean regions" of a dirty
 * B-tree page and logs only the dirty portions. We track a small set
 * of disjoint [lo, hi) ranges per cached page: B-tree mutations mark
 * the bytes they touch, and at commit each range becomes one NVWAL
 * frame. Nearby ranges are merged (logging a few clean gap bytes is
 * cheaper than another 32-byte frame header), and the range count is
 * capped so tracking stays O(1) per page.
 */

#ifndef NVWAL_PAGER_DIRTY_RANGES_HPP
#define NVWAL_PAGER_DIRTY_RANGES_HPP

#include <vector>

#include "common/bytes.hpp"

namespace nvwal
{

/** Sorted, disjoint dirty byte ranges within one page. */
class DirtyRanges
{
  public:
    /**
     * @param merge_gap Adjacent ranges closer than this are merged.
     * @param max_ranges Hard cap; the closest pair is merged when a
     *        mark would exceed it.
     */
    explicit DirtyRanges(std::uint32_t merge_gap = 32,
                         std::uint32_t max_ranges = 8)
        : _mergeGap(merge_gap), _maxRanges(max_ranges)
    {}

    /** Mark [lo, hi) dirty. */
    void mark(std::uint32_t lo, std::uint32_t hi);

    /** True if no byte is dirty. */
    bool empty() const { return _ranges.empty(); }

    /** Sorted disjoint ranges. */
    const std::vector<ByteRange> &ranges() const { return _ranges; }

    /** Sum of range sizes. */
    std::uint32_t totalBytes() const;

    /** Smallest single range covering everything (empty if clean). */
    ByteRange bounding() const;

    void clear() { _ranges.clear(); }

  private:
    void enforceCap();

    std::uint32_t _mergeGap;
    std::uint32_t _maxRanges;
    std::vector<ByteRange> _ranges;
};

} // namespace nvwal

#endif // NVWAL_PAGER_DIRTY_RANGES_HPP
