/**
 * @file
 * DRAM page cache over the database file, with dirty byte-range
 * tracking per cached page.
 *
 * The pager is deliberately WAL-agnostic: reads consult an optional
 * WAL reader hook first (the latest committed frame of a page lives
 * in the log until checkpoint), then fall back to the .db file.
 * Transactions mutate cached pages through B-tree code that marks
 * dirty ranges; at commit the database collects the dirty set and
 * hands it to the active WriteAheadLog implementation.
 */

#ifndef NVWAL_PAGER_PAGER_HPP
#define NVWAL_PAGER_PAGER_HPP

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "pager/db_file.hpp"
#include "pager/dirty_ranges.hpp"
#include "pager/page_source.hpp"
#include "sim/stats.hpp"

namespace nvwal
{

/** Database file header geometry (page 1, first 100 bytes). */
struct DbHeader
{
    static constexpr char kMagic[] = "NVWAL-SQLite-repro";
    static constexpr std::uint32_t kMagicLen = 19;  // incl. NUL
    static constexpr std::uint32_t kPageSizeOff = 20;
    static constexpr std::uint32_t kReservedOff = 24;
    static constexpr std::uint32_t kPageCountOff = 28;
    static constexpr std::uint32_t kRootPageOff = 32;
    /** First free-list trunk page (0 = free list empty). */
    static constexpr std::uint32_t kFreelistHeadOff = 36;
    /** Total pages on the free list (trunks + entries). */
    static constexpr std::uint32_t kFreelistCountOff = 40;
    static constexpr std::uint32_t kSize = 100;
};

/** Page cache + allocator for one database. */
class Pager : public PageSource
{
  public:
    /**
     * Reads the latest committed WAL copy of a page. Returns
     * NotFound when the log holds no committed frame for it (the
     * pager then falls back to the .db file); any other error
     * propagates to the getPage() caller.
     */
    using WalReader = std::function<Status(PageNo, ByteSpan)>;

    /**
     * @p stats is optional: when given, the pager counts cache
     * hits/misses and emits page-fetch trace events; a nullptr pager
     * (tests, scratch rebuilds) runs unobserved.
     */
    Pager(DbFile &db_file, std::uint32_t page_size,
          std::uint32_t reserved_bytes, MetricsRegistry *stats = nullptr);

    /**
     * Open the database: create header page (1) and root page (2)
     * directly in the file when it is empty, otherwise validate the
     * header. The WAL reader must be installed (and the WAL
     * recovered) before the first getPage() call on a non-empty
     * database.
     */
    Status open();

    std::uint32_t pageSize() const override { return _pageSize; }
    std::uint32_t reservedBytes() const { return _reservedBytes; }

    /** Bytes of a page usable by the B-tree (pageSize - reserved). */
    std::uint32_t usableSize() const override
    { return _pageSize - _reservedBytes; }

    PageNo rootPage() const override { return 2; }

    /** Logical page count (includes pages not yet checkpointed). */
    std::uint32_t pageCount() const { return _pageCount; }

    /** Reset the logical page count (WAL recovery). */
    void setPageCount(std::uint32_t n) { _pageCount = n; }

    void setWalReader(WalReader reader) { _walReader = std::move(reader); }

    /** Fetch a page, reading through WAL then the .db file. */
    Status getPage(PageNo page_no, CachedPage **out) override;

    /**
     * Allocate a page: reuse one from the persistent free list if
     * available (SQLite-style trunk pages), otherwise grow the
     * database. The returned page is zeroed and fully dirty.
     */
    Status allocatePage(CachedPage **out, PageNo *page_no) override;

    /**
     * Return @p page_no to the free list (it must not be referenced
     * by any tree afterwards). Free-list mutations go through cached
     * pages, so they are transactional like any other page write.
     */
    Status freePage(PageNo page_no) override;

    /** Pages currently on the free list. */
    std::uint32_t freePageCount();

    /** Cached entry or nullptr (no I/O). */
    CachedPage *cached(PageNo page_no);

    /** Page numbers of all dirty cached pages, ascending. */
    std::vector<PageNo> dirtyPageNos() const;

    /** Clear dirty marks after a successful commit. */
    void markAllClean();

    /**
     * Roll back: evict dirty pages and restore the page count to
     * @p restore_page_count (its value at transaction start).
     */
    void discardDirty(std::uint32_t restore_page_count);

    /** Evict all clean pages (checkpoint truncation, tests). */
    void dropCleanPages();

    /** Evict everything; only legal with no dirty pages. */
    void reset();

    /**
     * Write every dirty cached page straight to the database file
     * and mark it clean. Bulk-load path for WAL-less construction
     * (vacuum rebuilds); never call on a WAL-backed database.
     */
    Status flushAllToFile();

  private:
    /** Entries a free-list trunk page can hold. */
    std::uint32_t trunkCapacity() const { return (usableSize() - 8) / 4; }

    Status popFreePage(CachedPage *header, PageNo *page_no,
                       bool *found);

    DbFile &_dbFile;
    std::uint32_t _pageSize;
    std::uint32_t _reservedBytes;
    MetricsRegistry *_stats;
    std::uint32_t _pageCount = 0;
    WalReader _walReader;
    std::map<PageNo, std::unique_ptr<CachedPage>> _cache;
};

} // namespace nvwal

#endif // NVWAL_PAGER_PAGER_HPP
