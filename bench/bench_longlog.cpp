/**
 * @file
 * Long-log read scaling curve: cold-miss page materialization cost
 * as the un-checkpointed log grows from 10 to 10,000 frames per
 * page (DESIGN.md §14). Two scenarios, both with the materialize
 * image cache disabled so every read is a cold miss:
 *
 *  - `pinned.N`: one full-page frame, a pinned snapshot right
 *    behind it, then N trailing committed diffs. Every readPageAt()
 *    at the pinned horizon must locate "newest frame <= horizon" in
 *    a chain of N+1 frames -- a backward scan pays O(N); the radix
 *    frame index pays one root-to-leaf descent.
 *
 *  - `adaptive.N`: a mixed workload (mostly small diffs, every 16th
 *    commit dirties most of the page) with no pins. The adaptive
 *    granularity decision ships the heavy commits as full-page
 *    frames, each of which becomes a replay anchor, so a cold tail
 *    read replays at most the frames since the last full frame no
 *    matter how long the log is.
 *
 * The gated observable is `wal.frame_scan_steps` per read (descent
 * nodes + leaves visited + frames applied): deterministic, so the
 * CI bound (baselines/longlog_bounds.json) cannot flake on host
 * noise. The `flatness` record pins the headline claim directly:
 * steps per read at N=10,000 stay within 2x of N=10. Host and
 * simulated per-read times ride along informationally.
 *
 * `--json <path>` exports the curve; `--smoke` only trims the read
 * count (the commit counts are the curve itself and stay).
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/nvwal_log.hpp"
#include "pager/db_file.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

constexpr PageNo kPageNo = 3;
constexpr std::uint32_t kPageSize = 4096;

struct ReadProfile
{
    double stepsPerRead = 0.0;
    double simNsPerRead = 0.0;
    double hostNsPerRead = 0.0;
    std::uint64_t indexNodes = 0;
    std::uint64_t fullFramesAdaptive = 0;
    std::uint64_t diffFrames = 0;
};

NvwalConfig
coldConfig()
{
    NvwalConfig config;  // UH+LS+Diff defaults
    config.materializeCacheEntries = 0;  // every read is a cold miss
    return config;
}

struct LogRig
{
    Env env;
    DbFile file;
    NvwalLog log;

    explicit
    LogRig(const EnvConfig &env_config)
        : env(env_config), file(env.fs, "longlog.db", kPageSize),
          log(env.heap, env.pmem, file, kPageSize, 24, coldConfig(),
              env.stats)
    {
        NVWAL_CHECK_OK(file.open());
        std::uint32_t db_size = 0;
        NVWAL_CHECK_OK(log.recover(&db_size));
    }
};

EnvConfig
longlogEnvConfig()
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    env_config.nvramBytes = 128ull << 20;  // 10k-frame chains fit
    return env_config;
}

void
commitDiff(NvwalLog &log, ByteBuffer &page, int i)
{
    const std::uint32_t off =
        static_cast<std::uint32_t>(64 * (i % 60));
    page[off] = static_cast<std::uint8_t>(i);
    DirtyRanges diff;
    diff.mark(off, off + 8);
    std::vector<FrameWrite> w{FrameWrite{
        kPageNo, ConstByteSpan(page.data(), page.size()), &diff}};
    NVWAL_CHECK_OK(log.writeFrames(w, true, kPageNo + 1));
}

void
commitHeavy(NvwalLog &log, ByteBuffer &page, int i)
{
    // Dirty ~75% of the page: the adaptive decision (default
    // threshold 50%) ships it as one full-page frame.
    for (std::uint32_t off = 0; off < 3 * kPageSize / 4; off += 64)
        page[off] = static_cast<std::uint8_t>(i * 7);
    DirtyRanges heavy;
    heavy.mark(0, 3 * kPageSize / 4);
    std::vector<FrameWrite> w{FrameWrite{
        kPageNo, ConstByteSpan(page.data(), page.size()), &heavy}};
    NVWAL_CHECK_OK(log.writeFrames(w, true, kPageNo + 1));
}

ReadProfile
measureReads(LogRig &rig, CommitSeq horizon, int reads)
{
    ByteBuffer out(kPageSize);
    const StatsSnapshot before = rig.env.stats.snapshot();
    const SimTime sim_start = rig.env.clock.now();
    const auto host_start = std::chrono::steady_clock::now();
    for (int r = 0; r < reads; ++r) {
        if (horizon == kNoPin) {
            NVWAL_CHECK_OK(rig.log.readPage(
                kPageNo, ByteSpan(out.data(), out.size())));
        } else {
            NVWAL_CHECK_OK(rig.log.readPageAt(
                kPageNo, ByteSpan(out.data(), out.size()), horizon));
        }
    }
    const auto host_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - host_start)
            .count();
    const StatsSnapshot delta = MetricsRegistry::delta(
        before, rig.env.stats.snapshot());
    auto stat = [&delta](const char *name) -> std::uint64_t {
        auto it = delta.find(name);
        return it == delta.end() ? 0 : it->second;
    };

    ReadProfile p;
    p.stepsPerRead =
        static_cast<double>(stat(stats::kWalFrameScanSteps)) / reads;
    p.simNsPerRead =
        static_cast<double>(rig.env.clock.now() - sim_start) / reads;
    p.hostNsPerRead = static_cast<double>(host_ns) / reads;
    p.indexNodes = rig.log.frameIndexNodes();
    return p;
}

/** One full-page frame, a pin right behind it, N trailing diffs. */
ReadProfile
runPinned(int frames, int reads)
{
    LogRig rig(longlogEnvConfig());

    ByteBuffer page(kPageSize, 0x3C);
    DirtyRanges full;
    full.mark(0, kPageSize);
    std::vector<FrameWrite> w{FrameWrite{
        kPageNo, ConstByteSpan(page.data(), page.size()), &full}};
    NVWAL_CHECK_OK(rig.log.writeFrames(w, true, kPageNo + 1));
    const CommitSeq horizon = rig.log.commitSeq();
    rig.log.pinSnapshot(horizon);

    for (int i = 0; i < frames; ++i)
        commitDiff(rig.log, page, i);

    ReadProfile p = measureReads(rig, horizon, reads);
    rig.log.unpinSnapshot(horizon);
    return p;
}

/** Mixed diff/heavy workload, cold tail reads, no pins. */
ReadProfile
runAdaptive(int frames, int reads)
{
    LogRig rig(longlogEnvConfig());

    ByteBuffer page(kPageSize, 0x5A);
    const StatsSnapshot before = rig.env.stats.snapshot();
    for (int i = 0; i < frames; ++i) {
        if (i % 16 == 0)
            commitHeavy(rig.log, page, i);
        else
            commitDiff(rig.log, page, i);
    }
    const StatsSnapshot writes = MetricsRegistry::delta(
        before, rig.env.stats.snapshot());
    auto stat = [&writes](const char *name) -> std::uint64_t {
        auto it = writes.find(name);
        return it == writes.end() ? 0 : it->second;
    };

    ReadProfile p = measureReads(rig, kNoPin, reads);
    p.fullFramesAdaptive = stat(stats::kWalFullFramesAdaptive);
    p.diffFrames = stat(stats::kWalDiffFrames);
    return p;
}

BenchRecord
profileRecord(const char *kind, int frames, int reads,
              const ReadProfile &p)
{
    BenchRecord rec;
    rec.name = std::string(kind) + "." + std::to_string(frames);
    rec.params["frames_per_page"] = static_cast<std::uint64_t>(frames);
    rec.params["reads"] = static_cast<std::uint64_t>(reads);
    rec.values["scan_steps_per_read"] = p.stepsPerRead;
    rec.values["sim_ns_per_read"] = p.simNsPerRead;
    rec.values["host_ns_per_read"] = p.hostNsPerRead;
    rec.values["frame_index_nodes"] =
        static_cast<double>(p.indexNodes);
    if (p.fullFramesAdaptive != 0 || p.diffFrames != 0) {
        rec.values["full_frames_adaptive"] =
            static_cast<double>(p.fullFramesAdaptive);
        rec.values["diff_frames"] =
            static_cast<double>(p.diffFrames);
    }
    return rec;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    BenchJson json("bench_longlog", args);

    const std::vector<int> curve{10, 100, 1000, 10000};
    const int reads = args.smoke ? 50 : 2000;

    std::printf("Long-log cold-miss read scaling "
                "(image cache disabled)\n\n");
    TablePrinter table("bench_longlog");
    table.setHeader({"scenario", "frames/page", "steps/read",
                     "sim us/read", "host us/read", "index nodes"});

    double pinned_lo = 0.0, pinned_hi = 0.0;
    double adaptive_lo = 0.0, adaptive_hi = 0.0;
    for (int frames : curve) {
        const ReadProfile pinned = runPinned(frames, reads);
        const ReadProfile adaptive = runAdaptive(frames, reads);
        if (frames == curve.front()) {
            pinned_lo = pinned.stepsPerRead;
            adaptive_lo = adaptive.stepsPerRead;
        }
        if (frames == curve.back()) {
            pinned_hi = pinned.stepsPerRead;
            adaptive_hi = adaptive.stepsPerRead;
        }
        table.addRow({"pinned", std::to_string(frames),
                      TablePrinter::num(pinned.stepsPerRead, 1),
                      TablePrinter::num(pinned.simNsPerRead / 1000.0, 2),
                      TablePrinter::num(pinned.hostNsPerRead / 1000.0, 2),
                      TablePrinter::num(pinned.indexNodes)});
        table.addRow({"adaptive", std::to_string(frames),
                      TablePrinter::num(adaptive.stepsPerRead, 1),
                      TablePrinter::num(adaptive.simNsPerRead / 1000.0, 2),
                      TablePrinter::num(adaptive.hostNsPerRead / 1000.0, 2),
                      TablePrinter::num(adaptive.indexNodes)});
        json.add(profileRecord("pinned", frames, reads, pinned));
        json.add(profileRecord("adaptive", frames, reads, adaptive));
    }
    table.print();

    const double pinned_ratio =
        pinned_lo > 0.0 ? pinned_hi / pinned_lo : 0.0;
    const double adaptive_ratio =
        adaptive_lo > 0.0 ? adaptive_hi / adaptive_lo : 0.0;
    std::printf("\nflatness: pinned %.0f -> %.0f frames/page = %.2fx, "
                "adaptive = %.2fx (claim: <= 2x)\n",
                static_cast<double>(curve.front()),
                static_cast<double>(curve.back()), pinned_ratio,
                adaptive_ratio);

    BenchRecord flat;
    flat.name = "flatness";
    flat.params["frames_lo"] =
        static_cast<std::uint64_t>(curve.front());
    flat.params["frames_hi"] =
        static_cast<std::uint64_t>(curve.back());
    flat.values["pinned_steps_ratio"] = pinned_ratio;
    flat.values["adaptive_steps_ratio"] = adaptive_ratio;
    json.add(flat);

    json.write();
    return 0;
}
