/**
 * @file
 * Concurrent-connection benchmark for the redesigned Connection API:
 *
 *  1. snapshot-read scaling -- N reader threads, each on its own
 *     Connection and pinned snapshot, hammer point reads; total
 *     wall-clock reads/sec should grow with N because a warm
 *     snapshot cache serves reads without any shared lock;
 *  2. single-writer commit latency through the group-commit queue --
 *     a single-entry batch issues the same device-op sequence as the
 *     pre-queue commit path, so sim-time percentiles must stay within
 *     noise of bench_commit_latency's incremental row;
 *  3. multi-writer group commit -- W writer threads autocommitting
 *     through the queue; the leader appends each batch with one
 *     barrier pair, so persist barriers per transaction fall as W
 *     grows (below 1.0 once batches average 3+ transactions).
 *
 * `--json <path>` exports all three sections; `--smoke` shrinks the
 * run for CI validation.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "db/connection.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

double
wallSeconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

// ---- 1. snapshot-read scaling --------------------------------------

struct ReaderResult
{
    double readsPerSec = 0.0;
    double cacheHitRate = 0.0;
};

ReaderResult
runReaders(int threads, int reads_per_thread, int rows)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 128ull << 20;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    Rng fill(7);
    for (RowId k = 0; k < rows; ++k) {
        ByteBuffer v(100, static_cast<std::uint8_t>(fill.next()));
        NVWAL_CHECK_OK(db->insert(k, ConstByteSpan(v.data(), v.size())));
    }

    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fetches{0};
    std::atomic<bool> failed{false};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            std::unique_ptr<Connection> conn;
            if (!db->connect(&conn).isOk() || !conn->beginRead().isOk()) {
                failed.store(true);
                return;
            }
            Rng rng(100 + static_cast<std::uint64_t>(t));
            ByteBuffer out;
            for (int i = 0; i < reads_per_thread; ++i) {
                const RowId key = static_cast<RowId>(
                    rng.nextBelow(static_cast<std::uint64_t>(rows)));
                if (!conn->get(key, &out).isOk()) {
                    failed.store(true);
                    return;
                }
            }
            hits += conn->snapshotCacheHits();
            fetches += conn->snapshotFetches();
            (void)conn->endRead();
        });
    }
    for (auto &t : pool)
        t.join();
    const double seconds = wallSeconds(start);
    NVWAL_ASSERT(!failed.load(), "reader thread failed");

    ReaderResult r;
    r.readsPerSec =
        static_cast<double>(threads) * reads_per_thread / seconds;
    const double touched =
        static_cast<double>(hits.load() + fetches.load());
    r.cacheHitRate =
        touched > 0 ? static_cast<double>(hits.load()) / touched : 0.0;
    return r;
}

// ---- 2. single-writer commit latency through the queue -------------

struct LatencyResult
{
    double txnsPerSec = 0.0;
    Histogram latencyNs;
    StatsSnapshot delta;
};

LatencyResult
runSingleWriter(int txns)
{
    // Mirrors bench_commit_latency's incremental configuration so the
    // two reports are directly comparable.
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 128ull << 20;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.checkpointThreshold = 1000;
    config.incrementalCheckpoint = true;
    config.checkpointStepPages = 4;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    std::unique_ptr<Connection> conn;
    ConnectOptions auto_txn;
    auto_txn.autoWriteTxn = true;
    NVWAL_CHECK_OK(db->connect(auto_txn, &conn));

    Rng rng(12);
    LatencyResult r;
    const StatsSnapshot before = env.stats.snapshot();
    const SimTime begin = env.clock.now();
    for (RowId k = 0; k < txns; ++k) {
        ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
        const SimTime start = env.clock.now();
        NVWAL_CHECK_OK(
            conn->insert(k, ConstByteSpan(v.data(), v.size())));
        r.latencyNs.record(env.clock.now() - start);
    }
    r.txnsPerSec = txns / (static_cast<double>(env.clock.now() - begin) /
                           1e9);
    r.delta = MetricsRegistry::delta(before, env.stats.snapshot());
    return r;
}

// ---- 3. multi-writer group commit ----------------------------------

struct GroupResult
{
    double wallTxnsPerSec = 0.0;
    double barriersPerTxn = 0.0;
    double txnsPerGroup = 0.0;
    StatsSnapshot delta;
};

GroupResult
runWriters(int threads, int txns_per_thread)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 128ull << 20;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.checkpointThreshold = 1000;
    config.incrementalCheckpoint = true;
    config.checkpointStepPages = 4;
    // The concurrency configuration under test: checkpoints drain on
    // the background thread instead of riding commits inline, so the
    // commit path's barrier count is the group-commit protocol's own.
    config.backgroundCheckpointer = true;
    // Large pre-allocated log blocks (paper section 5.3): the
    // per-node heap persists would otherwise dominate the barrier
    // count and mask the group-commit amortization being measured.
    config.nvwal.nvBlockSize = 64 * 1024;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    std::atomic<bool> failed{false};
    const StatsSnapshot before = env.stats.snapshot();
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            std::unique_ptr<Connection> conn;
            ConnectOptions auto_txn;
            auto_txn.autoWriteTxn = true;
            if (!db->connect(auto_txn, &conn).isOk()) {
                failed.store(true);
                return;
            }
            Rng rng(200 + static_cast<std::uint64_t>(t));
            for (int i = 0; i < txns_per_thread; ++i) {
                ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
                const RowId key =
                    static_cast<RowId>(t) * 1000000 + i;
                if (!conn->insert(key,
                                  ConstByteSpan(v.data(), v.size()))
                         .isOk()) {
                    failed.store(true);
                    return;
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();
    const double seconds = wallSeconds(start);
    NVWAL_ASSERT(!failed.load(), "writer thread failed");

    GroupResult r;
    r.delta = MetricsRegistry::delta(before, env.stats.snapshot());
    const double total =
        static_cast<double>(threads) * txns_per_thread;
    r.wallTxnsPerSec = total / seconds;
    const auto stat = [&](const char *name) -> double {
        auto it = r.delta.find(name);
        return it == r.delta.end() ? 0.0
                                   : static_cast<double>(it->second);
    };
    r.barriersPerTxn = stat(stats::kPersistBarriers) / total;
    const double groups = stat(stats::kGroupCommits);
    r.txnsPerGroup =
        groups > 0 ? stat(stats::kGroupCommitTxns) / groups : 0.0;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    BenchJson json("bench_concurrent", args);

    // ---- snapshot-read scaling -------------------------------------
    const int rows = args.smoke ? 400 : 2000;
    const int reads = args.smoke ? 2000 : 40000;
    TablePrinter readers_table(
        "Snapshot readers, NVWAL, 100-byte rows: each thread pins one "
        "snapshot and point-reads it (wall clock)");
    readers_table.setHeader(
        {"reader threads", "reads/sec (wall)", "cache hit rate"});
    double one_reader = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
        const ReaderResult r = runReaders(threads, reads, rows);
        if (threads == 1)
            one_reader = r.readsPerSec;
        readers_table.addRow(
            {std::to_string(threads), TablePrinter::num(r.readsPerSec, 0),
             TablePrinter::num(r.cacheHitRate, 3)});
        BenchRecord rec;
        rec.name = "readers." + std::to_string(threads);
        rec.params["threads"] = static_cast<std::uint64_t>(threads);
        rec.params["reads_per_thread"] =
            static_cast<std::uint64_t>(reads);
        rec.params["rows"] = static_cast<std::uint64_t>(rows);
        rec.values["reads_per_sec_wall"] = r.readsPerSec;
        rec.values["cache_hit_rate"] = r.cacheHitRate;
        rec.values["speedup_vs_one_thread"] =
            one_reader > 0 ? r.readsPerSec / one_reader : 1.0;
        json.add(std::move(rec));
    }
    readers_table.print();

    // ---- single-writer latency parity ------------------------------
    const int txns = args.smoke ? 200 : 4000;
    const LatencyResult lat = runSingleWriter(txns);
    TablePrinter lat_table(
        "Single writer through the group-commit queue (sim time; "
        "compare bench_commit_latency, incremental row)");
    lat_table.setHeader(
        {"txns/sec", "p50 (us)", "p95 (us)", "p99 (us)", "max (us)"});
    lat_table.addRow(
        {TablePrinter::num(lat.txnsPerSec, 0),
         TablePrinter::num(static_cast<double>(lat.latencyNs.p50()) /
                               1000.0, 1),
         TablePrinter::num(static_cast<double>(lat.latencyNs.p95()) /
                               1000.0, 1),
         TablePrinter::num(static_cast<double>(lat.latencyNs.p99()) /
                               1000.0, 1),
         TablePrinter::num(static_cast<double>(lat.latencyNs.max()) /
                               1000.0, 1)});
    lat_table.print();
    {
        BenchRecord rec;
        rec.name = "single_writer.queue";
        rec.scheme = "NVWAL LS";
        rec.params["txns"] = static_cast<std::uint64_t>(txns);
        rec.txnsPerSec = lat.txnsPerSec;
        rec.latencyNs = lat.latencyNs;
        rec.counters = lat.delta;
        json.add(std::move(rec));
    }

    // ---- group commit under concurrent writers ---------------------
    // Not shrunk in smoke mode: a loop that fits inside one scheduler
    // quantum serializes the writers on a single-core host and no
    // batch ever combines; 1000 txns per writer keeps every thread
    // alive past a timeslice (still well under a second).
    const int per_writer = 1000;
    TablePrinter group_table(
        "Group commit, W writer threads autocommitting 100-byte "
        "inserts");
    group_table.setHeader({"writers", "txns/sec (wall)",
                           "persist barriers/txn", "txns/group commit"});
    for (const int threads : {1, 2, 4, 8}) {
        const GroupResult r = runWriters(threads, per_writer);
        group_table.addRow(
            {std::to_string(threads),
             TablePrinter::num(r.wallTxnsPerSec, 0),
             TablePrinter::num(r.barriersPerTxn, 2),
             TablePrinter::num(r.txnsPerGroup, 2)});
        BenchRecord rec;
        rec.name = "writers." + std::to_string(threads);
        rec.scheme = "NVWAL LS";
        rec.params["threads"] = static_cast<std::uint64_t>(threads);
        rec.params["txns_per_thread"] =
            static_cast<std::uint64_t>(per_writer);
        rec.counters = r.delta;
        rec.values["txns_per_sec_wall"] = r.wallTxnsPerSec;
        rec.values["persist_barriers_per_txn"] = r.barriersPerTxn;
        rec.values["txns_per_group_commit"] = r.txnsPerGroup;
        json.add(std::move(rec));
    }
    group_table.print();

    std::printf("\nsnapshot reads scale because a warm private cache "
                "serves them lock-free; the queue leaves the single-"
                "writer op stream untouched; concurrent committers "
                "share one barrier pair per batch, so barriers/txn "
                "drops as writers pile up.\n");
    json.write();
    return 0;
}
