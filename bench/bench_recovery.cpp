/**
 * @file
 * Recovery-time benchmark (the paper describes NVWAL recovery in
 * section 4.3 but does not measure it): simulated time to reopen a
 * database -- rebuild the volatile index from the persistent log --
 * as a function of the amount of committed-but-not-checkpointed
 * work, for NVWAL vs the file-based WAL, after a clean shutdown and
 * after a mid-transaction power failure.
 *
 * NVWAL recovery reads byte-addressable NVRAM (no block I/O), so it
 * should be orders of magnitude faster than file-WAL recovery, which
 * reads and checksums every frame from flash.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

double
recoveryTimeMs(WalMode mode, int txns, bool crash)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 256ull << 20;
    env_config.flashBlocks = 1u << 16;
    Env env(env_config);
    DbConfig config;
    config.walMode = mode;
    config.autoCheckpoint = false;  // accumulate log

    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    Rng rng(5);
    for (RowId k = 0; k < txns; ++k) {
        ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
        NVWAL_CHECK_OK(db->insert(k, ConstByteSpan(v.data(), v.size())));
    }
    if (crash) {
        env.nvramDevice.setScheduledCrashPolicy(
            FailurePolicy::Pessimistic);
        env.nvramDevice.scheduleCrashAtOp(mode == WalMode::Nvwal ? 6 : 1);
        try {
            ByteBuffer v(100, 0xAB);
            NVWAL_CHECK_OK(db->insert(1000000,
                                      ConstByteSpan(v.data(), v.size())));
        } catch (const PowerFailure &) {
            env.fs.crash();
        }
        env.nvramDevice.scheduleCrashAtOp(0);
        if (mode != WalMode::Nvwal)
            env.fs.crash();
    }
    db.reset();

    const SimTime start = env.clock.now();
    std::unique_ptr<Database> recovered;
    NVWAL_CHECK_OK(Database::open(env, config, &recovered));
    return static_cast<double>(env.clock.now() - start) / 1e6;
}

} // namespace

int
main()
{
    TablePrinter table("Recovery time (simulated ms) vs committed "
                       "transactions in the log, Nexus 5");
    table.setHeader({"txns in log", "NVWAL clean", "NVWAL crash",
                     "file WAL clean", "file WAL crash"});
    for (int txns : {100, 1000, 5000, 20000}) {
        table.addRow(
            {TablePrinter::num(std::uint64_t(txns)),
             TablePrinter::num(
                 recoveryTimeMs(WalMode::Nvwal, txns, false), 2),
             TablePrinter::num(
                 recoveryTimeMs(WalMode::Nvwal, txns, true), 2),
             TablePrinter::num(
                 recoveryTimeMs(WalMode::FileOptimized, txns, false), 2),
             TablePrinter::num(
                 recoveryTimeMs(WalMode::FileOptimized, txns, true),
                 2)});
    }
    table.print();
    std::printf("\nNVWAL rebuilds its index from byte-addressable "
                "NVRAM; the file WAL re-reads and checksums every "
                "frame from flash.\n");
    return 0;
}
