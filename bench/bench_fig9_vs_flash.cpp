/**
 * @file
 * Regenerates **Figure 9** of the paper: transaction throughput of
 * NVWAL (UH+LS+Diff and LS) on emulated NVRAM vs the file-based WAL
 * baselines on eMMC flash, as the emulated NVRAM write latency grows
 * from 2 us to 230 us. Nexus 5 model, 1000 single-insert
 * transactions of 100-byte records, checkpoint threshold 1000 frames
 * with its cost amortized across the run (section 5.4).
 *
 * Paper anchors: optimized WAL on flash ~541 tx/s; NVWAL LS ~5393
 * and NVWAL UH+LS+Diff ~5812 tx/s at 2 us (the >=10x headline);
 * NVWAL LS crosses the flash baseline around ~47 us, UH+LS+Diff
 * stays ahead until a very conservative ~230 us.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main()
{
    const SimTime kLatenciesUs[] = {2, 5, 10, 20, 47, 80, 120, 230};

    // Flash baselines are latency-independent: run once.
    WorkloadSpec spec;
    spec.op = OpKind::Insert;
    spec.txns = 1000;
    spec.opsPerTxn = 1;
    spec.checkpointDuringRun = true;  // amortized (section 5.4)

    EnvConfig flash_env;
    flash_env.cost = CostModel::nexus5(2000);
    DbConfig stock;
    stock.walMode = WalMode::FileStock;
    DbConfig optimized;
    optimized.walMode = WalMode::FileOptimized;
    const double stock_tps =
        runWorkload(flash_env, stock, spec).txnsPerSec;
    const double optimized_tps =
        runWorkload(flash_env, optimized, spec).txnsPerSec;

    TablePrinter fig9("Figure 9: insert throughput (txns/sec) vs "
                      "emulated NVRAM latency, Nexus 5, 1000 txns");
    fig9.setHeader({"latency(us)", "NVWAL UH+LS+Diff", "NVWAL LS",
                    "Optimized WAL (eMMC)", "WAL (eMMC)"});

    const Scheme uh_ls_diff{"UH+LS+Diff", SyncMode::Lazy, true, true};
    const Scheme ls{"LS", SyncMode::Lazy, false, false};

    for (SimTime us : kLatenciesUs) {
        EnvConfig env_config;
        env_config.cost = CostModel::nexus5(us * 1000);
        env_config.nvramBytes = 128ull << 20;
        const double uh_tps =
            runWorkload(env_config, nvwalDbConfig(uh_ls_diff), spec)
                .txnsPerSec;
        const double ls_tps =
            runWorkload(env_config, nvwalDbConfig(ls), spec).txnsPerSec;
        fig9.addRow({TablePrinter::num(std::uint64_t(us)),
                     TablePrinter::num(uh_tps, 0),
                     TablePrinter::num(ls_tps, 0),
                     TablePrinter::num(optimized_tps, 0),
                     TablePrinter::num(stock_tps, 0)});
    }
    fig9.print();
    std::printf("\npaper anchors: 541 tx/s optimized WAL on flash; "
                "5393 (LS) and 5812 (UH+LS+Diff) tx/s at 2 us; LS "
                "crossover ~47 us; UH+LS+Diff ahead to ~230 us.\n");
    return 0;
}
