/**
 * @file
 * The paper's introductory motivation, quantified end-to-end: the
 * path from SQLite's rollback journal (two files, two fsyncs per
 * commit, EXT4 journaling-of-journal on both) through stock WAL
 * (one log file, one fsync) and the optimized WAL (aligned frames +
 * pre-allocation), to NVWAL on NVRAM (no file system, no fsync).
 *
 * Sections 1-2: "WAL significantly improves the performance of
 * SQLite because WAL needs fewer fsync() calls as it modifies a
 * single log file instead of two"; NVWAL then "replaces expensive
 * block I/O traffic with lightweight memory write instructions".
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main()
{
    struct Mode
    {
        const char *label;
        WalMode mode;
    };
    const Mode modes[] = {
        {"Rollback journal (DELETE)", WalMode::RollbackJournal},
        {"WAL (stock)", WalMode::FileStock},
        {"WAL (optimized)", WalMode::FileOptimized},
        {"NVWAL UH+LS+Diff @2us", WalMode::Nvwal},
    };

    TablePrinter table("Journaling-mode ladder: Nexus 5, 1000 "
                       "single-insert transactions");
    table.setHeader({"mode", "txns/sec", "fsync/txn", "flash KB/txn",
                     "journal KB/txn", "NVRAM KB/txn"});

    double baseline = 0.0;
    for (const Mode &mode : modes) {
        EnvConfig env_config;
        env_config.cost = CostModel::nexus5(2000);
        DbConfig config;
        config.walMode = mode.mode;

        WorkloadSpec spec;
        spec.op = OpKind::Insert;
        spec.txns = 1000;
        spec.checkpointDuringRun = true;

        const WorkloadResult r = runWorkload(env_config, config, spec);
        if (baseline == 0.0)
            baseline = r.txnsPerSec;
        table.addRow(
            {mode.label, TablePrinter::num(r.txnsPerSec, 0),
             TablePrinter::num(r.perTxn(stats::kFsyncs, spec.txns), 2),
             TablePrinter::num(
                 r.perTxn(stats::kBlocksWritten, spec.txns) * 4096.0 /
                     1024.0,
                 1),
             TablePrinter::num(
                 r.perTxn(stats::kJournalBlocksWritten, spec.txns) *
                     4096.0 / 1024.0,
                 1),
             TablePrinter::num(
                 r.perTxn(stats::kNvramBytesLogged, spec.txns) / 1024.0,
                 1)});
    }
    table.print();
    std::printf("\nexpectation: each step cuts fsyncs and write "
                "amplification; NVWAL eliminates file I/O from the "
                "commit path entirely (sections 1-2).\n");
    return 0;
}
