/**
 * @file
 * CI validator for the benches' `--json` output. Parses the document
 * with the repo's own strict JSON parser and checks the schema
 * documented in docs/OBSERVABILITY.md: top-level {bench, smoke,
 * records[]}, each record with a name, params object, finite
 * non-negative throughput, counters object, and -- when present --
 * a latency_us block carrying ordered p50 <= p95 <= p99 <= max.
 * Exits non-zero (failing the ctest) on any violation.
 *
 * `--forensics` switches to the crash-forensics schema emitted by
 * `nvwal_inspect --forensics-json` (docs/OBSERVABILITY.md section 7):
 * a single {"forensics": {...}} post-mortem, or the sharded
 * {"shards": [...], "timeline": [...]} merge.
 *
 * Usage: bench_json_check [--forensics] <file.json> [<file.json> ...]
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.hpp"

using namespace nvwal;

namespace
{

int failures = 0;

void
fail(const std::string &file, const std::string &what)
{
    std::fprintf(stderr, "%s: %s\n", file.c_str(), what.c_str());
    ++failures;
}

const JsonValue *
requireMember(const std::string &file, const JsonValue &obj,
              const char *name, JsonValue::Type type,
              const std::string &where)
{
    const JsonValue *v = obj.find(name);
    if (v == nullptr) {
        fail(file, where + ": missing \"" + name + "\"");
        return nullptr;
    }
    if (v->type != type) {
        fail(file, where + ": \"" + name + "\" has wrong type");
        return nullptr;
    }
    return v;
}

void
checkNumbersOnly(const std::string &file, const JsonValue &obj,
                 const std::string &where)
{
    for (const auto &[k, v] : obj.object) {
        if (!v.isNumber() || !std::isfinite(v.number) || v.number < 0)
            fail(file, where + "." + k +
                           ": must be a finite non-negative number");
    }
}

void
checkLatency(const std::string &file, const JsonValue &lat,
             const std::string &where)
{
    double q[4] = {0, 0, 0, 0};
    const char *names[4] = {"p50", "p95", "p99", "max"};
    for (int i = 0; i < 4; ++i) {
        const JsonValue *v = requireMember(file, lat, names[i],
                                           JsonValue::Type::Number,
                                           where);
        if (v == nullptr)
            return;
        q[i] = v->number;
    }
    for (int i = 1; i < 4; ++i) {
        if (q[i] + 1e-9 < q[i - 1]) {
            fail(file, where + ": percentiles out of order (" +
                           names[i - 1] + " > " + names[i] + ")");
        }
    }
    const JsonValue *count = requireMember(
        file, lat, "count", JsonValue::Type::Number, where);
    if (count != nullptr && count->number < 1)
        fail(file, where + ": latency block with zero samples");
}

/** One {"forensics": {...}} post-mortem (RecoveryReport JSON). */
void
checkForensicsReport(const std::string &file, const JsonValue &wrapper,
                     const std::string &where)
{
    const JsonValue *fr = requireMember(
        file, wrapper, "forensics", JsonValue::Type::Object, where);
    if (fr == nullptr)
        return;
    requireMember(file, *fr, "recorderEnabled", JsonValue::Type::Bool,
                  where);
    requireMember(file, *fr, "parsed", JsonValue::Type::Bool, where);
    requireMember(file, *fr, "namespace", JsonValue::Type::String, where);
    requireMember(file, *fr, "incarnationKnown", JsonValue::Type::Bool,
                  where);
    const JsonValue *ring = requireMember(
        file, *fr, "ring", JsonValue::Type::Object, where);
    if (ring != nullptr) {
        checkNumbersOnly(file, *ring, where + ".ring");
        for (const char *k :
             {"capacity", "validRecords", "tornSlots", "wraps"})
            requireMember(file, *ring, k, JsonValue::Type::Number,
                          where + ".ring");
    }
    const JsonValue *rec = requireMember(
        file, *fr, "recovered", JsonValue::Type::Object, where);
    if (rec != nullptr)
        for (const char *k : {"marks", "checkpointId",
                              "checkpointLagFrames", "lostMarks"})
            requireMember(file, *rec, k, JsonValue::Type::Number,
                          where + ".recovered");
    const JsonValue *problems = requireMember(
        file, *fr, "inconsistencies", JsonValue::Type::Array, where);
    // A post-mortem listing durable claims recovery contradicted is
    // itself evidence of an engine bug: fail the fixture.
    if (problems != nullptr && !problems->array.empty())
        fail(file, where + ": " +
                       std::to_string(problems->array.size()) +
                       " forensics inconsistency(ies) reported");
    const JsonValue *events = requireMember(
        file, *fr, "events", JsonValue::Type::Array, where);
    if (events == nullptr)
        return;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &e = events->array[i];
        const std::string ew = where + ".events[" + std::to_string(i) +
                               "]";
        if (!e.isObject()) {
            fail(file, ew + ": not an object");
            continue;
        }
        requireMember(file, e, "seq", JsonValue::Type::Number, ew);
        requireMember(file, e, "type", JsonValue::Type::String, ew);
        requireMember(file, e, "durable", JsonValue::Type::Bool, ew);
        for (const char *k : {"a16", "a32", "a64", "b64"})
            requireMember(file, e, k, JsonValue::Type::Number, ew);
    }
}

void
checkForensicsFile(const std::string &file)
{
    std::FILE *f = std::fopen(file.c_str(), "rb");
    if (f == nullptr) {
        fail(file, "cannot open");
        return;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    JsonValue doc;
    const Status parsed = parseJson(text, &doc);
    if (!parsed.isOk()) {
        fail(file, parsed.toString());
        return;
    }
    if (!doc.isObject()) {
        fail(file, "top level is not an object");
        return;
    }
    if (doc.find("forensics") != nullptr) {
        checkForensicsReport(file, doc, "top");
        return;
    }
    // The sharded merge: per-shard post-mortems + the gtid timeline.
    const JsonValue *shards = requireMember(
        file, doc, "shards", JsonValue::Type::Array, "top");
    if (shards != nullptr) {
        if (shards->array.empty())
            fail(file, "shards array is empty");
        for (std::size_t i = 0; i < shards->array.size(); ++i)
            checkForensicsReport(file, shards->array[i],
                                 "shards[" + std::to_string(i) + "]");
    }
    const JsonValue *timeline = requireMember(
        file, doc, "timeline", JsonValue::Type::Array, "top");
    if (timeline == nullptr)
        return;
    for (std::size_t i = 0; i < timeline->array.size(); ++i) {
        const JsonValue &t = timeline->array[i];
        const std::string where = "timeline[" + std::to_string(i) + "]";
        if (!t.isObject()) {
            fail(file, where + ": not an object");
            continue;
        }
        requireMember(file, t, "gtid", JsonValue::Type::Number, where);
        for (const char *k :
             {"prepared_shards", "committed_shards", "aborted_shards"}) {
            const JsonValue *arr = requireMember(
                file, t, k, JsonValue::Type::Array, where);
            if (arr == nullptr)
                continue;
            for (const JsonValue &s : arr->array)
                if (!s.isNumber())
                    fail(file, where + "." + k +
                                   ": non-numeric shard id");
        }
    }
}

void
checkFile(const std::string &file)
{
    std::FILE *f = std::fopen(file.c_str(), "rb");
    if (f == nullptr) {
        fail(file, "cannot open");
        return;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    JsonValue doc;
    const Status parsed = parseJson(text, &doc);
    if (!parsed.isOk()) {
        fail(file, parsed.toString());
        return;
    }
    if (!doc.isObject()) {
        fail(file, "top level is not an object");
        return;
    }
    requireMember(file, doc, "bench", JsonValue::Type::String, "top");
    requireMember(file, doc, "smoke", JsonValue::Type::Bool, "top");
    const JsonValue *records = requireMember(
        file, doc, "records", JsonValue::Type::Array, "top");
    if (records == nullptr)
        return;
    if (records->array.empty())
        fail(file, "records array is empty");

    for (std::size_t i = 0; i < records->array.size(); ++i) {
        const JsonValue &rec = records->array[i];
        const std::string where = "records[" + std::to_string(i) + "]";
        if (!rec.isObject()) {
            fail(file, where + ": not an object");
            continue;
        }
        requireMember(file, rec, "name", JsonValue::Type::String, where);
        const JsonValue *params = requireMember(
            file, rec, "params", JsonValue::Type::Object, where);
        if (params != nullptr)
            checkNumbersOnly(file, *params, where + ".params");
        const JsonValue *tput = requireMember(
            file, rec, "throughput_txns_per_sec",
            JsonValue::Type::Number, where);
        if (tput != nullptr &&
            (!std::isfinite(tput->number) || tput->number < 0)) {
            fail(file, where + ": bad throughput");
        }
        const JsonValue *counters = requireMember(
            file, rec, "counters", JsonValue::Type::Object, where);
        if (counters != nullptr)
            checkNumbersOnly(file, *counters, where + ".counters");
        const JsonValue *lat = rec.find("latency_us");
        if (lat != nullptr) {
            if (!lat->isObject())
                fail(file, where + ".latency_us: not an object");
            else
                checkLatency(file, *lat, where + ".latency_us");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool forensics = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--forensics")
            forensics = true;
        else
            files.push_back(argv[i]);
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--forensics] <file.json> ...\n",
                     argv[0]);
        return 2;
    }
    for (const std::string &file : files) {
        if (forensics)
            checkForensicsFile(file);
        else
            checkFile(file);
    }
    if (failures == 0)
        std::printf("%zu file(s) valid\n", files.size());
    return failures == 0 ? 0 : 1;
}
