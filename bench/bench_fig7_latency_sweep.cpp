/**
 * @file
 * Regenerates **Figure 7 (a-c)** of the paper: transaction
 * throughput of the six NVWAL schemes as the NVRAM write latency is
 * swept from 400 ns to 1900 ns on the Tuna board, for insert, update
 * and delete workloads (1000 transactions, one 100-byte record
 * each). As in section 5.3, checkpoint time is excluded from the
 * measured region.
 *
 * Paper anchors (section 5.3):
 *  - throughput decreases roughly linearly with write latency;
 *  - LS+Diff outperforms LS by up to ~28%;
 *  - UH+LS outperforms LS by ~6%;
 *  - UH+CS+Diff is the fastest (minimal bytes + minimal flushes)
 *    with UH+LS+Diff comparable -- which is the paper's argument
 *    for UH+LS+Diff, since it does not compromise correctness;
 *  - at 1942 ns, UH+LS+Diff beats LS by up to ~37%.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main()
{
    const SimTime kLatencies[] = {400, 700, 1000, 1300, 1600, 1900};

    for (OpKind op : {OpKind::Insert, OpKind::Update, OpKind::Delete}) {
        TablePrinter fig7(std::string("Figure 7: ") + opKindName(op) +
                          " throughput (txns/sec) vs NVRAM write "
                          "latency, Tuna, 1000 txns x 1 op");
        std::vector<std::string> header{"latency(ns)"};
        for (const Scheme &scheme : kFigure7Schemes)
            header.push_back(scheme.label);
        fig7.setHeader(header);

        for (SimTime latency : kLatencies) {
            std::vector<std::string> row{
                TablePrinter::num(std::uint64_t(latency))};
            for (const Scheme &scheme : kFigure7Schemes) {
                EnvConfig env_config;
                env_config.cost = CostModel::tuna(latency);
                env_config.nvramBytes = 128ull << 20;

                WorkloadSpec spec;
                spec.op = op;
                spec.txns = 1000;
                spec.opsPerTxn = 1;
                spec.checkpointDuringRun = false;  // section 5.3

                const WorkloadResult r = runWorkload(
                    env_config, nvwalDbConfig(scheme), spec);
                row.push_back(TablePrinter::num(r.txnsPerSec, 0));
            }
            fig7.addRow(row);
        }
        fig7.print();
    }
    std::printf("\npaper anchors: linear decrease with latency; "
                "+Diff up to ~28%% over LS; UH ~6%% over LS; "
                "UH+CS+Diff fastest with UH+LS+Diff comparable.\n");
    return 0;
}
