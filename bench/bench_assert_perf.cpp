/**
 * @file
 * CI perf-regression gate. Compares a bench's `--json` output against
 * a committed bounds file: every bound names a record and a set of
 * per-value *upper* limits, so improvements always pass and only
 * regressions fail. Bounds carry headroom over the numbers recorded
 * in EXPERIMENTS.md to absorb workload-size differences between the
 * `--smoke` and full runs, both of which must stay under them.
 *
 * Bounds file schema:
 *   { "bench": "<bench name>",
 *     "bounds": [ { "record": "<record name>",
 *                   "max": { "<value key>": <limit>, ... } }, ... ] }
 *
 * Usage: bench_assert_perf <bench.json> <bounds.json>
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "obs/json.hpp"

using namespace nvwal;

namespace
{

int failures = 0;

void
fail(const std::string &what)
{
    std::fprintf(stderr, "FAIL %s\n", what.c_str());
    ++failures;
}

bool
readFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    std::fclose(f);
    return true;
}

bool
parseFile(const std::string &path, JsonValue *doc)
{
    std::string text;
    if (!readFile(path, &text)) {
        fail(path + ": cannot open");
        return false;
    }
    const Status parsed = parseJson(text, doc);
    if (!parsed.isOk()) {
        fail(path + ": " + parsed.toString());
        return false;
    }
    if (!doc->isObject()) {
        fail(path + ": top level is not an object");
        return false;
    }
    return true;
}

/** Find the record whose "name" member equals @p name. */
const JsonValue *
findRecord(const JsonValue &records, const std::string &name)
{
    for (const JsonValue &rec : records.array) {
        if (!rec.isObject())
            continue;
        const JsonValue *n = rec.find("name");
        if (n != nullptr && n->type == JsonValue::Type::String &&
            n->string == name) {
            return &rec;
        }
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: %s <bench.json> <bounds.json>\n", argv[0]);
        return 2;
    }
    JsonValue bench, bounds;
    if (!parseFile(argv[1], &bench) || !parseFile(argv[2], &bounds))
        return 1;

    const JsonValue *records = bench.find("records");
    if (records == nullptr || !records->isArray()) {
        fail(std::string(argv[1]) + ": no records array");
        return 1;
    }
    const JsonValue *expected_bench = bounds.find("bench");
    const JsonValue *actual_bench = bench.find("bench");
    if (expected_bench != nullptr && actual_bench != nullptr &&
        expected_bench->string != actual_bench->string) {
        fail("bench name mismatch: bounds are for \"" +
             expected_bench->string + "\", output is from \"" +
             actual_bench->string + "\"");
    }
    const JsonValue *entries = bounds.find("bounds");
    if (entries == nullptr || !entries->isArray() ||
        entries->array.empty()) {
        fail(std::string(argv[2]) + ": no bounds array");
        return 1;
    }

    int checks = 0;
    for (const JsonValue &entry : entries->array) {
        const JsonValue *rec_name = entry.find("record");
        const JsonValue *max = entry.find("max");
        if (rec_name == nullptr ||
            rec_name->type != JsonValue::Type::String ||
            max == nullptr || !max->isObject()) {
            fail("malformed bounds entry");
            continue;
        }
        const JsonValue *rec = findRecord(*records, rec_name->string);
        if (rec == nullptr) {
            fail("record \"" + rec_name->string +
                 "\" missing from bench output");
            continue;
        }
        const JsonValue *values = rec->find("values");
        for (const auto &[key, limit] : max->object) {
            ++checks;
            if (!limit.isNumber() || !std::isfinite(limit.number)) {
                fail(rec_name->string + "." + key + ": bad limit");
                continue;
            }
            const JsonValue *v =
                values != nullptr ? values->find(key) : nullptr;
            if (v == nullptr || !v->isNumber()) {
                fail(rec_name->string + "." + key +
                     ": value missing from bench output");
                continue;
            }
            if (v->number > limit.number) {
                fail(rec_name->string + "." + key + ": " +
                     std::to_string(v->number) + " exceeds bound " +
                     std::to_string(limit.number));
                continue;
            }
            std::printf("ok   %s.%s: %g <= %g\n", rec_name->string.c_str(),
                        key.c_str(), v->number, limit.number);
        }
    }
    if (failures == 0)
        std::printf("%d perf bound(s) hold\n", checks);
    return failures == 0 ? 0 : 1;
}
