/**
 * @file
 * Async (checksum-commit) durability vs. the strict commit path:
 * the commit-latency/throughput curve as the bounded-staleness
 * window widens. Every transaction is identical; only the commit's
 * durability level and the epoch window change, so the persist
 * barriers per transaction isolate what the durability-epoch
 * pipeline saves (paper section 3.2: the commit returns once the
 * checksum-chained frames are written, the flush happens later and
 * batched).
 *
 * `--json <path>` exports the curve with counter deltas; `--smoke`
 * shrinks the run for CI validation. The perf gate
 * (baselines/async_bounds.json) holds the async rows' barriers/txn
 * under committed bounds and well below the strict row.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

struct CommitProfile
{
    double txnsPerSec;
    Histogram latencyNs;
    StatsSnapshot delta;
    double barriersPerTxn;
    double flushesPerTxn;
};

CommitProfile
run(Durability durability, std::uint32_t window, int txns,
    bool recorder = true)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 128ull << 20;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.nvwal.syncMode = SyncMode::Lazy;
    config.nvwal.diffLogging = true;
    config.nvwal.userHeap = true;
    config.checkpointThreshold = 1000;
    config.asyncMaxEpochs = window;
    config.asyncMaxStalenessNs = 0;  // count-bound only: a clean curve
    config.flightRecorder = recorder;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    Rng rng(17);
    Histogram hist;
    const StatsSnapshot before = env.stats.snapshot();
    const SimTime begin = env.clock.now();
    for (RowId k = 0; k < txns; ++k) {
        ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
        const SimTime start = env.clock.now();
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->insert(k, ConstByteSpan(v.data(), v.size())));
        NVWAL_CHECK_OK(
            db->insert(k + 1000000, ConstByteSpan(v.data(), v.size())));
        NVWAL_CHECK_OK(db->commit(durability));
        // The ack latency: what the caller waits for. For Async that
        // excludes the deferred flush by design -- the staleness
        // window (not this number) is the durability story.
        hist.record(env.clock.now() - start);
    }
    // Charge the tail flush inside the measured region so the async
    // rows' throughput includes every barrier they ever pay.
    NVWAL_CHECK_OK(db->flushAsyncCommits());
    const double seconds =
        static_cast<double>(env.clock.now() - begin) / 1e9;

    CommitProfile p;
    p.txnsPerSec = txns / seconds;
    p.latencyNs = hist;
    p.delta = MetricsRegistry::delta(before, env.stats.snapshot());
    const auto stat = [&](const char *name) {
        auto it = p.delta.find(name);
        return it == p.delta.end() ? 0.0 : static_cast<double>(it->second);
    };
    p.barriersPerTxn = stat(stats::kPersistBarriers) / txns;
    p.flushesPerTxn = stat(stats::kFlushSyscalls) / txns;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    BenchJson json("bench_async_commit", args);
    const int txns = args.smoke ? 100 : 2000;

    TablePrinter table(
        "Commit durability levels, NVWAL UH+LS+Diff, Nexus 5 @ 2us, "
        "2-insert txns; async = checksum commit, barriers deferred to "
        "the epoch window");
    table.setHeader({"durability", "txns/sec", "ack p50 (us)",
                     "ack p99 (us)", "barriers/txn", "flushes/txn"});

    struct Row
    {
        const char *name;
        Durability durability;
        std::uint32_t window;
    };
    const Row rows[] = {
        {"commit.sync", Durability::Sync, 4},
        {"commit.group", Durability::Group, 4},
        {"commit.async.w1", Durability::Async, 1},
        {"commit.async.w4", Durability::Async, 4},
        {"commit.async.w16", Durability::Async, 16},
    };
    for (const Row &row : rows) {
        const CommitProfile p = run(row.durability, row.window, txns);
        table.addRow({row.name, TablePrinter::num(p.txnsPerSec, 0),
                      TablePrinter::num(
                          static_cast<double>(p.latencyNs.p50()) / 1000.0,
                          1),
                      TablePrinter::num(
                          static_cast<double>(p.latencyNs.p99()) / 1000.0,
                          1),
                      TablePrinter::num(p.barriersPerTxn, 2),
                      TablePrinter::num(p.flushesPerTxn, 2)});

        BenchRecord rec;
        rec.name = row.name;
        rec.scheme = "NVWAL LS";
        rec.params["txns"] = static_cast<std::uint64_t>(txns);
        rec.params["ops_per_txn"] = 2;
        rec.params["async_window_epochs"] = row.window;
        rec.txnsPerSec = p.txnsPerSec;
        rec.latencyNs = p.latencyNs;
        rec.counters = p.delta;
        rec.values["persist_barriers_per_txn"] = p.barriersPerTxn;
        rec.values["flush_syscalls_per_txn"] = p.flushesPerTxn;
        json.add(std::move(rec));

        // The flight recorder's zero-cost proof: the identical run
        // with telemetry off. The ring only ever uses plain stores
        // on engine paths, so the per-txn barrier/flush deltas are
        // gated at exactly 0.0 (baselines/async_bounds.json).
        const CommitProfile off =
            run(row.durability, row.window, txns, /*recorder=*/false);
        BenchRecord diff;
        diff.name = std::string("recorder_overhead.") + row.name;
        diff.scheme = "NVWAL LS";
        diff.params["txns"] = static_cast<std::uint64_t>(txns);
        diff.params["async_window_epochs"] = row.window;
        diff.values["persist_barriers_per_txn"] =
            p.barriersPerTxn - off.barriersPerTxn;
        diff.values["flush_syscalls_per_txn"] =
            p.flushesPerTxn - off.flushesPerTxn;
        json.add(std::move(diff));
    }
    table.print();
    std::printf("\nasync acks return before the barrier; a window of "
                "W epochs amortizes one harden (barrier pair) over W "
                "commits, bounded by the staleness window a crash may "
                "lose.\nflight recorder on vs off: identical barriers "
                "and flushes per txn in every row (telemetry rides "
                "existing ordering points).\n");
    json.write();
    return 0;
}
