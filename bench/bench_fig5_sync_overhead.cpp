/**
 * @file
 * Regenerates **Figure 5** and **Table 1** of the paper.
 *
 * Figure 5: per-transaction time spent on memcpy, dccmvac (cache
 * line flush), and dmb (memory fence, including flush-drain waits)
 * for lazy (L) vs eager (E) synchronization, as the number of
 * insertions per transaction grows from 1 to 32. Tuna board, NVRAM
 * write latency 500 ns (as in section 5.1), full-page logging.
 *
 * Table 1: the average number of cache-line flushes (dccmvac
 * instructions) per transaction for the same experiment.
 *
 * Paper anchors: ~19.3 us of ordering overhead for a single-insert
 * transaction; eager dccmvac+dmb up to ~23% slower than lazy
 * dccmvac; overhead grows with insertions per transaction.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    BenchJson json("bench_fig5_sync_overhead", args);
    const int kInsertCounts[] = {1, 2, 4, 8, 16, 32};
    const int kTxns = args.smoke ? 30 : 300;

    TablePrinter fig5("Figure 5: sync overhead per transaction (usec), "
                      "Tuna @ 500ns, full-page logging");
    fig5.setHeader({"ins/txn", "config", "memcpy", "dccmvac",
                    "dmb(+drain)", "persist", "kernel", "total-ordering"});

    TablePrinter table1("Table 1: average cache line flushes per "
                        "transaction");
    table1.setHeader({"ins/txn", "L flushes", "E flushes"});

    for (int ins : kInsertCounts) {
        double flushes[2] = {0, 0};
        int idx = 0;
        for (SyncMode sync : {SyncMode::Lazy, SyncMode::Eager}) {
            EnvConfig env_config;
            env_config.cost = CostModel::tuna(500);
            env_config.nvramBytes = 128ull << 20;

            DbConfig db_config;
            db_config.walMode = WalMode::Nvwal;
            db_config.nvwal.syncMode = sync;
            db_config.nvwal.diffLogging = false;  // full-page frames
            db_config.nvwal.userHeap = true;

            WorkloadSpec spec;
            spec.op = OpKind::Insert;
            spec.txns = kTxns;
            spec.opsPerTxn = ins;
            spec.checkpointDuringRun = false;  // section 5.3

            // Warmup + median-of-N host timing; the simulated
            // metrics are deterministic across the repetitions.
            RepeatSpec repeat;
            repeat.warmup = 1;
            repeat.reps = args.smoke ? 1 : 3;
            const WorkloadResult r =
                runWorkloadMedian(env_config, db_config, spec, repeat);

            const double memcpy_us =
                r.perTxn(stats::kTimeMemcpyNs, kTxns) / 1000.0;
            const double flush_us =
                r.perTxn(stats::kTimeFlushNs, kTxns) / 1000.0;
            const double dmb_us =
                r.perTxn(stats::kTimeBarrierNs, kTxns) / 1000.0;
            const double persist_us =
                r.perTxn(stats::kTimePersistNs, kTxns) / 1000.0;
            const double syscall_us =
                r.perTxn(stats::kTimeSyscallNs, kTxns) / 1000.0;
            // The paper's "ordering constraint overhead": dccmvac +
            // dmb + kernel mode switching (section 5.1).
            const double ordering_us = flush_us + dmb_us + syscall_us;
            flushes[idx++] =
                r.perTxn(stats::kNvramLinesFlushed, kTxns);

            fig5.addRow({TablePrinter::num(std::uint64_t(ins)),
                         sync == SyncMode::Lazy ? "L (lazy)" : "E (eager)",
                         TablePrinter::num(memcpy_us, 1),
                         TablePrinter::num(flush_us, 1),
                         TablePrinter::num(dmb_us, 1),
                         TablePrinter::num(persist_us, 1),
                         TablePrinter::num(syscall_us, 1),
                         TablePrinter::num(ordering_us, 1)});

            BenchRecord rec;
            rec.name = std::string("fig5.ins") + std::to_string(ins) +
                       (sync == SyncMode::Lazy ? ".lazy" : ".eager");
            rec.scheme = sync == SyncMode::Lazy ? "NVWAL UH+LS"
                                                : "NVWAL UH+E";
            rec.fromWorkload(spec, r);
            rec.values["memcpy_us_per_txn"] = memcpy_us;
            rec.values["dccmvac_us_per_txn"] = flush_us;
            rec.values["dmb_us_per_txn"] = dmb_us;
            rec.values["persist_us_per_txn"] = persist_us;
            rec.values["kernel_us_per_txn"] = syscall_us;
            rec.values["ordering_us_per_txn"] = ordering_us;
            rec.values["flushes_per_txn"] =
                r.perTxn(stats::kNvramLinesFlushed, kTxns);
            // Hot-path pass observables: kernel crossings and persist
            // barriers per transaction (the CI perf-smoke job bounds
            // these), plus the coalescing counters proving where the
            // reduction came from.
            rec.values["flush_syscalls_per_txn"] =
                r.perTxn(stats::kFlushSyscalls, kTxns);
            rec.values["persist_barriers_per_txn"] =
                r.perTxn(stats::kPersistBarriers, kTxns);
            rec.values["flush_ranges_coalesced_per_txn"] =
                r.perTxn(stats::kWalFlushRangesCoalesced, kTxns);
            rec.values["flush_lines_deduped_per_txn"] =
                r.perTxn(stats::kPmemFlushLinesDeduped, kTxns);
            json.add(std::move(rec));
        }
        table1.addRow({TablePrinter::num(std::uint64_t(ins)),
                       TablePrinter::num(flushes[0], 1),
                       TablePrinter::num(flushes[1], 1)});
    }

    fig5.print();
    table1.print();
    std::printf("\npaper anchors: 1-insert ordering overhead ~19.3 us; "
                "eager flush+fence up to ~23%% slower than lazy.\n");
    json.write();
    return 0;
}
