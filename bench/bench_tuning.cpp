/**
 * @file
 * Tuning sweeps over NVWAL's two operational knobs the paper fixes
 * to single values:
 *
 *  - the user-level heap's NVRAM block size (8 KB in section 3.3):
 *    larger blocks amortize more heap-manager calls but waste more
 *    NVRAM at checkpoint boundaries;
 *  - the auto-checkpoint threshold (1000 frames, SQLite's default):
 *    frequent checkpoints keep the log (and recovery time) small but
 *    pay flash I/O more often.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main()
{
    // ---- NVRAM block size sweep ------------------------------------
    {
        TablePrinter table("User-heap block size sweep (Tuna @ 1000ns, "
                           "1000 insert txns, UH+LS+Diff)");
        table.setHeader({"block size", "txns/sec", "heap calls/txn",
                         "frames/block"});
        for (std::uint32_t block : {4096u, 8192u, 16384u, 32768u,
                                    65536u}) {
            EnvConfig env_config;
            env_config.cost = CostModel::tuna(1000);
            env_config.nvramBytes = 128ull << 20;
            DbConfig config;
            config.walMode = WalMode::Nvwal;
            config.nvwal.nvBlockSize = block;

            // Run manually to query frames-per-node at the end.
            Env env(env_config);
            config.autoCheckpoint = false;
            std::unique_ptr<Database> db;
            NVWAL_CHECK_OK(Database::open(env, config, &db));
            Rng rng(42);
            const StatsSnapshot before = env.stats.snapshot();
            const SimTime start = env.clock.now();
            for (RowId k = 0; k < 1000; ++k) {
                ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
                NVWAL_CHECK_OK(db->begin());
                NVWAL_CHECK_OK(
                    db->insert(k, ConstByteSpan(v.data(), v.size())));
                NVWAL_CHECK_OK(db->commit());
            }
            const double seconds =
                static_cast<double>(env.clock.now() - start) / 1e9;
            const StatsSnapshot delta =
                MetricsRegistry::delta(before, env.stats.snapshot());
            auto &log = static_cast<NvwalLog &>(db->wal());
            table.addRow(
                {TablePrinter::num(std::uint64_t(block)),
                 TablePrinter::num(1000.0 / seconds, 0),
                 TablePrinter::num(
                     static_cast<double>(delta.at(stats::kHeapCalls)) /
                         1000.0,
                     2),
                 TablePrinter::num(log.framesPerNode(), 1)});
        }
        table.print();
    }

    // ---- checkpoint threshold sweep ----------------------------------
    {
        TablePrinter table("Auto-checkpoint threshold sweep (Nexus 5 @ "
                           "2us, 2000 insert txns, UH+LS+Diff)");
        table.setHeader({"threshold", "txns/sec", "checkpoints",
                         "flash KB/txn"});
        for (std::uint64_t threshold :
             {100ull, 300ull, 1000ull, 3000ull, 10000ull}) {
            EnvConfig env_config;
            env_config.cost = CostModel::nexus5(2000);
            env_config.nvramBytes = 256ull << 20;
            DbConfig config;
            config.walMode = WalMode::Nvwal;
            config.checkpointThreshold = threshold;

            WorkloadSpec spec;
            spec.op = OpKind::Insert;
            spec.txns = 2000;
            spec.checkpointDuringRun = true;

            const WorkloadResult r =
                runWorkload(env_config, config, spec);
            table.addRow(
                {TablePrinter::num(threshold),
                 TablePrinter::num(r.txnsPerSec, 0),
                 TablePrinter::num(r.stat(stats::kCheckpoints)),
                 TablePrinter::num(
                     r.perTxn(stats::kBlocksWritten, spec.txns) *
                         4096.0 / 1024.0,
                     1)});
        }
        table.print();
    }
    std::printf("\nthe paper fixes 8 KB blocks and a 1000-frame "
                "checkpoint interval; both sit on the flat part of "
                "their curves.\n");
    return 0;
}
