/**
 * @file
 * Wall-clock micro-benchmarks (google-benchmark) of the real data
 * path -- the code that executes regardless of the simulated cost
 * model: slotted-page operations, dirty-range tracking, checksums,
 * NVWAL frame writes and end-to-end transactions.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "btree/page_view.hpp"
#include "core/nvwal_log.hpp"

using namespace nvwal;
using namespace nvwal::bench;

// The DB-level benchmarks touch enough state (pager cache, WAL tail
// node, heap free lists) that cold first iterations skew single-shot
// numbers; give them an explicit warmup window and report the
// median/mean over repetitions instead of one run.
#define NVWAL_BENCHMARK_REPEATED(fn) \
    BENCHMARK(fn)->MinWarmUpTime(0.05)->Repetitions(3)-> \
        ReportAggregatesOnly(true)

namespace
{

void
BM_PageLeafInsert(benchmark::State &state)
{
    ByteBuffer page(4096, 0);
    ByteBuffer value(100, 0xAB);
    RowId key = 0;
    DirtyRanges dirty;
    PageView view(ByteSpan(page.data(), page.size()), 4072, &dirty);
    view.initLeaf();
    for (auto _ : state) {
        if (!view.leafFits(value.size())) {
            view.initLeaf();
            dirty.clear();
        }
        view.leafInsert(view.nCells(), ++key,
                        ConstByteSpan(value.data(), value.size()));
        benchmark::DoNotOptimize(page.data());
    }
}
BENCHMARK(BM_PageLeafInsert);

void
BM_PageLeafRemoveCompaction(benchmark::State &state)
{
    ByteBuffer page(4096, 0);
    ByteBuffer value(100, 0xCD);
    DirtyRanges dirty;
    PageView view(ByteSpan(page.data(), page.size()), 4072, &dirty);
    view.initLeaf();
    RowId key = 0;
    for (auto _ : state) {
        while (view.leafFits(value.size())) {
            view.leafInsert(view.nCells(), ++key,
                            ConstByteSpan(value.data(), value.size()));
        }
        state.PauseTiming();
        state.ResumeTiming();
        while (view.nCells() > 0)
            view.leafRemove(0);
        benchmark::DoNotOptimize(page.data());
    }
}
BENCHMARK(BM_PageLeafRemoveCompaction);

void
BM_DirtyRangeMark(benchmark::State &state)
{
    DirtyRanges ranges;
    std::uint32_t at = 0;
    for (auto _ : state) {
        at = (at + 97) % 4000;
        ranges.mark(at, at + 8);
        if (ranges.ranges().size() > 6)
            ranges.clear();
        benchmark::DoNotOptimize(ranges);
    }
}
BENCHMARK(BM_DirtyRangeMark);

void
BM_CumulativeChecksum4K(benchmark::State &state)
{
    const ByteBuffer data(4096, 0x5A);
    for (auto _ : state) {
        CumulativeChecksum sum;
        sum.update(ConstByteSpan(data.data(), data.size()));
        benchmark::DoNotOptimize(sum.value());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4096);
}
BENCHMARK(BM_CumulativeChecksum4K);

void
BM_BTreeInsertWallClock(benchmark::State &state)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5();
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    ByteBuffer value(100, 0x42);
    RowId key = 0;
    for (auto _ : state) {
        NVWAL_CHECK_OK(db->insert(
            ++key, ConstByteSpan(value.data(), value.size())));
        if (key % 5000 == 0) {
            state.PauseTiming();
            NVWAL_CHECK_OK(db->checkpoint());
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
NVWAL_BENCHMARK_REPEATED(BM_BTreeInsertWallClock);

void
BM_TransactionCommitNvwal(benchmark::State &state)
{
    // Host-time cost of the full commit path (diff computation,
    // frame encode, simulated persistence bookkeeping).
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.autoCheckpoint = false;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    ByteBuffer value(100, 0x11);
    RowId key = 0;
    std::int64_t committed = 0;
    for (auto _ : state) {
        NVWAL_CHECK_OK(db->begin());
        for (int i = 0; i < 4; ++i) {
            NVWAL_CHECK_OK(db->insert(
                ++key, ConstByteSpan(value.data(), value.size())));
        }
        NVWAL_CHECK_OK(db->commit());
        ++committed;
        if (committed % 2000 == 0) {
            state.PauseTiming();
            NVWAL_CHECK_OK(db->checkpoint());
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(committed);
}
NVWAL_BENCHMARK_REPEATED(BM_TransactionCommitNvwal);

void
BM_TransactionCommitNvwalRecorderOff(benchmark::State &state)
{
    // Same commit path with the flight recorder disabled: the
    // zero-cost guard's wall-clock side. The recorder writes one
    // 40-byte plain-store record per begin/ack and never flushes or
    // fences, so the delta against BM_TransactionCommitNvwal is a
    // few memcpys per txn; the barrier/flush-count side of the claim
    // is asserted exactly (FlightRecorder tests, async_bounds gate).
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.autoCheckpoint = false;
    config.flightRecorder = false;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    ByteBuffer value(100, 0x11);
    RowId key = 0;
    std::int64_t committed = 0;
    for (auto _ : state) {
        NVWAL_CHECK_OK(db->begin());
        for (int i = 0; i < 4; ++i) {
            NVWAL_CHECK_OK(db->insert(
                ++key, ConstByteSpan(value.data(), value.size())));
        }
        NVWAL_CHECK_OK(db->commit());
        ++committed;
        if (committed % 2000 == 0) {
            state.PauseTiming();
            NVWAL_CHECK_OK(db->checkpoint());
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(committed);
}
NVWAL_BENCHMARK_REPEATED(BM_TransactionCommitNvwalRecorderOff);

void
BM_TransactionCommitNvwalTraced(benchmark::State &state)
{
    // Same commit path with the phase tracer enabled: the overhead
    // guard. Compare against BM_TransactionCommitNvwal; the delta is
    // the full tracing bill (ring stores + clock reads). The
    // disabled-tracer cost is a single branch per record site and is
    // within run-to-run noise (EXPERIMENTS.md, tracing overhead).
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    env.stats.tracer().setEnabled(true);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.autoCheckpoint = false;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    ByteBuffer value(100, 0x11);
    RowId key = 0;
    std::int64_t committed = 0;
    for (auto _ : state) {
        NVWAL_CHECK_OK(db->begin());
        for (int i = 0; i < 4; ++i) {
            NVWAL_CHECK_OK(db->insert(
                ++key, ConstByteSpan(value.data(), value.size())));
        }
        NVWAL_CHECK_OK(db->commit());
        ++committed;
        if (committed % 2000 == 0) {
            state.PauseTiming();
            NVWAL_CHECK_OK(db->checkpoint());
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(committed);
}
NVWAL_BENCHMARK_REPEATED(BM_TransactionCommitNvwalTraced);

void
BM_WalReadHotPage(benchmark::State &state)
{
    // The materialized-page read path: one full-page frame plus a
    // run of small committed diffs, then repeated readPage() calls.
    // range(0) toggles the image cache, so the two variants are the
    // with/without numbers for the latest-full-frame shortcut + LRU
    // (EXPERIMENTS.md, hot-path pass).
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    DbFile file(env.fs, "hot.db", 4096);
    NVWAL_CHECK_OK(file.open());
    NvwalConfig config;  // UH+LS+Diff defaults
    config.materializeCacheEntries =
        static_cast<std::uint32_t>(state.range(0));
    NvwalLog log(env.heap, env.pmem, file, 4096, 24, config,
                 env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(log.recover(&db_size));

    const PageNo page_no = 3;
    ByteBuffer page(4096, 0x3C);
    DirtyRanges full;
    full.mark(0, 4096);
    std::vector<FrameWrite> frames{
        FrameWrite{page_no, ConstByteSpan(page.data(), page.size()),
                   &full}};
    NVWAL_CHECK_OK(log.writeFrames(frames, true, page_no));
    for (int i = 0; i < 16; ++i) {
        page[static_cast<std::size_t>(64 * i)] ^= 0xFF;
        DirtyRanges diff;
        diff.mark(static_cast<std::uint32_t>(64 * i),
                  static_cast<std::uint32_t>(64 * i + 8));
        std::vector<FrameWrite> w{
            FrameWrite{page_no,
                       ConstByteSpan(page.data(), page.size()), &diff}};
        NVWAL_CHECK_OK(log.writeFrames(w, true, page_no));
    }

    ByteBuffer out(4096);
    for (auto _ : state) {
        NVWAL_CHECK_OK(
            log.readPage(page_no, ByteSpan(out.data(), out.size())));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
NVWAL_BENCHMARK_REPEATED(BM_WalReadHotPage)
    ->ArgName("cache_entries")->Arg(0)->Arg(16);

void
BM_WalReadColdLongChain(benchmark::State &state)
{
    // Cold-miss variant of BM_WalReadHotPage: the image cache is
    // disabled and the read pins an early horizon under a long
    // committed diff chain, so every readPageAt() must resolve its
    // frame through the per-page radix index (DESIGN.md section 14)
    // with no cache and no full-frame anchor at or below the
    // horizon. range(0) is the chain length; the per-read cost must
    // stay flat (tree descent, not O(chain)) as it grows.
    const int chain = static_cast<int>(state.range(0));
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    DbFile file(env.fs, "cold.db", 4096);
    NVWAL_CHECK_OK(file.open());
    NvwalConfig config;  // UH+LS+Diff defaults
    config.materializeCacheEntries = 0;
    NvwalLog log(env.heap, env.pmem, file, 4096, 24, config,
                 env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(log.recover(&db_size));

    const PageNo page_no = 3;
    ByteBuffer page(4096, 0x3C);
    DirtyRanges full;
    full.mark(0, 4096);
    std::vector<FrameWrite> frames{
        FrameWrite{page_no, ConstByteSpan(page.data(), page.size()),
                   &full}};
    NVWAL_CHECK_OK(log.writeFrames(frames, true, page_no));
    const CommitSeq horizon = log.commitSeq();
    log.pinSnapshot(horizon);
    for (int i = 0; i < chain; ++i) {
        DirtyRanges diff;
        const std::uint32_t at =
            static_cast<std::uint32_t>(64 * (i % 60));
        diff.mark(at, at + 8);
        std::vector<FrameWrite> w{
            FrameWrite{page_no,
                       ConstByteSpan(page.data(), page.size()), &diff}};
        NVWAL_CHECK_OK(log.writeFrames(w, true, page_no));
    }

    ByteBuffer out(4096);
    for (auto _ : state) {
        NVWAL_CHECK_OK(log.readPageAt(
            page_no, ByteSpan(out.data(), out.size()), horizon));
        benchmark::DoNotOptimize(out.data());
    }
    log.unpinSnapshot(horizon);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
NVWAL_BENCHMARK_REPEATED(BM_WalReadColdLongChain)
    ->ArgName("chain_frames")->Arg(16)->Arg(256);

void
BM_RecoveryScan(benchmark::State &state)
{
    // Rebuild-from-NVRAM cost as a function of committed frames.
    const int frames = static_cast<int>(state.range(0));
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.autoCheckpoint = false;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    ByteBuffer value(100, 0x22);
    for (RowId k = 0; k < frames; ++k) {
        NVWAL_CHECK_OK(
            db->insert(k, ConstByteSpan(value.data(), value.size())));
    }
    db.reset();
    for (auto _ : state) {
        std::unique_ptr<Database> reopened;
        NVWAL_CHECK_OK(Database::open(env, config, &reopened));
        benchmark::DoNotOptimize(reopened->wal().framesSinceCheckpoint());
    }
}
NVWAL_BENCHMARK_REPEATED(BM_RecoveryScan)->Arg(100)->Arg(1000);

} // namespace

BENCHMARK_MAIN();
