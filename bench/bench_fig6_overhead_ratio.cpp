/**
 * @file
 * Regenerates **Figure 6** of the paper: the proportion of the
 * ordering-constraint overhead (dccmvac + dmb + kernel switch) to
 * the whole query execution time, lazy vs eager, 1-32 insertions per
 * transaction on the Tuna board at 500 ns NVRAM write latency.
 *
 * Paper anchors: ~4.6% for single-insert transactions, dropping to
 * ~0.8% at 32 insertions per transaction -- SQLite throughput is
 * governed more by computation than by I/O once the log lives in
 * NVRAM (section 5.1).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main()
{
    const int kInsertCounts[] = {1, 2, 4, 8, 16, 32};
    const int kTxns = 300;

    TablePrinter fig6("Figure 6: ordering-constraint overhead as % of "
                      "query execution time (Tuna @ 500ns)");
    fig6.setHeader({"ins/txn", "L total(us)", "L ovh(us)", "L %",
                    "E total(us)", "E ovh(us)", "E %"});

    for (int ins : kInsertCounts) {
        std::vector<std::string> row{
            TablePrinter::num(std::uint64_t(ins))};
        for (SyncMode sync : {SyncMode::Lazy, SyncMode::Eager}) {
            EnvConfig env_config;
            env_config.cost = CostModel::tuna(500);
            env_config.nvramBytes = 128ull << 20;

            DbConfig db_config;
            db_config.walMode = WalMode::Nvwal;
            db_config.nvwal.syncMode = sync;
            db_config.nvwal.diffLogging = false;
            db_config.nvwal.userHeap = true;

            WorkloadSpec spec;
            spec.op = OpKind::Insert;
            spec.txns = kTxns;
            spec.opsPerTxn = ins;
            spec.checkpointDuringRun = false;

            const WorkloadResult r =
                runWorkload(env_config, db_config, spec);
            const double total_us =
                static_cast<double>(r.elapsedNs) / kTxns / 1000.0;
            const double overhead_us =
                (r.perTxn(stats::kTimeFlushNs, kTxns) +
                 r.perTxn(stats::kTimeBarrierNs, kTxns) +
                 r.perTxn(stats::kTimeSyscallNs, kTxns)) /
                1000.0;
            row.push_back(TablePrinter::num(total_us, 0));
            row.push_back(TablePrinter::num(overhead_us, 1));
            row.push_back(
                TablePrinter::num(100.0 * overhead_us / total_us, 1));
        }
        fig6.addRow(row);
    }
    fig6.print();
    std::printf("\npaper anchors: ~4.6%% at 1 ins/txn, ~0.8%% at 32 "
                "ins/txn -- the ratio falls as CPU work dominates.\n");
    return 0;
}
