/**
 * @file
 * Shared workload driver for the benchmark harness. Every bench
 * binary regenerates one table or figure of the paper's evaluation
 * (section 5) by running Mobibench-style workloads through this
 * driver and reporting simulated-time metrics.
 */

#ifndef NVWAL_BENCH_BENCH_UTIL_HPP
#define NVWAL_BENCH_BENCH_UTIL_HPP

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "db/database.hpp"
#include "obs/json.hpp"

namespace nvwal::bench
{

/** Workload operation type (the paper's three Mobibench modes). */
enum class OpKind
{
    Insert,
    Update,
    Delete,
};

inline const char *
opKindName(OpKind op)
{
    switch (op) {
      case OpKind::Insert: return "insert";
      case OpKind::Update: return "update";
      case OpKind::Delete: return "delete";
    }
    return "?";
}

/** One workload configuration. */
struct WorkloadSpec
{
    OpKind op = OpKind::Insert;
    int txns = 1000;
    int opsPerTxn = 1;
    std::size_t recordSize = 100;  //!< the paper's 100-byte records
    /**
     * Auto-checkpoint every 1000 frames inside the measured region
     * (the SQLite default). Figure 7 excludes checkpoint time
     * (section 5.3); Figure 9 amortizes it (section 5.4).
     */
    bool checkpointDuringRun = true;
    std::uint64_t seed = 42;
};

/** Measured outcome of one workload run. */
struct WorkloadResult
{
    SimTime elapsedNs = 0;
    double txnsPerSec = 0.0;
    /** Host wall-clock spent in the measured region (real ns). */
    std::uint64_t hostNs = 0;
    StatsSnapshot delta;
    /** Per-transaction begin-to-commit latency (sim ns). */
    Histogram commitLatencyNs;

    std::uint64_t
    stat(const char *name) const
    {
        auto it = delta.find(name);
        return it == delta.end() ? 0 : it->second;
    }

    double
    perTxn(const char *name, int txns) const
    {
        return static_cast<double>(stat(name)) / txns;
    }
};

/**
 * Run @p spec against a database opened with @p db_config on a fresh
 * Env built from @p env_config. Update/delete workloads are
 * pre-populated (and checkpointed) outside the measured region.
 */
inline WorkloadResult
runWorkload(const EnvConfig &env_config, DbConfig db_config,
            const WorkloadSpec &spec)
{
    Env env(env_config);
    db_config.autoCheckpoint = spec.checkpointDuringRun;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, db_config, &db));

    Rng rng(spec.seed);
    const int total_records = spec.txns * spec.opsPerTxn;
    if (spec.op != OpKind::Insert) {
        for (int k = 0; k < total_records; ++k) {
            ByteBuffer v(spec.recordSize,
                         static_cast<std::uint8_t>(rng.next()));
            NVWAL_CHECK_OK(
                db->insert(k, ConstByteSpan(v.data(), v.size())));
        }
        NVWAL_CHECK_OK(db->checkpoint());
    }

    const SimTime start = env.clock.now();
    const StatsSnapshot before = env.stats.snapshot();
    const auto host_start = std::chrono::steady_clock::now();
    WorkloadResult result;
    RowId key = 0;
    for (int t = 0; t < spec.txns; ++t) {
        const SimTime txn_start = env.clock.now();
        NVWAL_CHECK_OK(db->begin());
        for (int i = 0; i < spec.opsPerTxn; ++i, ++key) {
            ByteBuffer v(spec.recordSize,
                         static_cast<std::uint8_t>(rng.next()));
            const ConstByteSpan value(v.data(), v.size());
            switch (spec.op) {
              case OpKind::Insert:
                NVWAL_CHECK_OK(db->insert(key, value));
                break;
              case OpKind::Update:
                NVWAL_CHECK_OK(db->update(key, value));
                break;
              case OpKind::Delete:
                NVWAL_CHECK_OK(db->remove(key));
                break;
            }
        }
        NVWAL_CHECK_OK(db->commit());
        result.commitLatencyNs.record(env.clock.now() - txn_start);
    }

    result.elapsedNs = env.clock.now() - start;
    result.hostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - host_start)
            .count());
    result.delta = MetricsRegistry::delta(before, env.stats.snapshot());
    result.txnsPerSec = static_cast<double>(spec.txns) /
                        (static_cast<double>(result.elapsedNs) / 1e9);
    return result;
}

/** Warmup + repetition policy for noise-resistant measurements. */
struct RepeatSpec
{
    int warmup = 1;  //!< discarded runs before measuring
    int reps = 3;    //!< measured runs; the median is reported
};

/**
 * Run @p spec repeat.warmup times untimed, then repeat.reps times,
 * and return the run with the median *host* wall-clock. Simulated
 * metrics are deterministic across repetitions (same seed, same
 * cost model), so the median selects a representative host timing
 * without perturbing the simulated numbers.
 */
inline WorkloadResult
runWorkloadMedian(const EnvConfig &env_config, const DbConfig &db_config,
                  const WorkloadSpec &spec, const RepeatSpec &repeat)
{
    for (int i = 0; i < repeat.warmup; ++i)
        (void)runWorkload(env_config, db_config, spec);
    std::vector<WorkloadResult> runs;
    const int reps = std::max(1, repeat.reps);
    runs.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i)
        runs.push_back(runWorkload(env_config, db_config, spec));
    std::sort(runs.begin(), runs.end(),
              [](const WorkloadResult &a, const WorkloadResult &b) {
                  return a.hostNs < b.hostNs;
              });
    return runs[runs.size() / 2];
}

/** The six NVWAL schemes of Figure 7's legend, in paper order. */
struct Scheme
{
    const char *label;
    SyncMode sync;
    bool diff;
    bool userHeap;
};

inline const Scheme kFigure7Schemes[] = {
    {"NVWAL LS", SyncMode::Lazy, false, false},
    {"NVWAL LS+Diff", SyncMode::Lazy, true, false},
    {"NVWAL CS+Diff", SyncMode::ChecksumAsync, true, false},
    {"NVWAL UH+LS", SyncMode::Lazy, false, true},
    {"NVWAL UH+LS+Diff", SyncMode::Lazy, true, true},
    {"NVWAL UH+CS+Diff", SyncMode::ChecksumAsync, true, true},
};

inline DbConfig
nvwalDbConfig(const Scheme &scheme)
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.nvwal.syncMode = scheme.sync;
    config.nvwal.diffLogging = scheme.diff;
    config.nvwal.userHeap = scheme.userHeap;
    return config;
}

// ---- machine-readable output (--json) ------------------------------

/**
 * Common bench CLI: `--json <path>` writes a BENCH_*.json-compatible
 * record file next to the human-readable tables; `--smoke` shrinks
 * the workload so CI can validate the output shape in seconds. The
 * JSON schema is documented in docs/OBSERVABILITY.md.
 */
struct BenchArgs
{
    std::string jsonPath;  //!< empty = no JSON export
    bool smoke = false;
};

inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            args.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            args.smoke = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json <path>] [--smoke]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return args;
}

/** One measured configuration in a bench's JSON export. */
struct BenchRecord
{
    std::string name;    //!< claim / figure row identifier
    std::string scheme;  //!< WAL scheme label ("" when n/a)
    /** Workload parameters (txns, ops_per_txn, record_size, ...). */
    std::map<std::string, std::uint64_t> params;
    double txnsPerSec = 0.0;
    /** Per-transaction latency; empty histogram = omitted. */
    Histogram latencyNs;
    /** Counter deltas over the measured region (zeros skipped). */
    StatsSnapshot counters;
    /** Extra named measurements (ratios, percentages, ...). */
    std::map<std::string, double> values;

    /** Fill params/latency/counters from a workload run. */
    void
    fromWorkload(const WorkloadSpec &spec, const WorkloadResult &r)
    {
        params["txns"] = static_cast<std::uint64_t>(spec.txns);
        params["ops_per_txn"] = static_cast<std::uint64_t>(spec.opsPerTxn);
        params["record_size"] = spec.recordSize;
        txnsPerSec = r.txnsPerSec;
        latencyNs = r.commitLatencyNs;
        counters = r.delta;
        if (r.hostNs != 0)
            values["host_ms"] = static_cast<double>(r.hostNs) / 1e6;
    }
};

/** Collects BenchRecords and writes the bench's JSON document. */
class BenchJson
{
  public:
    BenchJson(std::string bench_name, const BenchArgs &args)
        : _bench(std::move(bench_name)), _path(args.jsonPath),
          _smoke(args.smoke)
    {
    }

    bool enabled() const { return !_path.empty(); }

    void add(BenchRecord record) { _records.push_back(std::move(record)); }

    std::string
    document() const
    {
        JsonWriter w;
        w.beginObject();
        w.member("bench", _bench);
        w.member("smoke", _smoke);
        w.key("records");
        w.beginArray();
        for (const BenchRecord &r : _records) {
            w.beginObject();
            w.member("name", r.name);
            if (!r.scheme.empty())
                w.member("scheme", r.scheme);
            w.key("params");
            w.beginObject();
            for (const auto &[k, v] : r.params)
                w.member(k, v);
            w.endObject();
            w.member("throughput_txns_per_sec", r.txnsPerSec);
            if (r.latencyNs.count() > 0) {
                w.key("latency_us");
                w.beginObject();
                w.member("count", r.latencyNs.count());
                w.member("mean", r.latencyNs.mean() / 1000.0);
                w.member("p50",
                         static_cast<double>(r.latencyNs.p50()) / 1000.0);
                w.member("p95",
                         static_cast<double>(r.latencyNs.p95()) / 1000.0);
                w.member("p99",
                         static_cast<double>(r.latencyNs.p99()) / 1000.0);
                w.member("max",
                         static_cast<double>(r.latencyNs.max()) / 1000.0);
                w.endObject();
            }
            w.key("counters");
            w.beginObject();
            for (const auto &[k, v] : r.counters) {
                if (v != 0)
                    w.member(k, v);
            }
            w.endObject();
            if (!r.values.empty()) {
                w.key("values");
                w.beginObject();
                for (const auto &[k, v] : r.values)
                    w.member(k, v);
                w.endObject();
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
        return w.str();
    }

    /** Write the document to the --json path (no-op when disabled). */
    void
    write() const
    {
        if (!enabled())
            return;
        const std::string doc = document();
        std::FILE *f = std::fopen(_path.c_str(), "wb");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", _path.c_str());
            std::exit(1);
        }
        const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        if (n != doc.size()) {
            std::fprintf(stderr, "short write to %s\n", _path.c_str());
            std::exit(1);
        }
        std::printf("wrote %s (%zu records)\n", _path.c_str(),
                    _records.size());
    }

  private:
    std::string _bench;
    std::string _path;
    bool _smoke;
    std::vector<BenchRecord> _records;
};

} // namespace nvwal::bench

#endif // NVWAL_BENCH_BENCH_UTIL_HPP
