/**
 * @file
 * Shared workload driver for the benchmark harness. Every bench
 * binary regenerates one table or figure of the paper's evaluation
 * (section 5) by running Mobibench-style workloads through this
 * driver and reporting simulated-time metrics.
 */

#ifndef NVWAL_BENCH_BENCH_UTIL_HPP
#define NVWAL_BENCH_BENCH_UTIL_HPP

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "db/database.hpp"

namespace nvwal::bench
{

/** Workload operation type (the paper's three Mobibench modes). */
enum class OpKind
{
    Insert,
    Update,
    Delete,
};

inline const char *
opKindName(OpKind op)
{
    switch (op) {
      case OpKind::Insert: return "insert";
      case OpKind::Update: return "update";
      case OpKind::Delete: return "delete";
    }
    return "?";
}

/** One workload configuration. */
struct WorkloadSpec
{
    OpKind op = OpKind::Insert;
    int txns = 1000;
    int opsPerTxn = 1;
    std::size_t recordSize = 100;  //!< the paper's 100-byte records
    /**
     * Auto-checkpoint every 1000 frames inside the measured region
     * (the SQLite default). Figure 7 excludes checkpoint time
     * (section 5.3); Figure 9 amortizes it (section 5.4).
     */
    bool checkpointDuringRun = true;
    std::uint64_t seed = 42;
};

/** Measured outcome of one workload run. */
struct WorkloadResult
{
    SimTime elapsedNs = 0;
    double txnsPerSec = 0.0;
    StatsSnapshot delta;

    std::uint64_t
    stat(const char *name) const
    {
        auto it = delta.find(name);
        return it == delta.end() ? 0 : it->second;
    }

    double
    perTxn(const char *name, int txns) const
    {
        return static_cast<double>(stat(name)) / txns;
    }
};

/**
 * Run @p spec against a database opened with @p db_config on a fresh
 * Env built from @p env_config. Update/delete workloads are
 * pre-populated (and checkpointed) outside the measured region.
 */
inline WorkloadResult
runWorkload(const EnvConfig &env_config, DbConfig db_config,
            const WorkloadSpec &spec)
{
    Env env(env_config);
    db_config.autoCheckpoint = spec.checkpointDuringRun;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, db_config, &db));

    Rng rng(spec.seed);
    const int total_records = spec.txns * spec.opsPerTxn;
    if (spec.op != OpKind::Insert) {
        for (int k = 0; k < total_records; ++k) {
            ByteBuffer v(spec.recordSize,
                         static_cast<std::uint8_t>(rng.next()));
            NVWAL_CHECK_OK(
                db->insert(k, ConstByteSpan(v.data(), v.size())));
        }
        NVWAL_CHECK_OK(db->checkpoint());
    }

    const SimTime start = env.clock.now();
    const StatsSnapshot before = env.stats.snapshot();
    RowId key = 0;
    for (int t = 0; t < spec.txns; ++t) {
        NVWAL_CHECK_OK(db->begin());
        for (int i = 0; i < spec.opsPerTxn; ++i, ++key) {
            ByteBuffer v(spec.recordSize,
                         static_cast<std::uint8_t>(rng.next()));
            const ConstByteSpan value(v.data(), v.size());
            switch (spec.op) {
              case OpKind::Insert:
                NVWAL_CHECK_OK(db->insert(key, value));
                break;
              case OpKind::Update:
                NVWAL_CHECK_OK(db->update(key, value));
                break;
              case OpKind::Delete:
                NVWAL_CHECK_OK(db->remove(key));
                break;
            }
        }
        NVWAL_CHECK_OK(db->commit());
    }

    WorkloadResult result;
    result.elapsedNs = env.clock.now() - start;
    result.delta = StatsRegistry::delta(before, env.stats.snapshot());
    result.txnsPerSec = static_cast<double>(spec.txns) /
                        (static_cast<double>(result.elapsedNs) / 1e9);
    return result;
}

/** The six NVWAL schemes of Figure 7's legend, in paper order. */
struct Scheme
{
    const char *label;
    SyncMode sync;
    bool diff;
    bool userHeap;
};

inline const Scheme kFigure7Schemes[] = {
    {"NVWAL LS", SyncMode::Lazy, false, false},
    {"NVWAL LS+Diff", SyncMode::Lazy, true, false},
    {"NVWAL CS+Diff", SyncMode::ChecksumAsync, true, false},
    {"NVWAL UH+LS", SyncMode::Lazy, false, true},
    {"NVWAL UH+LS+Diff", SyncMode::Lazy, true, true},
    {"NVWAL UH+CS+Diff", SyncMode::ChecksumAsync, true, true},
};

inline DbConfig
nvwalDbConfig(const Scheme &scheme)
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.nvwal.syncMode = scheme.sync;
    config.nvwal.diffLogging = scheme.diff;
    config.nvwal.userHeap = scheme.userHeap;
    return config;
}

} // namespace nvwal::bench

#endif // NVWAL_BENCH_BENCH_UTIL_HPP
