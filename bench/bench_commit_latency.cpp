/**
 * @file
 * Commit-latency distribution. The paper amortizes the sporadic
 * checkpoint cost over 1000 transactions ("checkpointing affects the
 * performance of only one out of hundreds of transactions",
 * section 5.3) -- this bench shows that spike and how the
 * incremental-checkpoint extension bounds it, at a small throughput
 * cost.
 *
 * `--json <path>` exports the per-configuration percentiles and
 * counter deltas; `--smoke` shrinks the run for CI validation.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

struct LatencyProfile
{
    double txnsPerSec;
    double p50Us;
    double p95Us;
    double p99Us;
    double maxUs;
    Histogram latencyNs;
    StatsSnapshot delta;
};

LatencyProfile
run(bool incremental, int txns)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 128ull << 20;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.checkpointThreshold = 1000;  // SQLite default
    config.incrementalCheckpoint = incremental;
    config.checkpointStepPages = 4;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    Rng rng(12);
    std::vector<SimTime> latencies;
    Histogram hist;
    latencies.reserve(txns);
    const StatsSnapshot before = env.stats.snapshot();
    const SimTime begin = env.clock.now();
    for (RowId k = 0; k < txns; ++k) {
        ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
        const SimTime start = env.clock.now();
        NVWAL_CHECK_OK(db->insert(k, ConstByteSpan(v.data(), v.size())));
        latencies.push_back(env.clock.now() - start);
        hist.record(env.clock.now() - start);
    }
    const double seconds =
        static_cast<double>(env.clock.now() - begin) / 1e9;

    // Percentiles from the exact sorted latencies; the Histogram
    // rides along for the JSON export (obs_test proves the two agree
    // within the bucket quantization error).
    std::sort(latencies.begin(), latencies.end());
    auto at = [&](double q) {
        return static_cast<double>(
                   latencies[static_cast<std::size_t>(
                       q * (latencies.size() - 1))]) /
               1000.0;
    };
    LatencyProfile p;
    p.txnsPerSec = txns / seconds;
    p.p50Us = at(0.50);
    p.p95Us = at(0.95);
    p.p99Us = at(0.99);
    p.maxUs = static_cast<double>(latencies.back()) / 1000.0;
    p.latencyNs = hist;
    p.delta = MetricsRegistry::delta(before, env.stats.snapshot());
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    BenchJson json("bench_commit_latency", args);
    const int txns = args.smoke ? 200 : 4000;

    TablePrinter table("Commit latency, NVWAL UH+LS+Diff, Nexus 5 @ "
                       "2us, insert txns, checkpoint threshold "
                       "1000 frames");
    table.setHeader({"checkpointing", "txns/sec", "p50 (us)", "p95 (us)",
                     "p99 (us)", "max (us)"});
    for (bool incremental : {false, true}) {
        const LatencyProfile p = run(incremental, txns);
        table.addRow({incremental ? "incremental (4 pages/commit)"
                                  : "full (blocking)",
                      TablePrinter::num(p.txnsPerSec, 0),
                      TablePrinter::num(p.p50Us, 1),
                      TablePrinter::num(p.p95Us, 1),
                      TablePrinter::num(p.p99Us, 1),
                      TablePrinter::num(p.maxUs, 1)});

        BenchRecord rec;
        rec.name = incremental ? "checkpoint.incremental"
                               : "checkpoint.full";
        rec.scheme = "NVWAL LS";
        rec.params["txns"] = static_cast<std::uint64_t>(txns);
        rec.params["checkpoint_threshold"] = 1000;
        rec.params["incremental"] = incremental ? 1 : 0;
        rec.txnsPerSec = p.txnsPerSec;
        rec.latencyNs = p.latencyNs;
        rec.counters = p.delta;
        json.add(std::move(rec));
    }
    table.print();
    std::printf("\nthe full checkpoint hits one commit with the whole "
                "write-back + fsync bill; incremental steps bound the "
                "worst commit at a small throughput cost.\n");
    json.write();
    return 0;
}
