/**
 * @file
 * Commit-latency distribution. The paper amortizes the sporadic
 * checkpoint cost over 1000 transactions ("checkpointing affects the
 * performance of only one out of hundreds of transactions",
 * section 5.3) -- this bench shows that spike and how the
 * incremental-checkpoint extension bounds it, at a small throughput
 * cost.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

struct LatencyProfile
{
    double txnsPerSec;
    double p50Us;
    double p99Us;
    double maxUs;
};

LatencyProfile
run(bool incremental)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 128ull << 20;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.checkpointThreshold = 1000;  // SQLite default
    config.incrementalCheckpoint = incremental;
    config.checkpointStepPages = 4;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    Rng rng(12);
    std::vector<SimTime> latencies;
    const int txns = 4000;
    latencies.reserve(txns);
    const SimTime begin = env.clock.now();
    for (RowId k = 0; k < txns; ++k) {
        ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
        const SimTime start = env.clock.now();
        NVWAL_CHECK_OK(db->insert(k, ConstByteSpan(v.data(), v.size())));
        latencies.push_back(env.clock.now() - start);
    }
    const double seconds =
        static_cast<double>(env.clock.now() - begin) / 1e9;

    std::sort(latencies.begin(), latencies.end());
    auto at = [&](double q) {
        return static_cast<double>(
                   latencies[static_cast<std::size_t>(
                       q * (latencies.size() - 1))]) /
               1000.0;
    };
    return LatencyProfile{txns / seconds, at(0.50), at(0.99),
                          static_cast<double>(latencies.back()) / 1000.0};
}

} // namespace

int
main()
{
    TablePrinter table("Commit latency, NVWAL UH+LS+Diff, Nexus 5 @ "
                       "2us, 4000 insert txns, checkpoint threshold "
                       "1000 frames");
    table.setHeader({"checkpointing", "txns/sec", "p50 (us)", "p99 (us)",
                     "max (us)"});
    for (bool incremental : {false, true}) {
        const LatencyProfile p = run(incremental);
        table.addRow({incremental ? "incremental (4 pages/commit)"
                                  : "full (blocking)",
                      TablePrinter::num(p.txnsPerSec, 0),
                      TablePrinter::num(p.p50Us, 1),
                      TablePrinter::num(p.p99Us, 1),
                      TablePrinter::num(p.maxUs, 1)});
    }
    table.print();
    std::printf("\nthe full checkpoint hits one commit with the whole "
                "write-back + fsync bill; incremental steps bound the "
                "worst commit at a small throughput cost.\n");
    return 0;
}
