/**
 * @file
 * Sharded-engine scaling benchmark (DESIGN.md §10): aggregate
 * transaction throughput versus shard count x writer count, for a
 * single-shard transaction mix and a cross-shard (2PC) mix.
 *
 * Every shard is an independent engine -- its own NVWAL, group-commit
 * queue and .db file -- but the simulation shares one clock across
 * the whole Env, which serializes the shards' simulated time. The
 * headline metric therefore uses the independent-device makespan
 * model: each writer stream runs alone and the simulated time it
 * consumes is charged to the shard it is pinned to; the cluster's
 * completion time is the busiest shard's total (what wall clock
 * would show with one core per shard), and
 *
 *     aggregate txns/s = total transactions / makespan.
 *
 * The cross-shard mix commits every transaction with two-phase
 * commit across two participants, so its per-transaction simulated
 * cost carries the PREPARE + DECISION records; the mix is reported
 * against the single-shard baseline as an overhead ratio.
 *
 * `--json <path>` exports the records; `--smoke` shrinks the grid
 * for CI validation.
 */

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "shard/sharded_connection.hpp"
#include "shard/sharded_database.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

using Op = ShardedConnection::Op;

EnvConfig
benchEnv()
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 256ull << 20;
    return env_config;
}

ShardConfig
benchShards(std::uint32_t shards)
{
    ShardConfig config;
    config.baseName = "bench";
    config.shardCount = shards;
    config.dbTemplate.walMode = WalMode::Nvwal;
    config.dbTemplate.checkpointThreshold = 1000;
    // Large pre-allocated log blocks (paper section 5.3) so heap-node
    // persists don't dominate the per-shard cost being compared.
    config.dbTemplate.nvwal.nvBlockSize = 64 * 1024;
    return config;
}

/** @p count keys routing to @p shard, probed upward from @p base. */
std::vector<RowId>
keysOnShard(const ShardedDatabase &db, std::uint32_t shard, RowId base,
            int count)
{
    std::vector<RowId> keys;
    keys.reserve(static_cast<std::size_t>(count));
    for (RowId k = base; static_cast<int>(keys.size()) < count; ++k) {
        if (db.shardOf(k) == shard)
            keys.push_back(k);
    }
    return keys;
}

struct MixResult
{
    double aggTxnsPerSec = 0.0;
    double makespanMs = 0.0;
    Histogram latencyNs;
    StatsSnapshot delta;

    double
    stat(const char *name) const
    {
        auto it = delta.find(name);
        return it == delta.end() ? 0.0 : static_cast<double>(it->second);
    }
};

/**
 * Single-shard mix: W writer streams, stream w pinned to shard w%S,
 * each committing @p txns_per_writer one-row inserts on its own
 * shard. Streams run back to back (one host core); the sim time each
 * consumes accrues to its shard, and the makespan is the busiest
 * shard's total.
 */
MixResult
runSingleMix(std::uint32_t shards, int writers, int txns_per_writer)
{
    Env env(benchEnv());
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_CHECK_OK(ShardedDatabase::open(env, benchShards(shards), &db));

    MixResult r;
    std::vector<SimTime> busy(shards, 0);
    const StatsSnapshot before = env.stats.snapshot();
    for (int w = 0; w < writers; ++w) {
        const std::uint32_t shard = static_cast<std::uint32_t>(w) % shards;
        const std::vector<RowId> keys = keysOnShard(
            *db, shard, static_cast<RowId>(w + 1) * 10'000'000,
            txns_per_writer);
        std::unique_ptr<ShardedConnection> conn;
        NVWAL_CHECK_OK(db->connect(&conn));
        Rng rng(300 + static_cast<std::uint64_t>(w));
        const SimTime start = env.clock.now();
        for (const RowId key : keys) {
            ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
            const SimTime txn_start = env.clock.now();
            NVWAL_CHECK_OK(conn->runAtomic(
                {Op::insert(key, ConstByteSpan(v.data(), v.size()))}));
            r.latencyNs.record(env.clock.now() - txn_start);
        }
        busy[shard] += env.clock.now() - start;
    }
    r.delta = MetricsRegistry::delta(before, env.stats.snapshot());

    SimTime makespan = 0;
    for (const SimTime b : busy)
        makespan = std::max(makespan, b);
    r.makespanMs = static_cast<double>(makespan) / 1e6;
    r.aggTxnsPerSec = static_cast<double>(writers) * txns_per_writer /
                      (static_cast<double>(makespan) / 1e9);
    return r;
}

/**
 * Cross-shard mix: every transaction inserts two rows on two distinct
 * shards (adjacent in the ring), committing with 2PC. One stream; no
 * parallel credit -- 2PC coordinates the participants, so the total
 * simulated time is the honest denominator.
 */
MixResult
runCrossMix(std::uint32_t shards, int txns)
{
    Env env(benchEnv());
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_CHECK_OK(ShardedDatabase::open(env, benchShards(shards), &db));
    std::unique_ptr<ShardedConnection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));

    MixResult r;
    // Two disjoint key streams per shard, so the degenerate one-shard
    // baseline (both rows land on shard 0) never repeats a key.
    std::vector<std::vector<RowId>> keys(shards);
    for (std::uint32_t s = 0; s < shards; ++s)
        keys[s] = keysOnShard(*db, s,
                              static_cast<RowId>(s + 1) * 20'000'000,
                              2 * txns);

    Rng rng(400);
    const StatsSnapshot before = env.stats.snapshot();
    const SimTime start = env.clock.now();
    for (int i = 0; i < txns; ++i) {
        const std::uint32_t a = static_cast<std::uint32_t>(i) % shards;
        const std::uint32_t b = (a + 1) % shards;
        ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
        const ConstByteSpan value(v.data(), v.size());
        const SimTime txn_start = env.clock.now();
        NVWAL_CHECK_OK(
            conn->runAtomic({Op::insert(keys[a][2 * i], value),
                             Op::insert(keys[b][2 * i + 1], value)}));
        r.latencyNs.record(env.clock.now() - txn_start);
    }
    const SimTime total = env.clock.now() - start;
    r.delta = MetricsRegistry::delta(before, env.stats.snapshot());
    r.makespanMs = static_cast<double>(total) / 1e6;
    r.aggTxnsPerSec =
        txns / (static_cast<double>(total) / 1e9);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    BenchJson json("bench_sharded", args);

    const std::vector<std::uint32_t> shard_counts =
        args.smoke ? std::vector<std::uint32_t>{1, 2}
                   : std::vector<std::uint32_t>{1, 2, 4};
    const std::vector<int> writer_counts =
        args.smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    const int txns_per_writer = args.smoke ? 150 : 1000;
    const int cross_txns = args.smoke ? 150 : 600;

    // ---- single-shard mix ------------------------------------------
    TablePrinter single_table(
        "Single-shard mix: 100-byte inserts, writer w pinned to shard "
        "w%S (independent-device makespan model)");
    single_table.setHeader({"shards", "writers", "agg txns/s",
                            "makespan (ms)", "speedup vs 1 shard"});
    std::map<int, double> one_shard_baseline;  // writers -> txns/s
    double scaling_1_to_4 = 0.0;
    for (const std::uint32_t shards : shard_counts) {
        for (const int writers : writer_counts) {
            const MixResult r =
                runSingleMix(shards, writers, txns_per_writer);
            if (shards == 1)
                one_shard_baseline[writers] = r.aggTxnsPerSec;
            const double speedup =
                one_shard_baseline.count(writers) != 0
                    ? r.aggTxnsPerSec / one_shard_baseline[writers]
                    : 1.0;
            if (shards == 4 && writers == 4)
                scaling_1_to_4 = speedup;
            single_table.addRow(
                {std::to_string(shards), std::to_string(writers),
                 TablePrinter::num(r.aggTxnsPerSec, 0),
                 TablePrinter::num(r.makespanMs, 1),
                 TablePrinter::num(speedup, 2)});
            BenchRecord rec;
            rec.name = "single_mix.s" + std::to_string(shards) + ".w" +
                       std::to_string(writers);
            rec.scheme = "NVWAL LS";
            rec.params["shards"] = shards;
            rec.params["writers"] = static_cast<std::uint64_t>(writers);
            rec.params["txns_per_writer"] =
                static_cast<std::uint64_t>(txns_per_writer);
            rec.txnsPerSec = r.aggTxnsPerSec;
            rec.latencyNs = r.latencyNs;
            rec.counters = r.delta;
            rec.values["makespan_ms"] = r.makespanMs;
            rec.values["speedup_vs_one_shard"] = speedup;
            json.add(std::move(rec));
        }
    }
    single_table.print();

    // ---- cross-shard (2PC) mix -------------------------------------
    TablePrinter cross_table(
        "Cross-shard mix: 2-row transactions spanning two shards, "
        "committed with 2PC (PREPARE per participant + DECISION per "
        "participant)");
    cross_table.setHeader({"shards", "txns/s", "prepare recs/txn",
                           "decision recs/txn", "p50 (us)"});
    for (const std::uint32_t shards : shard_counts) {
        const MixResult r = runCrossMix(shards, cross_txns);
        const double prepares =
            r.stat(stats::kWalPrepareRecords) / cross_txns;
        const double decisions =
            r.stat(stats::kWalDecisionRecords) / cross_txns;
        cross_table.addRow(
            {std::to_string(shards),
             TablePrinter::num(r.aggTxnsPerSec, 0),
             TablePrinter::num(prepares, 2),
             TablePrinter::num(decisions, 2),
             TablePrinter::num(
                 static_cast<double>(r.latencyNs.p50()) / 1000.0, 1)});
        BenchRecord rec;
        rec.name = "cross_mix.s" + std::to_string(shards);
        rec.scheme = "NVWAL LS";
        rec.params["shards"] = shards;
        rec.params["txns"] = static_cast<std::uint64_t>(cross_txns);
        rec.txnsPerSec = r.aggTxnsPerSec;
        rec.latencyNs = r.latencyNs;
        rec.counters = r.delta;
        rec.values["prepare_records_per_txn"] = prepares;
        rec.values["decision_records_per_txn"] = decisions;
        json.add(std::move(rec));
    }
    cross_table.print();

    if (scaling_1_to_4 > 0.0) {
        std::printf("\nsingle-shard mix scaling 1 -> 4 shards at 4 "
                    "writers: %.2fx (target >= 3x)\n", scaling_1_to_4);
        if (scaling_1_to_4 < 3.0) {
            std::fprintf(stderr,
                         "FAIL: scaling below the 3x acceptance bar\n");
            return 1;
        }
    }
    std::printf("\neach shard is a full engine on its own NVWAL; the "
                "single-shard mix splits one serialized stream across "
                "independent devices, so aggregate throughput tracks "
                "the shard count, while every cross-shard transaction "
                "pays one PREPARE and one DECISION record per "
                "participant on top of its data frames.\n");
    json.write();
    return 0;
}
