/**
 * @file
 * Quantifies the paper's **section 4.4 conjecture** (left as future
 * work there, implemented here): how NVWAL performs under strict
 * persistency and hardware epoch (relaxed) persistency vs. the
 * explicit-flush platform the paper evaluates.
 *
 * Expectation from the paper: strict persistency "may significantly
 * limit persist performance because it enforces strict ordering
 * constraints between persist operations", while relaxed persistency
 * removes the software flush loop and kernel crossings and "will
 * induce a level of performance higher than strict persistency".
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main()
{
    const SimTime kLatencies[] = {400, 1000, 1900};
    const PersistencyModel kModels[] = {
        PersistencyModel::Explicit,
        PersistencyModel::Strict,
        PersistencyModel::EpochHW,
    };

    for (bool diff : {false, true}) {
        TablePrinter table(
            std::string("Section 4.4: NVWAL throughput (txns/sec) per "
                        "persistency model, Tuna, ") +
            (diff ? "UH+LS+Diff" : "UH+LS (full-page frames)"));
        table.setHeader({"latency(ns)", "explicit-flush", "strict",
                         "epoch-hw"});

        for (SimTime latency : kLatencies) {
            std::vector<std::string> row{
                TablePrinter::num(std::uint64_t(latency))};
            for (PersistencyModel model : kModels) {
                EnvConfig env_config;
                env_config.cost = CostModel::tuna(latency);
                env_config.cost.persistency = model;
                env_config.nvramBytes = 128ull << 20;

                DbConfig config;
                config.walMode = WalMode::Nvwal;
                config.nvwal.diffLogging = diff;

                WorkloadSpec spec;
                spec.op = OpKind::Insert;
                spec.txns = 1000;
                spec.checkpointDuringRun = false;

                const WorkloadResult r =
                    runWorkload(env_config, config, spec);
                row.push_back(TablePrinter::num(r.txnsPerSec, 0));
            }
            table.addRow(row);
        }
        table.print();
    }
    std::printf("\nexpectation (section 4.4): strict < explicit-flush "
                "<= epoch-hw; the gap widens with NVRAM latency and "
                "with bytes logged (full-page > diff).\n");
    return 0;
}
