/**
 * @file
 * Multi-writer scaling curve: N connections committing through N
 * per-connection NVRAM logs (DESIGN.md §13). Writers run disjoint
 * key ranges, so every commit validates cleanly and the curve
 * isolates what the per-connection logs buy: appends never contend,
 * and one group harden retires every writer's published epochs with
 * a single shared barrier pair.
 *
 * The simulator is single-threaded, so parallelism is modeled the
 * same way bench_sharded models independent devices: each writer's
 * transactions are charged to its own busy-time account (the sim
 * clock advances only while that writer runs), and the modeled
 * makespan is max(busy_i) + the shared tail harden. Thread-safety
 * of the real concurrent path is covered by tests/multiwriter_test
 * and the TSan job, not here.
 *
 * A final `overlap.N` record measures deterministic conflict
 * density: N writers race one contended page, the first commit of
 * each round wins, and the losers surface StatusCode::Conflict and
 * retry -- (N-1)/N conflicts per committed transaction.
 *
 * `--json <path>` exports the curve; `--smoke` shrinks it for CI.
 * The perf gate (baselines/multiwriter_bounds.json) holds the
 * 16-writer row at >= 3x the single-writer throughput and at most
 * one persist barrier per transaction.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "db/connection.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

constexpr RowId kStride = 1 << 20;   // writer ranges: disjoint leaves
constexpr RowId kMargin = 64;        // keep updates off boundary leaves
constexpr std::size_t kValueBytes = 64;  // same-size updates: no splits

struct ScalingProfile
{
    double txnsPerSec;
    Histogram latencyNs;
    StatsSnapshot delta;
    double barriersPerTxn;
    double conflictsPerTxn;
};

ByteBuffer
rowValue(RowId key, std::uint8_t tag)
{
    ByteBuffer v(kValueBytes);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<std::uint8_t>(key * 31 + i + tag);
    return v;
}

std::unique_ptr<Database>
openMw(Env &env, std::uint32_t writer_logs)
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.multiWriter = true;
    config.writerLogs = writer_logs;
    config.nvwal.diffLogging = true;
    // An update rewrites the header, the pointer array, and a cell
    // deep in the page: SingleRange's bounding frame degenerates to
    // nearly the whole page, so log the disjoint ranges instead.
    config.nvwal.diffGranularity = DiffGranularity::MultiRange;
    config.nvwal.userHeap = true;
    // Fewer bump-heap refills: each node allocation costs a handful
    // of persist barriers off the shared heap manager, which is
    // exactly the contention the per-connection logs exist to avoid.
    config.nvwal.nvBlockSize = 64 * 1024;
    config.checkpointThreshold = 100000;
    // One tail harden: the window never forces a barrier mid-curve,
    // so barriers/txn measures the group harden's amortization.
    config.asyncMaxEpochs = 1u << 20;
    config.asyncMaxStalenessNs = 0;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    return db;
}

ScalingProfile
runDisjoint(int writers, int txns_per_writer, int updates_per_txn)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 128ull << 20;
    Env env(env_config);
    std::unique_ptr<Database> db =
        openMw(env, static_cast<std::uint32_t>(writers));

    // Seed every writer's range (plus margins) through the root
    // connection so update transactions never grow or split a page.
    const RowId seeded =
        static_cast<RowId>(txns_per_writer) * updates_per_txn +
        2 * kMargin;
    NVWAL_CHECK_OK(db->begin());
    for (int w = 0; w < writers; ++w)
        for (RowId j = 0; j < seeded; ++j) {
            const RowId key = w * kStride + j;
            const ByteBuffer v = rowValue(key, 0);
            NVWAL_CHECK_OK(
                db->insert(key, ConstByteSpan(v.data(), v.size())));
        }
    NVWAL_CHECK_OK(db->commit(Durability::Sync));

    std::vector<std::unique_ptr<Connection>> conns;
    for (int w = 0; w < writers; ++w) {
        std::unique_ptr<Connection> conn;
        NVWAL_CHECK_OK(db->connect(&conn));
        conns.push_back(std::move(conn));
    }

    CommitOptions async_nowait;
    async_nowait.durability = Durability::Async;
    async_nowait.waitForHarden = false;

    // Round-robin the writers txn by txn so epochs interleave across
    // the logs the way concurrent writers would produce them, while
    // each writer's sim-time cost lands in its own busy account.
    Histogram hist;
    std::vector<SimTime> busy(static_cast<std::size_t>(writers), 0);
    const StatsSnapshot before = env.stats.snapshot();
    for (int t = 0; t < txns_per_writer; ++t)
        for (int w = 0; w < writers; ++w) {
            Connection &conn = *conns[static_cast<std::size_t>(w)];
            const SimTime start = env.clock.now();
            NVWAL_CHECK_OK(conn.begin());
            for (int u = 0; u < updates_per_txn; ++u) {
                const RowId key = w * kStride + kMargin +
                                  static_cast<RowId>(t) *
                                      updates_per_txn + u;
                const ByteBuffer v = rowValue(key, 7);
                NVWAL_CHECK_OK(conn.update(
                    key, ConstByteSpan(v.data(), v.size())));
            }
            NVWAL_CHECK_OK(conn.commit(async_nowait));
            const SimTime elapsed = env.clock.now() - start;
            busy[static_cast<std::size_t>(w)] += elapsed;
            hist.record(elapsed);
        }

    // The one shared harden: every writer's published epochs retire
    // behind a single barrier pair, charged once to the makespan.
    const SimTime tail_start = env.clock.now();
    NVWAL_CHECK_OK(db->flushAsyncCommits());
    const SimTime shared = env.clock.now() - tail_start;

    SimTime makespan = shared;
    for (const SimTime b : busy)
        if (b + shared > makespan)
            makespan = b + shared;

    const int txns = writers * txns_per_writer;
    ScalingProfile p;
    p.txnsPerSec = txns / (static_cast<double>(makespan) / 1e9);
    p.latencyNs = hist;
    p.delta = MetricsRegistry::delta(before, env.stats.snapshot());
    const auto stat = [&](const char *name) {
        auto it = p.delta.find(name);
        return it == p.delta.end() ? 0.0
                                   : static_cast<double>(it->second);
    };
    p.barriersPerTxn = stat(stats::kPersistBarriers) / txns;
    p.conflictsPerTxn = stat(stats::kWalLogConflicts) / txns;
    return p;
}

double
runOverlap(int writers, int rounds, StatsSnapshot *delta)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    env_config.nvramBytes = 128ull << 20;
    Env env(env_config);
    std::unique_ptr<Database> db =
        openMw(env, static_cast<std::uint32_t>(writers));

    const RowId contended = 42;
    const ByteBuffer seed = rowValue(contended, 0);
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(
        db->insert(contended, ConstByteSpan(seed.data(), seed.size())));
    NVWAL_CHECK_OK(db->commit(Durability::Sync));

    std::vector<std::unique_ptr<Connection>> conns;
    for (int w = 0; w < writers; ++w) {
        std::unique_ptr<Connection> conn;
        NVWAL_CHECK_OK(db->connect(&conn));
        conns.push_back(std::move(conn));
    }

    // Deterministic contention: all writers open transactions on the
    // same page, then commit in turn. The first commit of the round
    // wins; every later one conflicts and retries against the fresh
    // floor, which succeeds unopposed.
    int committed = 0;
    const StatsSnapshot before = env.stats.snapshot();
    for (int r = 0; r < rounds; ++r) {
        for (auto &conn : conns)
            NVWAL_CHECK_OK(conn->begin());
        for (int w = 0; w < writers; ++w) {
            const ByteBuffer v =
                rowValue(contended, static_cast<std::uint8_t>(w + 1));
            NVWAL_CHECK_OK(conns[static_cast<std::size_t>(w)]->update(
                contended, ConstByteSpan(v.data(), v.size())));
        }
        for (int w = 0; w < writers; ++w) {
            Connection &conn = *conns[static_cast<std::size_t>(w)];
            Status s = conn.commit(CommitOptions{});
            if (s.isConflict()) {
                const ByteBuffer v = rowValue(
                    contended, static_cast<std::uint8_t>(w + 1));
                NVWAL_CHECK_OK(conn.begin());
                NVWAL_CHECK_OK(conn.update(
                    contended, ConstByteSpan(v.data(), v.size())));
                s = conn.commit(CommitOptions{});
            }
            NVWAL_CHECK_OK(s);
            ++committed;
        }
    }
    *delta = MetricsRegistry::delta(before, env.stats.snapshot());
    const auto it = delta->find(stats::kWalLogConflicts);
    const double conflicts =
        it == delta->end() ? 0.0 : static_cast<double>(it->second);
    return conflicts / committed;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    BenchJson json("bench_multiwriter", args);
    const int txns_per_writer = args.smoke ? 12 : 64;
    const int updates_per_txn = 4;

    TablePrinter table(
        "Multi-writer scaling, NVWAL per-connection logs, Nexus 5 "
        "@ 2us, 4-update txns on disjoint ranges; modeled makespan = "
        "max per-writer busy time + the shared tail harden");
    table.setHeader({"writers", "txns/sec (model)", "vs 1 writer",
                     "ack p50 (us)", "barriers/txn", "conflicts/txn"});

    const int curve[] = {1, 2, 4, 8, 16};
    double tps_one = 0.0;
    for (const int writers : curve) {
        const ScalingProfile p =
            runDisjoint(writers, txns_per_writer, updates_per_txn);
        if (writers == 1)
            tps_one = p.txnsPerSec;
        const double speedup = p.txnsPerSec / tps_one;
        table.addRow({std::to_string(writers),
                      TablePrinter::num(p.txnsPerSec, 0),
                      TablePrinter::num(speedup, 2),
                      TablePrinter::num(
                          static_cast<double>(p.latencyNs.p50()) /
                              1000.0,
                          1),
                      TablePrinter::num(p.barriersPerTxn, 3),
                      TablePrinter::num(p.conflictsPerTxn, 3)});

        BenchRecord rec;
        rec.name = "writers." + std::to_string(writers);
        rec.scheme = "NVWAL MW";
        rec.params["writers"] =
            static_cast<std::uint64_t>(writers);
        rec.params["txns_per_writer"] =
            static_cast<std::uint64_t>(txns_per_writer);
        rec.params["ops_per_txn"] =
            static_cast<std::uint64_t>(updates_per_txn);
        rec.txnsPerSec = p.txnsPerSec;
        rec.latencyNs = p.latencyNs;
        rec.counters = p.delta;
        rec.values["txns_per_sec_model"] = p.txnsPerSec;
        // Inverted so the gate is an upper bound: 1/speedup <= 1/3
        // enforces >= 3x scaling at 16 writers.
        rec.values["inverse_scaling_vs_1"] = tps_one / p.txnsPerSec;
        rec.values["persist_barriers_per_txn"] = p.barriersPerTxn;
        rec.values["conflicts_per_txn"] = p.conflictsPerTxn;
        json.add(std::move(rec));
    }

    const int overlap_writers = 4;
    const int overlap_rounds = args.smoke ? 8 : 32;
    StatsSnapshot overlap_delta;
    const double overlap_conflicts =
        runOverlap(overlap_writers, overlap_rounds, &overlap_delta);
    table.addRow({"4 (1 page)", "-", "-", "-", "-",
                  TablePrinter::num(overlap_conflicts, 3)});

    BenchRecord overlap;
    overlap.name = "overlap." + std::to_string(overlap_writers);
    overlap.scheme = "NVWAL MW";
    overlap.params["writers"] =
        static_cast<std::uint64_t>(overlap_writers);
    overlap.params["rounds"] =
        static_cast<std::uint64_t>(overlap_rounds);
    overlap.counters = overlap_delta;
    overlap.values["conflicts_per_txn"] = overlap_conflicts;
    json.add(std::move(overlap));

    table.print();
    std::printf("\nper-connection logs append without contention; one "
                "group harden retires every writer's epochs behind a "
                "single barrier pair, so barriers/txn collapses as "
                "writers scale.\noverlap row: N writers racing one "
                "page surface (N-1)/N optimistic conflicts per commit "
                "and retry through.\n");
    json.write();
    return 0;
}
