/**
 * @file
 * Regenerates **Figure 8** of the paper: the block I/O trace of ten
 * single-insert transactions under stock SQLite WAL vs the optimized
 * WAL (aligned frames + log-page pre-allocation), on the Nexus 5
 * eMMC + EXT4(ordered) model.
 *
 * The figure plots block address over time per stream (EXT4 journal,
 * .db-wal, .db); this bench prints the same trace as rows plus the
 * per-stream byte totals.
 *
 * Paper anchors (section 5.4): a single insert transaction in stock
 * WAL writes one block to .db-wal but ~16KB+4KB to the EXT4 journal;
 * pre-allocating log pages cuts journal traffic by ~40% (284 KB ->
 * 172 KB over 10 transactions) and batch time from 90 ms to 74 ms.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

struct TraceResult
{
    std::vector<TraceEntry> trace;
    std::uint64_t journalBytes;
    std::uint64_t walBytes;
    std::uint64_t dbBytes;
    SimTime elapsedNs;
};

TraceResult
run(bool optimized)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    Env env(env_config);
    env.flash.setTracing(true);

    DbConfig config;
    config.walMode =
        optimized ? WalMode::FileOptimized : WalMode::FileStock;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    env.flash.clearTrace();

    const SimTime start = env.clock.now();
    for (RowId k = 0; k < 10; ++k) {
        ByteBuffer v(100, static_cast<std::uint8_t>(k));
        NVWAL_CHECK_OK(db->insert(k, ConstByteSpan(v.data(), v.size())));
    }
    TraceResult result;
    result.elapsedNs = env.clock.now() - start;
    result.trace = env.flash.trace();
    result.journalBytes = env.flash.bytesWritten(IoTag::Journal);
    result.walBytes = env.flash.bytesWritten(IoTag::WalFile);
    result.dbBytes = env.flash.bytesWritten(IoTag::DbFile);
    return result;
}

void
report(const char *label, const TraceResult &r)
{
    TablePrinter trace(std::string("Figure 8 trace: ") + label +
                       " (10 insert txns)");
    trace.setHeader({"time(ms)", "block", "stream"});
    for (const TraceEntry &e : r.trace) {
        trace.addRow({TablePrinter::num(
                          static_cast<double>(e.timeNs) / 1e6, 2),
                      TablePrinter::num(std::uint64_t(e.block)),
                      ioTagName(e.tag)});
    }
    trace.print();
    std::printf("%s totals: journal %llu KB, .db-wal %llu KB, .db %llu "
                "KB, batch time %.1f ms\n",
                label,
                static_cast<unsigned long long>(r.journalBytes / 1024),
                static_cast<unsigned long long>(r.walBytes / 1024),
                static_cast<unsigned long long>(r.dbBytes / 1024),
                static_cast<double>(r.elapsedNs) / 1e6);
}

} // namespace

int
main()
{
    const TraceResult stock = run(false);
    const TraceResult optimized = run(true);
    report("stock WAL", stock);
    report("optimized WAL", optimized);

    std::printf("\njournal reduction: %.0f%% (paper: ~40%%, 284 KB -> "
                "172 KB); batch time %.1f ms -> %.1f ms (paper: 90 -> "
                "74 ms)\n",
                100.0 * (1.0 - static_cast<double>(optimized.journalBytes) /
                                   static_cast<double>(stock.journalBytes)),
                static_cast<double>(stock.elapsedNs) / 1e6,
                static_cast<double>(optimized.elapsedNs) / 1e6);
    return 0;
}
