/**
 * @file
 * Ablation study over NVWAL's three design elements (the deltas the
 * paper calls out in section 5.3), each measured in isolation on the
 * Tuna board at 1000 ns NVRAM write latency:
 *
 *  - byte-granularity differential logging (+Diff): paper reports up
 *    to +28% throughput over full-page LS;
 *  - user-level heap (UH): paper reports ~+6% over per-frame
 *    nvmalloc;
 *  - lazy vs eager synchronization: lazy eliminates ~2-23% of the
 *    persistency-enforcement overhead;
 *  - checksum-based asynchronous commit (CS): the upper bound that
 *    trades correctness for speed.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

namespace
{

double
throughput(SyncMode sync, bool diff, bool user_heap, OpKind op,
           DiffGranularity granularity = DiffGranularity::SingleRange,
           int ops_per_txn = 1)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(1000);
    env_config.nvramBytes = 128ull << 20;

    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.nvwal.syncMode = sync;
    config.nvwal.diffLogging = diff;
    config.nvwal.userHeap = user_heap;
    config.nvwal.diffGranularity = granularity;

    WorkloadSpec spec;
    spec.op = op;
    spec.txns = 1000;
    spec.opsPerTxn = ops_per_txn;
    spec.checkpointDuringRun = false;

    return runWorkload(env_config, config, spec).txnsPerSec;
}

std::string
delta(double base, double variant)
{
    return TablePrinter::num(100.0 * (variant / base - 1.0), 1) + "%";
}

} // namespace

int
main()
{
    TablePrinter ablation("Ablation: per-feature throughput deltas "
                          "(Tuna @ 1000ns, 1000 single-op txns)");
    ablation.setHeader({"workload", "feature toggled", "off (tx/s)",
                        "on (tx/s)", "delta", "paper"});

    for (OpKind op : {OpKind::Insert, OpKind::Update, OpKind::Delete}) {
        const double ls = throughput(SyncMode::Lazy, false, false, op);
        const double ls_diff =
            throughput(SyncMode::Lazy, true, false, op);
        const double uh_ls = throughput(SyncMode::Lazy, false, true, op);
        const double uh_ls_diff =
            throughput(SyncMode::Lazy, true, true, op);
        const double uh_cs_diff =
            throughput(SyncMode::ChecksumAsync, true, true, op);

        ablation.addRow({opKindName(op), "differential logging",
                         TablePrinter::num(ls, 0),
                         TablePrinter::num(ls_diff, 0),
                         delta(ls, ls_diff), "up to +28%"});
        ablation.addRow({opKindName(op), "user-level heap",
                         TablePrinter::num(ls, 0),
                         TablePrinter::num(uh_ls, 0), delta(ls, uh_ls),
                         "~+6%"});
        // Lazy-vs-eager is a claim about the persistency-enforcement
        // overhead, not end-to-end throughput (section 5.1: lazy
        // "eliminates about 2-23% of the total overhead of enforcing
        // persistency"). Measure the ordering overhead per 32-op
        // transaction under both modes, full-page logging.
        auto orderingOverhead = [&](SyncMode sync) {
            EnvConfig env_config;
            env_config.cost = CostModel::tuna(1000);
            env_config.nvramBytes = 128ull << 20;
            DbConfig config;
            config.walMode = WalMode::Nvwal;
            config.nvwal.syncMode = sync;
            config.nvwal.diffLogging = false;
            WorkloadSpec spec;
            spec.op = op;
            spec.txns = 200;
            spec.opsPerTxn = 32;
            spec.checkpointDuringRun = false;
            const WorkloadResult r =
                runWorkload(env_config, config, spec);
            return static_cast<double>(
                       r.stat(stats::kTimeFlushNs) +
                       r.stat(stats::kTimeBarrierNs) +
                       r.stat(stats::kTimePersistNs) +
                       r.stat(stats::kTimeSyscallNs)) /
                   1000.0 / 200.0;
        };
        const double e_ovh = orderingOverhead(SyncMode::Eager);
        const double l_ovh = orderingOverhead(SyncMode::Lazy);
        ablation.addRow(
            {opKindName(op), "lazy sync ovh us/txn (vs eager)",
             TablePrinter::num(e_ovh, 1), TablePrinter::num(l_ovh, 1),
             TablePrinter::num(100.0 * (1.0 - l_ovh / e_ovh), 1) +
                 "% less",
             "2..23% less"});
        ablation.addRow({opKindName(op), "async commit (vs lazy)",
                         TablePrinter::num(uh_ls_diff, 0),
                         TablePrinter::num(uh_cs_diff, 0),
                         delta(uh_ls_diff, uh_cs_diff),
                         "comparable"});

        // Beyond the paper: multi-range diff frames (one frame per
        // disjoint dirty range) vs the paper's single bounding range.
        const double uh_ls_multi =
            throughput(SyncMode::Lazy, true, true, op,
                       DiffGranularity::MultiRange);
        ablation.addRow({opKindName(op), "multi-range diff (extension)",
                         TablePrinter::num(uh_ls_diff, 0),
                         TablePrinter::num(uh_ls_multi, 0),
                         delta(uh_ls_diff, uh_ls_multi), "n/a"});
    }
    ablation.print();
    std::printf("\nNVWAL UH+LS+Diff should sit within a few percent of "
                "UH+CS+Diff without compromising consistency "
                "(section 5.3).\n");
    return 0;
}
