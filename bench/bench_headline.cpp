/**
 * @file
 * Regenerates the paper's headline claims (abstract + section 1):
 *
 *  1. NVWAL on NVRAM (2 us write latency) delivers >= 10x the
 *     transaction throughput of WAL on flash (541 -> 5812 ins/sec).
 *  2. Application performance is insensitive to NVRAM latency:
 *     cutting the latency from 1942 ns to 437 ns buys only ~4%
 *     (2517 -> 2621 ins/sec on Tuna).
 *  3. The cache-line-flush overhead is only ~0.8-4.6% of transaction
 *     execution time.
 *  4. Each 8 KB NVRAM block stores ~4.9 WAL frames on average under
 *     the user-level heap (section 3.3).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main()
{
    TablePrinter headline("Headline claims: paper vs this reproduction");
    headline.setHeader({"claim", "paper", "measured"});

    const Scheme uh_ls_diff{"UH+LS+Diff", SyncMode::Lazy, true, true};

    // -- claim 1: >= 10x over flash at 2 us ---------------------------
    {
        WorkloadSpec spec;
        spec.op = OpKind::Insert;
        spec.txns = 1000;
        spec.checkpointDuringRun = true;

        EnvConfig nexus;
        nexus.cost = CostModel::nexus5(2000);
        DbConfig flash;
        flash.walMode = WalMode::FileOptimized;
        const double flash_tps =
            runWorkload(nexus, flash, spec).txnsPerSec;
        const double nvwal_tps =
            runWorkload(nexus, nvwalDbConfig(uh_ls_diff), spec)
                .txnsPerSec;
        headline.addRow({"optimized WAL on eMMC (tx/s)", "541",
                         TablePrinter::num(flash_tps, 0)});
        headline.addRow({"NVWAL UH+LS+Diff @2us (tx/s)", "5812",
                         TablePrinter::num(nvwal_tps, 0)});
        headline.addRow({"speedup over flash", ">=10x",
                         TablePrinter::num(nvwal_tps / flash_tps, 1) +
                             "x"});
    }

    // -- claim 2: latency insensitivity on Tuna ----------------------
    {
        WorkloadSpec spec;
        spec.op = OpKind::Insert;
        spec.txns = 1000;
        spec.checkpointDuringRun = true;  // sustained (section 5.4)

        EnvConfig slow;
        slow.cost = CostModel::tuna(1942);
        slow.nvramBytes = 128ull << 20;
        EnvConfig fast;
        fast.cost = CostModel::tuna(437);
        fast.nvramBytes = 128ull << 20;
        const double slow_tps =
            runWorkload(slow, nvwalDbConfig(uh_ls_diff), spec)
                .txnsPerSec;
        const double fast_tps =
            runWorkload(fast, nvwalDbConfig(uh_ls_diff), spec)
                .txnsPerSec;
        headline.addRow({"Tuna @1942ns (tx/s)", "2517",
                         TablePrinter::num(slow_tps, 0)});
        headline.addRow({"Tuna @437ns (tx/s)", "2621",
                         TablePrinter::num(fast_tps, 0)});
        headline.addRow(
            {"gain from 4.4x faster NVRAM", "~4%",
             TablePrinter::num(100.0 * (fast_tps / slow_tps - 1.0), 1) +
                 "%"});
    }

    // -- claim 3: flush overhead share --------------------------------
    {
        EnvConfig tuna;
        tuna.cost = CostModel::tuna(500);
        WorkloadSpec spec;
        spec.op = OpKind::Insert;
        spec.txns = 500;
        spec.checkpointDuringRun = false;
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        config.nvwal.diffLogging = false;
        const WorkloadResult r = runWorkload(tuna, config, spec);
        const double overhead =
            static_cast<double>(r.stat(stats::kTimeFlushNs) +
                                r.stat(stats::kTimeBarrierNs) +
                                r.stat(stats::kTimeSyscallNs));
        headline.addRow(
            {"flush overhead share (1 ins/txn)", "4.6%",
             TablePrinter::num(
                 100.0 * overhead / static_cast<double>(r.elapsedNs),
                 1) + "%"});
    }

    // -- claim 4: frames per 8 KB block --------------------------------
    {
        EnvConfig tuna;
        tuna.cost = CostModel::tuna(500);
        Env env(tuna);
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        config.autoCheckpoint = false;
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        Rng rng(3);
        for (RowId k = 0; k < 500; ++k) {
            ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
            NVWAL_CHECK_OK(
                db->insert(k, ConstByteSpan(v.data(), v.size())));
        }
        auto &log = static_cast<NvwalLog &>(db->wal());
        headline.addRow({"WAL frames per 8KB NVRAM block", "4.9",
                         TablePrinter::num(log.framesPerNode(), 1)});
    }

    headline.print();
    return 0;
}
