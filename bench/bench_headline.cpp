/**
 * @file
 * Regenerates the paper's headline claims (abstract + section 1):
 *
 *  1. NVWAL on NVRAM (2 us write latency) delivers >= 10x the
 *     transaction throughput of WAL on flash (541 -> 5812 ins/sec).
 *  2. Application performance is insensitive to NVRAM latency:
 *     cutting the latency from 1942 ns to 437 ns buys only ~4%
 *     (2517 -> 2621 ins/sec on Tuna).
 *  3. The cache-line-flush overhead is only ~0.8-4.6% of transaction
 *     execution time.
 *  4. Each 8 KB NVRAM block stores ~4.9 WAL frames on average under
 *     the user-level heap (section 3.3).
 *
 * `--json <path>` additionally writes one machine-readable record per
 * measured configuration (throughput, commit-latency percentiles,
 * counter deltas); `--smoke` shrinks the workloads for CI validation.
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    BenchJson json("bench_headline", args);
    const int kTxns = args.smoke ? 60 : 1000;
    const int kFlushTxns = args.smoke ? 40 : 500;

    TablePrinter headline("Headline claims: paper vs this reproduction");
    headline.setHeader({"claim", "paper", "measured"});

    const Scheme uh_ls_diff{"UH+LS+Diff", SyncMode::Lazy, true, true};

    // -- claim 1: >= 10x over flash at 2 us ---------------------------
    {
        WorkloadSpec spec;
        spec.op = OpKind::Insert;
        spec.txns = kTxns;
        spec.checkpointDuringRun = true;

        EnvConfig nexus;
        nexus.cost = CostModel::nexus5(2000);
        DbConfig flash;
        flash.walMode = WalMode::FileOptimized;
        const WorkloadResult flash_r = runWorkload(nexus, flash, spec);
        const WorkloadResult nvwal_r =
            runWorkload(nexus, nvwalDbConfig(uh_ls_diff), spec);
        const double flash_tps = flash_r.txnsPerSec;
        const double nvwal_tps = nvwal_r.txnsPerSec;
        headline.addRow({"optimized WAL on eMMC (tx/s)", "541",
                         TablePrinter::num(flash_tps, 0)});
        headline.addRow({"NVWAL UH+LS+Diff @2us (tx/s)", "5812",
                         TablePrinter::num(nvwal_tps, 0)});
        headline.addRow({"speedup over flash", ">=10x",
                         TablePrinter::num(nvwal_tps / flash_tps, 1) +
                             "x"});

        BenchRecord flash_rec;
        flash_rec.name = "claim1.flash_wal";
        flash_rec.scheme = "FileOptimized";
        flash_rec.fromWorkload(spec, flash_r);
        json.add(std::move(flash_rec));
        BenchRecord nvwal_rec;
        nvwal_rec.name = "claim1.nvwal";
        nvwal_rec.scheme = "NVWAL UH+LS+Diff";
        nvwal_rec.fromWorkload(spec, nvwal_r);
        nvwal_rec.values["speedup_over_flash"] = nvwal_tps / flash_tps;
        json.add(std::move(nvwal_rec));
    }

    // -- claim 2: latency insensitivity on Tuna ----------------------
    {
        WorkloadSpec spec;
        spec.op = OpKind::Insert;
        spec.txns = kTxns;
        spec.checkpointDuringRun = true;  // sustained (section 5.4)

        EnvConfig slow;
        slow.cost = CostModel::tuna(1942);
        slow.nvramBytes = 128ull << 20;
        EnvConfig fast;
        fast.cost = CostModel::tuna(437);
        fast.nvramBytes = 128ull << 20;
        const WorkloadResult slow_r =
            runWorkload(slow, nvwalDbConfig(uh_ls_diff), spec);
        const WorkloadResult fast_r =
            runWorkload(fast, nvwalDbConfig(uh_ls_diff), spec);
        const double slow_tps = slow_r.txnsPerSec;
        const double fast_tps = fast_r.txnsPerSec;
        headline.addRow({"Tuna @1942ns (tx/s)", "2517",
                         TablePrinter::num(slow_tps, 0)});
        headline.addRow({"Tuna @437ns (tx/s)", "2621",
                         TablePrinter::num(fast_tps, 0)});
        headline.addRow(
            {"gain from 4.4x faster NVRAM", "~4%",
             TablePrinter::num(100.0 * (fast_tps / slow_tps - 1.0), 1) +
                 "%"});

        BenchRecord slow_rec;
        slow_rec.name = "claim2.tuna_1942ns";
        slow_rec.scheme = "NVWAL UH+LS+Diff";
        slow_rec.fromWorkload(spec, slow_r);
        slow_rec.params["nvram_latency_ns"] = 1942;
        json.add(std::move(slow_rec));
        BenchRecord fast_rec;
        fast_rec.name = "claim2.tuna_437ns";
        fast_rec.scheme = "NVWAL UH+LS+Diff";
        fast_rec.fromWorkload(spec, fast_r);
        fast_rec.params["nvram_latency_ns"] = 437;
        fast_rec.values["gain_pct"] =
            100.0 * (fast_tps / slow_tps - 1.0);
        json.add(std::move(fast_rec));
    }

    // -- claim 3: flush overhead share --------------------------------
    {
        EnvConfig tuna;
        tuna.cost = CostModel::tuna(500);
        WorkloadSpec spec;
        spec.op = OpKind::Insert;
        spec.txns = kFlushTxns;
        spec.checkpointDuringRun = false;
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        config.nvwal.diffLogging = false;
        const WorkloadResult r = runWorkload(tuna, config, spec);
        const double overhead =
            static_cast<double>(r.stat(stats::kTimeFlushNs) +
                                r.stat(stats::kTimeBarrierNs) +
                                r.stat(stats::kTimeSyscallNs));
        const double share =
            100.0 * overhead / static_cast<double>(r.elapsedNs);
        headline.addRow({"flush overhead share (1 ins/txn)", "4.6%",
                         TablePrinter::num(share, 1) + "%"});

        BenchRecord rec;
        rec.name = "claim3.flush_overhead";
        rec.scheme = "NVWAL LS";
        rec.fromWorkload(spec, r);
        rec.values["flush_overhead_pct"] = share;
        json.add(std::move(rec));
    }

    // -- claim 4: frames per 8 KB block --------------------------------
    {
        EnvConfig tuna;
        tuna.cost = CostModel::tuna(500);
        Env env(tuna);
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        config.autoCheckpoint = false;
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        Rng rng(3);
        const RowId rows = args.smoke ? 50 : 500;
        for (RowId k = 0; k < rows; ++k) {
            ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
            NVWAL_CHECK_OK(
                db->insert(k, ConstByteSpan(v.data(), v.size())));
        }
        auto &log = static_cast<NvwalLog &>(db->wal());
        headline.addRow({"WAL frames per 8KB NVRAM block", "4.9",
                         TablePrinter::num(log.framesPerNode(), 1)});

        BenchRecord rec;
        rec.name = "claim4.frames_per_block";
        rec.scheme = "NVWAL UH+LS";
        rec.params["rows"] = rows;
        rec.values["frames_per_node"] = log.framesPerNode();
        json.add(std::move(rec));
    }

    headline.print();
    json.write();
    return 0;
}
