/**
 * @file
 * Regenerates **Table 2** of the paper: the average number of bytes
 * written to NVRAM per transaction for insert / update / delete
 * workloads, with legacy full-page logging vs byte-granularity
 * differential logging, as operations per transaction grow 1-32.
 *
 * Paper anchors: differential logging eliminates 73-84% of the I/O
 * for inserts, 29-85% for updates and 49-69% for deletes; inserts
 * benefit most because SQLite appends new cells to the edge of the
 * used region, while update/delete compact the page and touch a
 * large portion of it (section 5.2).
 */

#include <cstdio>

#include "bench_util.hpp"

using namespace nvwal;
using namespace nvwal::bench;

int
main()
{
    const int kOpCounts[] = {1, 2, 4, 8, 16, 32};
    const int kTxns = 300;

    TablePrinter table2("Table 2: average bytes written to NVRAM per "
                        "transaction (Tuna @ 500ns)");
    table2.setHeader({"ops/txn", "Insert", "Insert(Diff)", "saved",
                      "Update", "Update(Diff)", "saved", "Delete",
                      "Delete(Diff)", "saved"});

    for (int ops : kOpCounts) {
        std::vector<std::string> row{
            TablePrinter::num(std::uint64_t(ops))};
        for (OpKind op :
             {OpKind::Insert, OpKind::Update, OpKind::Delete}) {
            double bytes[2] = {0, 0};
            int idx = 0;
            for (bool diff : {false, true}) {
                EnvConfig env_config;
                env_config.cost = CostModel::tuna(500);
                env_config.nvramBytes = 128ull << 20;

                DbConfig db_config;
                db_config.walMode = WalMode::Nvwal;
                db_config.nvwal.syncMode = SyncMode::Lazy;
                db_config.nvwal.diffLogging = diff;
                db_config.nvwal.userHeap = true;

                WorkloadSpec spec;
                spec.op = op;
                spec.txns = kTxns;
                spec.opsPerTxn = ops;
                spec.checkpointDuringRun = false;

                const WorkloadResult r =
                    runWorkload(env_config, db_config, spec);
                bytes[idx++] =
                    r.perTxn(stats::kNvramBytesLogged, kTxns);
            }
            const double saved =
                100.0 * (1.0 - bytes[1] / bytes[0]);
            row.push_back(TablePrinter::num(bytes[0], 0));
            row.push_back(TablePrinter::num(bytes[1], 0));
            row.push_back(TablePrinter::num(saved, 0) + "%");
        }
        table2.addRow(row);
    }
    table2.print();
    std::printf("\npaper anchors: diff logging saves 73-84%% (insert), "
                "29-85%% (update), 49-69%% (delete) of NVRAM I/O.\n");
    return 0;
}
