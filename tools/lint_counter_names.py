#!/usr/bin/env python3
"""Cross-check metric names: src/sim/stats.hpp vs code vs docs.

The registry contract (docs/MODEL.md section 6) is that every
measurement point records under a canonical dotted name owned by
src/sim/stats.hpp and that the docs tables stay in sync with it.
This lint enforces the three directions that rot silently:

  1. every canonical constant in stats.hpp is documented in
     docs/MODEL.md or docs/OBSERVABILITY.md (wildcard rows like
     `time.*_ns` and `shard.commit_ns.sNN` count);
  2. no source file hardcodes a metric-looking string literal that
     is not a canonical name -- typos like "fr.record_written"
     would otherwise export a counter nobody documented or gated
     (tracer span names, which are a separate namespace, are
     recognised by their call sites and exempt);
  3. every metric-looking token the docs put in backticks still
     exists in stats.hpp (or is a live tracer span name), so doc
     tables cannot keep rows for counters that were renamed away.

Run from anywhere; registered as the ctest `lint_counter_names`.
Exits non-zero with one line per violation.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
STATS_HPP = REPO / "src" / "sim" / "stats.hpp"
DOCS = [REPO / "docs" / "MODEL.md", REPO / "docs" / "OBSERVABILITY.md"]
SOURCE_DIRS = ["src", "tests", "bench", "examples"]

# shardCommitHistName() in stats.hpp formats "shard.commit_ns.s%02u";
# docs write the family as shard.commit_ns.sNN.
DYNAMIC_NAME = re.compile(r"^shard\.commit_ns\.s\d+$")
DYNAMIC_DOC_TOKEN = "shard.commit_ns.sNN"


def parse_canonical_names():
    """String literals bound to constexpr char* constants."""
    text = STATS_HPP.read_text()
    # Declarations may break the line between '=' and the literal.
    names = re.findall(
        r"constexpr\s+const\s+char\s*\*\s*k\w+\s*=\s*\"([a-z0-9_.]+)\"",
        text,
    )
    return set(names)


FILE_SUFFIXES = ("hpp", "cpp", "json", "db", "md", "py")


def metric_tokens(text, prefixes):
    """Dotted lowercase tokens whose first segment is a known layer."""
    out = []
    for tok in re.findall(r"[a-z][a-z0-9_]*(?:\.[a-zA-Z0-9_*]+)+", text):
        if (tok.split(".", 1)[0] in prefixes
                and tok.rsplit(".", 1)[-1] not in FILE_SUFFIXES):
            out.append(tok)
    return out


def inline_code(markdown):
    """Backticked spans, honouring ``` fences (naive global pairing
    desynchronises across code blocks)."""
    spans, fenced = [], False
    for line in markdown.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            spans.extend(re.findall(r"`([^`]+)`", line))
    return "\n".join(spans)


def main():
    canonical = parse_canonical_names()
    if len(canonical) < 20:
        print(f"lint: parsed only {len(canonical)} names from "
              f"{STATS_HPP}; parser out of date?")
        return 1
    prefixes = {n.split(".", 1)[0] for n in canonical}
    errors = []

    # -- sweep the sources: span names first, then stray literals ----
    # Tracer span names are a separate namespace recognised by their
    # call sites; collect them across the whole tree before flagging
    # anything, so a test comparing a snapshot entry against a span
    # name ("wal.log_write") is not a violation.
    span_site = re.compile(r"tracer\(\)|tracer\.|TraceSpan")
    literal = re.compile(r"\"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)\"")
    files = []
    for d in SOURCE_DIRS:
        files.extend(p for p in sorted((REPO / d).rglob("*.[ch]pp"))
                     if p != STATS_HPP)

    def candidates(line):
        if "#include" in line:
            return []
        return [n for n in literal.findall(line)
                if n.split(".", 1)[0] in prefixes
                and n.rsplit(".", 1)[-1] not in FILE_SUFFIXES]

    span_names = set()
    for path in files:
        for line in path.read_text().splitlines():
            if span_site.search(line):
                span_names.update(candidates(line))

    for path in files:
        rel = path.relative_to(REPO)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for name in candidates(line):
                if (name in canonical or name in span_names
                        or DYNAMIC_NAME.match(name)):
                    continue
                errors.append(
                    f"{rel}:{lineno}: metric literal \"{name}\" is "
                    f"not a canonical name in src/sim/stats.hpp")

    # -- docs must cover every canonical name ------------------------
    doc_text = "\n".join(p.read_text() for p in DOCS)
    doc_tokens = set(metric_tokens(
        inline_code(doc_text), prefixes))
    wildcards = [re.compile("^" + re.escape(t).replace(r"\*",
                                                       r"[a-z0-9_]+") + "$")
                 for t in doc_tokens if "*" in t]
    for name in sorted(canonical):
        if name in doc_text:
            continue
        if any(w.match(name) for w in wildcards):
            continue
        errors.append(
            f"src/sim/stats.hpp: \"{name}\" is not documented in "
            f"docs/MODEL.md or docs/OBSERVABILITY.md")

    # -- docs must not keep rows for renamed-away names --------------
    for tok in sorted(doc_tokens):
        if "*" in tok or tok == DYNAMIC_DOC_TOKEN:
            continue
        if tok in canonical or DYNAMIC_NAME.match(tok):
            continue
        if tok in span_names:
            continue
        errors.append(
            f"docs: `{tok}` is neither a canonical name in "
            f"src/sim/stats.hpp nor a tracer span used in src/")

    for e in errors:
        print(e)
    if not errors:
        print(f"{len(canonical)} canonical names, "
              f"{len(span_names)} tracer spans: docs and sources in "
              f"sync")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
