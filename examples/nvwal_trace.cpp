/**
 * @file
 * Transaction-phase tracing demo: runs a small NVWAL workload with
 * the event tracer enabled and writes a Chrome trace_event JSON file.
 * Open the output in chrome://tracing or https://ui.perfetto.dev to
 * see, per transaction (one swimlane per txn id), the distinct
 * log-write, persist-barrier, commit-mark, and checkpoint phases --
 * plus the recovery span from reopening the database at the end.
 *
 *   $ ./build/examples/nvwal_trace trace.json
 *   $ ./build/examples/nvwal_trace --txns 50 trace.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "db/database.hpp"

using namespace nvwal;

int
main(int argc, char **argv)
{
    std::string out_path = "nvwal_trace.json";
    int txns = 10;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--txns") == 0 && i + 1 < argc) {
            txns = std::atoi(argv[++i]);
            if (txns <= 0) {
                std::fprintf(stderr, "--txns must be positive\n");
                return 2;
            }
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "usage: %s [--txns <n>] [out.json]\n",
                         argv[0]);
            return 2;
        } else {
            out_path = argv[i];
        }
    }

    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    env.stats.tracer().setEnabled(true);

    DbConfig config;
    config.name = "traced.db";
    config.walMode = WalMode::Nvwal;
    // Low threshold so the run crosses a checkpoint and that phase
    // shows up in the trace, attributed to the triggering txn's lane.
    config.checkpointThreshold = txns > 2 ? txns / 2 : 2;

    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= txns; ++k) {
        ByteBuffer v(200, static_cast<std::uint8_t>(k));
        NVWAL_CHECK_OK(db->insert(k, ConstByteSpan(v.data(), v.size())));
    }

    // Reopen so the trace also carries a wal.recover span (background
    // lane, txn id 0).
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->verifyIntegrity());
    db.reset();

    NVWAL_CHECK_OK(writeChromeTrace(env.stats.tracer(), out_path));
    std::printf("traced %d txns: %llu events (%llu dropped) -> %s\n"
                "load it in chrome://tracing or ui.perfetto.dev\n",
                txns,
                static_cast<unsigned long long>(env.stats.tracer().size()),
                static_cast<unsigned long long>(
                    env.stats.tracer().dropped()),
                out_path.c_str());
    return 0;
}
