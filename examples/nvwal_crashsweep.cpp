/**
 * @file
 * Exhaustive crash-point sweep driver: runs a multi-transaction
 * workload, injects a power failure at every persistence-relevant
 * NVRAM operation (or every stride-th one) under the pessimistic
 * policy and several adversarial seeds, recovers, and validates the
 * recovery invariants (section 4.3). Prints per-phase coverage and
 * exits non-zero if any invariant is ever violated.
 *
 * Examples:
 *   nvwal_crashsweep                         # exhaustive, 10 txns
 *   nvwal_crashsweep --scheme cs --seeds 6
 *   nvwal_crashsweep --txns 4 --stride 7     # bounded smoke sweep
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table_printer.hpp"
#include "faultsim/crash_sweep.hpp"

using namespace nvwal;

namespace
{

struct Options
{
    std::string scheme = "uh-lazy-diff";
    int warmTxns = 2;
    int txns = 10;
    std::size_t valueBytes = 80;
    std::uint64_t stride = 1;
    std::uint64_t maxPoints = 0;
    int seeds = 4;
    double surviveProb = 0.5;
    SimTime latencyNs = 500;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --scheme S        lazy | eager | cs | uh-lazy-diff |\n"
        "                    uh-eager-diff | uh-cs-diff (uh-lazy-diff)\n"
        "  --warm-txns N     committed transactions before the sweep (2)\n"
        "  --txns N          swept transactions (10)\n"
        "  --value-bytes B   record payload size (80)\n"
        "  --stride N        sweep every N-th device op (1 = exhaustive)\n"
        "  --max-points N    cap distinct crash points (0 = unlimited)\n"
        "  --seeds N         adversarial RNG seeds per point (4)\n"
        "  --survive-prob P  adversarial line-survival probability (0.5)\n"
        "  --latency NS      NVRAM write latency (500)\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--scheme") {
            opt.scheme = next();
        } else if (arg == "--warm-txns") {
            opt.warmTxns = std::atoi(next());
        } else if (arg == "--txns") {
            opt.txns = std::atoi(next());
        } else if (arg == "--value-bytes") {
            opt.valueBytes = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--stride") {
            opt.stride = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--max-points") {
            opt.maxPoints = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seeds") {
            opt.seeds = std::atoi(next());
        } else if (arg == "--survive-prob") {
            opt.surviveProb = std::atof(next());
        } else if (arg == "--latency") {
            opt.latencyNs = std::strtoull(next(), nullptr, 10);
        } else {
            usage(argv[0]);
        }
    }
    if (opt.txns < 1 || opt.warmTxns < 0 || opt.stride < 1 ||
        opt.seeds < 1)
        usage(argv[0]);
    return opt;
}

bool
configFor(const std::string &scheme, NvwalConfig *out)
{
    NvwalConfig config;
    config.nvBlockSize = 8192;
    if (scheme == "lazy") {
        config.syncMode = SyncMode::Lazy;
        config.userHeap = false;
        config.diffLogging = false;
    } else if (scheme == "eager") {
        config.syncMode = SyncMode::Eager;
        config.userHeap = false;
        config.diffLogging = false;
    } else if (scheme == "cs") {
        config.syncMode = SyncMode::ChecksumAsync;
        config.userHeap = false;
        config.diffLogging = false;
    } else if (scheme == "uh-lazy-diff") {
        config.syncMode = SyncMode::Lazy;
        config.userHeap = true;
        config.diffLogging = true;
    } else if (scheme == "uh-eager-diff") {
        config.syncMode = SyncMode::Eager;
        config.userHeap = true;
        config.diffLogging = true;
    } else if (scheme == "uh-cs-diff") {
        config.syncMode = SyncMode::ChecksumAsync;
        config.userHeap = true;
        config.diffLogging = true;
    } else {
        return false;
    }
    *out = config;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(opt.latencyNs);
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 4096;
    config.db.walMode = WalMode::Nvwal;
    if (!configFor(opt.scheme, &config.db.nvwal))
        usage(argv[0]);
    config.warmup =
        faultsim::Workload::standardTxns(0, opt.warmTxns, opt.valueBytes);
    config.workload = faultsim::Workload::standardTxns(
        opt.warmTxns, opt.txns, opt.valueBytes);
    config.stride = opt.stride;
    config.maxPoints = opt.maxPoints;
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Pessimistic, {0}, 0.5});
    faultsim::PolicyRun adversarial;
    adversarial.policy = FailurePolicy::Adversarial;
    adversarial.surviveProb = opt.surviveProb;
    adversarial.seeds.clear();
    for (int s = 1; s <= opt.seeds; ++s)
        adversarial.seeds.push_back(static_cast<std::uint64_t>(s));
    config.policies.push_back(adversarial);

    faultsim::SweepReport report;
    faultsim::CrashSweep sweep(config);
    const Status status = sweep.run(&report);
    if (!status.isOk()) {
        std::fprintf(stderr, "sweep failed to run: %s\n",
                     status.toString().c_str());
        return 2;
    }

    TablePrinter table("Crash-point sweep coverage (" + opt.scheme +
                       ", " + std::to_string(report.totalOps) +
                       " device ops, " +
                       std::to_string(report.commitEvents) +
                       " commit events)");
    table.setHeader({"phase", "points", "replays", "crashes",
                     "violations"});
    for (const auto &[label, cov] : report.phases) {
        table.addRow({label, TablePrinter::num(cov.points),
                      TablePrinter::num(cov.replays),
                      TablePrinter::num(cov.crashes),
                      TablePrinter::num(cov.violations)});
    }
    table.addRow({"total", TablePrinter::num(report.pointsSwept),
                  TablePrinter::num(report.replays),
                  TablePrinter::num(report.crashes),
                  TablePrinter::num(
                      static_cast<std::uint64_t>(
                          report.violations.size()))});
    table.print();

    if (!report.ok()) {
        std::fprintf(stderr, "\n%s", report.summary().c_str());
        return 1;
    }
    std::printf("\nall recovery invariants held at every point\n");
    return 0;
}
