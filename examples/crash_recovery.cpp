/**
 * @file
 * Failure-atomicity demo: commit transactions, lose power at the
 * worst possible moment (mid-commit, with an adversarial cache-
 * survival model), and watch recovery restore exactly the committed
 * state -- including reclamation of NVRAM blocks that were caught in
 * the pending state (paper section 4.3).
 */

#include <cstdio>

#include "db/database.hpp"

using namespace nvwal;

namespace
{

void
showState(Database &db, const char *when)
{
    std::printf("%s:\n", when);
    NVWAL_CHECK_OK(db.scan(INT64_MIN, INT64_MAX,
                           [](RowId key, ConstByteSpan v) {
                               std::printf("  %lld = %.*s\n",
                                           static_cast<long long>(key),
                                           static_cast<int>(v.size()),
                                           reinterpret_cast<const char *>(
                                               v.data()));
                               return true;
                           }));
}

} // namespace

int
main()
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);

    DbConfig config;
    config.name = "bank.db";
    config.walMode = WalMode::Nvwal;  // UH+LS+Diff by default

    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    // Two committed transactions.
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->insert(100, "alice: $500"));
    NVWAL_CHECK_OK(db->insert(200, "bob:   $300"));
    NVWAL_CHECK_OK(db->commit());

    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->update(100, toBytes("alice: $400")));
    NVWAL_CHECK_OK(db->update(200, toBytes("bob:   $400")));
    NVWAL_CHECK_OK(db->commit());
    showState(*db, "committed state (alice -> bob transfer done)");

    // A third transaction dies mid-commit: power is cut while WAL
    // frames are being flushed. The adversarial policy lets an
    // arbitrary subset of unflushed cache lines reach NVRAM -- the
    // worst case the recovery protocol must handle.
    std::printf("\n-- pulling the plug mid-commit --\n");
    env.nvramDevice.setScheduledCrashPolicy(FailurePolicy::Adversarial,
                                            /*survive_prob=*/0.5);
    env.nvramDevice.scheduleCrashAtOp(8);  // 8 NVRAM ops from now
    try {
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->update(100, toBytes("alice: $0  ")));
        NVWAL_CHECK_OK(db->update(200, toBytes("bob:   $800")));
        NVWAL_CHECK_OK(db->commit());
        std::printf("(commit survived -- try a smaller op budget)\n");
    } catch (const PowerFailure &) {
        std::printf("power failure during commit!\n");
        env.fs.crash();
    }
    env.nvramDevice.scheduleCrashAtOp(0);  // disarm

    // Recovery: reopen the database over the surviving NVRAM image.
    db.reset();
    std::unique_ptr<Database> recovered;
    NVWAL_CHECK_OK(Database::open(env, config, &recovered));
    NVWAL_CHECK_OK(recovered->verifyIntegrity());
    showState(*recovered, "\nrecovered state (torn transfer rolled back)");

    std::printf("\nNVRAM heap after recovery: %llu in-use, %llu pending "
                "(pending blocks were reclaimed)\n",
                static_cast<unsigned long long>(
                    env.heap.countBlocks(BlockState::InUse)),
                static_cast<unsigned long long>(
                    env.heap.countBlocks(BlockState::Pending)));

    // The database is fully operational after recovery.
    NVWAL_CHECK_OK(recovered->begin());
    NVWAL_CHECK_OK(recovered->update(100, toBytes("alice: $250")));
    NVWAL_CHECK_OK(recovered->update(200, toBytes("bob:   $550")));
    NVWAL_CHECK_OK(recovered->commit());
    showState(*recovered, "\nafter a successful retry");
    return 0;
}
