/**
 * @file
 * An interactive shell over the engine -- the sqlite3-REPL analogue.
 * Runs a simulated platform in-process, so you can commit
 * transactions, pull the (virtual) power plug, inspect the NVRAM
 * media and watch recovery, all from a prompt.
 *
 *   $ ./build/examples/nvwal_shell
 *   nvwal> insert 1 hello
 *   nvwal> begin
 *   nvwal> insert 2 world
 *   nvwal> crash
 *   power failure injected; database recovered
 *   nvwal> get 2
 *   (not found)            # the open transaction was rolled back
 *
 * `--shards N` opens a sharded store instead (DESIGN.md section 10):
 * single-key statements route by key, `minsert` commits a multi-key
 * batch atomically (two-phase commit when it spans shards), `shard k`
 * selects which shard `inspect`/`page` look at, and `stats`/`metrics`
 * aggregate over the whole shard set in stable key order.
 *
 * Feed it a script on stdin for reproducible demos:
 *   printf 'insert 1 hi\nstats\n' | ./build/examples/nvwal_shell
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "db/inspect.hpp"
#include "shard/sharded_connection.hpp"
#include "shard/sharded_database.hpp"

using namespace nvwal;

namespace
{

const char *kHelp =
    "commands:\n"
    "  insert <key> <text>   insert a record into the current table\n"
    "  update <key> <text>   replace a record\n"
    "  delete <key>          remove a record\n"
    "  get <key>             fetch a record\n"
    "  scan [lo hi]          list records in key order\n"
    "  count                 number of records\n"
    "  begin|commit|rollback explicit transactions\n"
    "  tables                list tables\n"
    "  create <name>         create a table\n"
    "  drop <name>           drop a table\n"
    "  use <name>            switch the current table\n"
    "  checkpoint            write the log back and truncate it\n"
    "  vacuum                compact rebuild\n"
    "  crash [adversarial]   power failure + automatic recovery\n"
    "  inspect               raw NVWAL media report\n"
    "  page <no>             decode one B-tree page\n"
    "  stats                 all counters/histograms, stable key order\n"
    "  forensics [json]      flight-recorder post-mortem of the last\n"
    "                        recovery (crash forensics, DESIGN.md 12)\n"
    "  metrics [path]        metrics JSON to stdout or <path>\n"
    "  trace on|off          toggle the transaction-phase tracer\n"
    "  trace dump <path>     write a Chrome trace_event JSON file\n"
    "  help, quit\n";

const char *kShardHelp =
    "sharded-store commands (--shards N):\n"
    "  minsert <k> <text> [<k> <text> ...]\n"
    "                        atomic multi-key insert (2PC when the\n"
    "                        keys span shards)\n"
    "  route <key>           which shard a key routes to\n"
    "  shard [k]             show / select the shard that inspect and\n"
    "                        page operate on\n"
    "(tables and explicit begin/commit/rollback are single-store\n"
    " features; statements route to the owning shard and autocommit)\n";

struct Shell
{
    Shell(Env &env, std::uint32_t shards) : env(env), shards(shards)
    {
        reopen();
    }

    bool sharded() const { return shards > 0; }

    void
    reopen()
    {
        if (sharded()) {
            sconn.reset();
            sdb.reset();
            ShardConfig config;
            config.baseName = "shell";
            config.shardCount = shards;
            NVWAL_CHECK_OK(ShardedDatabase::open(env, config, &sdb));
            NVWAL_CHECK_OK(sdb->connect(&sconn));
            for (const InDoubtResolution &r : sdb->resolutions()) {
                std::printf(
                    "  in-doubt gtid %llu on shard %u: %s (%s)\n",
                    static_cast<unsigned long long>(r.gtid), r.shard,
                    r.committed ? "committed" : "aborted",
                    r.decidedByShard < 0
                        ? "presumed abort"
                        : ("decision record on shard " +
                           std::to_string(r.decidedByShard))
                              .c_str());
            }
            if (curShard >= shards)
                curShard = 0;
            return;
        }
        db.reset();
        DbConfig config;
        config.name = "shell.db";
        config.walMode = WalMode::Nvwal;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        table = Database::kDefaultTable;
    }

    Table *
    current()
    {
        Table *t = nullptr;
        const Status s = db->openTable(table, &t);
        if (!s.isOk()) {
            std::printf("error: %s\n", s.toString().c_str());
            return nullptr;
        }
        return t;
    }

    void
    report(const Status &s)
    {
        if (s.isOk())
            std::printf("ok\n");
        else
            std::printf("error: %s\n", s.toString().c_str());
    }

    Env &env;
    std::uint32_t shards;
    std::unique_ptr<Database> db;
    std::string table;
    std::unique_ptr<ShardedDatabase> sdb;
    std::unique_ptr<ShardedConnection> sconn;
    std::uint32_t curShard = 0;
};

std::string
textOf(ConstByteSpan v)
{
    return std::string(reinterpret_cast<const char *>(v.data()),
                       v.size());
}

/** Per-shard structural summaries, ascending shard order. */
void
printShardReports(Shell &shell)
{
    for (std::uint32_t k = 0; k < shell.sdb->shardCount(); ++k) {
        std::printf("-- shard %02u (%s) --\n", k,
                    ShardedDatabase::shardDbName(shell.sdb->config(), k)
                        .c_str());
        DatabaseReport report;
        NVWAL_CHECK_OK(
            collectDatabaseReport(shell.sdb->shard(k), &report));
        printDatabaseReport(report);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t shards = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            shards = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else {
            std::fprintf(stderr, "usage: %s [--shards N]\n", argv[0]);
            return 2;
        }
    }

    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(2000);
    Env env(env_config);
    Shell shell(env, shards);

    if (shell.sharded())
        std::printf("NVWAL shell -- %u shards, simulated Nexus 5 + "
                    "2us NVRAM. 'help' for commands.\n",
                    shards);
    else
        std::printf("NVWAL shell -- simulated Nexus 5 + 2us NVRAM. "
                    "'help' for commands.\n");
    std::string line;
    while (true) {
        std::printf("nvwal> ");
        std::fflush(stdout);
        if (!std::getline(std::cin, line))
            break;
        std::istringstream in(line);
        std::string cmd;
        if (!(in >> cmd))
            continue;

        if (cmd == "quit" || cmd == "exit")
            break;
        if (cmd == "help") {
            std::printf("%s", kHelp);
            if (shell.sharded())
                std::printf("%s", kShardHelp);
        } else if (cmd == "insert" || cmd == "update") {
            RowId key;
            std::string rest;
            if (!(in >> key) || !std::getline(in, rest) ||
                rest.size() < 2) {
                std::printf("usage: %s <key> <text>\n", cmd.c_str());
                continue;
            }
            rest.erase(0, 1);  // the separating space
            const ConstByteSpan value(
                reinterpret_cast<const std::uint8_t *>(rest.data()),
                rest.size());
            if (shell.sharded()) {
                shell.report(cmd == "insert"
                                 ? shell.sconn->insert(key, value)
                                 : shell.sconn->update(key, value));
                continue;
            }
            Table *t = shell.current();
            if (t == nullptr)
                continue;
            shell.report(cmd == "insert" ? t->insert(key, value)
                                         : t->update(key, value));
        } else if (cmd == "delete") {
            RowId key;
            if (!(in >> key)) {
                std::printf("usage: delete <key>\n");
                continue;
            }
            if (shell.sharded()) {
                shell.report(shell.sconn->remove(key));
                continue;
            }
            Table *t = shell.current();
            if (t != nullptr)
                shell.report(t->remove(key));
        } else if (cmd == "get") {
            RowId key;
            if (!(in >> key)) {
                std::printf("usage: get <key>\n");
                continue;
            }
            ByteBuffer out;
            Status s;
            if (shell.sharded()) {
                s = shell.sconn->get(key, &out);
            } else {
                Table *t = shell.current();
                if (t == nullptr)
                    continue;
                s = t->get(key, &out);
            }
            if (s.isOk()) {
                std::printf("%s\n",
                            textOf(ConstByteSpan(out.data(), out.size()))
                                .c_str());
            } else if (s.isNotFound()) {
                std::printf("(not found)\n");
            } else {
                shell.report(s);
            }
        } else if (cmd == "scan") {
            RowId lo = INT64_MIN;
            RowId hi = INT64_MAX;
            in >> lo >> hi;
            int rows = 0;
            const auto visit = [&](RowId k, ConstByteSpan v) {
                if (shell.sharded())
                    std::printf("  %lld = %s  (shard %u)\n",
                                static_cast<long long>(k),
                                textOf(v).c_str(), shell.sdb->shardOf(k));
                else
                    std::printf("  %lld = %s\n",
                                static_cast<long long>(k),
                                textOf(v).c_str());
                return ++rows < 100;
            };
            Status s;
            if (shell.sharded()) {
                s = shell.sconn->scan(lo, hi, visit);
            } else {
                Table *t = shell.current();
                if (t == nullptr)
                    continue;
                s = t->scan(lo, hi, visit);
            }
            if (!s.isOk())
                shell.report(s);
            else if (rows >= 100)
                std::printf("  ... (truncated at 100 rows)\n");
        } else if (cmd == "count") {
            std::uint64_t n = 0;
            if (shell.sharded()) {
                NVWAL_CHECK_OK(shell.sconn->count(&n));
            } else {
                Table *t = shell.current();
                if (t == nullptr)
                    continue;
                NVWAL_CHECK_OK(t->count(&n));
            }
            std::printf("%llu\n", static_cast<unsigned long long>(n));
        } else if (cmd == "minsert") {
            if (!shell.sharded()) {
                std::printf("minsert needs --shards\n");
                continue;
            }
            std::vector<ShardedConnection::Op> ops;
            RowId key;
            std::string text;
            while (in >> key >> text)
                ops.push_back(ShardedConnection::Op::insert(key, text));
            if (ops.empty()) {
                std::printf(
                    "usage: minsert <key> <text> [<key> <text> ...]\n");
                continue;
            }
            shell.report(shell.sconn->runAtomic(ops));
        } else if (cmd == "route") {
            RowId key;
            if (!shell.sharded() || !(in >> key)) {
                std::printf("usage (sharded mode): route <key>\n");
                continue;
            }
            std::printf("shard %u\n", shell.sdb->shardOf(key));
        } else if (cmd == "shard") {
            if (!shell.sharded()) {
                std::printf("shard needs --shards\n");
                continue;
            }
            std::uint32_t k;
            if (in >> k) {
                if (k >= shell.sdb->shardCount()) {
                    std::printf("error: shard out of range\n");
                    continue;
                }
                shell.curShard = k;
            }
            std::printf("current shard: %u of %u\n", shell.curShard,
                        shell.sdb->shardCount());
        } else if (cmd == "begin" || cmd == "commit" ||
                   cmd == "rollback" || cmd == "tables" ||
                   cmd == "create" || cmd == "drop" || cmd == "use" ||
                   cmd == "vacuum") {
            if (shell.sharded()) {
                std::printf("'%s' is a single-store command; use "
                            "minsert for atomic multi-key writes\n",
                            cmd.c_str());
                continue;
            }
            if (cmd == "begin") {
                shell.report(shell.db->begin());
            } else if (cmd == "commit") {
                shell.report(shell.db->commit());
            } else if (cmd == "rollback") {
                shell.report(shell.db->rollback());
            } else if (cmd == "tables") {
                std::vector<std::string> names;
                NVWAL_CHECK_OK(shell.db->listTables(&names));
                for (const std::string &name : names) {
                    std::printf("  %s%s\n", name.c_str(),
                                name == shell.table ? " (current)" : "");
                }
            } else if (cmd == "create") {
                std::string name;
                in >> name;
                shell.report(shell.db->createTable(name));
            } else if (cmd == "drop") {
                std::string name;
                in >> name;
                const Status s = shell.db->dropTable(name);
                if (s.isOk() && name == shell.table)
                    shell.table = Database::kDefaultTable;
                shell.report(s);
            } else if (cmd == "use") {
                std::string name;
                in >> name;
                Table *t = nullptr;
                const Status s = shell.db->openTable(name, &t);
                if (s.isOk())
                    shell.table = name;
                shell.report(s);
            } else {
                shell.report(shell.db->vacuum());
            }
        } else if (cmd == "checkpoint") {
            shell.report(shell.sharded() ? shell.sdb->checkpointAll()
                                         : shell.db->checkpoint());
        } else if (cmd == "crash") {
            std::string policy;
            in >> policy;
            // The connection references the dying engines.
            if (shell.sharded())
                shell.sconn.reset();
            env.powerFail(policy == "adversarial"
                              ? FailurePolicy::Adversarial
                              : FailurePolicy::Pessimistic,
                          0.5);
            shell.reopen();
            std::printf("power failure injected; %s recovered\n",
                        shell.sharded() ? "shard set" : "database");
        } else if (cmd == "inspect") {
            NvwalMediaReport media;
            if (shell.sharded()) {
                std::printf("-- shard %02u media --\n", shell.curShard);
                NVWAL_CHECK_OK(collectNvwalMediaReport(
                    env,
                    shell.sdb->shard(shell.curShard).pager().pageSize(),
                    &media,
                    ShardedDatabase::shardHeapNamespace(shell.curShard)));
            } else {
                NVWAL_CHECK_OK(collectNvwalMediaReport(
                    env, shell.db->pager().pageSize(), &media));
            }
            printNvwalMediaReport(media);
        } else if (cmd == "page") {
            PageNo no = 0;
            if (!(in >> no)) {
                std::printf("usage: page <no>\n");
                continue;
            }
            Pager &pager = shell.sharded()
                               ? shell.sdb->shard(shell.curShard).pager()
                               : shell.db->pager();
            const Status s = printPage(pager, no);
            if (!s.isOk())
                shell.report(s);
        } else if (cmd == "stats") {
            if (shell.sharded()) {
                printShardReports(shell);
            } else {
                DatabaseReport report;
                NVWAL_CHECK_OK(collectDatabaseReport(*shell.db, &report));
                printDatabaseReport(report);
            }
            std::printf("simulated time: %.3f ms\n",
                        static_cast<double>(env.clock.now()) / 1e6);
            // Counters then histograms, each in the stable
            // lexicographic order documented in docs/MODEL.md. In
            // sharded mode the one registry already aggregates the
            // whole shard set (shard.* counters, zero-padded
            // shard.commit_ns.sNN histograms).
            printCounters(env.stats);
            printHistograms(env.stats);
        } else if (cmd == "forensics") {
            std::string sub;
            in >> sub;
            const bool json = sub == "json";
            if (shell.sharded()) {
                for (std::uint32_t k = 0; k < shell.sdb->shardCount();
                     ++k) {
                    if (json) {
                        std::printf("%s\n",
                                    recoveryReportJson(
                                        shell.sdb->shardRecoveryReport(k))
                                        .c_str());
                        continue;
                    }
                    std::printf("-- shard %02u post-mortem --\n", k);
                    printRecoveryReport(shell.sdb->shardRecoveryReport(k),
                                        stdout);
                }
                if (!json) {
                    for (const GtidTimeline &t :
                         shell.sdb->forensicsTimeline())
                        std::printf(
                            "  gtid %llu: %zu prepared, %zu commit / "
                            "%zu abort decision(s) on the rings\n",
                            static_cast<unsigned long long>(t.gtid),
                            t.preparedShards.size(),
                            t.committedShards.size(),
                            t.abortedShards.size());
                }
            } else if (json) {
                std::printf(
                    "%s\n",
                    recoveryReportJson(shell.db->recoveryReport())
                        .c_str());
            } else {
                printRecoveryReport(shell.db->recoveryReport(), stdout);
            }
        } else if (cmd == "metrics") {
            std::string path;
            const std::string doc = metricsJson(env.stats);
            if (in >> path) {
                std::FILE *f = std::fopen(path.c_str(), "wb");
                if (f == nullptr) {
                    std::printf("error: cannot open %s\n", path.c_str());
                    continue;
                }
                std::fwrite(doc.data(), 1, doc.size(), f);
                std::fclose(f);
                std::printf("wrote %s\n", path.c_str());
            } else {
                std::printf("%s\n", doc.c_str());
            }
        } else if (cmd == "trace") {
            std::string sub;
            in >> sub;
            if (sub == "on" || sub == "off") {
                env.stats.tracer().setEnabled(sub == "on");
                std::printf("tracing %s\n", sub.c_str());
            } else if (sub == "dump") {
                std::string path;
                if (!(in >> path)) {
                    std::printf("usage: trace dump <path>\n");
                    continue;
                }
                const Status s =
                    writeChromeTrace(env.stats.tracer(), path);
                if (s.isOk()) {
                    std::printf(
                        "wrote %s (%llu events, %llu dropped)\n",
                        path.c_str(),
                        static_cast<unsigned long long>(
                            env.stats.tracer().size()),
                        static_cast<unsigned long long>(
                            env.stats.tracer().dropped()));
                } else {
                    shell.report(s);
                }
            } else {
                std::printf("usage: trace on|off|dump <path>\n");
            }
        } else {
            std::printf("unknown command '%s' -- try 'help'\n",
                        cmd.c_str());
        }
    }
    std::printf("\nbye\n");
    return 0;
}
