/**
 * @file
 * Quickstart: open a database backed by NVWAL (the paper's NVRAM
 * write-ahead log), run a few transactions, and look at what the
 * platform model measured.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "db/database.hpp"

using namespace nvwal;

int
main()
{
    // 1. A simulated platform: Nexus 5 cost model with NVRAM whose
    //    write latency is 2 us (the paper's headline configuration).
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5(/*nvram_write_latency_ns=*/2000);
    Env env(env_config);

    // 2. A database in NVWAL mode. The default NvwalConfig is the
    //    paper's recommended scheme: UH+LS+Diff (user-level heap,
    //    transaction-aware lazy synchronization, byte-granularity
    //    differential logging).
    DbConfig config;
    config.name = "quickstart.db";
    config.walMode = WalMode::Nvwal;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    std::printf("opened %s with %s\n", config.name.c_str(),
                db->wal().name());

    // 3. Autocommit statements...
    NVWAL_CHECK_OK(db->insert(1, "alice"));
    NVWAL_CHECK_OK(db->insert(2, "bob"));

    // 4. ... and explicit transactions.
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->insert(3, "carol"));
    NVWAL_CHECK_OK(db->update(1, toBytes("alice v2")));
    NVWAL_CHECK_OK(db->commit());

    // A rolled-back transaction leaves no trace.
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->insert(4, "dave"));
    NVWAL_CHECK_OK(db->rollback());

    // 5. Read back.
    ByteBuffer value;
    NVWAL_CHECK_OK(db->get(1, &value));
    std::printf("key 1 -> %.*s\n", static_cast<int>(value.size()),
                reinterpret_cast<const char *>(value.data()));
    std::printf("key 4 present: %s\n",
                db->get(4, &value).isNotFound() ? "no (rolled back)"
                                                : "yes");

    // 6. Scan in key order.
    NVWAL_CHECK_OK(db->scan(INT64_MIN, INT64_MAX,
                            [](RowId key, ConstByteSpan v) {
                                std::printf("  %lld = %.*s\n",
                                            static_cast<long long>(key),
                                            static_cast<int>(v.size()),
                                            reinterpret_cast<const char *>(
                                                v.data()));
                                return true;
                            }));

    // 7. What did that cost on the simulated platform?
    std::printf("\nplatform counters:\n");
    std::printf("  simulated time        : %.1f us\n",
                static_cast<double>(env.clock.now()) / 1000.0);
    std::printf("  NVRAM bytes logged    : %llu\n",
                static_cast<unsigned long long>(
                    env.stats.get(stats::kNvramBytesLogged)));
    std::printf("  cache lines flushed   : %llu\n",
                static_cast<unsigned long long>(
                    env.stats.get(stats::kNvramLinesFlushed)));
    std::printf("  persist barriers      : %llu\n",
                static_cast<unsigned long long>(
                    env.stats.get(stats::kPersistBarriers)));
    std::printf("  heap manager calls    : %llu\n",
                static_cast<unsigned long long>(
                    env.stats.get(stats::kHeapCalls)));

    // 8. Checkpoint: batch the log into the .db file and truncate.
    NVWAL_CHECK_OK(db->checkpoint());
    std::printf("\ncheckpointed; frames in log: %llu\n",
                static_cast<unsigned long long>(
                    db->wal().framesSinceCheckpoint()));
    return 0;
}
